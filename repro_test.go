package repro_test

import (
	"testing"

	repro "repro"
	"repro/internal/hpcsim"
)

// TestPublicAPIWorkflow exercises the facade end to end: simulate history,
// save/load it, fit, predict, persist the model.
func TestPublicAPIWorkflow(t *testing.T) {
	app, ok := repro.Apps()["smg2000"]
	if !ok {
		t.Fatal("smg2000 missing from app registry")
	}
	eng := repro.NewEngine(nil, 5)
	r := repro.NewRand(6)

	cfg := repro.DefaultConfig()
	cfg.Forest.Trees = 30
	cfgs := app.Space().SampleLatinHypercube(r, 80)
	hist, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
		Configs: cfgs, Scales: cfg.SmallScales, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
		Configs: cfgs[:20], Scales: cfg.LargeScales, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist.Merge(anchors)

	// history CSV round trip through the facade loader
	dir := t.TempDir()
	histPath := dir + "/hist.csv"
	if err := hist.SaveCSV(histPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := repro.LoadHistory(histPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != hist.Len() {
		t.Fatalf("history round trip lost runs: %d vs %d", loaded.Len(), hist.Len())
	}

	m, err := repro.Fit(repro.NewRand(1), loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode() != repro.ModeAnchored {
		t.Fatalf("mode = %q", m.Mode())
	}
	probe := cfgs[len(cfgs)-1]
	pred := m.Predict(probe)
	if len(pred) != len(cfg.LargeScales) {
		t.Fatalf("predict returned %d values", len(pred))
	}
	for _, v := range pred {
		if v <= 0 {
			t.Fatalf("non-positive prediction %v", v)
		}
	}

	modelPath := dir + "/model.json"
	if err := m.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	m2, err := repro.LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	pred2 := m2.Predict(probe)
	for i := range pred {
		if pred[i] != pred2[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

// TestBasisModeViaFacade checks the no-large-scale-history path.
func TestBasisModeViaFacade(t *testing.T) {
	app := repro.Apps()["lulesh"]
	eng := repro.NewEngine(nil, 9)
	r := repro.NewRand(10)
	cfg := repro.DefaultConfig()
	cfg.Mode = repro.ModeBasis
	cfg.Forest.Trees = 30
	cfgs := app.Space().SampleLatinHypercube(r, 60)
	hist, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
		Configs: cfgs, Scales: cfg.SmallScales, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.Fit(repro.NewRand(2), hist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode() != repro.ModeBasis {
		t.Fatalf("mode = %q", m.Mode())
	}
	if v, err := m.PredictAt(cfgs[0], 300); err != nil || v <= 0 {
		t.Fatalf("PredictAt = %v, %v", v, err)
	}
}
