// Command train fits a two-level performance model from execution-history
// CSVs and saves it as JSON.
//
// Usage:
//
//	train -in history.csv -out model.json
//	train -in small.csv -in anchors.csv -small 2,4,8,16,32,64 -large 128,256,512,1024 -out model.json
//	train -in small.csv -mode basis -clusters 4 -out model.json
//
// Multiple -in files are merged (they must share the application and
// parameter columns), so small-scale history and anchor runs can live in
// separate files.
package main

import (
	"flag"
	"fmt"
	"os"
	"repro/internal/cliutil"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

type multiFlag []string

func (m *multiFlag) String() string {
	out := ""
	for i, v := range *m {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var inputs multiFlag
	flag.Var(&inputs, "in", "input history CSV (repeatable)")
	var (
		out      = flag.String("out", "model.json", "output model path")
		small    = flag.String("small", "2,4,8,16,32,64", "small scales (comma-separated)")
		large    = flag.String("large", "128,256,512,1024", "target large scales")
		mode     = flag.String("mode", "auto", "extrapolation backend: auto, anchored, basis")
		clusters = flag.Int("clusters", 3, "number of scaling-behaviour clusters")
		trees    = flag.Int("trees", 100, "trees per interpolation forest")
		lambda   = flag.Float64("lambda", 0, "multitask lasso lambda (0 = select automatically)")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if len(inputs) == 0 {
		fatalf("at least one -in file is required")
	}
	var table *dataset.Table
	for _, path := range inputs {
		t, err := dataset.LoadCSV(path)
		if err != nil {
			fatalf("loading %s: %v", path, err)
		}
		if table == nil {
			table = t
		} else {
			table.Merge(t)
		}
	}

	cfg := core.DefaultConfig()
	var err error
	if cfg.SmallScales, err = cliutil.ParseScales(*small); err != nil {
		fatalf("-small: %v", err)
	}
	if cfg.LargeScales, err = cliutil.ParseScales(*large); err != nil {
		fatalf("-large: %v", err)
	}
	switch *mode {
	case "auto":
		cfg.Mode = core.ModeAuto
	case "anchored":
		cfg.Mode = core.ModeAnchored
	case "basis":
		cfg.Mode = core.ModeBasis
	default:
		fatalf("unknown -mode %q", *mode)
	}
	cfg.Clusters = *clusters
	cfg.Forest.Trees = *trees
	cfg.Lambda = *lambda

	m, err := core.Fit(rng.New(*seed), table, cfg)
	if err != nil {
		fatalf("fit: %v", err)
	}
	if err := m.Save(*out); err != nil {
		fatalf("saving: %v", err)
	}
	fmt.Fprintf(os.Stderr,
		"trained %s-mode model on %d configurations (%d anchors), %d clusters; saved to %s\n",
		m.Mode(), m.TrainConfigs, m.Anchors, m.Clusters(), *out)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "train: "+format+"\n", args...)
	os.Exit(1)
}
