// Command predict loads a trained two-level model and predicts runtimes
// for configurations given on the command line or in a CSV.
//
// Usage:
//
//	predict -model model.json -params 192,192,128,20
//	predict -model model.json -params 192,192,128,20 -at 512
//	predict -model model.json -in configs.csv
//	cut -d, -f1-4 configs.csv | predict -model model.json -in -
//
// A -in CSV needs one header row naming the parameters (matching the
// model's) and one row per configuration; "-in -" reads the CSV from
// stdin, enabling piping.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"repro/internal/cliutil"
	"strconv"

	"repro/internal/core"
)

func main() {
	var (
		modelPath = flag.String("model", "model.json", "trained model path")
		params    = flag.String("params", "", "one configuration, comma-separated values")
		in        = flag.String("in", "", "CSV of configurations (header + rows); - reads stdin")
		at        = flag.Int("at", 0, "predict at one specific scale (0 = all targets)")
		curves    = flag.Bool("small", false, "also print the predicted small-scale curve")
	)
	flag.Parse()

	m, err := core.Load(*modelPath)
	if err != nil {
		fatalf("loading model: %v", err)
	}

	var configs [][]float64
	switch {
	case *params != "":
		v, err := cliutil.ParseVector(*params)
		if err != nil {
			fatalf("-params: %v", err)
		}
		configs = append(configs, v)
	case *in != "":
		configs, err = loadConfigs(*in, m.ParamNames)
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("provide -params or -in")
	}

	for _, cfg := range configs {
		if len(cfg) != len(m.ParamNames) {
			fatalf("configuration %v has %d values, model expects %d (%v)",
				cfg, len(cfg), len(m.ParamNames), m.ParamNames)
		}
		fmt.Printf("config %v (cluster %d)\n", cfg, m.AssignCluster(cfg))
		if *curves {
			smallPred := m.PredictSmall(cfg)
			for i, s := range m.Cfg.SmallScales {
				fmt.Printf("  p=%-6d %.6g s (interpolated)\n", s, smallPred[i])
			}
		}
		if *at > 0 {
			v, err := m.PredictAt(cfg, *at)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("  p=%-6d %.6g s\n", *at, v)
			continue
		}
		pred := m.Predict(cfg)
		for i, s := range m.Cfg.LargeScales {
			fmt.Printf("  p=%-6d %.6g s\n", s, pred[i])
		}
	}
}

func loadConfigs(path string, want []string) ([][]float64, error) {
	var rd io.Reader
	if path == "-" {
		rd = os.Stdin
		path = "stdin"
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rd = f
	}
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header of %s: %w", path, err)
	}
	if len(header) != len(want) {
		return nil, fmt.Errorf("%s has %d columns, model expects %d (%v)", path, len(header), len(want), want)
	}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("%s column %d is %q, model expects %q", path, i, h, want[i])
		}
	}
	var out [][]float64
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, line, err)
		}
		line++
		v := make([]float64, len(rec))
		for i, cell := range rec {
			v[i], err = strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("%s line %d: bad value %q", path, line, cell)
			}
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "predict: "+format+"\n", args...)
	os.Exit(1)
}
