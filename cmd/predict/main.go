// Command predict loads a trained two-level model and predicts runtimes
// for configurations given on the command line or in a CSV.
//
// Usage:
//
//	predict -model model.json -params 192,192,128,20
//	predict -model model.json -params 192,192,128,20 -at 512
//	predict -model model.json -params 192,192,128,20 -interval 0.9
//	predict -model model.json -in configs.csv -interval 0.9 -json
//	cut -d, -f1-4 configs.csv | predict -model model.json -in -
//
// A -in CSV needs one header row naming the parameters (matching the
// model's) and one row per configuration; "-in -" reads the CSV from
// stdin, enabling piping.
//
// -interval takes a coverage level in [0.5, 1) (0.9 = a 90% band;
// conformal when the model was trained by the pipeline, tree-ensemble
// spread otherwise) or the legacy tail-quantile form in (0, 0.5).
// -json emits one JSON object per configuration on stdout for piping
// into jq or downstream tooling.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"repro/internal/cliutil"
	"strconv"

	"repro/internal/core"
)

// result is the -json output shape, one object per configuration.
type result struct {
	Params    []float64       `json:"params"`
	Cluster   int             `json:"cluster"`
	Scales    []int           `json:"scales"`
	Runtimes  []float64       `json:"runtimes"`
	Small     []float64       `json:"small,omitempty"`
	Intervals []core.Interval `json:"intervals,omitempty"`
}

func main() {
	var (
		modelPath = flag.String("model", "model.json", "trained model path")
		params    = flag.String("params", "", "one configuration, comma-separated values")
		in        = flag.String("in", "", "CSV of configurations (header + rows); - reads stdin")
		at        = flag.Int("at", 0, "predict at one specific scale (0 = all targets)")
		curves    = flag.Bool("small", false, "also print the predicted small-scale curve")
		interval  = flag.Float64("interval", 0, "add prediction intervals at this coverage, e.g. 0.9 (off unless set)")
		asJSON    = flag.Bool("json", false, "emit one JSON object per configuration instead of text")
	)
	flag.Parse()

	m, err := core.Load(*modelPath)
	if err != nil {
		fatalf("loading model: %v", err)
	}
	m.Compile() // run batch scoring on the flattened inference kernels

	// flag.Visit sees only flags given on the command line, so an
	// explicit -interval 0 is rejected by NormalizeCoverage rather than
	// silently treated as "off".
	intervalSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "interval" {
			intervalSet = true
		}
	})
	coverage := 0.0
	if intervalSet {
		coverage, err = core.NormalizeCoverage(*interval)
		if err != nil {
			fatalf("-interval: %v", err)
		}
		if *at > 0 {
			fatalf("-interval is incompatible with -at; request all target scales")
		}
	}

	var configs [][]float64
	switch {
	case *params != "":
		v, err := cliutil.ParseVector(*params)
		if err != nil {
			fatalf("-params: %v", err)
		}
		configs = append(configs, v)
	case *in != "":
		configs, err = loadConfigs(*in, m.ParamNames)
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("provide -params or -in")
	}

	enc := json.NewEncoder(os.Stdout)
	for _, cfg := range configs {
		if len(cfg) != len(m.ParamNames) {
			fatalf("configuration %v has %d values, model expects %d (%v)",
				cfg, len(cfg), len(m.ParamNames), m.ParamNames)
		}
		res := result{Params: cfg, Cluster: m.AssignCluster(cfg)}
		if *curves {
			res.Small = m.PredictSmall(cfg)
		}
		if *at > 0 {
			v, err := m.PredictAt(cfg, *at)
			if err != nil {
				fatalf("%v", err)
			}
			res.Scales = []int{*at}
			res.Runtimes = []float64{v}
		} else {
			res.Scales = m.Cfg.LargeScales
			res.Runtimes = m.Predict(cfg)
			if coverage > 0 {
				res.Intervals = m.PredictIntervalCov(cfg, coverage)
			}
		}
		if *asJSON {
			if err := enc.Encode(res); err != nil {
				fatalf("encoding result: %v", err)
			}
			continue
		}
		printResult(m, res)
	}
}

func printResult(m *core.TwoLevelModel, res result) {
	fmt.Printf("config %v (cluster %d)\n", res.Params, res.Cluster)
	if res.Small != nil {
		for i, s := range m.Cfg.SmallScales {
			fmt.Printf("  p=%-6d %.6g s (interpolated)\n", s, res.Small[i])
		}
	}
	for i, s := range res.Scales {
		if res.Intervals != nil {
			iv := res.Intervals[i]
			fmt.Printf("  p=%-6d %.6g s  [%.6g, %.6g] (%s)\n", s, res.Runtimes[i], iv.Lo, iv.Hi, iv.Source)
			continue
		}
		fmt.Printf("  p=%-6d %.6g s\n", s, res.Runtimes[i])
	}
}

func loadConfigs(path string, want []string) ([][]float64, error) {
	var rd io.Reader
	if path == "-" {
		rd = os.Stdin
		path = "stdin"
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rd = f
	}
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header of %s: %w", path, err)
	}
	if len(header) != len(want) {
		return nil, fmt.Errorf("%s has %d columns, model expects %d (%v)", path, len(header), len(want), want)
	}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("%s column %d is %q, model expects %q", path, i, h, want[i])
		}
	}
	var out [][]float64
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, line, err)
		}
		line++
		v := make([]float64, len(rec))
		for i, cell := range rec {
			v[i], err = strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("%s line %d: bad value %q", path, line, cell)
			}
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "predict: "+format+"\n", args...)
	os.Exit(1)
}
