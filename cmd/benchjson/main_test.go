package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	res, ok, err := parseLine("BenchmarkStoreAppend-8   1234   98765 ns/op   432 B/op   7 allocs/op")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	want := Result{Name: "BenchmarkStoreAppend", Iterations: 1234, NsPerOp: 98765, BytesPerOp: 432, AllocsPerOp: 7}
	if res != want {
		t.Fatalf("got %+v, want %+v", res, want)
	}
	for _, line := range []string{
		"PASS",
		"ok  \trepro/internal/forest\t0.2s",
		"goos: linux",
		"BenchmarkWeird SKIP",
	} {
		if _, ok, err := parseLine(line); ok || err != nil {
			t.Fatalf("line %q: ok=%v err=%v, want ignored", line, ok, err)
		}
	}
}

func TestParseBenchSubBenchmarks(t *testing.T) {
	out, err := parseBench(strings.NewReader(
		"BenchmarkServePredict/hit-4  \t 100\t 9000 ns/op\t 1288 B/op\t 16 allocs/op\n" +
			"BenchmarkServePredict/miss  \t 100\t 90000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "BenchmarkServePredict/hit" || out[1].Name != "BenchmarkServePredict/miss" {
		t.Fatalf("got %+v", out)
	}
}

func TestCompareReports(t *testing.T) {
	baseline := Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 100000, AllocsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 50000, AllocsPerOp: 10},
		{Name: "BenchmarkGone", NsPerOp: 1, AllocsPerOp: 1},
	}}

	t.Run("within tolerance passes", func(t *testing.T) {
		cur := []Result{
			{Name: "BenchmarkA", NsPerOp: 180000, AllocsPerOp: 150},
			{Name: "BenchmarkB", NsPerOp: 60000, AllocsPerOp: 12},
		}
		lines, failed := compareReports(baseline, cur, 2.0)
		if failed {
			t.Fatalf("unexpected failure:\n%s", strings.Join(lines, "\n"))
		}
	})

	t.Run("ns regression fails", func(t *testing.T) {
		cur := []Result{{Name: "BenchmarkA", NsPerOp: 250000, AllocsPerOp: 100}}
		if _, failed := compareReports(baseline, cur, 2.0); !failed {
			t.Fatal("2.5x ns/op regression not flagged")
		}
	})

	t.Run("alloc regression fails", func(t *testing.T) {
		cur := []Result{{Name: "BenchmarkA", NsPerOp: 100000, AllocsPerOp: 300}}
		if _, failed := compareReports(baseline, cur, 2.0); !failed {
			t.Fatal("3x allocs/op regression not flagged")
		}
	})

	t.Run("absolute slack absorbs tiny noise", func(t *testing.T) {
		// 10x over a 1ns/1alloc baseline is noise, not a regression.
		cur := []Result{{Name: "BenchmarkGone", NsPerOp: 10, AllocsPerOp: 10}}
		if lines, failed := compareReports(baseline, cur, 2.0); failed {
			t.Fatalf("tiny-baseline noise flagged:\n%s", strings.Join(lines, "\n"))
		}
	})

	t.Run("new and missing benchmarks never fail", func(t *testing.T) {
		cur := []Result{{Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: 1 << 20}}
		lines, failed := compareReports(baseline, cur, 2.0)
		if failed {
			t.Fatal("benchmark absent from baseline must not fail the run")
		}
		joined := strings.Join(lines, "\n")
		if !strings.Contains(joined, "new") || !strings.Contains(joined, "skip") {
			t.Fatalf("expected new/skip notes, got:\n%s", joined)
		}
	})
}
