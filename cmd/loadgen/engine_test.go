package main

import (
	"bytes"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("point=0.6,interval=0.3,batch=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Point != 0.6 || m.Interval != 0.3 || m.Batch != 0.1 {
		t.Fatalf("mix %+v", m)
	}
	for _, bad := range []string{"", "point", "point=x", "foo=1", "point=0,interval=0,batch=0", "point=-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	opts := Options{
		Mode: "closed", Requests: 200, Seed: 42,
		Mix: Mix{Point: 0.6, Interval: 0.3, Batch: 0.1}, BatchSize: 4, Distinct: 16,
	}
	a, err := NewEngine(opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]int{}
	for i := range a.Items() {
		ai, bi := a.Items()[i], b.Items()[i]
		if ai.class != bi.class || !bytes.Equal(ai.body, bi.body) {
			t.Fatalf("item %d differs across identically seeded engines", i)
		}
		classes[ai.class]++
	}
	// The mix weights every class; a 200-request workload hits each.
	for _, cl := range []string{"point", "interval", "batch"} {
		if classes[cl] == 0 {
			t.Errorf("class %s absent from workload (%v)", cl, classes)
		}
	}

	opts.Seed = 43
	c, err := NewEngine(opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Items() {
		if !bytes.Equal(a.Items()[i].body, c.Items()[i].body) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestLatencyStats(t *testing.T) {
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond // 1..100ms
	}
	s := latencyStats(durs)
	if s.Count != 100 || s.P50MS != 50 || s.P90MS != 90 || s.P99MS != 99 || s.MaxMS != 100 {
		t.Fatalf("stats %+v", s)
	}
	if z := latencyStats(nil); z.Count != 0 || z.MaxMS != 0 {
		t.Fatalf("empty stats %+v", z)
	}
}

func TestBuildReportAccounting(t *testing.T) {
	outcomes := []outcome{
		{class: "point", status: 200, latency: time.Millisecond},
		{class: "point", status: 200, latency: 2 * time.Millisecond, degraded: true},
		{class: "batch", status: 503, latency: time.Millisecond},
		{class: "batch", status: 503, latency: time.Millisecond, noRetry: true},
		{class: "interval", status: 0, truncated: true},
		{class: "interval", status: 400},
	}
	rep := buildReport(Options{Mode: "closed", Seed: 7}, outcomes, time.Second)
	if rep.Accepted != 2 || rep.Shed != 2 || rep.Errors != 2 || rep.Truncated != 1 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Degraded != 1 || rep.MissingRetryAfter != 1 {
		t.Fatalf("report %+v", rep)
	}
	if rep.ByClass["point"].Accepted != 2 || rep.ByClass["batch"].Shed != 2 || rep.ByClass["interval"].Errors != 2 {
		t.Fatalf("by-class %+v", rep.ByClass)
	}
	if rep.Throughput != 2 {
		t.Fatalf("throughput %v, want 2 rps", rep.Throughput)
	}
	if rep.AcceptedLatency.Count != 2 || rep.ShedLatency.Count != 2 {
		t.Fatalf("latency pops %+v %+v", rep.AcceptedLatency, rep.ShedLatency)
	}
}
