// Command loadgen drives a deterministic prediction workload against a
// running serve instance and reports throughput and latency percentiles
// as JSON — the measurement side of the serving layer's load-management
// contract (see internal/loadctl).
//
// Usage:
//
//	loadgen -url http://localhost:8080 -mode closed -requests 2000 -conns 32
//	loadgen -url http://localhost:8080 -mode open -rate 500 -duration 10s \
//	        -mix point=0.6,interval=0.3,batch=0.1 -seed 7 -out report.json
//
// The workload (request classes, configurations, bodies) is derived
// entirely from -seed via the repository's deterministic generator, so
// two runs with the same flags send byte-identical request sequences;
// only pacing and latency measurement use the wall clock. Closed-loop
// mode keeps -conns workers busy (arrival rate adapts to the server);
// open-loop mode paces arrivals at -rate regardless of server speed,
// which is what actually saturates an admission queue.
//
// The model's parameter count is discovered from GET /v1/models before
// the run. -deadline-ms attaches an X-Deadline-Ms budget to every
// request. The report counts accepted (200) and shed (503) responses
// per class, flags any 503 missing its Retry-After header, and gives
// separate latency percentiles for accepted and shed traffic. A
// "server" section scrapes the serving /metrics document immediately
// before and after the run and reports the deltas — predict-endpoint
// requests, errors, and latency histogram, cache hits/misses, sheds —
// so client- and server-side accounts of the run can be reconciled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		url   = flag.String("url", "http://localhost:8080", "server base URL")
		model = flag.String("model", "", "model name to query (default: server default)")

		mode     = flag.String("mode", "closed", "workload mode: closed (worker loop) or open (paced arrivals)")
		rate     = flag.Float64("rate", 100, "open-loop arrival rate, requests/second")
		duration = flag.Duration("duration", 5*time.Second, "open-loop run length")
		conns    = flag.Int("conns", 8, "closed-loop workers / open-loop outstanding cap")
		requests = flag.Int("requests", 1000, "closed-loop total request count")

		mixFlag    = flag.String("mix", "point=0.7,interval=0.2,batch=0.1", "workload mix by class")
		batchSize  = flag.Int("batch", 32, "configurations per batch request")
		distinct   = flag.Int("distinct", 64, "distinct configurations (controls cache-hit ratio)")
		deadlineMS = flag.Int("deadline-ms", 0, "X-Deadline-Ms budget per request (0 = none)")

		seed = flag.Uint64("seed", 1, "workload seed")
		out  = flag.String("out", "", "report path (default: stdout)")
	)
	flag.Parse()

	if *mode != "open" && *mode != "closed" {
		fatalf("-mode %q: want open or closed", *mode)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatalf("%v", err)
	}
	paramCount, err := discoverParamCount(*url, *model)
	if err != nil {
		fatalf("discovering model parameters: %v", err)
	}

	eng, err := NewEngine(Options{
		URL: *url, Model: *model,
		Mode: *mode, Rate: *rate, Duration: *duration,
		Conns: *conns, Requests: *requests,
		Mix: mix, BatchSize: *batchSize, Distinct: *distinct,
		DeadlineMS: *deadlineMS, Seed: *seed,
	}, paramCount)
	if err != nil {
		fatalf("%v", err)
	}

	// Bracket the run with /metrics scrapes so the report carries the
	// server's own account of it. Scrape failures degrade to a
	// client-only report rather than aborting the run.
	before, err := scrapeMetrics(http.DefaultClient, *url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: pre-run metrics scrape: %v\n", err)
	}
	rep := eng.Run()
	after, err := scrapeMetrics(http.DefaultClient, *url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: post-run metrics scrape: %v\n", err)
	}
	rep.Server = serverSection(before, after)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encoding report: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("writing report: %v", err)
	}
}

// discoverParamCount asks the server how many parameters the target
// model takes, so generated configurations validate.
func discoverParamCount(url, model string) (int, error) {
	resp, err := http.Get(url + "/v1/models")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var doc struct {
		Models []struct {
			Name   string   `json:"name"`
			Params []string `json:"params"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, err
	}
	if len(doc.Models) == 0 {
		return 0, fmt.Errorf("server has no models loaded")
	}
	for _, m := range doc.Models {
		if m.Name == model {
			return len(m.Params), nil
		}
	}
	if model != "" {
		return 0, fmt.Errorf("model %q not found", model)
	}
	return len(doc.Models[0].Params), nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
