package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/serving"
)

// LatencyStats summarizes one latency population (milliseconds).
type LatencyStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// ClassOutcome is one priority class's request accounting.
type ClassOutcome struct {
	Sent     int `json:"sent"`
	Accepted int `json:"accepted"` // HTTP 200
	Shed     int `json:"shed"`     // HTTP 503
	Errors   int `json:"errors"`   // transport failures and non-200/503 statuses
}

// Report is the JSON document loadgen emits: enough to compare runs
// (same seed → same workload) and to check the shedding contract (every
// 503 carries Retry-After; accepted latency stays bounded).
type Report struct {
	Mode            string  `json:"mode"`
	Seed            uint64  `json:"seed"`
	Requests        int     `json:"requests"`
	DurationSeconds float64 `json:"duration_seconds"`

	// Throughput counts accepted (200) responses per second.
	Throughput float64 `json:"throughput_rps"`

	Accepted          int `json:"accepted"`
	Shed              int `json:"shed"`
	Errors            int `json:"errors"`
	Truncated         int `json:"truncated"` // accepted responses cut off mid-body; must be 0
	Degraded          int `json:"degraded_responses"`
	MissingRetryAfter int `json:"missing_retry_after"` // 503s without the header; must be 0

	ByClass map[string]*ClassOutcome `json:"by_class"`

	// AcceptedLatency covers 200s only; ShedLatency covers 503s (sheds
	// must be fast — a slow rejection is still an outage).
	AcceptedLatency LatencyStats `json:"accepted_latency"`
	ShedLatency     LatencyStats `json:"shed_latency"`

	// Server is the server-side view of the same run: the /metrics JSON
	// document scraped immediately before and after, reported as deltas.
	// nil when either scrape failed (the client-side report stands alone).
	Server *ServerSection `json:"server,omitempty"`
}

// ServerSection holds server-side deltas over the run, from the
// serving /metrics JSON document. Client and server accounts of the
// same run must reconcile: predict_requests matches the requests the
// engine sent, predict_errors its 503s (absent other failures), and
// the latency histogram delta counts every one of them.
type ServerSection struct {
	PredictRequests int64 `json:"predict_requests"`
	PredictErrors   int64 `json:"predict_errors"`
	// PredictLatency is the after-minus-before histogram for the predict
	// endpoint (counts over the fixed millisecond buckets, "+Inf" last).
	PredictLatency serving.HistogramSnapshot `json:"predict_latency"`

	PredictionsTotal int64 `json:"predictions_total"` // configurations, counting batch entries
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`

	// Shed and DegradedServed come from the admission controller; 0 when
	// the server runs with load control disabled.
	Shed           int64 `json:"shed"`
	DegradedServed int64 `json:"degraded_served"`
}

// scrapeMetrics fetches the serving /metrics JSON document. The Accept
// header pins JSON explicitly so the scrape is immune to the endpoint's
// content negotiation growing new defaults.
func scrapeMetrics(client *http.Client, base string) (*serving.Snapshot, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	var snap serving.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("GET /metrics: decoding: %w", err)
	}
	return &snap, nil
}

// serverSection computes the before/after delta. Either snapshot nil
// (a scrape failed) yields nil — a partial delta would be misleading.
func serverSection(before, after *serving.Snapshot) *ServerSection {
	if before == nil || after == nil {
		return nil
	}
	bp, ap := before.Endpoints["predict"], after.Endpoints["predict"]
	sec := &ServerSection{
		PredictRequests:  ap.Requests - bp.Requests,
		PredictErrors:    ap.Errors - bp.Errors,
		PredictLatency:   ap.Latency.Sub(bp.Latency),
		PredictionsTotal: after.PredictionsTotal - before.PredictionsTotal,
		CacheHits:        after.Cache.Hits - before.Cache.Hits,
		CacheMisses:      after.Cache.Misses - before.Cache.Misses,
	}
	if before.Load != nil && after.Load != nil {
		sec.Shed = after.Load.ShedTotal() - before.Load.ShedTotal()
		sec.DegradedServed = after.Load.DegradedServed - before.Load.DegradedServed
	}
	return sec
}

// buildReport aggregates raw outcomes.
func buildReport(opts Options, outcomes []outcome, elapsed time.Duration) *Report {
	rep := &Report{
		Mode:            opts.Mode,
		Seed:            opts.Seed,
		Requests:        len(outcomes),
		DurationSeconds: elapsed.Seconds(),
		ByClass: map[string]*ClassOutcome{
			"point": {}, "interval": {}, "batch": {},
		},
	}
	var accepted, shed []time.Duration
	for _, o := range outcomes {
		co := rep.ByClass[o.class]
		co.Sent++
		switch o.status {
		case 200:
			co.Accepted++
			rep.Accepted++
			accepted = append(accepted, o.latency)
			if o.degraded {
				rep.Degraded++
			}
		case 503:
			co.Shed++
			rep.Shed++
			shed = append(shed, o.latency)
			if o.noRetry {
				rep.MissingRetryAfter++
			}
		default:
			co.Errors++
			rep.Errors++
			if o.truncated {
				rep.Truncated++
			}
		}
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.Throughput = float64(rep.Accepted) / s
	}
	rep.AcceptedLatency = latencyStats(accepted)
	rep.ShedLatency = latencyStats(shed)
	return rep
}
