package main

import "time"

// LatencyStats summarizes one latency population (milliseconds).
type LatencyStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// ClassOutcome is one priority class's request accounting.
type ClassOutcome struct {
	Sent     int `json:"sent"`
	Accepted int `json:"accepted"` // HTTP 200
	Shed     int `json:"shed"`     // HTTP 503
	Errors   int `json:"errors"`   // transport failures and non-200/503 statuses
}

// Report is the JSON document loadgen emits: enough to compare runs
// (same seed → same workload) and to check the shedding contract (every
// 503 carries Retry-After; accepted latency stays bounded).
type Report struct {
	Mode            string  `json:"mode"`
	Seed            uint64  `json:"seed"`
	Requests        int     `json:"requests"`
	DurationSeconds float64 `json:"duration_seconds"`

	// Throughput counts accepted (200) responses per second.
	Throughput float64 `json:"throughput_rps"`

	Accepted          int `json:"accepted"`
	Shed              int `json:"shed"`
	Errors            int `json:"errors"`
	Truncated         int `json:"truncated"` // accepted responses cut off mid-body; must be 0
	Degraded          int `json:"degraded_responses"`
	MissingRetryAfter int `json:"missing_retry_after"` // 503s without the header; must be 0

	ByClass map[string]*ClassOutcome `json:"by_class"`

	// AcceptedLatency covers 200s only; ShedLatency covers 503s (sheds
	// must be fast — a slow rejection is still an outage).
	AcceptedLatency LatencyStats `json:"accepted_latency"`
	ShedLatency     LatencyStats `json:"shed_latency"`
}

// buildReport aggregates raw outcomes.
func buildReport(opts Options, outcomes []outcome, elapsed time.Duration) *Report {
	rep := &Report{
		Mode:            opts.Mode,
		Seed:            opts.Seed,
		Requests:        len(outcomes),
		DurationSeconds: elapsed.Seconds(),
		ByClass: map[string]*ClassOutcome{
			"point": {}, "interval": {}, "batch": {},
		},
	}
	var accepted, shed []time.Duration
	for _, o := range outcomes {
		co := rep.ByClass[o.class]
		co.Sent++
		switch o.status {
		case 200:
			co.Accepted++
			rep.Accepted++
			accepted = append(accepted, o.latency)
			if o.degraded {
				rep.Degraded++
			}
		case 503:
			co.Shed++
			rep.Shed++
			shed = append(shed, o.latency)
			if o.noRetry {
				rep.MissingRetryAfter++
			}
		default:
			co.Errors++
			rep.Errors++
			if o.truncated {
				rep.Truncated++
			}
		}
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.Throughput = float64(rep.Accepted) / s
	}
	rep.AcceptedLatency = latencyStats(accepted)
	rep.ShedLatency = latencyStats(shed)
	return rep
}
