package main

import (
	"net"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hpcsim"
	"repro/internal/loadctl"
	"repro/internal/rng"
	"repro/internal/serving"
)

// The e2e tests share one small fitted model; fitting dominates test
// wall-clock and the model is immutable.
var (
	fixtureOnce  sync.Once
	fixtureModel *core.TwoLevelModel
	fixtureErr   error
)

func testModel(tb testing.TB) *core.TwoLevelModel {
	tb.Helper()
	fixtureOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.SmallScales = []int{2, 4, 8, 16, 32, 64}
		cfg.LargeScales = []int{128, 256, 512}
		cfg.Forest.Trees = 10
		cfg.CVLambdas = 4

		app := hpcsim.NewSMG()
		eng := hpcsim.NewEngine(nil, 11)
		r := rng.New(21)
		trainCfgs := app.Space().SampleLatinHypercube(r, 24)
		train, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs, Scales: cfg.SmallScales, Reps: 1})
		if err != nil {
			fixtureErr = err
			return
		}
		anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs[:12], Scales: cfg.LargeScales, Reps: 1})
		if err != nil {
			fixtureErr = err
			return
		}
		train.Merge(anchors)
		fixtureModel, fixtureErr = core.Fit(rng.New(22), train, cfg)
	})
	if fixtureErr != nil {
		tb.Fatalf("fitting fixture model: %v", fixtureErr)
	}
	return fixtureModel
}

// newLoadServer builds a serving.Server over the fixture model.
func newLoadServer(tb testing.TB, opts serving.Options) *serving.Server {
	tb.Helper()
	reg := serving.NewRegistry()
	reg.Install("default", testModel(tb))
	return serving.New(reg, opts)
}

// TestSaturation is the saturation demo from the issue: a closed-loop
// burst far above the sustainable rate (fixed limit 2 × 5ms synthetic
// service time ≈ 400 rps sustainable; 32 workers hammer much harder).
// The server must answer every request — 200 or an immediate 503 with
// Retry-After, never a hang — keep accepted latency bounded, and its
// shed counters must account for every 503.
func TestSaturation(t *testing.T) {
	srv := newLoadServer(t, serving.Options{
		CacheSize: 0, // every request computes, so SyntheticDelay is the service time
		Load: loadctl.Config{
			InitialLimit: 2, FixedLimit: true, QueueCapacity: 8,
			TargetLatency: 100 * time.Millisecond,
		},
		SyntheticDelay: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	eng, err := NewEngine(Options{
		URL: ts.URL, Mode: "closed", Requests: 300, Conns: 32, Seed: 9,
		Mix: Mix{Point: 0.8, Interval: 0.1, Batch: 0.1}, BatchSize: 4, Distinct: 32,
	}, len(testModel(t).ParamNames))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rep := eng.Run()

	if rep.Errors != 0 || rep.Truncated != 0 {
		t.Fatalf("errors=%d truncated=%d, want 0 (every request must get 200 or 503)", rep.Errors, rep.Truncated)
	}
	if rep.Accepted+rep.Shed != rep.Requests {
		t.Fatalf("accepted %d + shed %d != %d requests", rep.Accepted, rep.Shed, rep.Requests)
	}
	if rep.Shed == 0 {
		t.Fatal("overload produced zero sheds: admission control not engaging")
	}
	if rep.MissingRetryAfter != 0 {
		t.Fatalf("%d sheds missing Retry-After", rep.MissingRetryAfter)
	}
	// Bounded queue (8) over fixed limit 2 at 5ms service: accepted
	// latency is structurally bounded; 1s passes with a wide CI margin
	// while still catching unbounded queuing.
	if rep.AcceptedLatency.P99MS > 1000 {
		t.Fatalf("accepted p99 %.1fms: queueing unbounded", rep.AcceptedLatency.P99MS)
	}

	snap := srv.LoadController().Snapshot()
	if got := snap.ShedTotal(); got != int64(rep.Shed) {
		t.Fatalf("controller sheds %d != client-observed 503s %d (every rejection must be accounted)", got, rep.Shed)
	}
	if got := snap.Completed + snap.DegradedServed; got != int64(rep.Accepted) {
		t.Fatalf("completed %d + degraded-served %d != accepted %d", snap.Completed, snap.DegradedServed, rep.Accepted)
	}
	if snap.InFlight != 0 || snap.Queued != 0 {
		t.Fatalf("controller not drained: in_flight=%d queued=%d", snap.InFlight, snap.Queued)
	}
}

// TestServerSectionCrossChecks reconciles the client- and server-side
// accounts of one run: the report's server section (built from
// /metrics scrapes bracketing the run) must agree with what the engine
// measured — every request sent shows up on the predict endpoint, every
// 503 as a predict error and a controller shed, and the endpoint's
// latency histogram delta counts them all.
func TestServerSectionCrossChecks(t *testing.T) {
	srv := newLoadServer(t, serving.Options{
		CacheSize: 256,
		Load: loadctl.Config{
			InitialLimit: 2, FixedLimit: true, QueueCapacity: 8,
			TargetLatency: 100 * time.Millisecond,
		},
		SyntheticDelay: 2 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	eng, err := NewEngine(Options{
		URL: ts.URL, Mode: "closed", Requests: 200, Conns: 16, Seed: 11,
		Mix: Mix{Point: 0.8, Interval: 0.1, Batch: 0.1}, BatchSize: 4, Distinct: 16,
	}, len(testModel(t).ParamNames))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	before, err := scrapeMetrics(ts.Client(), ts.URL)
	if err != nil {
		t.Fatalf("pre-run scrape: %v", err)
	}
	rep := eng.Run()
	after, err := scrapeMetrics(ts.Client(), ts.URL)
	if err != nil {
		t.Fatalf("post-run scrape: %v", err)
	}
	sec := serverSection(before, after)
	if sec == nil {
		t.Fatal("server section nil despite two successful scrapes")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors invalidate the reconciliation", rep.Errors)
	}

	if sec.PredictRequests != int64(rep.Requests) {
		t.Fatalf("server saw %d predict requests, client sent %d", sec.PredictRequests, rep.Requests)
	}
	if sec.PredictErrors != int64(rep.Shed) {
		t.Fatalf("server counted %d predict errors, client saw %d sheds", sec.PredictErrors, rep.Shed)
	}
	if sec.Shed != int64(rep.Shed) {
		t.Fatalf("controller shed delta %d, client saw %d 503s", sec.Shed, rep.Shed)
	}
	if sec.PredictLatency.Count != int64(rep.Requests) {
		t.Fatalf("latency histogram delta counts %d, want %d", sec.PredictLatency.Count, rep.Requests)
	}
	// Cumulative buckets: the last ("+Inf") bucket of the delta must
	// equal its count, and the explicit sentinel must survive the JSON
	// round trip the scrape performs.
	last := sec.PredictLatency.Buckets[len(sec.PredictLatency.Buckets)-1]
	if int64(last.Count) != sec.PredictLatency.Count {
		t.Fatalf("+Inf bucket %d != count %d", last.Count, sec.PredictLatency.Count)
	}
	if !last.LeMS.IsInf() {
		t.Fatalf("last bucket bound %v is not +Inf", last.LeMS)
	}
	// Cache activity happened and is visible server-side (16 distinct
	// configs over 200 requests must hit).
	if sec.CacheHits+sec.CacheMisses == 0 {
		t.Fatal("no cache activity recorded server-side")
	}
}

// TestSaturationDeterministicWorkload re-runs the saturation workload
// generation under the same seed and checks the server sees the same
// byte stream — the reproducibility half of the acceptance criteria
// (admission decisions depend on timing; the offered load must not).
func TestSaturationDeterministicWorkload(t *testing.T) {
	opts := Options{
		URL: "http://unused", Mode: "closed", Requests: 300, Conns: 32, Seed: 9,
		Mix: Mix{Point: 0.8, Interval: 0.1, Batch: 0.1}, BatchSize: 4, Distinct: 32,
	}
	a, err := NewEngine(opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Items() {
		if string(a.Items()[i].body) != string(b.Items()[i].body) {
			t.Fatalf("request %d differs between identically seeded runs", i)
		}
	}
}

// TestShutdownUnderLoad drains the server mid-burst: every accepted
// (200) response must arrive whole, the drain must flip /healthz, and
// the process must return to its goroutine baseline — no leaked
// handlers, waiters, or client connections. Run under -race.
func TestShutdownUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := newLoadServer(t, serving.Options{
		CacheSize: 0,
		Load: loadctl.Config{
			InitialLimit: 4, FixedLimit: true, QueueCapacity: 16,
			TargetLatency: 100 * time.Millisecond,
		},
		SyntheticDelay: 2 * time.Millisecond,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g := serving.NewGraceful(l.Addr().String(), srv.Handler(), 10*time.Second)
	g.PreDrain = srv.BeginDrain
	serveDone := make(chan error, 1)
	go func() { serveDone <- g.Serve(l) }()

	eng, err := NewEngine(Options{
		URL: "http://" + l.Addr().String(), Mode: "closed", Requests: 600, Conns: 16, Seed: 5,
		Mix: Mix{Point: 0.8, Interval: 0.1, Batch: 0.1}, BatchSize: 4, Distinct: 32,
	}, len(testModel(t).ParamNames))
	if err != nil {
		t.Fatal(err)
	}

	repCh := make(chan *Report, 1)
	go func() { repCh <- eng.Run() }()

	// Let the burst establish, then drain mid-flight.
	time.Sleep(50 * time.Millisecond)
	if err := g.Shutdown(); err != nil {
		t.Fatalf("shutdown during load: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("PreDrain did not mark the server draining")
	}
	rep := <-repCh
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Zero dropped in-flight accepted requests: anything the server
	// accepted arrived whole. Requests after the listener closed fail at
	// the transport level, which is expected and counted separately.
	if rep.Truncated != 0 {
		t.Fatalf("%d accepted responses truncated by shutdown", rep.Truncated)
	}
	if rep.Accepted == 0 {
		t.Fatal("no requests completed before drain; burst never established")
	}
	if rep.MissingRetryAfter != 0 {
		t.Fatalf("%d sheds missing Retry-After", rep.MissingRetryAfter)
	}

	// The controller must drain with the connections.
	snap := srv.LoadController().Snapshot()
	if snap.InFlight != 0 || snap.Queued != 0 {
		t.Fatalf("controller not drained: in_flight=%d queued=%d", snap.InFlight, snap.Queued)
	}

	// Goroutine count returns to baseline once client conns close.
	eng.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkLoadSaturation measures end-to-end throughput of the
// admission-controlled predict path under a closed-loop burst (cache
// on, so the steady state exercises the fast admit path).
func BenchmarkLoadSaturation(b *testing.B) {
	srv := newLoadServer(b, serving.Options{
		CacheSize: 4096,
		Load:      loadctl.Config{InitialLimit: 16, FixedLimit: true, QueueCapacity: 64},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	eng, err := NewEngine(Options{
		URL: ts.URL, Mode: "closed", Requests: b.N, Conns: 16, Seed: 3,
		Mix: Mix{Point: 1}, Distinct: 64,
	}, len(testModel(b).ParamNames))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	rep := eng.Run()
	b.StopTimer()
	if rep.Errors != 0 {
		b.Fatalf("%d transport errors", rep.Errors)
	}
	b.ReportMetric(rep.Throughput, "req/s")
	b.ReportMetric(rep.AcceptedLatency.P99MS, "p99-ms")
}
