package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/serving"
)

// Mix is the workload composition by priority class; weights are
// normalized, so any positive scale works.
type Mix struct {
	Point    float64
	Interval float64
	Batch    float64
}

// parseMix parses "point=0.6,interval=0.3,batch=0.1".
func parseMix(s string) (Mix, error) {
	m := Mix{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("mix component %q: want name=weight", part)
		}
		var w float64
		if _, err := fmt.Sscanf(val, "%g", &w); err != nil || w < 0 {
			return m, fmt.Errorf("mix component %q: bad weight", part)
		}
		switch name {
		case "point":
			m.Point = w
		case "interval":
			m.Interval = w
		case "batch":
			m.Batch = w
		default:
			return m, fmt.Errorf("mix component %q: unknown class", name)
		}
	}
	if m.Point+m.Interval+m.Batch <= 0 {
		return m, fmt.Errorf("mix %q: all weights zero", s)
	}
	return m, nil
}

// Options configures one load-generation run.
type Options struct {
	URL   string // server base URL
	Model string // model name in request bodies ("" = server default)

	Mode     string        // "open" (paced arrivals) or "closed" (worker loop)
	Rate     float64       // open-loop arrival rate, requests/second
	Duration time.Duration // open-loop run length
	Conns    int           // closed-loop worker count / open-loop outstanding cap
	Requests int           // closed-loop total request count

	Mix        Mix
	BatchSize  int // configurations per batch request
	Distinct   int // distinct configurations (controls the cache-hit ratio)
	DeadlineMS int // X-Deadline-Ms header value; 0 sends no header

	Seed uint64
}

// workItem is one pre-generated request: the body bytes are built before
// the run starts so the hot loop does no marshaling and the workload is
// a pure function of the seed.
type workItem struct {
	class string
	body  []byte
}

// outcome is one completed request's result.
type outcome struct {
	class     string
	status    int // 0 = transport error
	latency   time.Duration
	degraded  bool
	noRetry   bool // a 503 missing the Retry-After header
	truncated bool // response started but the body did not arrive whole
}

// Engine drives a deterministic workload against a live server. The
// request sequence (classes, configurations, bodies) is derived entirely
// from Options.Seed via internal/rng; only pacing and latency
// measurement touch the wall clock, which is confined to this command.
type Engine struct {
	opts   Options
	items  []workItem
	client *http.Client
}

// NewEngine pre-generates the workload for a model with paramCount
// parameters.
func NewEngine(opts Options, paramCount int) (*Engine, error) {
	if opts.Conns <= 0 {
		opts.Conns = 8
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	if opts.Distinct <= 0 {
		opts.Distinct = 64
	}
	n := opts.Requests
	if opts.Mode == "open" {
		if opts.Rate <= 0 || opts.Duration <= 0 {
			return nil, fmt.Errorf("open mode needs -rate and -duration")
		}
		n = int(opts.Rate * opts.Duration.Seconds())
	}
	if n <= 0 {
		return nil, fmt.Errorf("no requests to send (requests=%d)", opts.Requests)
	}

	r := rng.New(opts.Seed)
	configs := make([][]float64, opts.Distinct)
	for i := range configs {
		cfg := make([]float64, paramCount)
		for j := range cfg {
			cfg[j] = r.Float64()
		}
		configs[i] = cfg
	}

	total := opts.Mix.Point + opts.Mix.Interval + opts.Mix.Batch
	items := make([]workItem, n)
	for i := range items {
		req := serving.PredictRequest{Model: opts.Model}
		u := r.Float64() * total
		var class string
		switch {
		case u < opts.Mix.Point:
			class = "point"
			req.Params = configs[r.Intn(len(configs))]
		case u < opts.Mix.Point+opts.Mix.Interval:
			class = "interval"
			req.Params = configs[r.Intn(len(configs))]
			req.Interval = 0.9
		default:
			class = "batch"
			req.Configs = make([][]float64, opts.BatchSize)
			for j := range req.Configs {
				req.Configs[j] = configs[r.Intn(len(configs))]
			}
		}
		body, err := json.Marshal(&req)
		if err != nil {
			return nil, fmt.Errorf("marshaling request %d: %w", i, err)
		}
		items[i] = workItem{class: class, body: body}
	}
	return &Engine{
		opts:  opts,
		items: items,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        opts.Conns * 2,
			MaxIdleConnsPerHost: opts.Conns * 2,
		}},
	}, nil
}

// Items exposes the pre-generated workload (tests assert determinism).
func (e *Engine) Items() []workItem { return e.items }

// Close releases idle client connections (and their goroutines).
func (e *Engine) Close() { e.client.CloseIdleConnections() }

// Run executes the workload and aggregates a report.
func (e *Engine) Run() *Report {
	outcomes := make([]outcome, len(e.items))
	start := time.Now()
	if e.opts.Mode == "open" {
		e.runOpen(outcomes)
	} else {
		e.runClosed(outcomes)
	}
	return buildReport(e.opts, outcomes, time.Since(start))
}

// runClosed runs Conns workers that pull the next item until the
// workload is exhausted: arrival rate adapts to server speed.
func (e *Engine) runClosed(outcomes []outcome) {
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= len(e.items) {
					return
				}
				outcomes[i] = e.do(e.items[i])
			}
		}()
	}
	wg.Wait()
}

// runOpen paces arrivals at the configured rate regardless of server
// speed (each request runs on its own goroutine), the arrival pattern
// that actually saturates a server. Outstanding requests are capped at
// 4×Conns to bound sockets; past the cap an arrival is dropped and
// recorded as a transport error — a real open-loop client would queue
// client-side, which only hides server-side shedding.
func (e *Engine) runOpen(outcomes []outcome) {
	gap := time.Duration(float64(time.Second) / e.opts.Rate)
	sem := make(chan struct{}, e.opts.Conns*4)
	var wg sync.WaitGroup
	tick := time.NewTicker(gap)
	defer tick.Stop()
	for i := range e.items {
		if i > 0 {
			<-tick.C
		}
		select {
		case sem <- struct{}{}:
		default:
			outcomes[i] = outcome{class: e.items[i].class, status: 0}
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = e.do(e.items[i])
			<-sem
		}(i)
	}
	wg.Wait()
}

// do sends one request and classifies the result.
func (e *Engine) do(it workItem) outcome {
	req, err := http.NewRequest("POST", e.opts.URL+"/v1/predict", bytes.NewReader(it.body))
	if err != nil {
		return outcome{class: it.class}
	}
	req.Header.Set("Content-Type", "application/json")
	if e.opts.DeadlineMS > 0 {
		req.Header.Set(serving.DeadlineHeader, fmt.Sprint(e.opts.DeadlineMS))
	}
	start := time.Now()
	resp, err := e.client.Do(req)
	if err != nil {
		return outcome{class: it.class, latency: time.Since(start)}
	}
	_, rdErr := io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	lat := time.Since(start)
	if rdErr != nil {
		// The body did not arrive whole: a dropped in-flight request.
		return outcome{class: it.class, latency: lat, truncated: true}
	}
	return outcome{
		class:    it.class,
		status:   resp.StatusCode,
		latency:  lat,
		degraded: resp.Header.Get("X-Degraded") == "1",
		noRetry:  resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "",
	}
}

// percentileMS returns the q-quantile of the sorted latencies in
// milliseconds (nearest-rank).
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// latencyStats summarizes a latency population.
func latencyStats(durs []time.Duration) LatencyStats {
	if len(durs) == 0 {
		return LatencyStats{}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return LatencyStats{
		Count: len(durs),
		P50MS: percentileMS(durs, 0.50),
		P90MS: percentileMS(durs, 0.90),
		P99MS: percentileMS(durs, 0.99),
		MaxMS: float64(durs[len(durs)-1]) / float64(time.Millisecond),
	}
}
