// Command simprofile prints a configuration's noise-free cost breakdown
// across a scale sweep on the simulated platform — the ground-truth view
// of where time goes, for validating skeletons and understanding why a
// prediction looks the way it does.
//
// Usage:
//
//	simprofile -app smg2000 -params 256,256,256,20
//	simprofile -app cg -params 128,200,27 -scales 2,8,32,128,512,2048 -machine slownet
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/hpcsim"
)

func main() {
	var (
		appName = flag.String("app", "smg2000", "application: smg2000, lulesh, kripke, cg")
		params  = flag.String("params", "", "configuration, comma-separated (required)")
		scales  = flag.String("scales", "2,4,8,16,32,64,128,256,512,1024", "scale sweep")
		machine = flag.String("machine", "default", "machine preset: default, fatnode, slownet")
	)
	flag.Parse()

	app, ok := hpcsim.Apps()[*appName]
	if !ok {
		fatalf("unknown app %q", *appName)
	}
	if *params == "" {
		fatalf("-params is required; %s expects %v", app.Name(), app.Space().Names())
	}
	cfg, err := cliutil.ParseVector(*params)
	if err != nil {
		fatalf("-params: %v", err)
	}
	scaleList, err := cliutil.ParseScales(*scales)
	if err != nil {
		fatalf("-scales: %v", err)
	}
	mach, ok := hpcsim.Machines()[*machine]
	if !ok {
		fatalf("unknown machine %q", *machine)
	}

	profile, err := hpcsim.ProfileApp(app, cfg, scaleList, mach)
	if err != nil {
		fatalf("%v", err)
	}
	if err := profile.Fprint(os.Stdout); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "simprofile: "+format+"\n", args...)
	os.Exit(1)
}
