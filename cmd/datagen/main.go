// Command datagen generates execution-history CSVs from the simulated HPC
// platform — the stand-in for collecting historical runs on a real cluster.
//
// Usage:
//
//	datagen -app smg2000 -configs 300 -scales 2,4,8,16,32,64 -reps 3 -out history.csv
//	datagen -app lulesh -configs 30 -scales 128,256,512,1024 -out anchors.csv
//
// Append anchor files to a small-scale history by concatenating tables
// with the train tool's multi-input support.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/hpcsim"
	"repro/internal/rng"
)

func main() {
	var (
		appName      = flag.String("app", "smg2000", "application: smg2000, lulesh, kripke")
		configs      = flag.Int("configs", 300, "number of input configurations to sample")
		scales       = flag.String("scales", "2,4,8,16,32,64", "comma-separated process counts")
		reps         = flag.Int("reps", 1, "repeated measurements per (config, scale)")
		anchors      = flag.Int("anchors", 0, "first N configurations additionally run at -anchor-scales")
		anchorScales = flag.String("anchor-scales", "128,256,512,1024", "scales for the anchor runs")
		seed         = flag.Uint64("seed", 1, "random seed (governs sampling and noise)")
		sigma        = flag.Float64("noise", 0.03, "log-normal noise sigma")
		sampler      = flag.String("sampler", "lhs", "configuration sampler: lhs or uniform")
		machine      = flag.String("machine", "default", "machine preset: default, fatnode, slownet")
		out          = flag.String("out", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	app, ok := hpcsim.Apps()[*appName]
	if !ok {
		fatalf("unknown app %q; have %v", *appName, appNames())
	}
	scaleList, err := cliutil.ParseScales(*scales)
	if err != nil {
		fatalf("%v", err)
	}
	mach, ok := hpcsim.Machines()[*machine]
	if !ok {
		fatalf("unknown machine %q", *machine)
	}

	eng := hpcsim.NewEngine(mach, *seed)
	eng.NoiseSigma = *sigma

	r := rng.New(*seed ^ 0x5eed)
	var cfgs [][]float64
	switch *sampler {
	case "lhs":
		cfgs = app.Space().SampleLatinHypercube(r, *configs)
	case "uniform":
		cfgs = app.Space().SampleUniform(r, *configs)
	default:
		fatalf("unknown sampler %q", *sampler)
	}

	table, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
		Configs: cfgs, Scales: scaleList, Reps: *reps,
	})
	if err != nil {
		fatalf("generating history: %v", err)
	}
	if *anchors > 0 {
		n := *anchors
		if n > len(cfgs) {
			n = len(cfgs)
		}
		aScales, err := cliutil.ParseScales(*anchorScales)
		if err != nil {
			fatalf("-anchor-scales: %v", err)
		}
		aTable, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
			Configs: cfgs[:n], Scales: aScales, Reps: *reps,
		})
		if err != nil {
			fatalf("generating anchor runs: %v", err)
		}
		table.Merge(aTable)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := table.WriteCSV(w); err != nil {
		fatalf("writing CSV: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d runs (%d configs x %d scales x %d reps) for %s\n",
		table.Len(), *configs, len(scaleList), *reps, app.Name())
}

func appNames() []string {
	var out []string
	for n := range hpcsim.Apps() {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
