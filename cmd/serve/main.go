// Command serve exposes trained two-level models over an HTTP JSON API.
//
// Usage:
//
//	serve -model model.json
//	serve -addr :8080 -model smg=smg.json -model lulesh=lulesh.json -cache 8192
//
// Each -model flag is either a bare path (served under the name
// "default") or name=path. Endpoints:
//
//	POST /v1/predict   {"model":"smg","configs":[[...],[...]],"at":512,"interval":0.1,"small":true}
//	GET  /v1/models    loaded models, versions, and training metadata
//	POST /v1/reload    re-read every model file from disk (also SIGHUP)
//	GET  /healthz      liveness; 503 until a model is loaded
//	GET  /metrics      JSON counters: requests, errors, latency, cache
//
// SIGHUP hot-reloads the model files without dropping in-flight
// requests; SIGINT/SIGTERM shut down gracefully, draining for -drain.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/serving"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var models multiFlag
	flag.Var(&models, "model", "model to serve: path or name=path (repeatable)")
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		cache = flag.Int("cache", serving.DefaultCacheSize, "prediction cache capacity (0 disables)")
		drain = flag.Duration("drain", serving.DefaultDrainTimeout, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	if len(models) == 0 {
		fatalf("at least one -model is required")
	}
	sources, err := parseSources(models)
	if err != nil {
		fatalf("%v", err)
	}

	reg := serving.NewRegistry(sources...)
	if err := reg.Reload(); err != nil {
		fatalf("loading models: %v", err)
	}
	for _, e := range reg.List() {
		log.Printf("loaded model %q v%d from %s (%d params, mode %s)",
			e.Name, e.Version, e.Path, len(e.Model.ParamNames), e.Model.Mode())
	}

	srv := serving.New(reg, serving.Options{CacheSize: *cache})
	g := serving.NewGraceful(*addr, srv.Handler(), *drain)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	go func() {
		for sig := range sigCh {
			if sig == syscall.SIGHUP {
				if err := reg.Reload(); err != nil {
					log.Printf("reload: %v", err)
				} else {
					log.Printf("reloaded %d model(s)", reg.Len())
				}
				continue
			}
			log.Printf("%s: draining for up to %s", sig, *drain)
			if err := g.Shutdown(); err != nil {
				log.Printf("shutdown: %v", err)
			}
			return
		}
	}()

	log.Printf("serving %d model(s) on %s (cache %d)", reg.Len(), *addr, *cache)
	if err := g.ListenAndServe(); err != nil {
		fatalf("%v", err)
	}
	log.Printf("shut down cleanly")
}

// parseSources expands -model flags into registry sources, defaulting a
// bare path's name to "default" for a single model and to the file's
// base name otherwise.
func parseSources(models []string) ([]serving.Source, error) {
	sources := make([]serving.Source, 0, len(models))
	seen := map[string]bool{}
	for _, spec := range models {
		var src serving.Source
		if name, path, ok := strings.Cut(spec, "="); ok && name != "" {
			src = serving.Source{Name: name, Path: path}
		} else if len(models) == 1 {
			src = serving.Source{Name: "default", Path: spec}
		} else {
			base := filepath.Base(spec)
			src = serving.Source{Name: strings.TrimSuffix(base, filepath.Ext(base)), Path: spec}
		}
		if src.Path == "" {
			return nil, fmt.Errorf("-model %q: empty path", spec)
		}
		if seen[src.Name] {
			return nil, fmt.Errorf("-model %q: duplicate model name %q", spec, src.Name)
		}
		seen[src.Name] = true
		sources = append(sources, src)
	}
	return sources, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
	os.Exit(1)
}
