// Command serve exposes trained two-level models over an HTTP JSON API.
//
// Usage:
//
//	serve -model model.json
//	serve -addr :8080 -model smg=smg.json -model lulesh=lulesh.json -cache 8192
//
// Each -model flag is either a bare path (served under the name
// "default") or name=path. Endpoints:
//
//	POST /v1/predict   {"model":"smg","configs":[[...],[...]],"at":512,"interval":0.9,"small":true}
//	POST /v1/observe   {"model":"smg","params":[...],"scale":512,"runtime":12.3} — measured runtimes
//	GET  /v1/models    loaded models, versions, training and calibration metadata
//	GET  /v1/loadstatus admission-controller snapshot (limit, queue, shed counters)
//	POST /v1/reload    re-read every model file from disk (also SIGHUP)
//	GET  /healthz      liveness; 503 until a model is loaded or once draining starts
//	GET  /metrics      JSON counters (default) or Prometheus text format 0.0.4
//	                   when the Accept header asks for text/plain
//	GET  /debug/traces last-N / slowest-N request and pipeline-run traces
//
// Every request carries an X-Request-Id (client-supplied or minted);
// -ops-addr starts a second listener with net/http/pprof, /debug/traces,
// and an unconditional Prometheus /metrics, kept off the traffic port.
// Logs are structured JSON on stderr (log/slog), leveled by -log-level.
//
// /v1/predict runs behind an admission controller: a bounded queue with
// priority-aware shedding (batches shed first, then interval requests,
// then point predictions) and an AIMD-adapted concurrency limit that
// tracks -load-target (-load-fixed pins it at -load-limit instead).
// Clients may cap their wait with an X-Deadline-Ms header; requests the
// server cannot answer in budget get an immediate 503 with Retry-After.
// When the queue saturates the server degrades to cache-only answers
// until the backlog drains.
//
// Observed runtimes feed per-scale rolling windows of empirical interval
// coverage; when a model's coverage falls below -drift-floor, the
// embedded pipeline (when enabled) is kicked to retrain it, and the
// promotion journal records the drift diagnosis as the trigger.
//
// SIGHUP hot-reloads the model files without dropping in-flight
// requests; SIGINT/SIGTERM shut down gracefully, draining for -drain.
//
// With -pipeline-store and -pipeline-dir, the continuous-training
// pipeline runs inside the server: active generations are installed at
// startup, and every -pipeline-interval the store is checked for new
// records, due applications are retrained, gated against the serving
// incumbent, and promoted live (visible on /v1/models and /metrics
// without a restart). -model then becomes optional.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/loadctl"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/serving"
	"repro/internal/uncertainty"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var models multiFlag
	flag.Var(&models, "model", "model to serve: path or name=path (repeatable)")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		opsAddr  = flag.String("ops-addr", "", "operations listener (pprof, /debug/traces, Prometheus /metrics); empty disables")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		traceCap = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "finished request/pipeline traces retained for /debug/traces (0 = default)")
		cache    = flag.Int("cache", serving.DefaultCacheSize, "prediction cache capacity (0 disables)")
		drain    = flag.Duration("drain", serving.DefaultDrainTimeout, "graceful-shutdown drain timeout")

		pipeStore    = flag.String("pipeline-store", "", "run-record store directory; enables the embedded training pipeline")
		pipeDir      = flag.String("pipeline-dir", "", "pipeline generations directory (model files + journal)")
		pipeInterval = flag.Duration("pipeline-interval", time.Minute, "how often the pipeline checks for due retrains (0 disables the loop)")
		pipeMinNew   = flag.Int("pipeline-min-new", 1, "retrain an app once this many new records arrived")
		pipeSlack    = flag.Float64("pipeline-slack", 0.05, "allowed relative MAPE regression before rejecting a candidate")
		pipeHoldout  = flag.Int("pipeline-holdout-denom", 5, "hold out 1/D of configurations for the promotion gate")
		pipeSeed     = flag.Uint64("pipeline-seed", 1, "base random seed for pipeline retraining")

		loadOff    = flag.Bool("load-off", false, "disable admission control entirely")
		loadLimit  = flag.Int("load-limit", 0, "initial (or, with -load-fixed, permanent) concurrency limit (0 = default 64)")
		loadFixed  = flag.Bool("load-fixed", false, "pin the concurrency limit instead of adapting it (AIMD off)")
		loadTarget = flag.Duration("load-target", 0, "AIMD latency setpoint (0 = default 100ms)")
		loadQueue  = flag.Int("load-queue", 0, "admission queue capacity (0 = default 128)")
		deadline   = flag.Duration("deadline", 0, "default per-request deadline budget when the client sends no X-Deadline-Ms (0 = unbounded)")
		maxDead    = flag.Duration("max-deadline", 0, "cap on client-supplied deadline budgets (0 = default 30s)")
		synthDelay = flag.Duration("synthetic-delay", 0, "TESTING ONLY: artificial service time added to every cache miss, for load/saturation demos")

		driftWindow   = flag.Int("drift-window", 256, "rolling window length per (model, scale) for coverage tracking")
		driftMinObs   = flag.Int("drift-min-obs", 20, "observations a window needs before its coverage is judged")
		driftCoverage = flag.Float64("drift-coverage", 0.9, "nominal interval coverage observations are scored against")
		driftFloor    = flag.Float64("drift-floor", 0.75, "empirical-coverage floor below which retraining is kicked")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel))
	slog.SetDefault(logger)

	if len(models) == 0 && *pipeStore == "" {
		fatalf("at least one -model is required (or enable the pipeline with -pipeline-store)")
	}
	sources, err := parseSources(models)
	if err != nil {
		fatalf("%v", err)
	}

	reg := serving.NewRegistry(sources...)
	if err := reg.Reload(); err != nil {
		fatalf("loading models: %v", err)
	}

	// One metrics registry and one trace ring span the whole process:
	// serving handlers, the admission controller's gauges, and the
	// embedded pipeline's cycle spans all land in the same /metrics
	// exposition and /debug/traces ring.
	oreg := obs.NewRegistry("repro")
	tracer := obs.NewTracer(*traceCap)

	p, err := setupPipeline(logger, reg, *pipeStore, *pipeDir, pipeline.Config{
		Core:          core.DefaultConfig(),
		Seed:          *pipeSeed,
		Gate:          pipeline.GateConfig{HoldoutDenominator: *pipeHoldout, AllowedRegression: *pipeSlack},
		MinNewRecords: *pipeMinNew,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if p != nil {
		p.EnableObs(oreg, tracer)
	}
	for _, e := range reg.List() {
		from := e.Path
		if from == "" {
			from = "pipeline journal"
		}
		logger.Info("model loaded", "model", e.Name, "version", e.Version,
			"gen", e.Generation, "from", from, "params", len(e.Model.ParamNames), "mode", string(e.Model.Mode()))
	}

	opts := serving.Options{
		CacheSize: *cache,
		Obs:       oreg,
		Tracer:    tracer,
		Load: loadctl.Config{
			InitialLimit:  *loadLimit,
			FixedLimit:    *loadFixed,
			TargetLatency: *loadTarget,
			QueueCapacity: *loadQueue,
		},
		DisableLoadControl: *loadOff,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDead,
		SyntheticDelay:     *synthDelay,
		Drift: uncertainty.DriftConfig{
			Window:          *driftWindow,
			MinObservations: *driftMinObs,
			Coverage:        *driftCoverage,
			Floor:           *driftFloor,
		},
	}
	if p != nil {
		// Close the loop: a coverage breach on a served model kicks its
		// retraining cycle; the journal records the diagnosis and the
		// request ID of the observation that tipped the floor.
		opts.OnDrift = func(model, reason, origin string) {
			logger.Warn("drift breach, kicking retrain", "model", model, "reason", reason, "origin", origin)
			p.KickOrigin(model, reason, origin)
		}
	} else {
		opts.OnDrift = func(model, reason, origin string) {
			logger.Warn("drift breach, no pipeline attached", "model", model, "reason", reason, "origin", origin)
		}
	}
	srv := serving.New(reg, opts)
	g := serving.NewGraceful(*addr, srv.Handler(), *drain)
	// Flip /healthz to 503 "draining" before the listener closes so load
	// balancers stop routing here while in-flight requests finish.
	g.PreDrain = srv.BeginDrain

	if *opsAddr != "" {
		// The ops surface lives on its own listener so profiling and trace
		// inspection are never exposed on (or contended with) the traffic
		// port. It additionally serves the Prometheus exposition, for
		// scrapers that should not touch the serving socket at all.
		mux := obs.OpsMux(srv.Tracer())
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = oreg.WritePrometheus(w)
		})
		go func() {
			logger.Info("ops listener up", "addr", *opsAddr)
			if err := http.ListenAndServe(*opsAddr, mux); err != nil {
				logger.Error("ops listener failed", "err", err.Error())
			}
		}()
	}

	stopPipeline := make(chan struct{})
	if p != nil && *pipeInterval > 0 {
		go runPipelineLoop(logger, p, *pipeInterval, stopPipeline)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	go func() {
		for sig := range sigCh {
			if sig == syscall.SIGHUP {
				if err := reg.Reload(); err != nil {
					logger.Error("reload failed", "err", err.Error())
				} else {
					logger.Info("models reloaded", "count", reg.Len())
				}
				continue
			}
			logger.Info("draining", "signal", sig.String(), "timeout", drain.String())
			close(stopPipeline)
			if err := g.Shutdown(); err != nil {
				logger.Error("shutdown failed", "err", err.Error())
			}
			return
		}
	}()

	logger.Info("serving", "models", reg.Len(), "addr", *addr, "cache", *cache)
	if err := g.ListenAndServe(); err != nil {
		fatalf("%v", err)
	}
	logger.Info("shut down cleanly")
}

// parseSources expands -model flags into registry sources, defaulting a
// bare path's name to "default" for a single model and to the file's
// base name otherwise.
func parseSources(models []string) ([]serving.Source, error) {
	sources := make([]serving.Source, 0, len(models))
	seen := map[string]bool{}
	for _, spec := range models {
		var src serving.Source
		if name, path, ok := strings.Cut(spec, "="); ok && name != "" {
			src = serving.Source{Name: name, Path: path}
		} else if len(models) == 1 {
			src = serving.Source{Name: "default", Path: spec}
		} else {
			base := filepath.Base(spec)
			src = serving.Source{Name: strings.TrimSuffix(base, filepath.Ext(base)), Path: spec}
		}
		if src.Path == "" {
			return nil, fmt.Errorf("-model %q: empty path", spec)
		}
		if seen[src.Name] {
			return nil, fmt.Errorf("-model %q: duplicate model name %q", spec, src.Name)
		}
		seen[src.Name] = true
		sources = append(sources, src)
	}
	return sources, nil
}

// setupPipeline opens the embedded continuous-training pipeline and
// installs every app's active generation into the registry. Returns nil
// when -pipeline-store is unset.
func setupPipeline(logger *slog.Logger, reg *serving.Registry, storeDir, gensDir string, cfg pipeline.Config) (*pipeline.Pipeline, error) {
	if storeDir == "" {
		return nil, nil
	}
	if gensDir == "" {
		return nil, fmt.Errorf("-pipeline-store requires -pipeline-dir")
	}
	store, err := pipeline.OpenStore(storeDir)
	if err != nil {
		return nil, err
	}
	p, err := pipeline.New(store, gensDir, cfg, reg)
	if err != nil {
		return nil, err
	}
	if err := p.InstallActive(); err != nil {
		return nil, fmt.Errorf("installing active generations: %w", err)
	}
	logger.Info("pipeline attached", "store", storeDir, "generations", gensDir, "apps", len(store.Apps()))
	return p, nil
}

// runPipelineLoop periodically sweeps the store for due retrains until
// stop closes. Cycle errors are logged, not fatal: the server keeps
// serving the incumbents.
func runPipelineLoop(logger *slog.Logger, p *pipeline.Pipeline, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		// Records may have been ingested by another process (pipeline
		// ingest); re-index before checking triggers.
		if err := p.Store().Refresh(); err != nil {
			logger.Error("pipeline store refresh failed", "err", err.Error())
			continue
		}
		//lint:allow clockflow -- the retrain loop stamps journal entries with the decision time; the audit trail is operational metadata, not experiment output
		now := time.Now().UTC().Format(time.RFC3339)
		results, err := p.RunAll(now)
		for _, res := range results {
			switch {
			case res.Skipped:
				// Quiet: nothing due is the steady state.
			case res.Promoted:
				logger.Info("pipeline promoted", "app", res.App, "gen", res.Gen, "reason", res.Gate.Reason, "origin", res.Origin)
			default:
				logger.Info("pipeline rejected", "app", res.App, "gen", res.Gen, "reason", res.Gate.Reason, "origin", res.Origin)
			}
		}
		if err != nil {
			logger.Error("pipeline sweep failed", "err", err.Error())
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
	os.Exit(1)
}
