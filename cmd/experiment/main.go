// Command experiment regenerates the reconstructed tables and figures of
// the paper's evaluation (see DESIGN.md for the index).
//
// Usage:
//
//	experiment -id table3            # one experiment, full protocol
//	experiment -id all               # everything
//	experiment -id fig2 -quick       # reduced sizes for a fast look
//	experiment -id fig1 -csv out.csv # also dump CSV series
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		id    = flag.String("id", "all", "experiment id (table1..table4, fig1..fig6, or 'all')")
		seed  = flag.Uint64("seed", 42, "base random seed")
		quick = flag.Bool("quick", false, "use the reduced protocol (fast smoke run)")
		csv   = flag.String("csv", "", "optional path to also write results as CSV")
	)
	flag.Parse()

	proto := experiments.DefaultProtocol(*seed)
	if *quick {
		proto = experiments.QuickProtocol(*seed)
	}

	var exps []experiments.Experiment
	if *id == "all" {
		exps = experiments.Registry()
	} else {
		e, err := experiments.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []experiments.Experiment{e}
	}

	var csvFile *os.File
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for _, e := range exps {
		start := time.Now()
		reports, err := e.Run(proto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, r := range reports {
			if err := r.Fprint(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
			if csvFile != nil {
				if _, err := fmt.Fprintf(csvFile, "# %s: %s\n", r.ID, r.Title); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := r.WriteCSV(csvFile); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s done in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
