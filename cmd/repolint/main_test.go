package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// captureRun executes run() with stdout redirected to a pipe and returns
// the exit code plus everything the invocation printed.
func captureRun(t *testing.T, args []string) (int, []byte) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	code := run(args)
	os.Stdout = orig
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return code, buf.Bytes()
}

// fixtureDir points the CLI at the self-contained flowmod mini-module,
// which is known to carry findings and stale directives.
const fixtureDir = "../../internal/lint/testdata/flowmod"

func TestMatchPattern(t *testing.T) {
	const mod = "repro"
	cases := []struct {
		pkg, pat string
		want     bool
	}{
		{"repro", "./...", true},
		{"repro/internal/mat", "./...", true},
		{"repro", ".", true},
		{"repro/internal/mat", ".", false},
		{"repro/internal/mat", "./internal/mat", true},
		{"repro/internal/mat", "./internal/mat/", true},
		{"repro/internal/mat", "./internal", false},
		{"repro/internal/mat", "./internal/...", true},
		{"repro/internal", "./internal/...", true},
		{"repro/internal/matfoo", "./internal/mat/...", false},
		{"repro/internal/mat", "repro/internal/mat", true},
		{"repro/internal/mat", "repro/internal/...", true},
		{"repro/cmd/serve", "./internal/...", false},
	}
	for _, c := range cases {
		if got := matchPattern(mod, c.pkg, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pkg, c.pat, got, c.want)
		}
	}
}

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("repolint -list exited %d", code)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-analyzers", "nosuch"}); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

// TestSelfLint runs the real tool over the real module: the tier-1
// acceptance check "cmd/repolint ./... exits 0" in test form.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow")
	}
	if code := run([]string{"-q", "-C", "../..", "./..."}); code != 0 {
		t.Fatalf("repolint ./... exited %d on the repository", code)
	}
}

func TestBadPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow")
	}
	if code := run([]string{"-q", "-C", "../..", "./does/not/exist"}); code != 2 {
		t.Fatalf("bad pattern exited %d, want 2", code)
	}
}

func TestUnknownFormat(t *testing.T) {
	if code := run([]string{"-format", "xml"}); code != 2 {
		t.Fatalf("unknown -format exited %d, want 2", code)
	}
}

// TestFormatJSONOutput checks the machine-readable path end to end:
// findings exist (exit 1), the stream parses, paths are module-relative
// with forward slashes, and a second run is byte-identical.
func TestFormatJSONOutput(t *testing.T) {
	code, out := captureRun(t, []string{"-format", "json", "-C", fixtureDir, "./..."})
	if code != 1 {
		t.Fatalf("flowmod lint exited %d, want 1 (findings present); output:\n%s", code, out)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
	}
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("flowmod produced zero findings")
	}
	for _, d := range diags {
		if strings.Contains(d.File, "\\") || strings.HasPrefix(d.File, "/") || strings.Contains(d.File, "..") {
			t.Errorf("path %q is not module-relative with forward slashes", d.File)
		}
	}
	_, again := captureRun(t, []string{"-format", "json", "-C", fixtureDir, "./..."})
	if !bytes.Equal(out, again) {
		t.Fatalf("JSON output differs across runs:\n--- first\n%s\n--- second\n%s", out, again)
	}
}

func TestFormatSARIFOutput(t *testing.T) {
	code, out := captureRun(t, []string{"-format", "sarif", "-C", fixtureDir, "./..."})
	if code != 1 {
		t.Fatalf("flowmod lint exited %d, want 1; output:\n%s", code, out)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, out)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 {
		t.Fatalf("malformed SARIF log (version=%q, runs=%d)", doc.Version, len(doc.Runs))
	}
}

// TestAuditFlag runs the suppression audit over the fixture module, which
// carries exactly one stale and one unknown-analyzer directive.
func TestAuditFlag(t *testing.T) {
	code, out := captureRun(t, []string{"-audit", "-C", fixtureDir})
	if code != 1 {
		t.Fatalf("audit over flowmod exited %d, want 1; output:\n%s", code, out)
	}
	s := string(out)
	if !strings.Contains(s, "stale") || !strings.Contains(s, "nosuchanalyzer") {
		t.Fatalf("audit output missing expected findings:\n%s", s)
	}
}

// TestAuditCleanRepository is the tier-1 gate in CLI form: the real tree
// must carry no stale or unknown suppression directives.
func TestAuditCleanRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow")
	}
	code, out := captureRun(t, []string{"-audit", "-C", "../.."})
	if code != 0 {
		t.Fatalf("repolint -audit exited %d on the repository:\n%s", code, out)
	}
}
