package main

import "testing"

func TestMatchPattern(t *testing.T) {
	const mod = "repro"
	cases := []struct {
		pkg, pat string
		want     bool
	}{
		{"repro", "./...", true},
		{"repro/internal/mat", "./...", true},
		{"repro", ".", true},
		{"repro/internal/mat", ".", false},
		{"repro/internal/mat", "./internal/mat", true},
		{"repro/internal/mat", "./internal/mat/", true},
		{"repro/internal/mat", "./internal", false},
		{"repro/internal/mat", "./internal/...", true},
		{"repro/internal", "./internal/...", true},
		{"repro/internal/matfoo", "./internal/mat/...", false},
		{"repro/internal/mat", "repro/internal/mat", true},
		{"repro/internal/mat", "repro/internal/...", true},
		{"repro/cmd/serve", "./internal/...", false},
	}
	for _, c := range cases {
		if got := matchPattern(mod, c.pkg, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pkg, c.pat, got, c.want)
		}
	}
}

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("repolint -list exited %d", code)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-analyzers", "nosuch"}); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

// TestSelfLint runs the real tool over the real module: the tier-1
// acceptance check "cmd/repolint ./... exits 0" in test form.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow")
	}
	if code := run([]string{"-q", "-C", "../..", "./..."}); code != 0 {
		t.Fatalf("repolint ./... exited %d on the repository", code)
	}
}

func TestBadPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow")
	}
	if code := run([]string{"-q", "-C", "../..", "./does/not/exist"}); code != 2 {
		t.Fatalf("bad pattern exited %d, want 2", code)
	}
}
