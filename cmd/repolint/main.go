// Command repolint runs the project-specific static-analysis suite
// (internal/lint) over the module: determinism, numerical safety, and
// concurrency/IO hygiene invariants that generic tools do not check.
//
// Usage:
//
//	repolint ./...                     # whole module (the tier-1 gate form)
//	repolint ./internal/mat ./cmd/...  # a subset of packages
//	repolint -analyzers floateq ./...  # a subset of analyzers
//	repolint -format sarif ./...       # machine-readable output (json|sarif)
//	repolint -audit                    # flag stale //lint:allow directives
//	repolint -list                     # describe every analyzer
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or load error.
// All output is byte-deterministic: same tree in, same bytes out.
// Suppress an intentional finding with
//
//	//lint:allow <analyzer> -- <justification>
//
// on the flagged line or alone on the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	var (
		dir    = fs.String("C", ".", "module root directory (must contain go.mod)")
		names  = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list   = fs.Bool("list", false, "list analyzers and exit")
		quiet  = fs.Bool("q", false, "suppress the closing summary line")
		format = fs.String("format", "text", "output format: text, json, or sarif")
		audit  = fs.Bool("audit", false, "audit //lint:allow directives instead of linting: flag stale or unknown-analyzer sites (module-wide; package patterns are ignored)")
	)
	fs.Usage = func() {
		_, _ = fmt.Fprintf(fs.Output(), "usage: repolint [flags] [packages]\n\npackages are ./... style patterns relative to the module root\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(*names)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "repolint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}

	var diags []lint.Diagnostic
	var scope string
	if *audit {
		// The audit is module-wide by construction: whether a directive is
		// stale depends on every analyzer's raw findings, so a package
		// subset would under-report usage and cry stale falsely.
		diags = lint.Audit(mod)
		scope = fmt.Sprintf("%d directive site(s)", lint.CountAllowSites(mod))
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		keep, err := selectPackages(mod, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		diags = lint.Run(&lint.Module{Root: mod.Root, Path: mod.Path, Fset: mod.Fset, Pkgs: keep}, analyzers)
		scope = fmt.Sprintf("%d package(s)", len(keep))
	}

	// Module-relative paths in every format, so output is byte-identical
	// across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	switch *format {
	case "json":
		out, err := lint.FormatJSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		_, _ = os.Stdout.Write(out)
	case "sarif":
		out, err := lint.FormatSARIF(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		_, _ = os.Stdout.Write(out)
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "repolint: %d finding(s) in %s\n", len(diags), scope)
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "repolint: %s clean\n", scope)
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		d = parent
	}
}

// selectPackages filters the module's packages by ./... style patterns.
func selectPackages(mod *lintModule, patterns []string) ([]*lintPackage, error) {
	var keep []*lintPackage
	seen := map[string]bool{}
	for _, pat := range patterns {
		matched := false
		for _, pkg := range mod.Pkgs {
			if matchPattern(mod.Path, pkg.Path, pat) {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					keep = append(keep, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return keep, nil
}

// Aliases keep the signatures above readable.
type (
	lintModule  = lint.Module
	lintPackage = lint.Package
)

// matchPattern implements the useful subset of go-tool package patterns:
// "./..." (everything), "./x" (exact), "./x/..." (subtree, including x),
// and bare import paths ("repro/internal/mat", with or without /...).
func matchPattern(modPath, pkgPath, pat string) bool {
	pat = strings.TrimSuffix(pat, "/")
	if rest, ok := strings.CutPrefix(pat, "./"); ok {
		if rest == "..." {
			return true
		}
		pat = modPath
		if rest != "" {
			pat = modPath + "/" + rest
		}
	} else if pat == "." {
		pat = modPath
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/")
	}
	return pkgPath == pat
}
