// Command pipeline drives the continuous-training loop from the command
// line: ingest run records into the store, run gated retrain cycles,
// inspect the audit journal, and roll back a bad promotion.
//
// Usage:
//
//	pipeline ingest -store runs/ history.csv [more.csv ...]
//	pipeline run -store runs/ -dir gens/ [-app smg2000] [-kick] [-min-new 25]
//	pipeline status -store runs/ -dir gens/
//	pipeline rollback -store runs/ -dir gens/ -app smg2000
//
// The store directory holds one append-only JSONL file per application;
// the generations directory holds generation-numbered model files plus
// journal.jsonl, the audit log every subcommand reads and appends.
// Journal timestamps are stamped here, at the process boundary —
// internal/pipeline itself never reads the clock, so cycle outputs stay
// reproducible byte for byte.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// logger carries operational events (cycle outcomes, failures) as
// structured JSON on stderr; subcommand result listings stay plain
// stdout for piping. PIPELINE_LOG_LEVEL overrides the default info.
var logger = obs.NewLogger(os.Stderr, obs.ParseLevel(os.Getenv("PIPELINE_LOG_LEVEL")))

func main() {
	slog.SetDefault(logger)
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "ingest":
		cmdIngest(args)
	case "run":
		cmdRun(args)
	case "status":
		cmdStatus(args)
	case "rollback":
		cmdRollback(args)
	default:
		fmt.Fprintf(os.Stderr, "pipeline: unknown subcommand %q\n\n", cmd)
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: pipeline <subcommand> [flags]

subcommands:
  ingest    import history CSVs into the run-record store
  run       run one gated retrain cycle per due application
  status    show store contents, active generations, and journal tail
  rollback  revert an application to its previously promoted generation
`)
	os.Exit(2)
}

// stamp is the journal timestamp for this invocation: wall-clock time is
// read exactly once, at the process boundary. The journal records WHEN an
// operational decision happened (audit trail), not experiment output; the
// artifacts the pipeline trains and promotes stay clock-free.
//
//lint:allow clockflow -- journal timestamps are the audit trail's payload; the clock is read once here and nowhere else in this command
func stamp() string { return time.Now().UTC().Format(time.RFC3339) }

func cmdIngest(args []string) {
	fs := flag.NewFlagSet("pipeline ingest", flag.ExitOnError)
	storeDir := fs.String("store", "", "run-record store directory (required)")
	parse(fs, args)
	if *storeDir == "" || fs.NArg() == 0 {
		fatalf("ingest needs -store and at least one CSV argument")
	}
	store, err := pipeline.OpenStore(*storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	for _, path := range fs.Args() {
		added, skipped, err := store.ImportCSV(path)
		if err != nil {
			fatalf("importing %s: %v", path, err)
		}
		fmt.Printf("%s: %d records ingested, %d duplicates skipped\n", path, added, skipped)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("pipeline run", flag.ExitOnError)
	var (
		storeDir = fs.String("store", "", "run-record store directory (required)")
		gensDir  = fs.String("dir", "", "generations directory: model files + journal (required)")
		app      = fs.String("app", "", "only this application (default: every app in the store)")
		kick     = fs.Bool("kick", false, "force a cycle even if too few new records arrived")
		minNew   = fs.Int("min-new", 1, "retrain once this many new records arrived per app")
		seed     = fs.Uint64("seed", 1, "base random seed (per-cycle seed derived from app+generation)")
		holdout  = fs.Int("holdout-denom", 5, "hold out 1/D of configurations for the gate")
		slack    = fs.Float64("slack", 0.05, "allowed relative MAPE regression before rejecting")
		small    = fs.String("small", "", "small scales, comma-separated (default: core defaults)")
		large    = fs.String("large", "", "target large scales, comma-separated (default: core defaults)")
		trees    = fs.Int("trees", 0, "trees per interpolation forest (0 = core default)")
	)
	parse(fs, args)
	if *storeDir == "" || *gensDir == "" {
		fatalf("run needs -store and -dir")
	}

	cfg := pipeline.Config{
		Core:          core.DefaultConfig(),
		Seed:          *seed,
		Gate:          pipeline.GateConfig{HoldoutDenominator: *holdout, AllowedRegression: *slack},
		MinNewRecords: *minNew,
	}
	var err error
	if *small != "" {
		if cfg.Core.SmallScales, err = cliutil.ParseScales(*small); err != nil {
			fatalf("-small: %v", err)
		}
	}
	if *large != "" {
		if cfg.Core.LargeScales, err = cliutil.ParseScales(*large); err != nil {
			fatalf("-large: %v", err)
		}
	}
	if *trees > 0 {
		cfg.Core.Forest.Trees = *trees
	}

	store, err := pipeline.OpenStore(*storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	p, err := pipeline.New(store, *gensDir, cfg, nil)
	if err != nil {
		fatalf("%v", err)
	}

	apps := store.Apps()
	if *app != "" {
		apps = []string{*app}
	}
	if len(apps) == 0 {
		fatalf("store %s has no applications", *storeDir)
	}
	for _, a := range apps {
		if *kick {
			p.Kick(a)
		}
		res, err := p.RunOnce(a, stamp())
		if err != nil {
			fatalf("%v", err)
		}
		switch {
		case res.Skipped:
			logger.Info("cycle skipped", "app", a, "reason", res.Reason)
		case res.Promoted:
			logger.Info("cycle promoted", "app", a, "gen", res.Gen, "path", res.Path,
				"reason", res.Gate.Reason, "origin", res.Origin)
		default:
			logger.Info("cycle rejected", "app", a, "gen", res.Gen,
				"reason", res.Gate.Reason, "origin", res.Origin)
		}
	}
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("pipeline status", flag.ExitOnError)
	var (
		storeDir = fs.String("store", "", "run-record store directory (required)")
		gensDir  = fs.String("dir", "", "generations directory (required)")
		tail     = fs.Int("tail", 5, "journal entries to show")
	)
	parse(fs, args)
	if *storeDir == "" || *gensDir == "" {
		fatalf("status needs -store and -dir")
	}
	store, err := pipeline.OpenStore(*storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	p, err := pipeline.New(store, *gensDir, pipeline.Config{Core: core.DefaultConfig()}, nil)
	if err != nil {
		fatalf("%v", err)
	}

	for _, a := range store.Apps() {
		names, _ := store.ParamNames(a)
		line := fmt.Sprintf("%s: %d records, %d params", a, store.Count(a), len(names))
		if gen, ok := p.Journal().Active(a); ok {
			line += fmt.Sprintf(", active gen %d", gen)
			if m, err := core.Load(p.Promoter().ModelPath(a, gen)); err != nil {
				line += fmt.Sprintf(" (unreadable: %v)", err)
			} else if _, total := m.Meta.Calibration.Samples(); total > 0 {
				line += fmt.Sprintf(", calibrated (%d residuals)", total)
			} else {
				line += ", uncalibrated"
			}
		} else {
			line += ", never promoted"
		}
		fmt.Println(line)
	}

	entries := p.Journal().Entries()
	if len(entries) == 0 {
		fmt.Println("journal: empty")
		return
	}
	fmt.Printf("journal: %d entries, next generation %d\n", len(entries), p.Journal().NextGen())
	start := len(entries) - *tail
	if start < 0 {
		start = 0
	}
	for _, e := range entries[start:] {
		when := e.Time
		if when == "" {
			when = "-"
		}
		fmt.Printf("  gen %d %s %s [%s] %s\n", e.Gen, e.App, e.Event, when, e.Reason)
	}
}

func cmdRollback(args []string) {
	fs := flag.NewFlagSet("pipeline rollback", flag.ExitOnError)
	var (
		storeDir = fs.String("store", "", "run-record store directory (required)")
		gensDir  = fs.String("dir", "", "generations directory (required)")
		app      = fs.String("app", "", "application to roll back (required)")
	)
	parse(fs, args)
	if *storeDir == "" || *gensDir == "" || *app == "" {
		fatalf("rollback needs -store, -dir, and -app")
	}
	store, err := pipeline.OpenStore(*storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	p, err := pipeline.New(store, *gensDir, pipeline.Config{Core: core.DefaultConfig()}, nil)
	if err != nil {
		fatalf("%v", err)
	}
	gen, err := p.Rollback(*app, stamp())
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s: rolled back to generation %d\n", *app, gen)
}

func parse(fs *flag.FlagSet, args []string) {
	// ExitOnError makes the error branch unreachable.
	_ = fs.Parse(args)
}

func fatalf(format string, args ...interface{}) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
