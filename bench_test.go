package repro_test

// Benchmark harness: one benchmark per reconstructed table and figure of
// the paper's evaluation (see DESIGN.md's experiment index). Each bench
// regenerates its table/figure end to end — workload generation, model
// fitting, baseline fitting, evaluation — under the reduced QuickProtocol
// so `go test -bench=.` finishes in minutes; run cmd/experiment for the
// full-size numbers recorded in EXPERIMENTS.md.
//
// The trailing benchmarks measure the library's core operations (fit,
// predict, simulate) in isolation.

import (
	"testing"

	repro "repro"
	"repro/internal/experiments"
	"repro/internal/hpcsim"
)

// benchExperiment regenerates one experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := experiments.QuickProtocol(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}

func BenchmarkTable1ParameterSpace(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2Interpolation(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3Extrapolation(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4Ablation(b *testing.B)       { benchExperiment(b, "table4") }
func BenchmarkTable5Significance(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkFig1ErrorVsScale(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig2Clusters(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFig3LearningCurve(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4Scatter(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5SmallScaleSet(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6Noise(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig7AnchorBudget(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8Machines(b *testing.B)         { benchExperiment(b, "fig8") }

// ---- core library operations ----

// benchHistory builds a representative training history once.
func benchHistory(b *testing.B) (*repro.Table, repro.Config) {
	b.Helper()
	app := repro.Apps()["smg2000"]
	eng := repro.NewEngine(nil, 1)
	r := repro.NewRand(2)
	cfg := repro.DefaultConfig()
	cfgs := app.Space().SampleLatinHypercube(r, 200)
	hist, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
		Configs: cfgs, Scales: cfg.SmallScales, Reps: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
		Configs: cfgs[:30], Scales: cfg.LargeScales, Reps: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	hist.Merge(anchors)
	return hist, cfg
}

func BenchmarkModelFit(b *testing.B) {
	hist, cfg := benchHistory(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fit(repro.NewRand(uint64(i)), hist, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	hist, cfg := benchHistory(b)
	m, err := repro.Fit(repro.NewRand(1), hist, cfg)
	if err != nil {
		b.Fatal(err)
	}
	probe := []float64{192, 192, 128, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(probe)
	}
}

func BenchmarkSimulatedRun(b *testing.B) {
	app := repro.Apps()["lulesh"]
	eng := repro.NewEngine(nil, 1)
	probe := []float64{120, 500, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(app, probe, 512, i); err != nil {
			b.Fatal(err)
		}
	}
}
