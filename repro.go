// Package repro is the public API of the two-level HPC performance
// extrapolation library — a reproduction of "Using Small-Scale History
// Data to Predict Large-Scale Performance of HPC Application" (Zhou,
// Zhang, Sun, Sun — IPDPSW 2020).
//
// The library predicts an HPC application's runtime at large scales
// (process counts) from historical executions at small scales:
//
//	history, _ := repro.LoadHistory("runs.csv")
//	model, _ := repro.Fit(repro.NewRand(1), history, repro.DefaultConfig())
//	runtimes := model.Predict(params) // one per target scale, no run needed
//
// Everything here is a thin alias layer over the implementation packages:
//
//   - internal/core      — the two-level model itself
//   - internal/hpcsim    — the simulated HPC platform used as a data source
//   - internal/dataset   — execution-history tables and CSV I/O
//   - internal/forest, internal/linmod, internal/gbrt, internal/knn,
//     internal/cluster, internal/scalefit — the learning components
//   - internal/experiments — the paper's reconstructed evaluation
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hpcsim"
	"repro/internal/rng"
)

// Core model types, re-exported.
type (
	// Config controls the two-level model; see DefaultConfig.
	Config = core.Config
	// Model is a fitted two-level performance model.
	Model = core.TwoLevelModel
	// Mode selects the extrapolation backend (anchored or basis).
	Mode = core.Mode
)

// Extrapolation backends.
const (
	ModeAuto     = core.ModeAuto
	ModeAnchored = core.ModeAnchored
	ModeBasis    = core.ModeBasis
)

// Dataset types, re-exported.
type (
	// Table is an execution-history dataset.
	Table = dataset.Table
	// Run is one observed execution.
	Run = dataset.Run
	// Rand is the deterministic random source used throughout.
	Rand = rng.Source
)

// Simulator types, re-exported.
type (
	// App is a simulated HPC application.
	App = hpcsim.App
	// Engine executes simulated applications with realistic noise.
	Engine = hpcsim.Engine
	// Machine is the simulated cluster description.
	Machine = hpcsim.Machine
)

// DefaultConfig returns the model configuration used in the paper-shaped
// experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// Fit trains a two-level model on an execution-history table.
func Fit(r *Rand, history *Table, cfg Config) (*Model, error) {
	return core.Fit(r, history, cfg)
}

// LoadModel reads a model saved with Model.Save.
func LoadModel(path string) (*Model, error) { return core.Load(path) }

// LoadHistory reads an execution-history CSV (as written by Table.SaveCSV
// or cmd/datagen).
func LoadHistory(path string) (*Table, error) { return dataset.LoadCSV(path) }

// NewRand returns a deterministic random source for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewEngine returns a simulation engine on machine m (nil selects the
// default cluster) with the reference noise model.
func NewEngine(m *Machine, seed uint64) *Engine { return hpcsim.NewEngine(m, seed) }

// Apps returns the built-in simulated applications by name
// (smg2000, lulesh, kripke).
func Apps() map[string]App { return hpcsim.Apps() }

// Machines returns the built-in machine presets by name
// (default, fatnode, slownet).
func Machines() map[string]*Machine { return hpcsim.Machines() }
