package knn

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/stats"
)

func linData(r *rng.Source, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.Uniform(0, 10))
		x.Set(i, 1, r.Uniform(0, 10))
		y[i] = 2*x.At(i, 0) + x.At(i, 1)
	}
	return x, y
}

func TestK1ExactOnTrainingPoints(t *testing.T) {
	r := rng.New(1)
	x, y := linData(r, 50)
	m := New(x, y, 1, false)
	for i := 0; i < x.Rows; i++ {
		if math.Abs(m.Predict(x.Row(i))-y[i]) > 1e-12 {
			t.Fatalf("k=1 not exact at row %d", i)
		}
	}
}

func TestWeightedExactMatchShortCircuit(t *testing.T) {
	r := rng.New(2)
	x, y := linData(r, 30)
	m := New(x, y, 5, true)
	if got := m.Predict(x.Row(3)); got != y[3] {
		t.Fatalf("weighted kNN on exact training point = %v, want %v", got, y[3])
	}
}

func TestSmoothInterpolation(t *testing.T) {
	r := rng.New(3)
	x, y := linData(r, 400)
	xTe, yTe := linData(r, 100)
	m := New(x, y, 5, false)
	pred := m.PredictBatch(xTe, nil)
	if r2 := stats.R2(yTe, pred); r2 < 0.95 {
		t.Fatalf("kNN interpolation R2 = %v", r2)
	}
}

func TestCannotExtrapolate(t *testing.T) {
	// the defining failure mode: predictions are bounded by training targets
	r := rng.New(4)
	x, y := linData(r, 200)
	m := New(x, y, 3, false)
	maxY := stats.Max(y)
	// query far outside the training domain
	far := m.Predict([]float64{100, 100})
	if far > maxY {
		t.Fatalf("kNN extrapolated beyond training max: %v > %v", far, maxY)
	}
}

func TestWeightedBeatsUnweightedNearBoundary(t *testing.T) {
	// sanity check only: both must be finite and in range
	r := rng.New(5)
	x, y := linData(r, 100)
	mu := New(x, y, 7, false)
	mw := New(x, y, 7, true)
	q := []float64{5, 5}
	pu, pw := mu.Predict(q), mw.Predict(q)
	if math.IsNaN(pu) || math.IsNaN(pw) {
		t.Fatal("NaN prediction")
	}
}

func TestScalingInvariance(t *testing.T) {
	// internal standardization: multiplying one feature's unit by 1000
	// must not change neighbour structure.
	r := rng.New(6)
	x, y := linData(r, 150)
	xScaled := x.Clone()
	for i := 0; i < x.Rows; i++ {
		xScaled.Set(i, 1, xScaled.At(i, 1)*1000)
	}
	m1 := New(x, y, 5, false)
	m2 := New(xScaled, y, 5, false)
	q1 := []float64{5, 5}
	q2 := []float64{5, 5000}
	if math.Abs(m1.Predict(q1)-m2.Predict(q2)) > 1e-9 {
		t.Fatal("kNN sensitive to feature units despite standardization")
	}
}

func TestPanics(t *testing.T) {
	r := rng.New(7)
	x, y := linData(r, 10)
	cases := []func(){
		func() { New(x, y[:5], 3, false) },                   // shape mismatch
		func() { New(mat.NewDense(0, 2), nil, 1, false) },    // empty
		func() { New(x, y, 0, false) },                       // k < 1
		func() { New(x, y, 11, false) },                      // k > n
		func() { New(x, y, 3, false).Predict([]float64{1}) }, // dim
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTrainingDataCopied(t *testing.T) {
	r := rng.New(8)
	x, y := linData(r, 20)
	m := New(x, y, 1, false)
	before := m.Predict(x.Row(0))
	y[0] = 1e9 // mutate caller's slice
	x.Set(0, 0, 1e9)
	after := m.Predict([]float64{x.At(1, 0), x.At(1, 1)})
	_ = after
	if m.Predict([]float64{0, 0}) == 1e9 {
		t.Fatal("model aliases caller's target slice")
	}
	_ = before
}

func TestKAccessor(t *testing.T) {
	r := rng.New(9)
	x, y := linData(r, 10)
	if New(x, y, 4, false).K() != 4 {
		t.Fatal("K() wrong")
	}
}

func BenchmarkPredict(b *testing.B) {
	r := rng.New(1)
	x, y := linData(r, 1000)
	m := New(x, y, 5, false)
	q := []float64{5, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(q)
	}
}
