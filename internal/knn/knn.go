// Package knn implements a k-nearest-neighbour regressor, one of the
// "existing ML methods" baselines. Features are standardized internally so
// Euclidean distance is meaningful across heterogeneous parameter units.
// kNN is a pure interpolator — it cannot produce predictions outside the
// convex hull of its training targets — which makes it the clearest
// illustration of why direct ML fails at scale extrapolation.
package knn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// Regressor is a fitted kNN model.
type Regressor struct {
	k        int
	weighted bool // inverse-distance weighting
	x        *mat.Dense
	y        []float64
	scaler   *dataset.StandardScaler
}

// New fits (memorizes) a kNN regressor with the given neighbour count.
// weighted selects inverse-distance weighting instead of a plain mean.
func New(x *mat.Dense, y []float64, k int, weighted bool) *Regressor {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("knn: %d rows vs %d targets", x.Rows, len(y)))
	}
	if x.Rows == 0 {
		panic("knn: empty training set")
	}
	if k < 1 || k > x.Rows {
		panic(fmt.Sprintf("knn: k=%d with n=%d", k, x.Rows))
	}
	xs := x.Clone()
	sc := dataset.FitStandard(xs)
	sc.Transform(xs)
	return &Regressor{
		k:        k,
		weighted: weighted,
		x:        xs,
		y:        append([]float64(nil), y...),
		scaler:   sc,
	}
}

// Predict returns the kNN estimate for feature vector v.
func (r *Regressor) Predict(v []float64) float64 {
	if len(v) != r.x.Cols {
		panic(fmt.Sprintf("knn: predict with %d features, model has %d", len(v), r.x.Cols))
	}
	q := append([]float64(nil), v...)
	r.scaler.TransformVec(q)

	type nb struct {
		d float64
		i int
	}
	nbs := make([]nb, r.x.Rows)
	for i := 0; i < r.x.Rows; i++ {
		row := r.x.Row(i)
		var s float64
		for j, qv := range q {
			d := qv - row[j]
			s += d * d
		}
		nbs[i] = nb{d: s, i: i}
	}
	sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })

	if !r.weighted {
		var s float64
		for _, n := range nbs[:r.k] {
			s += r.y[n.i]
		}
		return s / float64(r.k)
	}
	var num, den float64
	for _, n := range nbs[:r.k] {
		d := math.Sqrt(n.d)
		if d == 0 {
			return r.y[n.i] // exact match dominates
		}
		w := 1 / d
		num += w * r.y[n.i]
		den += w
	}
	return num / den
}

// PredictBatch fills dst with predictions for every row of x.
func (r *Regressor) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		dst[i] = r.Predict(x.Row(i))
	}
	return dst
}

// K returns the neighbour count.
func (r *Regressor) K() int { return r.k }
