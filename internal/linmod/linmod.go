// Package linmod implements the linear models used at the paper's
// extrapolation level and as baselines: ordinary least squares, ridge,
// lasso and elastic net by cyclic coordinate descent, and — the core of
// the extrapolation level — the multitask lasso, solved by block
// coordinate descent on the L2,1-penalized squared loss so that all tasks
// (large target scales) share one sparsity pattern over the features
// (small-scale performance predictions).
//
// All solvers operate on standardized copies of the data internally and
// fold the centering back into an explicit intercept, so callers pass raw
// features and get raw-unit coefficients.
package linmod

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Model is a fitted single-task linear model: y ≈ x·Coef + Intercept.
type Model struct {
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
	// Iterations actually used by the optimizer (0 for closed-form fits).
	Iterations int `json:"iterations,omitempty"`
}

// Predict evaluates the model on a feature vector.
func (m *Model) Predict(v []float64) float64 {
	if len(v) != len(m.Coef) {
		panic(fmt.Sprintf("linmod: predict with %d features, model has %d", len(v), len(m.Coef)))
	}
	return mat.Dot(m.Coef, v) + m.Intercept
}

// PredictBatch fills dst with predictions for every row of x.
func (m *Model) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		dst[i] = m.Predict(x.Row(i))
	}
	return dst
}

// Options configures the iterative solvers.
type Options struct {
	MaxIter int     // maximum coordinate-descent sweeps (default 1000)
	Tol     float64 // convergence threshold on max coefficient change (default 1e-6)
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

// standardized holds a centered/scaled design and the statistics needed to
// map coefficients back to raw units.
type standardized struct {
	x       *mat.Dense // centered and scaled copy, column-major friendly row storage
	y       []float64  // centered copy
	xMean   []float64
	xScale  []float64 // column std (1 where degenerate)
	yMean   float64
	colNorm []float64 // sum of squares of each standardized column
}

func standardize(x *mat.Dense, y []float64) *standardized {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("linmod: %d rows vs %d targets", x.Rows, len(y)))
	}
	if x.Rows == 0 {
		panic("linmod: fit on empty dataset")
	}
	n, p := x.Rows, x.Cols
	s := &standardized{
		x:       x.Clone(),
		y:       append([]float64(nil), y...),
		xMean:   make([]float64, p),
		xScale:  make([]float64, p),
		colNorm: make([]float64, p),
	}
	for j := 0; j < p; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += s.x.At(i, j)
		}
		m := sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			d := s.x.At(i, j) - m
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(n))
		if sd == 0 {
			sd = 1
		}
		s.xMean[j], s.xScale[j] = m, sd
		for i := 0; i < n; i++ {
			s.x.Set(i, j, (s.x.At(i, j)-m)/sd)
		}
		var cn float64
		for i := 0; i < n; i++ {
			v := s.x.At(i, j)
			cn += v * v
		}
		s.colNorm[j] = cn
	}
	var ym float64
	for _, v := range s.y {
		ym += v
	}
	ym /= float64(n)
	s.yMean = ym
	for i := range s.y {
		s.y[i] -= ym
	}
	return s
}

// unstandardize maps standardized-space coefficients back to raw units and
// computes the intercept.
func (s *standardized) unstandardize(beta []float64) *Model {
	coef := make([]float64, len(beta))
	inter := s.yMean
	for j := range beta {
		coef[j] = beta[j] / s.xScale[j]
		inter -= coef[j] * s.xMean[j]
	}
	return &Model{Coef: coef, Intercept: inter}
}

// OLS fits ordinary least squares via QR on the raw design augmented with
// an intercept column. Rank-deficient designs return an error.
func OLS(x *mat.Dense, y []float64) (*Model, error) {
	n, p := x.Rows, x.Cols
	if n != len(y) {
		panic("linmod: OLS shape mismatch")
	}
	aug := mat.NewDense(n, p+1)
	for i := 0; i < n; i++ {
		row := aug.Row(i)
		row[0] = 1
		copy(row[1:], x.Row(i))
	}
	sol, err := mat.LeastSquares(aug, y)
	if err != nil {
		return nil, err
	}
	return &Model{Coef: sol[1:], Intercept: sol[0]}, nil
}

// Ridge fits an L2-penalized model in closed form on standardized data:
// beta = (XᵀX + lambda·n·I)⁻¹ Xᵀy. lambda must be >= 0.
func Ridge(x *mat.Dense, y []float64, lambda float64) *Model {
	if lambda < 0 {
		panic("linmod: negative ridge lambda")
	}
	s := standardize(x, y)
	n := float64(x.Rows)
	gram := mat.MulATA(s.x)
	for j := 0; j < gram.Rows; j++ {
		gram.Set(j, j, gram.At(j, j)+lambda*n)
	}
	xty := s.x.MulVecT(nil, s.y)
	beta, err := mat.SolveSPD(gram, xty)
	if err != nil {
		// With lambda > 0 the system is SPD by construction; lambda == 0 on a
		// degenerate design can fail — fall back to a tiny jitter.
		for j := 0; j < gram.Rows; j++ {
			gram.Set(j, j, gram.At(j, j)+1e-10*n)
		}
		beta, err = mat.SolveSPD(gram, xty)
		if err != nil {
			panic("linmod: ridge normal equations unsolvable: " + err.Error())
		}
	}
	return s.unstandardize(beta)
}

// softThreshold is the scalar proximal operator of the L1 norm.
func softThreshold(z, gamma float64) float64 {
	switch {
	case z > gamma:
		return z - gamma
	case z < -gamma:
		return z + gamma
	default:
		return 0
	}
}

// Lasso fits an L1-penalized model by cyclic coordinate descent minimizing
//
//	(1/2n)·||y - X·beta||² + lambda·||beta||₁
//
// on standardized data (the scikit-learn objective, so lambdas transfer).
func Lasso(x *mat.Dense, y []float64, lambda float64, opt Options) *Model {
	return ElasticNet(x, y, lambda, 1.0, opt)
}

// ElasticNet fits (1/2n)||y-Xb||² + lambda·(alpha·||b||₁ + (1-alpha)/2·||b||²).
// alpha = 1 is the lasso; alpha = 0 is ridge (prefer Ridge for that, it is
// closed-form).
func ElasticNet(x *mat.Dense, y []float64, lambda, alpha float64, opt Options) *Model {
	if lambda < 0 || alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("linmod: bad elastic-net lambda=%v alpha=%v", lambda, alpha))
	}
	opt = opt.withDefaults()
	s := standardize(x, y)
	n := float64(x.Rows)
	p := x.Cols

	beta := make([]float64, p)
	resid := append([]float64(nil), s.y...) // residual = y - X·beta (beta = 0)

	l1 := lambda * alpha * n
	l2 := lambda * (1 - alpha) * n

	iters := 0
	for it := 0; it < opt.MaxIter; it++ {
		iters = it + 1
		var maxDelta float64
		for j := 0; j < p; j++ {
			cn := s.colNorm[j]
			if cn == 0 {
				continue
			}
			old := beta[j]
			// partial residual correlation: xⱼᵀ(resid + xⱼ·betaⱼ)
			var rho float64
			for i := 0; i < x.Rows; i++ {
				rho += s.x.At(i, j) * resid[i]
			}
			rho += cn * old
			newb := softThreshold(rho, l1) / (cn + l2)
			//lint:allow floateq -- no-op update skip: both values come from the identical computation
			if newb != old {
				d := newb - old
				for i := 0; i < x.Rows; i++ {
					resid[i] -= d * s.x.At(i, j)
				}
				beta[j] = newb
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		if maxDelta < opt.Tol {
			break
		}
	}
	m := s.unstandardize(beta)
	m.Iterations = iters
	return m
}

// LambdaMax returns the smallest lambda for which the lasso solution is
// entirely zero — the top of a regularization path.
func LambdaMax(x *mat.Dense, y []float64) float64 {
	s := standardize(x, y)
	n := float64(x.Rows)
	var best float64
	for j := 0; j < x.Cols; j++ {
		var rho float64
		for i := 0; i < x.Rows; i++ {
			rho += s.x.At(i, j) * s.y[i]
		}
		if a := math.Abs(rho) / n; a > best {
			best = a
		}
	}
	return best
}

// LassoPath fits the lasso at k log-spaced lambdas from LambdaMax down to
// LambdaMax*epsRatio, warm-starting each fit from the previous solution.
// It returns the lambdas (descending) and one model per lambda.
func LassoPath(x *mat.Dense, y []float64, k int, epsRatio float64, opt Options) ([]float64, []*Model) {
	if k < 2 {
		panic("linmod: LassoPath needs k >= 2")
	}
	if epsRatio <= 0 || epsRatio >= 1 {
		panic("linmod: epsRatio must be in (0,1)")
	}
	opt = opt.withDefaults()
	lmax := LambdaMax(x, y)
	if lmax == 0 {
		lmax = 1e-12
	}
	lambdas := make([]float64, k)
	for i := 0; i < k; i++ {
		f := float64(i) / float64(k-1)
		lambdas[i] = lmax * math.Pow(epsRatio, f)
	}
	// warm-started path in standardized space
	s := standardize(x, y)
	n := float64(x.Rows)
	p := x.Cols
	beta := make([]float64, p)
	resid := append([]float64(nil), s.y...)
	models := make([]*Model, k)
	for li, lam := range lambdas {
		l1 := lam * n
		for it := 0; it < opt.MaxIter; it++ {
			var maxDelta float64
			for j := 0; j < p; j++ {
				cn := s.colNorm[j]
				if cn == 0 {
					continue
				}
				old := beta[j]
				var rho float64
				for i := 0; i < x.Rows; i++ {
					rho += s.x.At(i, j) * resid[i]
				}
				rho += cn * old
				newb := softThreshold(rho, l1) / cn
				//lint:allow floateq -- no-op update skip: both values come from the identical computation
				if newb != old {
					d := newb - old
					for i := 0; i < x.Rows; i++ {
						resid[i] -= d * s.x.At(i, j)
					}
					beta[j] = newb
					if ad := math.Abs(d); ad > maxDelta {
						maxDelta = ad
					}
				}
			}
			if maxDelta < opt.Tol {
				break
			}
		}
		models[li] = s.unstandardize(append([]float64(nil), beta...))
	}
	return lambdas, models
}
