package linmod

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// cvSplit partitions [0, n) into k shuffled folds of near-equal size.
func cvSplit(r *rng.Source, n, k int) [][]int {
	perm := r.Perm(n)
	folds := make([][]int, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		folds[f] = perm[lo:hi]
	}
	return folds
}

func gatherRows(x *mat.Dense, idx []int) *mat.Dense {
	out := mat.NewDense(len(idx), x.Cols)
	for i, j := range idx {
		copy(out.Row(i), x.Row(j))
	}
	return out
}

func gather(y []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// CVLasso selects the lasso lambda by k-fold cross-validation over a
// log-spaced grid of nLambdas values below LambdaMax, then refits on the
// full data at the winner. It returns the model and the chosen lambda.
func CVLasso(r *rng.Source, x *mat.Dense, y []float64, k, nLambdas int, opt Options) (*Model, float64) {
	if k < 2 || k > x.Rows {
		panic("linmod: CVLasso bad fold count")
	}
	lmax := LambdaMax(x, y)
	if lmax == 0 {
		lmax = 1e-12
	}
	lambdas := logGrid(lmax, 1e-3, nLambdas)
	folds := cvSplit(r, x.Rows, k)
	bestLam, bestErr := lambdas[0], math.Inf(1)
	for _, lam := range lambdas {
		var sse float64
		var cnt int
		for f := range folds {
			trIdx, teIdx := antiFold(folds, f, x.Rows)
			m := Lasso(gatherRows(x, trIdx), gather(y, trIdx), lam, opt)
			for _, i := range teIdx {
				d := m.Predict(x.Row(i)) - y[i]
				sse += d * d
				cnt++
			}
		}
		if err := sse / float64(cnt); err < bestErr {
			bestErr, bestLam = err, lam
		}
	}
	return Lasso(x, y, bestLam, opt), bestLam
}

// CVMultiTaskLasso selects the multitask-lasso lambda by k-fold CV
// (summed squared error over all tasks), then refits on the full data.
func CVMultiTaskLasso(r *rng.Source, x, y *mat.Dense, k, nLambdas int, opt Options) (*MultiTaskModel, float64) {
	if k < 2 || k > x.Rows {
		panic("linmod: CVMultiTaskLasso bad fold count")
	}
	lmax := MultiTaskLambdaMax(x, y)
	if lmax == 0 {
		lmax = 1e-12
	}
	lambdas := logGrid(lmax, 1e-3, nLambdas)
	folds := cvSplit(r, x.Rows, k)
	bestLam, bestErr := lambdas[0], math.Inf(1)
	for _, lam := range lambdas {
		var sse float64
		var cnt int
		for f := range folds {
			trIdx, teIdx := antiFold(folds, f, x.Rows)
			m := MultiTaskLasso(gatherRows(x, trIdx), gatherRows(y, trIdx), lam, opt)
			for _, i := range teIdx {
				pred := m.Predict(x.Row(i))
				for t := 0; t < y.Cols; t++ {
					d := pred[t] - y.At(i, t)
					sse += d * d
					cnt++
				}
			}
		}
		if err := sse / float64(cnt); err < bestErr {
			bestErr, bestLam = err, lam
		}
	}
	return MultiTaskLasso(x, y, bestLam, opt), bestLam
}

// logGrid returns n log-spaced values from top down to top*ratio.
func logGrid(top, ratio float64, n int) []float64 {
	if n < 2 {
		panic("linmod: logGrid needs n >= 2")
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = top * math.Pow(ratio, f)
	}
	return out
}

// antiFold returns (train indices, test indices) for fold f.
func antiFold(folds [][]int, f, n int) (train, test []int) {
	test = folds[f]
	train = make([]int, 0, n-len(test))
	for g := range folds {
		if g != f {
			train = append(train, folds[g]...)
		}
	}
	return train, test
}
