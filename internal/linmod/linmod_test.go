package linmod

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/stats"
)

// sparseData generates y = 3*x0 - 2*x3 + 1 + noise over p features.
func sparseData(r *rng.Source, n, p int, noise float64) (*mat.Dense, []float64) {
	x := mat.NewDense(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, r.Norm())
		}
		y[i] = 3*x.At(i, 0) - 2*x.At(i, 3) + 1 + noise*r.Norm()
	}
	return x, y
}

func TestOLSExactRecovery(t *testing.T) {
	r := rng.New(1)
	x, y := sparseData(r, 100, 5, 0)
	m, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 0, 0, -2, 0}
	for j := range want {
		if math.Abs(m.Coef[j]-want[j]) > 1e-8 {
			t.Fatalf("coef = %v", m.Coef)
		}
	}
	if math.Abs(m.Intercept-1) > 1e-8 {
		t.Fatalf("intercept = %v", m.Intercept)
	}
}

func TestOLSRankDeficient(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := OLS(x, []float64{1, 2, 3}); err == nil {
		t.Fatal("OLS accepted collinear design")
	}
}

func TestRidgeShrinksTowardZero(t *testing.T) {
	r := rng.New(2)
	x, y := sparseData(r, 80, 5, 0.1)
	small := Ridge(x, y, 1e-6)
	big := Ridge(x, y, 100)
	if mat.Norm2(big.Coef) >= mat.Norm2(small.Coef) {
		t.Fatalf("ridge did not shrink: %v vs %v", mat.Norm2(big.Coef), mat.Norm2(small.Coef))
	}
	// tiny lambda approximates OLS
	ols, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ols.Coef {
		if math.Abs(small.Coef[j]-ols.Coef[j]) > 1e-3 {
			t.Fatalf("ridge(1e-6) far from OLS: %v vs %v", small.Coef, ols.Coef)
		}
	}
}

func TestRidgeNegativeLambdaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Ridge(mat.NewDense(2, 1), []float64{1, 2}, -1)
}

func TestRidgeHandlesCollinear(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	y := []float64{2, 4, 6, 8}
	m := Ridge(x, y, 0.1)
	// perfectly collinear: ridge splits the weight; prediction must be good
	pred := m.PredictBatch(x, nil)
	if stats.R2(y, pred) < 0.95 {
		t.Fatalf("ridge R2 on collinear = %v", stats.R2(y, pred))
	}
	if math.Abs(m.Coef[0]-m.Coef[1]) > 1e-6 {
		t.Fatalf("ridge should split collinear weight evenly: %v", m.Coef)
	}
}

func TestLassoZeroLambdaMatchesOLS(t *testing.T) {
	r := rng.New(3)
	x, y := sparseData(r, 120, 4, 0.05)
	las := Lasso(x, y, 0, Options{MaxIter: 5000, Tol: 1e-10})
	ols, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ols.Coef {
		if math.Abs(las.Coef[j]-ols.Coef[j]) > 1e-5 {
			t.Fatalf("lasso(0) != OLS: %v vs %v", las.Coef, ols.Coef)
		}
	}
}

func TestLassoSparsity(t *testing.T) {
	r := rng.New(4)
	x, y := sparseData(r, 200, 10, 0.1)
	m := Lasso(x, y, 0.1, Options{})
	nonzero := 0
	for _, c := range m.Coef {
		if c != 0 {
			nonzero++
		}
	}
	if nonzero > 4 {
		t.Fatalf("lasso kept %d features, want few (coefs %v)", nonzero, m.Coef)
	}
	if m.Coef[0] == 0 || m.Coef[3] == 0 {
		t.Fatalf("lasso dropped a true feature: %v", m.Coef)
	}
}

func TestLassoAllZeroAtLambdaMax(t *testing.T) {
	r := rng.New(5)
	x, y := sparseData(r, 100, 6, 0.1)
	lmax := LambdaMax(x, y)
	m := Lasso(x, y, lmax*1.0001, Options{})
	for _, c := range m.Coef {
		if c != 0 {
			t.Fatalf("coef non-zero above LambdaMax: %v", m.Coef)
		}
	}
	// Just below lambda max, at least one coefficient activates.
	m2 := Lasso(x, y, lmax*0.95, Options{})
	any := false
	for _, c := range m2.Coef {
		if c != 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no coefficient active just below LambdaMax")
	}
}

func TestLassoKKTConditions(t *testing.T) {
	// In standardized space: |x_jᵀ r| / n <= lambda for inactive features,
	// == lambda (sign matched) for active ones.
	r := rng.New(6)
	x, y := sparseData(r, 150, 8, 0.2)
	lambda := 0.05
	m := Lasso(x, y, lambda, Options{MaxIter: 10000, Tol: 1e-12})
	s := standardize(x, y)
	n := float64(x.Rows)
	// reconstruct standardized beta
	for j := 0; j < x.Cols; j++ {
		beta := m.Coef[j] * s.xScale[j]
		// residual in standardized space
		var rho float64
		for i := 0; i < x.Rows; i++ {
			pred := 0.0
			for k := 0; k < x.Cols; k++ {
				pred += s.x.At(i, k) * (m.Coef[k] * s.xScale[k])
			}
			rho += s.x.At(i, j) * (s.y[i] - pred)
		}
		g := rho / n
		if beta == 0 {
			if math.Abs(g) > lambda+1e-6 {
				t.Fatalf("KKT violated for inactive feature %d: |g|=%v > lambda=%v", j, math.Abs(g), lambda)
			}
		} else {
			want := lambda * sign(beta)
			if math.Abs(g-want) > 1e-6 {
				t.Fatalf("KKT violated for active feature %d: g=%v want %v", j, g, want)
			}
		}
	}
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func TestElasticNetBetweenRidgeAndLasso(t *testing.T) {
	r := rng.New(7)
	x, y := sparseData(r, 150, 8, 0.1)
	lam := 0.2
	lasso := ElasticNet(x, y, lam, 1, Options{})
	enet := ElasticNet(x, y, lam, 0.5, Options{})
	nz := func(m *Model) int {
		c := 0
		for _, v := range m.Coef {
			if v != 0 {
				c++
			}
		}
		return c
	}
	if nz(enet) < nz(lasso) {
		t.Fatalf("elastic net sparser than lasso: %d vs %d", nz(enet), nz(lasso))
	}
}

func TestElasticNetBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ElasticNet(mat.NewDense(2, 1), []float64{1, 2}, 0.1, 2, Options{})
}

func TestLassoPathMonotoneSparsity(t *testing.T) {
	r := rng.New(8)
	x, y := sparseData(r, 150, 10, 0.1)
	lambdas, models := LassoPath(x, y, 20, 1e-3, Options{})
	if len(lambdas) != 20 || len(models) != 20 {
		t.Fatalf("path sizes %d/%d", len(lambdas), len(models))
	}
	for i := 1; i < len(lambdas); i++ {
		if lambdas[i] >= lambdas[i-1] {
			t.Fatal("lambdas not strictly descending")
		}
	}
	// first model (lambda = lambda_max) must be all zeros
	for _, c := range models[0].Coef {
		if c != 0 {
			t.Fatalf("model at lambda_max has non-zero coef: %v", models[0].Coef)
		}
	}
	// training error must not increase as lambda decreases
	prevErr := math.Inf(1)
	for _, m := range models {
		pred := m.PredictBatch(x, nil)
		e := stats.RMSE(y, pred)
		if e > prevErr+1e-6 {
			t.Fatalf("training error increased along path: %v -> %v", prevErr, e)
		}
		prevErr = e
	}
}

func TestPredictBatchAndDimPanic(t *testing.T) {
	m := &Model{Coef: []float64{2}, Intercept: 1}
	x := mat.FromRows([][]float64{{1}, {2}})
	got := m.PredictBatch(x, nil)
	if got[0] != 3 || got[1] != 5 {
		t.Fatalf("PredictBatch = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestStandardizeConstantColumn(t *testing.T) {
	x := mat.FromRows([][]float64{{5, 1}, {5, 2}, {5, 3}})
	y := []float64{1, 2, 3}
	m := Lasso(x, y, 0.001, Options{})
	if m.Coef[0] != 0 {
		t.Fatalf("constant column got coefficient %v", m.Coef[0])
	}
	if math.Abs(m.Predict([]float64{5, 2})-2) > 1e-3 {
		t.Fatal("prediction wrong with constant column present")
	}
}

func TestCVLassoPicksReasonableLambda(t *testing.T) {
	r := rng.New(9)
	x, y := sparseData(r, 200, 10, 0.3)
	m, lam := CVLasso(rng.New(1), x, y, 5, 15, Options{})
	if lam <= 0 {
		t.Fatalf("lambda = %v", lam)
	}
	if m.Coef[0] == 0 || m.Coef[3] == 0 {
		t.Fatalf("CV lasso dropped true features: %v", m.Coef)
	}
	pred := m.PredictBatch(x, nil)
	if stats.R2(y, pred) < 0.9 {
		t.Fatalf("CV lasso R2 = %v", stats.R2(y, pred))
	}
}

func TestLogGrid(t *testing.T) {
	g := logGrid(1, 0.01, 3)
	want := []float64{1, 0.1, 0.01}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("logGrid = %v", g)
		}
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ z, g, want float64 }{
		{3, 1, 2}, {-3, 1, -2}, {0.5, 1, 0}, {-0.5, 1, 0}, {1, 1, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.z, c.g); got != c.want {
			t.Fatalf("softThreshold(%v,%v) = %v want %v", c.z, c.g, got, c.want)
		}
	}
}

func BenchmarkLasso200x20(b *testing.B) {
	r := rng.New(1)
	x, y := sparseData(r, 200, 20, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lasso(x, y, 0.05, Options{})
	}
}
