package linmod

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// mtData generates T tasks sharing support {0, 2}: y_t = a_t*x0 + b_t*x2 + c_t.
func mtData(r *rng.Source, n, p, tasks int, noise float64) (*mat.Dense, *mat.Dense) {
	x := mat.NewDense(n, p)
	y := mat.NewDense(n, tasks)
	coefA := make([]float64, tasks)
	coefB := make([]float64, tasks)
	for t := 0; t < tasks; t++ {
		coefA[t] = 1 + float64(t)
		coefB[t] = -2 + 0.5*float64(t)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, r.Norm())
		}
		for t := 0; t < tasks; t++ {
			y.Set(i, t, coefA[t]*x.At(i, 0)+coefB[t]*x.At(i, 2)+float64(t)+noise*r.Norm())
		}
	}
	return x, y
}

func TestMultiTaskRecoversSharedSupport(t *testing.T) {
	r := rng.New(1)
	x, y := mtData(r, 200, 8, 3, 0.05)
	m := MultiTaskLasso(x, y, 0.02, Options{})
	active := m.ActiveFeatures()
	hasZero, hasTwo := false, false
	for _, j := range active {
		switch j {
		case 0:
			hasZero = true
		case 2:
			hasTwo = true
		}
	}
	if !hasZero || !hasTwo {
		t.Fatalf("true support not recovered, active = %v", active)
	}
	if len(active) > 4 {
		t.Fatalf("too many active features: %v", active)
	}
}

func TestMultiTaskSharedSparsityPattern(t *testing.T) {
	// the defining property of L2,1: a feature is zero in ALL tasks or
	// non-zero in (generically) all tasks.
	r := rng.New(2)
	x, y := mtData(r, 150, 6, 4, 0.1)
	m := MultiTaskLasso(x, y, 0.05, Options{})
	for j := 0; j < m.Coef.Rows; j++ {
		row := m.Coef.Row(j)
		zeros, nonzeros := 0, 0
		for _, v := range row {
			if v == 0 {
				zeros++
			} else {
				nonzeros++
			}
		}
		if zeros > 0 && nonzeros > 0 {
			t.Fatalf("feature %d has mixed zero/non-zero across tasks: %v", j, row)
		}
	}
}

func TestMultiTaskAllZeroAboveLambdaMax(t *testing.T) {
	r := rng.New(3)
	x, y := mtData(r, 100, 5, 3, 0.1)
	lmax := MultiTaskLambdaMax(x, y)
	m := MultiTaskLasso(x, y, lmax*1.001, Options{})
	if len(m.ActiveFeatures()) != 0 {
		t.Fatalf("active features above lambda max: %v", m.ActiveFeatures())
	}
	m2 := MultiTaskLasso(x, y, lmax*0.9, Options{})
	if len(m2.ActiveFeatures()) == 0 {
		t.Fatal("nothing active just below lambda max")
	}
}

func TestMultiTaskIdenticalTasksMatchesScaledLasso(t *testing.T) {
	// With T identical task columns, the multitask solution at lambda equals
	// the single-task lasso at lambda/sqrt(T) (group norm symmetry).
	r := rng.New(4)
	n, p, tasks := 150, 6, 4
	x := mat.NewDense(n, p)
	ySingle := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, r.Norm())
		}
		ySingle[i] = 2*x.At(i, 1) - x.At(i, 4) + 0.1*r.Norm()
	}
	y := mat.NewDense(n, tasks)
	for i := 0; i < n; i++ {
		for t2 := 0; t2 < tasks; t2++ {
			y.Set(i, t2, ySingle[i])
		}
	}
	lambda := 0.1
	mt := MultiTaskLasso(x, y, lambda, Options{MaxIter: 5000, Tol: 1e-10})
	st := Lasso(x, ySingle, lambda/math.Sqrt(float64(tasks)), Options{MaxIter: 5000, Tol: 1e-10})
	for j := 0; j < p; j++ {
		for t2 := 0; t2 < tasks; t2++ {
			if math.Abs(mt.Coef.At(j, t2)-st.Coef[j]) > 1e-4 {
				t.Fatalf("feature %d task %d: mt=%v st=%v", j, t2, mt.Coef.At(j, t2), st.Coef[j])
			}
		}
	}
}

func TestMultiTaskPredictConsistency(t *testing.T) {
	r := rng.New(5)
	x, y := mtData(r, 100, 5, 3, 0.05)
	m := MultiTaskLasso(x, y, 0.01, Options{})
	v := x.Row(7)
	all := m.Predict(v)
	for t2 := 0; t2 < 3; t2++ {
		if math.Abs(all[t2]-m.PredictTask(v, t2)) > 1e-12 {
			t.Fatalf("Predict and PredictTask disagree on task %d", t2)
		}
	}
}

func TestMultiTaskAccuratePredictions(t *testing.T) {
	r := rng.New(6)
	x, y := mtData(r, 300, 8, 3, 0.05)
	xTe, yTe := mtData(r, 100, 8, 3, 0.05)
	m := MultiTaskLasso(x, y, 0.01, Options{})
	var sse, sst float64
	means := make([]float64, 3)
	for t2 := 0; t2 < 3; t2++ {
		var s float64
		for i := 0; i < yTe.Rows; i++ {
			s += yTe.At(i, t2)
		}
		means[t2] = s / float64(yTe.Rows)
	}
	for i := 0; i < xTe.Rows; i++ {
		pred := m.Predict(xTe.Row(i))
		for t2 := 0; t2 < 3; t2++ {
			d := yTe.At(i, t2) - pred[t2]
			sse += d * d
			dd := yTe.At(i, t2) - means[t2]
			sst += dd * dd
		}
	}
	if r2 := 1 - sse/sst; r2 < 0.95 {
		t.Fatalf("multitask R2 = %v", r2)
	}
}

func TestMultiTaskObjectiveNotWorseThanZeroAndPerturbed(t *testing.T) {
	r := rng.New(7)
	x, y := mtData(r, 120, 5, 3, 0.1)
	lambda := 0.05
	m := MultiTaskLasso(x, y, lambda, Options{MaxIter: 5000, Tol: 1e-10})
	obj := mtObjective(x, y, m, lambda)

	zero := &MultiTaskModel{Coef: mat.NewDense(5, 3), Intercept: make([]float64, 3), Tasks: 3}
	// give the zero model the optimal intercepts (task means)
	for t2 := 0; t2 < 3; t2++ {
		var s float64
		for i := 0; i < y.Rows; i++ {
			s += y.At(i, t2)
		}
		zero.Intercept[t2] = s / float64(y.Rows)
	}
	if zobj := mtObjective(x, y, zero, lambda); obj > zobj+1e-9 {
		t.Fatalf("solution objective %v worse than zero model %v", obj, zobj)
	}
	// random perturbations must not improve the objective
	for trial := 0; trial < 20; trial++ {
		pert := &MultiTaskModel{Coef: m.Coef.Clone(), Intercept: append([]float64(nil), m.Intercept...), Tasks: 3}
		j := r.Intn(5)
		t2 := r.Intn(3)
		pert.Coef.Set(j, t2, pert.Coef.At(j, t2)+r.Normal(0, 0.05))
		if pobj := mtObjective(x, y, pert, lambda); pobj < obj-1e-6 {
			t.Fatalf("perturbation improved objective: %v -> %v", obj, pobj)
		}
	}
}

func TestMultiTaskLambdaMaxShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MultiTaskLambdaMax(mat.NewDense(3, 2), mat.NewDense(4, 2))
}

func TestMultiTaskNegativeLambdaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MultiTaskLasso(mat.NewDense(2, 1), mat.NewDense(2, 1), -0.1, Options{})
}

func TestMultiTaskPredictDimPanics(t *testing.T) {
	r := rng.New(8)
	x, y := mtData(r, 50, 4, 2, 0.1)
	m := MultiTaskLasso(x, y, 0.01, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestCVMultiTaskLasso(t *testing.T) {
	r := rng.New(9)
	x, y := mtData(r, 200, 8, 3, 0.2)
	m, lam := CVMultiTaskLasso(rng.New(2), x, y, 4, 10, Options{})
	if lam <= 0 {
		t.Fatalf("lambda = %v", lam)
	}
	active := m.ActiveFeatures()
	hasZero, hasTwo := false, false
	for _, j := range active {
		if j == 0 {
			hasZero = true
		}
		if j == 2 {
			hasTwo = true
		}
	}
	if !hasZero || !hasTwo {
		t.Fatalf("CV multitask missed support: %v", active)
	}
}

func TestMultiTaskConstantFeature(t *testing.T) {
	r := rng.New(10)
	n := 60
	x := mat.NewDense(n, 3)
	y := mat.NewDense(n, 2)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 7) // constant
		x.Set(i, 1, r.Norm())
		x.Set(i, 2, r.Norm())
		y.Set(i, 0, x.At(i, 1))
		y.Set(i, 1, 2*x.At(i, 1))
	}
	m := MultiTaskLasso(x, y, 0.001, Options{})
	if m.Coef.At(0, 0) != 0 || m.Coef.At(0, 1) != 0 {
		t.Fatal("constant feature received non-zero coefficient")
	}
}

func BenchmarkMultiTaskLasso(b *testing.B) {
	r := rng.New(1)
	x, y := mtData(r, 200, 10, 4, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiTaskLasso(x, y, 0.05, Options{})
	}
}
