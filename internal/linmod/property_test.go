package linmod

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

// TestSoftThresholdProperties: |S(z,g)| <= |z|, sign preserved, shrink by
// exactly g outside the dead zone.
func TestSoftThresholdProperties(t *testing.T) {
	f := func(zRaw, gRaw int16) bool {
		z := float64(zRaw) / 100
		g := math.Abs(float64(gRaw)) / 100
		s := softThreshold(z, g)
		if math.Abs(s) > math.Abs(z)+1e-12 {
			return false
		}
		if s != 0 && math.Signbit(s) != math.Signbit(z) {
			return false
		}
		if math.Abs(z) > g && math.Abs(math.Abs(z)-math.Abs(s)-g) > 1e-12 {
			return false
		}
		if math.Abs(z) <= g && s != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLassoMonotoneSparsityProperty: increasing lambda never increases the
// training fit quality and never grows the support past LambdaMax.
func TestLassoMonotoneSparsityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rng.New(uint64(seed) + 3)
		n, p := 40, 6
		x := mat.NewDense(n, p)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				x.Set(i, j, r.Norm())
			}
			y[i] = 2*x.At(i, 0) - x.At(i, 2) + 0.1*r.Norm()
		}
		lmax := LambdaMax(x, y)
		prevSSE := -1.0
		for _, frac := range []float64{0.01, 0.1, 0.5, 1.01} {
			m := Lasso(x, y, lmax*frac, Options{})
			var sse float64
			for i := 0; i < n; i++ {
				d := m.Predict(x.Row(i)) - y[i]
				sse += d * d
			}
			if sse < prevSSE-1e-9 { // SSE must not decrease as lambda grows
				return false
			}
			prevSSE = sse
		}
		// above lambda max: empty support
		m := Lasso(x, y, lmax*1.01, Options{})
		for _, c := range m.Coef {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRidgePredictionShrinksTowardMeanProperty: as lambda → ∞ the ridge
// prediction at any point approaches the target mean.
func TestRidgePredictionShrinksTowardMeanProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rng.New(uint64(seed) + 11)
		n, p := 30, 4
		x := mat.NewDense(n, p)
		y := make([]float64, n)
		var mean float64
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				x.Set(i, j, r.Norm())
			}
			y[i] = r.Uniform(0, 10)
			mean += y[i]
		}
		mean /= float64(n)
		m := Ridge(x, y, 1e9)
		probe := make([]float64, p)
		for j := range probe {
			probe[j] = r.Norm()
		}
		return math.Abs(m.Predict(probe)-mean) < 0.05*math.Abs(mean)+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiTaskSupportShrinksWithLambdaProperty: support size is
// non-increasing in lambda.
func TestMultiTaskSupportShrinksWithLambdaProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rng.New(uint64(seed) + 29)
		n, p, tasks := 30, 5, 3
		x := mat.NewDense(n, p)
		y := mat.NewDense(n, tasks)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				x.Set(i, j, r.Norm())
			}
			for tt := 0; tt < tasks; tt++ {
				y.Set(i, tt, float64(tt+1)*x.At(i, 0)-x.At(i, 3)+0.1*r.Norm())
			}
		}
		lmax := MultiTaskLambdaMax(x, y)
		prev := p + 1
		for _, frac := range []float64{0.01, 0.2, 0.6, 1.01} {
			m := MultiTaskLasso(x, y, lmax*frac, Options{})
			cur := len(m.ActiveFeatures())
			if cur > prev {
				return false
			}
			prev = cur
		}
		return prev == 0 // above lambda max everything is zero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
