package linmod

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// MultiTaskModel is a fitted multitask linear model for T tasks sharing
// one design matrix: Y ≈ X·Coef + Intercept, with Coef of shape p×T.
// In the two-level model the tasks are the large target scales and the
// features are small-scale performance predictions, so the shared L2,1
// sparsity pattern selects the same informative small scales for every
// target scale.
type MultiTaskModel struct {
	Coef       *mat.Dense `json:"coef"`      // p × T
	Intercept  []float64  `json:"intercept"` // length T
	Tasks      int        `json:"tasks"`
	Iterations int        `json:"iterations,omitempty"`
}

// Predict evaluates all task outputs for a feature vector.
func (m *MultiTaskModel) Predict(v []float64) []float64 {
	return m.PredictInto(v, make([]float64, m.Tasks))
}

// PredictInto evaluates all task outputs for a feature vector into dst
// (length Tasks) and returns it. The call performs no allocations.
func (m *MultiTaskModel) PredictInto(v, dst []float64) []float64 {
	if len(v) != m.Coef.Rows {
		panic(fmt.Sprintf("linmod: multitask predict with %d features, model has %d", len(v), m.Coef.Rows))
	}
	if len(dst) != m.Tasks {
		panic(fmt.Sprintf("linmod: multitask predict into %d outputs, model has %d tasks", len(dst), m.Tasks))
	}
	copy(dst, m.Intercept)
	for j, xv := range v {
		if xv == 0 {
			continue
		}
		row := m.Coef.Row(j)
		for t := range dst {
			dst[t] += xv * row[t]
		}
	}
	return dst
}

// PredictTask evaluates a single task output.
func (m *MultiTaskModel) PredictTask(v []float64, task int) float64 {
	if task < 0 || task >= m.Tasks {
		panic(fmt.Sprintf("linmod: task %d out of %d", task, m.Tasks))
	}
	s := m.Intercept[task]
	for j, xv := range v {
		s += xv * m.Coef.At(j, task)
	}
	return s
}

// ActiveFeatures returns the indices of features with a non-zero
// coefficient row (shared across tasks by the L2,1 penalty).
func (m *MultiTaskModel) ActiveFeatures() []int {
	var out []int
	for j := 0; j < m.Coef.Rows; j++ {
		if mat.Norm2(m.Coef.Row(j)) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// MultiTaskLasso solves
//
//	min over B:  (1/2n)·||Y - X·B||_F² + lambda·Σ_j ||B_j||₂
//
// where B_j is the j-th row of the p×T coefficient matrix — the standard
// L2,1 ("group by feature across tasks") multitask lasso — by block
// coordinate descent with the group soft-thresholding proximal step.
// X is standardized and Y is centered per task internally.
func MultiTaskLasso(x, y *mat.Dense, lambda float64, opt Options) *MultiTaskModel {
	if x.Rows != y.Rows {
		panic(fmt.Sprintf("linmod: multitask %d rows vs %d targets", x.Rows, y.Rows))
	}
	if x.Rows == 0 {
		panic("linmod: multitask fit on empty dataset")
	}
	if lambda < 0 {
		panic("linmod: negative multitask lambda")
	}
	opt = opt.withDefaults()
	n, p, tasks := x.Rows, x.Cols, y.Cols

	// standardize X
	xs := x.Clone()
	xMean := make([]float64, p)
	xScale := make([]float64, p)
	colNorm := make([]float64, p)
	for j := 0; j < p; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs.At(i, j)
		}
		mu := sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			d := xs.At(i, j) - mu
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(n))
		if sd == 0 {
			sd = 1
		}
		xMean[j], xScale[j] = mu, sd
		var cn float64
		for i := 0; i < n; i++ {
			v := (xs.At(i, j) - mu) / sd
			xs.Set(i, j, v)
			cn += v * v
		}
		colNorm[j] = cn
	}
	// center Y per task
	ys := y.Clone()
	yMean := make([]float64, tasks)
	for t := 0; t < tasks; t++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += ys.At(i, t)
		}
		mu := sum / float64(n)
		yMean[t] = mu
		for i := 0; i < n; i++ {
			ys.Set(i, t, ys.At(i, t)-mu)
		}
	}

	beta := mat.NewDense(p, tasks)
	resid := ys.Clone() // residual matrix R = Y - X·B, starts at Y (B = 0)
	lam := lambda * float64(n)

	rho := make([]float64, tasks)
	iters := 0
	for it := 0; it < opt.MaxIter; it++ {
		iters = it + 1
		var maxDelta float64
		for j := 0; j < p; j++ {
			cn := colNorm[j]
			if cn == 0 {
				continue
			}
			brow := beta.Row(j)
			// rho_t = X_jᵀ R_t + cn·beta_{j,t}
			for t := range rho {
				rho[t] = cn * brow[t]
			}
			for i := 0; i < n; i++ {
				xij := xs.At(i, j)
				if xij == 0 {
					continue
				}
				rrow := resid.Row(i)
				for t := range rho {
					rho[t] += xij * rrow[t]
				}
			}
			// group soft threshold: B_j = max(0, 1 - lam/||rho||) · rho / cn
			nrm := mat.Norm2(rho)
			var scale float64
			if nrm > lam {
				scale = (1 - lam/nrm) / cn
			}
			var rowDelta float64
			for t := 0; t < tasks; t++ {
				newb := scale * rho[t]
				d := newb - brow[t]
				if d != 0 {
					if ad := math.Abs(d); ad > rowDelta {
						rowDelta = ad
					}
					for i := 0; i < n; i++ {
						xij := xs.At(i, j)
						if xij != 0 {
							resid.Set(i, t, resid.At(i, t)-d*xij)
						}
					}
					brow[t] = newb
				}
			}
			if rowDelta > maxDelta {
				maxDelta = rowDelta
			}
		}
		if maxDelta < opt.Tol {
			break
		}
	}

	// map back to raw units
	coef := mat.NewDense(p, tasks)
	inter := append([]float64(nil), yMean...)
	for j := 0; j < p; j++ {
		for t := 0; t < tasks; t++ {
			c := beta.At(j, t) / xScale[j]
			coef.Set(j, t, c)
			inter[t] -= c * xMean[j]
		}
	}
	return &MultiTaskModel{Coef: coef, Intercept: inter, Tasks: tasks, Iterations: iters}
}

// MultiTaskLambdaMax returns the smallest lambda at which the multitask
// lasso coefficient matrix is entirely zero.
func MultiTaskLambdaMax(x, y *mat.Dense) float64 {
	if x.Rows != y.Rows {
		panic("linmod: MultiTaskLambdaMax shape mismatch")
	}
	n, p, tasks := x.Rows, x.Cols, y.Cols
	// standardize X, center Y (means only needed)
	xMean := make([]float64, p)
	xScale := make([]float64, p)
	for j := 0; j < p; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += x.At(i, j)
		}
		mu := sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			d := x.At(i, j) - mu
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(n))
		if sd == 0 {
			sd = 1
		}
		xMean[j], xScale[j] = mu, sd
	}
	yMean := make([]float64, tasks)
	for t := 0; t < tasks; t++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += y.At(i, t)
		}
		yMean[t] = sum / float64(n)
	}
	var best float64
	rho := make([]float64, tasks)
	for j := 0; j < p; j++ {
		for t := range rho {
			rho[t] = 0
		}
		for i := 0; i < n; i++ {
			xij := (x.At(i, j) - xMean[j]) / xScale[j]
			for t := 0; t < tasks; t++ {
				rho[t] += xij * (y.At(i, t) - yMean[t])
			}
		}
		if v := mat.Norm2(rho) / float64(n); v > best {
			best = v
		}
	}
	return best
}

// mtObjective computes the multitask lasso objective for testing and
// CV-based model selection: (1/2n)||Y-XB-1·cᵀ||_F² + lambda Σ_j ||B_j||₂.
func mtObjective(x, y *mat.Dense, m *MultiTaskModel, lambda float64) float64 {
	n := x.Rows
	var loss float64
	for i := 0; i < n; i++ {
		pred := m.Predict(x.Row(i))
		for t := 0; t < y.Cols; t++ {
			d := y.At(i, t) - pred[t]
			loss += d * d
		}
	}
	loss /= 2 * float64(n)
	var pen float64
	for j := 0; j < m.Coef.Rows; j++ {
		pen += mat.Norm2(m.Coef.Row(j))
	}
	return loss + lambda*pen
}
