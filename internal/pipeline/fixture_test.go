package pipeline

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hpcsim"
	"repro/internal/rng"
)

// Test fixtures: simulated execution histories, generated once (history
// generation plus fitting dominates the package's test wall-clock). The
// tables are treated as immutable by every test.
var (
	fixtureOnce sync.Once
	fixtureHist *dataset.Table // 40 configs at small scales, 24 at large scales
	fixtureMore *dataset.Table // 16 further configs, the "new records arrive" batch
	fixtureErr  error
)

// testSmall and testLarge are the scales the fixture histories cover.
var (
	testSmall = []int{2, 4, 8, 16, 32, 64}
	testLarge = []int{128, 256}
)

// testCoreConfig returns a fast-but-real model configuration matching
// the fixture histories.
func testCoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SmallScales = testSmall
	cfg.LargeScales = testLarge
	cfg.Forest.Trees = 12
	cfg.CVLambdas = 5
	return cfg
}

func buildFixtures() (*dataset.Table, *dataset.Table, error) {
	app := hpcsim.NewSMG()
	eng := hpcsim.NewEngine(nil, 21)
	r := rng.New(22)
	sp := app.Space()

	cfgs := sp.SampleLatinHypercube(r, 56)
	first, rest := cfgs[:40], cfgs[40:]

	hist, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: first, Scales: testSmall, Reps: 1})
	if err != nil {
		return nil, nil, err
	}
	anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: first[:24], Scales: testLarge, Reps: 1})
	if err != nil {
		return nil, nil, err
	}
	hist.Merge(anchors)

	more, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: rest, Scales: testSmall, Reps: 1})
	if err != nil {
		return nil, nil, err
	}
	moreAnchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: rest[:10], Scales: testLarge, Reps: 1})
	if err != nil {
		return nil, nil, err
	}
	more.Merge(moreAnchors)
	return hist, more, nil
}

// testHistories returns the shared first-batch and second-batch tables.
func testHistories(tb testing.TB) (hist, more *dataset.Table) {
	tb.Helper()
	fixtureOnce.Do(func() {
		fixtureHist, fixtureMore, fixtureErr = buildFixtures()
	})
	if fixtureErr != nil {
		tb.Fatalf("generating fixture histories: %v", fixtureErr)
	}
	return fixtureHist, fixtureMore
}

// newSeededStore opens a store in dir and imports the first fixture
// batch.
func newSeededStore(tb testing.TB, dir string) *Store {
	tb.Helper()
	hist, _ := testHistories(tb)
	s, err := OpenStore(dir)
	if err != nil {
		tb.Fatal(err)
	}
	if _, _, err := s.ImportTable(hist); err != nil {
		tb.Fatal(err)
	}
	return s
}
