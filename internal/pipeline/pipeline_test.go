package pipeline

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/serving"
)

const testApp = "smg2000"

// testPipelineConfig is the shared pipeline configuration: retrain on
// every new record, 25% holdout, generous promotion slack (the e2e test
// exercises rejection separately, with a strict gate).
func testPipelineConfig() Config {
	return Config{
		Core:          testCoreConfig(),
		Seed:          42,
		Gate:          GateConfig{HoldoutDenominator: 4, AllowedRegression: 1.0},
		MinNewRecords: 1,
	}
}

// doJSON drives one request through the serving handler.
func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// predictOnce returns the served runtimes for one configuration.
func predictOnce(t *testing.T, h http.Handler, params []float64) (runtimes []float64, version, generation int) {
	t.Helper()
	var resp struct {
		Version int `json:"version"`
		Results []struct {
			Runtimes []float64 `json:"runtimes"`
		} `json:"results"`
	}
	if code := doJSON(t, h, "POST", "/v1/predict",
		map[string]any{"model": testApp, "params": params}, &resp); code != http.StatusOK {
		t.Fatalf("predict returned %d", code)
	}
	var models struct {
		Models []struct {
			Name       string `json:"name"`
			Generation int    `json:"generation"`
		} `json:"models"`
	}
	if code := doJSON(t, h, "GET", "/v1/models", nil, &models); code != http.StatusOK {
		t.Fatalf("models returned %d", code)
	}
	for _, m := range models.Models {
		if m.Name == testApp {
			generation = m.Generation
		}
	}
	return resp.Results[0].Runtimes, resp.Version, generation
}

// TestPipelineEndToEnd walks the full loop: ingest records, trigger a
// cycle, gate, promote into a live serving registry, observe the served
// prediction change, reject a candidate behind a strict gate with the
// incumbent left serving, and roll back to the previous generation —
// all without restarting the server.
func TestPipelineEndToEnd(t *testing.T) {
	_, more := testHistories(t)
	storeDir, gensDir := t.TempDir(), t.TempDir()
	store := newSeededStore(t, storeDir)

	reg := serving.NewRegistry()
	srv := serving.New(reg, serving.DefaultOptions())
	h := srv.Handler()

	p, err := New(store, gensDir, testPipelineConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}

	// ---- cycle 1: bootstrap promotion ----
	res, err := p.RunOnce(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.Gen != 1 {
		t.Fatalf("bootstrap cycle: %+v", res)
	}
	if _, err := os.Stat(res.Path); err != nil {
		t.Fatalf("promoted model file missing: %v", err)
	}
	probe := more.Runs[0].Params
	run1, v1, gen1 := predictOnce(t, h, probe)
	if gen1 != 1 || v1 != 1 {
		t.Fatalf("after bootstrap: version %d generation %d, want 1/1", v1, gen1)
	}

	// A second RunOnce without new records is a quiet skip.
	if res, err := p.RunOnce(testApp, ""); err != nil || !res.Skipped {
		t.Fatalf("no-new-records cycle: %+v, %v", res, err)
	}

	// ---- cycle 2: new records arrive, candidate promoted live ----
	if _, _, err := store.ImportTable(more); err != nil {
		t.Fatal(err)
	}
	// Serve predictions concurrently with the retrain+promote cycle; the
	// registry hot-swap must never torn-read under -race. (t.Fatal is
	// test-goroutine-only, so the workers report with t.Errorf.)
	body, err := json.Marshal(map[string]any{"model": testApp, "params": probe})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("concurrent predict returned %d: %s", rec.Code, rec.Body.String())
				}
			}
		}()
	}
	res, err = p.RunOnce(testApp, "")
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.Gen != 2 {
		t.Fatalf("second cycle: %+v (gate: %s)", res, res.Gate.Reason)
	}
	run2, v2, gen2 := predictOnce(t, h, probe)
	if gen2 != 2 || v2 != 2 {
		t.Fatalf("after second promotion: version %d generation %d, want 2/2", v2, gen2)
	}
	if reflect.DeepEqual(run1, run2) {
		t.Fatal("served prediction did not change after promotion")
	}

	// ---- cycle 3: strict gate rejects; incumbent keeps serving ----
	strictCfg := testPipelineConfig()
	strictCfg.Gate.AllowedRegression = -0.999 // demand a 1000x improvement
	strict, err := New(store, gensDir, strictCfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Same store, nothing new: the journal-primed trigger skips...
	if res, err := strict.RunOnce(testApp, ""); err != nil || !res.Skipped {
		t.Fatalf("reopened pipeline did not restore trigger state: %+v, %v", res, err)
	}
	// ...until kicked.
	strict.Kick(testApp)
	res, err = strict.RunOnce(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted || res.Gen != 3 {
		t.Fatalf("strict gate promoted: %+v", res)
	}
	entries := strict.Journal().Entries()
	last := entries[len(entries)-1]
	if last.Event != EventRejected || last.Gen != 3 || last.Gate == nil {
		t.Fatalf("rejection not journaled with evidence: %+v", last)
	}
	run3, v3, gen3 := predictOnce(t, h, probe)
	if v3 != v2 || gen3 != 2 || !reflect.DeepEqual(run2, run3) {
		t.Fatal("rejected candidate disturbed the serving incumbent")
	}
	if _, err := os.Stat(strict.Promoter().ModelPath(testApp, 3)); !os.IsNotExist(err) {
		t.Fatal("rejected candidate left a generation file behind")
	}

	// ---- rollback: one step back to generation 1, still live ----
	gen, err := strict.Rollback(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("Rollback restored generation %d, want 1", gen)
	}
	runRb, vRb, genRb := predictOnce(t, h, probe)
	if genRb != 1 {
		t.Fatalf("generation after rollback = %d, want 1", genRb)
	}
	if vRb != v2+1 {
		t.Fatalf("registry version after rollback = %d, want %d", vRb, v2+1)
	}
	if !reflect.DeepEqual(runRb, run1) {
		t.Fatal("rollback did not restore generation 1's predictions")
	}

	// ---- metrics: the whole story is visible on /metrics ----
	var snap serving.Snapshot
	if code := doJSON(t, h, "GET", "/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}
	if snap.Pipeline == nil {
		t.Fatal("metrics has no pipeline section after promotions")
	}
	if snap.Pipeline.Promotions != 2 || snap.Pipeline.Rollbacks != 1 {
		t.Fatalf("pipeline counters = %+v, want 2 promotions, 1 rollback", snap.Pipeline)
	}
	if lp := snap.Pipeline.LastPromotion; lp == nil || lp.Outcome != serving.PromotionRollback || lp.Generation != 1 {
		t.Fatalf("last promotion = %+v, want rollback to generation 1", snap.Pipeline.LastPromotion)
	}
	found := false
	for _, ms := range snap.ModelStatus {
		if ms.Name == testApp && ms.Generation == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("model_status %+v does not show generation 1 serving", snap.ModelStatus)
	}

	// ---- restart path: a fresh registry resumes from the journal ----
	reg2 := serving.NewRegistry()
	p2, err := New(store, gensDir, testPipelineConfig(), reg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.InstallActive(); err != nil {
		t.Fatal(err)
	}
	e, ok := reg2.Get(testApp)
	if !ok || e.Generation != 1 {
		t.Fatalf("restart installed %+v, want active generation 1", e)
	}
}

// TestPipelineDeterminism asserts the whole pipeline is a pure function
// of (store, seed): two runs over the same records produce byte-identical
// generation files and journals.
func TestPipelineDeterminism(t *testing.T) {
	_, more := testHistories(t)
	runPipeline := func(gensDir string) {
		t.Helper()
		store := newSeededStore(t, t.TempDir())
		p, err := New(store, gensDir, testPipelineConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunOnce(testApp, ""); err != nil {
			t.Fatal(err)
		}
		if _, _, err := store.ImportTable(more); err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunOnce(testApp, ""); err != nil {
			t.Fatal(err)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	runPipeline(dirA)
	runPipeline(dirB)

	filesA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(filesA) < 2 {
		t.Fatalf("pipeline produced %d files, want journal + at least one generation", len(filesA))
	}
	for _, f := range filesA {
		a, err := os.ReadFile(filepath.Join(dirA, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, f.Name()))
		if err != nil {
			t.Fatalf("run B is missing %s: %v", f.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between identical pipeline runs", f.Name())
		}
	}
}
