package pipeline

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestStoreAppendDedupAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"nx", "ny"}
	rec := Record{App: "smg2000", Params: []float64{8, 16}, Scale: 4, Runtime: 1.5}
	if ok, err := s.Append(cols, rec); err != nil || !ok {
		t.Fatalf("first Append = %v, %v", ok, err)
	}
	if ok, err := s.Append(cols, rec); err != nil || ok {
		t.Fatalf("duplicate Append = %v, %v; want false, nil", ok, err)
	}
	// Same point, distinct repetition index: a legitimate repeat.
	rep := rec
	rep.Rep = 1
	if ok, err := s.Append(cols, rep); err != nil || !ok {
		t.Fatalf("repeat Append = %v, %v", ok, err)
	}
	if got := s.Count("smg2000"); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}

	// Reopen: the on-disk partition must reproduce the index.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Count("smg2000"); got != 2 {
		t.Fatalf("Count after reopen = %d, want 2", got)
	}
	if ok, err := s2.Append(cols, rec); err != nil || ok {
		t.Fatalf("duplicate Append after reopen = %v, %v; want false, nil", ok, err)
	}
	names, ok := s2.ParamNames("smg2000")
	if !ok || !reflect.DeepEqual(names, cols) {
		t.Fatalf("ParamNames = %v, %v", names, ok)
	}
}

// TestStoreRefreshSeesOutOfProcessAppends models `pipeline ingest`
// feeding a live server: a second Store handle appends to the same
// directory, and Refresh picks the new records (and new partitions) up
// without reopening.
func TestStoreRefreshSeesOutOfProcessAppends(t *testing.T) {
	dir := t.TempDir()
	server, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"nx"}
	ingest, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ingest.Append(cols, Record{App: "smg", Params: []float64{1}, Scale: 2, Runtime: 3}); err != nil {
		t.Fatal(err)
	}
	if got := server.Count("smg"); got != 0 {
		t.Fatalf("Count before Refresh = %d, want 0 (index is a snapshot)", got)
	}
	if err := server.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := server.Count("smg"); got != 1 {
		t.Fatalf("Count after Refresh = %d, want 1", got)
	}
	// Refresh keeps dedup state consistent with the file.
	if ok, err := server.Append(cols, Record{App: "smg", Params: []float64{1}, Scale: 2, Runtime: 3}); err != nil || ok {
		t.Fatalf("duplicate Append after Refresh = %v, %v; want false, nil", ok, err)
	}
	// New records from both handles interleave without loss.
	if _, err := ingest.Append(cols, Record{App: "smg", Params: []float64{2}, Scale: 2, Runtime: 4}); err != nil {
		t.Fatal(err)
	}
	if err := server.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := server.Count("smg"); got != 2 {
		t.Fatalf("Count after second Refresh = %d, want 2", got)
	}
}

func TestStoreRejectsMismatchedWidthAndBadNames(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]string{"a"}, Record{App: "x", Params: []float64{1}, Scale: 2, Runtime: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(nil, Record{App: "x", Params: []float64{1, 2}, Scale: 2, Runtime: 1}); err == nil {
		t.Fatal("mismatched parameter width accepted")
	}
	for _, bad := range []string{"", "a/b", "..", ".hidden", "a b"} {
		if _, err := s.Append([]string{"a"}, Record{App: bad, Params: []float64{1}, Scale: 2, Runtime: 1}); err == nil {
			t.Fatalf("app name %q accepted", bad)
		}
	}
}

func TestStoreImportTableRoundtrip(t *testing.T) {
	hist, _ := testHistories(t)
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	added, skipped, err := s.ImportTable(hist)
	if err != nil {
		t.Fatal(err)
	}
	if added != hist.Len() || skipped != 0 {
		t.Fatalf("first import: added %d skipped %d, want %d/0", added, skipped, hist.Len())
	}
	// Idempotent re-import.
	added, skipped, err = s.ImportTable(hist)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || skipped != hist.Len() {
		t.Fatalf("re-import: added %d skipped %d, want 0/%d", added, skipped, hist.Len())
	}
	got, ok := s.Table(hist.App)
	if !ok {
		t.Fatal("Table missing after import")
	}
	if !reflect.DeepEqual(got.Runs, hist.Runs) {
		t.Fatal("materialized table differs from imported history")
	}
	if apps := s.Apps(); len(apps) != 1 || apps[0] != hist.App {
		t.Fatalf("Apps = %v", apps)
	}
}

func TestStoreImportCSV(t *testing.T) {
	hist, _ := testHistories(t)
	csvPath := filepath.Join(t.TempDir(), "hist.csv")
	if err := hist.SaveCSV(csvPath); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	added, _, err := s.ImportCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if added != hist.Len() {
		t.Fatalf("ImportCSV added %d, want %d", added, hist.Len())
	}

	// A CSV without an application name cannot be partitioned.
	anon := dataset.NewTable("", hist.ParamNames)
	anon.Runs = hist.Runs[:1]
	anonPath := filepath.Join(t.TempDir(), "anon.csv")
	if err := anon.SaveCSV(anonPath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ImportCSV(anonPath); err == nil {
		t.Fatal("CSV without app name accepted")
	}
}

func TestStoreCompactDropsDuplicateLines(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{App: "x", Params: []float64{1}, Scale: 2, Runtime: 3}
	if _, err := s.Append([]string{"a"}, rec); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash-retry double append by duplicating the record line
	// on disk behind the store's back.
	path := filepath.Join(dir, "x.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	dup := lines[len(lines)-1]
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(dup + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen tolerates the duplicate; Compact rewrites without it.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Count("x"); got != 1 {
		t.Fatalf("Count with duplicate line = %d, want 1", got)
	}
	if err := s2.Compact("x"); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(after), "\n"); lines != 2 { // header + one record
		t.Fatalf("compacted file has %d lines, want 2", lines)
	}
	s3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Count("x"); got != 1 {
		t.Fatalf("Count after compact = %d, want 1", got)
	}
}
