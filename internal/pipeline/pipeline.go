// Package pipeline closes the loop from observed runs to served models:
// the model-lifecycle subsystem the paper's premise implies. History
// data accumulates — every small-scale execution is a new training
// sample — so a production deployment retrains as records arrive
// instead of shipping a frozen model.
//
// Four stages, each in its own file:
//
//   - ingest (store.go): an append-only, fsync'd JSONL run-record store,
//     partitioned per application, deduplicated by record content hash,
//     fed by Append or by CSV import through internal/dataset.
//   - trigger (trigger.go): the retrain policy — N new records per app
//     since the last training cycle, or an explicit Kick.
//   - gate (gate.go): candidate-vs-incumbent evaluation on a held-out,
//     deterministically chosen slice of the store; MAPE at the target
//     large scales with a per-scale breakdown. A candidate that
//     regresses past the configured threshold is rejected — journaled,
//     never promoted.
//   - promote (promote.go, journal.go): atomic install of the winner as
//     a generation-numbered model file (core.Save's temp+rename idiom),
//     a persisted audit journal keyed by a monotonic generation
//     counter, hot-swap into a serving.Registry, and one-step rollback.
//
// Determinism is a hard invariant: the package never reads the wall
// clock (timestamps are stamped at the cmd/ boundary and passed in) and
// never draws randomness outside internal/rng — the training seed is
// derived from the (app, generation) pair, so rerunning a cycle over
// the same store produces byte-identical model files and journal
// entries. Both properties are enforced by repolint (nowallclock,
// nodirectrand).
package pipeline

import (
	"crypto/sha256"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/serving"
)

// Config parameterizes a Pipeline. The zero value selects sane defaults
// via New.
type Config struct {
	// Core is the model configuration handed to core.Fit for every
	// candidate. Zero fields default as in core.DefaultConfig.
	Core core.Config
	// Seed is the base random seed; the per-cycle generator is derived
	// from (Seed, app, generation) so cycles are independently seeded yet
	// exactly reproducible.
	Seed uint64
	// Gate configures candidate-vs-incumbent evaluation.
	Gate GateConfig
	// MinNewRecords is the trigger policy: retrain an app once this many
	// records arrived since its last training cycle. <= 0 means 1.
	MinNewRecords int
}

// Pipeline wires the four stages over one store and one generations
// directory. Methods are safe for a single driver goroutine; the
// underlying store and registry tolerate concurrent readers.
type Pipeline struct {
	cfg     Config
	store   *Store
	journal *Journal
	prom    *Promoter
	trigger *Trigger
	reg     *serving.Registry // optional; nil disables hot-swap
	obs     *pipelineObs      // optional; set by EnableObs
}

// CycleResult describes one RunOnce outcome.
type CycleResult struct {
	App      string
	Gen      int    // generation consumed by the cycle; 0 when skipped
	Skipped  bool   // trigger not due
	Reason   string // trigger or gate reasoning, human-readable
	Origin   string // originating request/run ID of the kick, "" for count-policy cycles
	Promoted bool
	Gate     GateResult
	Path     string // promoted model file, "" otherwise
}

// New opens (or creates) a pipeline over a record store and a
// generations directory holding model files and the audit journal.
// reg may be nil; when set, promotions and rollbacks hot-swap the
// registry entry named after the app. Trigger state is rebuilt from the
// journal so a restarted pipeline does not retrain on already-seen data.
func New(store *Store, dir string, cfg Config, reg *serving.Registry) (*Pipeline, error) {
	if cfg.MinNewRecords <= 0 {
		cfg.MinNewRecords = 1
	}
	cfg.Gate = cfg.Gate.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: creating generations dir: %w", err)
	}
	j, err := OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		store:   store,
		journal: j,
		prom:    NewPromoter(dir, j, reg),
		trigger: NewTrigger(cfg.MinNewRecords),
		reg:     reg,
	}
	for app, n := range j.lastRecords() {
		p.trigger.Prime(app, n)
	}
	return p, nil
}

// Store returns the pipeline's run-record store.
func (p *Pipeline) Store() *Store { return p.store }

// Journal returns the pipeline's audit journal.
func (p *Pipeline) Journal() *Journal { return p.journal }

// Promoter returns the promotion stage (model files, rollback).
func (p *Pipeline) Promoter() *Promoter { return p.prom }

// Kick forces the next RunOnce for app to retrain regardless of how
// many records arrived.
func (p *Pipeline) Kick(app string) { p.trigger.Kick(app) }

// KickReason forces the next RunOnce for app to retrain and records why,
// so the cycle's journal entry names the signal (e.g. a drift monitor's
// coverage-breach diagnosis).
func (p *Pipeline) KickReason(app, reason string) { p.trigger.KickReason(app, reason) }

// KickOrigin is KickReason plus the originating identity — typically
// the X-Request-Id of the /v1/observe call whose observation breached
// the drift floor — which the cycle's journal entry persists as Origin,
// closing the trace from ingest to promotion.
func (p *Pipeline) KickOrigin(app, reason, origin string) { p.trigger.KickOrigin(app, reason, origin) }

// Rollback reverts app to the generation promoted before the currently
// active one and journals the event. now is an optional timestamp
// stamped by the caller (the CLI boundary); empty keeps the journal
// deterministic.
func (p *Pipeline) Rollback(app, now string) (int, error) {
	return p.prom.Rollback(app, now)
}

// InstallActive loads every app's active generation from disk into the
// registry, so a restarted serve process resumes from the journal's
// state. Apps without a promoted generation are skipped.
func (p *Pipeline) InstallActive() error {
	return p.prom.InstallActive()
}

// RunAll runs one cycle for every app in the store, in sorted order.
// Per-app errors abort the sweep (the store and journal are shared
// state; continuing past a journal write failure would corrupt the
// trigger bookkeeping).
func (p *Pipeline) RunAll(now string) ([]*CycleResult, error) {
	var out []*CycleResult
	for _, app := range p.store.Apps() {
		res, err := p.RunOnce(app, now)
		if err != nil {
			return out, fmt.Errorf("pipeline: app %q: %w", app, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// RunOnce executes one full cycle for app: trigger check, candidate
// training on the store's non-holdout slice, gate evaluation against
// the incumbent, and promotion (or journaled rejection). now is an
// optional caller-stamped timestamp recorded in journal entries; the
// pipeline itself never reads the clock.
func (p *Pipeline) RunOnce(app, now string) (*CycleResult, error) {
	count := p.store.Count(app)
	due, why := p.trigger.Due(app, count)
	if !due {
		p.obs.count("skipped")
		return &CycleResult{App: app, Skipped: true, Reason: why}, nil
	}
	// Origin rides with the pending kick; read it before Mark consumes it.
	origin := p.trigger.Origin(app)

	gen := p.journal.NextGen()
	res := &CycleResult{App: app, Gen: gen, Reason: why, Origin: origin}
	rt := p.obs.startRun(app, gen)
	defer rt.Finish(0)

	table, ok := p.store.Table(app)
	if !ok || table.Len() == 0 {
		return nil, fmt.Errorf("pipeline: app %q has no records", app)
	}
	train, holdout := SplitHoldout(table, p.cfg.Gate.HoldoutDenominator)

	fitClock := rt.StartSpan()
	cand, err := p.fitCandidate(app, gen, train)
	p.obs.stage(rt, "fit", fitClock)
	if err != nil {
		// A fit failure (e.g. too few complete configurations) is a
		// journaled rejection, not a pipeline error: the store may simply
		// not have accumulated enough data yet, and the serve loop must
		// keep running.
		res.Gate = GateResult{Reason: fmt.Sprintf("fit: %v", err)}
		if jerr := p.journal.Append(Entry{
			Gen: gen, App: app, Event: EventRejected,
			Reason: res.Gate.Reason, Records: count, Trigger: why, Origin: origin, Time: now,
		}); jerr != nil {
			return nil, jerr
		}
		p.obs.count(EventRejected)
		p.trigger.Mark(app, count)
		return res, nil
	}

	// Calibrate conformal intervals on the same holdout slice the gate
	// judges with: data the candidate never trained on, which is exactly
	// the exchangeability split-conformal needs. The artifact rides in
	// the model's metadata so it promotes (and hot-swaps) atomically with
	// the generation it describes.
	calClock := rt.StartSpan()
	cand.Meta.Calibration = calibrate(cand, holdout)
	p.obs.stage(rt, "calibrate", calClock)

	inc, incGen, err := p.prom.ActiveModel(app)
	if err != nil {
		return nil, fmt.Errorf("pipeline: loading incumbent for %q: %w", app, err)
	}

	gateClock := rt.StartSpan()
	res.Gate = EvaluateGate(cand, inc, holdout, cand.Cfg.LargeScales, p.cfg.Gate)
	p.obs.stage(rt, "gate", gateClock)
	entry := Entry{
		Gen:       gen,
		App:       app,
		Records:   count,
		TrainHash: cand.Meta.TrainHash,
		Incumbent: incGen,
		Gate:      &res.Gate,
		Trigger:   why,
		Origin:    origin,
		Time:      now,
	}
	if !res.Gate.Promote {
		entry.Event = EventRejected
		entry.Reason = res.Gate.Reason
		if err := p.journal.Append(entry); err != nil {
			return nil, err
		}
		p.obs.count(EventRejected)
		p.trigger.Mark(app, count)
		return res, nil
	}

	promClock := rt.StartSpan()
	path, sha, err := p.prom.Promote(cand, app, gen)
	p.obs.stage(rt, "promote", promClock)
	if err != nil {
		return nil, fmt.Errorf("pipeline: promoting %q gen %d: %w", app, gen, err)
	}
	entry.Event = EventPromoted
	entry.Reason = res.Gate.Reason
	entry.ModelPath = filepath.Base(path)
	entry.ModelSHA = sha
	if err := p.journal.Append(entry); err != nil {
		return nil, err
	}
	p.prom.install(app, gen, cand, "gate passed: "+res.Gate.Reason)
	p.obs.count(EventPromoted)
	p.trigger.Mark(app, count)
	res.Promoted = true
	res.Path = path
	return res, nil
}

// fitCandidate trains one candidate model with the cycle's derived seed
// and stamps its provenance metadata.
func (p *Pipeline) fitCandidate(app string, gen int, train *dataset.Table) (*core.TwoLevelModel, error) {
	m, err := core.Fit(deriveRNG(p.cfg.Seed, app, gen), train, p.cfg.Core)
	if err != nil {
		return nil, err
	}
	m.Meta = core.ModelMeta{App: app, Generation: gen, TrainHash: TableHash(train)}
	// Compile once here so gate evaluation, calibration, and — after
	// promotion — serving all run the flattened inference kernels. The
	// compiled form is derived state and stays out of the saved artifact.
	m.Compile()
	return m, nil
}

// deriveRNG returns the generator for one (app, generation) cycle: the
// app selects an rng stream (FNV-1a of its name xor'd into the seed)
// and the generation selects the stream's position, so every cycle
// draws an independent sequence yet reruns of the same cycle are
// byte-identical.
func deriveRNG(seed uint64, app string, gen int) *rng.Source {
	return rng.NewStream(seed^fnvHash(app), uint64(gen))
}

// fnvHash is FNV-1a of s — stable across runs and Go releases.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // hash.Hash.Write never fails
	return h.Sum64()
}

// TableHash returns the SHA-256 hex digest of the table's canonical CSV
// serialization; two tables hash equal iff they hold the same runs in
// the same order.
func TableHash(t *dataset.Table) string {
	h := sha256.New()
	if err := t.WriteCSV(h); err != nil {
		// hash.Hash.Write never fails, so WriteCSV over it cannot either;
		// keep the impossible branch loud rather than silent.
		panic(fmt.Sprintf("pipeline: hashing table: %v", err))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
