package pipeline

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestJournalAppendReplayAndGenerations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.NextGen(); got != 1 {
		t.Fatalf("NextGen of empty journal = %d, want 1", got)
	}
	entries := []Entry{
		{Gen: 1, App: "smg", Event: EventPromoted, Records: 10, ModelSHA: "aa"},
		{Gen: 2, App: "smg", Event: EventRejected, Records: 20, Reason: "worse"},
		{Gen: 3, App: "lulesh", Event: EventPromoted, Records: 5},
		{Gen: 4, App: "smg", Event: EventPromoted, Records: 30},
	}
	for _, e := range entries {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.NextGen(); got != 5 {
		t.Fatalf("NextGen = %d, want 5", got)
	}
	if gen, ok := j.Active("smg"); !ok || gen != 4 {
		t.Fatalf("Active(smg) = %d, %v", gen, ok)
	}
	if gen, ok := j.PreviousPromoted("smg", 4); !ok || gen != 1 {
		t.Fatalf("PreviousPromoted(smg, 4) = %d, %v; want 1", gen, ok)
	}
	if _, ok := j.PreviousPromoted("smg", 1); ok {
		t.Fatal("PreviousPromoted below the first promotion succeeded")
	}
	if got := j.lastRecords(); got["smg"] != 30 || got["lulesh"] != 5 {
		t.Fatalf("lastRecords = %v", got)
	}

	// Replay from disk reproduces everything.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j2.Entries(), j.Entries()) {
		t.Fatal("replayed journal differs")
	}
	if got := j2.NextGen(); got != 5 {
		t.Fatalf("replayed NextGen = %d, want 5", got)
	}

	// A rollback references an older generation; Active follows it.
	if err := j2.Append(Entry{Gen: 1, App: "smg", Event: EventRollback}); err != nil {
		t.Fatal(err)
	}
	if gen, ok := j2.Active("smg"); !ok || gen != 1 {
		t.Fatalf("Active after rollback = %d, %v; want 1", gen, ok)
	}
	// But non-rollback events must never reuse a generation.
	if err := j2.Append(Entry{Gen: 3, App: "smg", Event: EventPromoted}); err == nil {
		t.Fatal("generation reuse accepted")
	}
	if err := j2.Append(Entry{Gen: 6, App: "smg", Event: "renamed"}); err == nil {
		t.Fatal("unknown event accepted")
	}
	if err := j2.Append(Entry{Gen: 6, Event: EventPromoted}); err == nil {
		t.Fatal("entry without app accepted")
	}
}
