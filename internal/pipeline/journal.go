package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal event kinds.
const (
	EventPromoted = "promoted"
	EventRejected = "rejected"
	EventRollback = "rollback"
)

// Entry is one audit record: what the pipeline did, to which app, at
// which generation, and on what evidence. Time is stamped by the caller
// at the cmd/ boundary (the pipeline itself never reads the clock), so
// a journal written without timestamps is byte-deterministic.
type Entry struct {
	Gen    int    `json:"gen"`
	App    string `json:"app"`
	Event  string `json:"event"`
	Reason string `json:"reason,omitempty"`

	// Records is the store's record count for the app when the cycle ran;
	// it doubles as persisted trigger state across restarts.
	Records int `json:"records,omitempty"`

	// TrainHash identifies the exact training set; ModelPath/ModelSHA the
	// promoted artifact (base name, content hash). Incumbent is the
	// generation the candidate was judged against (0 = none).
	TrainHash string `json:"train_hash,omitempty"`
	ModelPath string `json:"model_path,omitempty"`
	ModelSHA  string `json:"model_sha,omitempty"`
	Incumbent int    `json:"incumbent,omitempty"`

	// Gate carries the verdict's evidence for promoted/rejected events.
	Gate *GateResult `json:"gate,omitempty"`

	// Trigger records why the cycle ran: the record-count policy, a plain
	// kick, or a drift kick carrying the breach diagnosis — so a promoted
	// generation is traceable to the signal that caused it.
	Trigger string `json:"trigger,omitempty"`

	// Origin is the opaque identity the triggering signal arrived with —
	// for drift kicks, the X-Request-Id of the /v1/observe call whose
	// observation breached the coverage floor — completing the trace from
	// an HTTP request through the monitor to the promoted generation.
	Origin string `json:"origin,omitempty"`

	// Time is an RFC 3339 timestamp stamped by the CLI boundary; empty in
	// deterministic (test, replay) runs.
	Time string `json:"time,omitempty"`
}

// Journal is the append-only audit log, one JSON object per line,
// fsync'd per append. It owns the monotonic generation counter: every
// training cycle consumes the next generation whether it promotes or
// not, so generation numbers totally order all pipeline decisions.
type Journal struct {
	path string

	mu      sync.Mutex
	entries []Entry
	maxGen  int
}

// OpenJournal opens (or creates) the journal at path and replays it.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return j, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("pipeline: journal %s line %d: %w", path, line, err)
		}
		j.entries = append(j.entries, e)
		if e.Gen > j.maxGen {
			j.maxGen = e.Gen
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: journal %s: %w", path, err)
	}
	return j, nil
}

// Append validates, persists (fsync), and records one entry. Entries
// must not reuse a generation below the journal's high-water mark
// except for rollbacks, which reference an older generation by design.
func (j *Journal) Append(e Entry) error {
	switch e.Event {
	case EventPromoted, EventRejected, EventRollback:
	default:
		return fmt.Errorf("pipeline: journal entry with unknown event %q", e.Event)
	}
	if e.App == "" {
		return fmt.Errorf("pipeline: journal entry without app")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if e.Event != EventRollback && e.Gen <= j.maxGen {
		return fmt.Errorf("pipeline: journal entry reuses generation %d (max %d)", e.Gen, j.maxGen)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if err := appendLine(j.path, line, !fileExists(j.path)); err != nil {
		return err
	}
	j.entries = append(j.entries, e)
	if e.Gen > j.maxGen {
		j.maxGen = e.Gen
	}
	return nil
}

// fileExists reports whether path exists.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Entries returns a copy of the journal's entries in order.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Entry(nil), j.entries...)
}

// NextGen returns the next unused generation number (monotonic, shared
// across apps so the journal totally orders decisions).
func (j *Journal) NextGen() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxGen + 1
}

// Active returns app's currently active generation: the target of the
// latest promoted or rollback event. ok is false when the app has never
// promoted.
func (j *Journal) Active(app string) (gen int, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := len(j.entries) - 1; i >= 0; i-- {
		e := j.entries[i]
		if e.App == app && (e.Event == EventPromoted || e.Event == EventRollback) {
			return e.Gen, true
		}
	}
	return 0, false
}

// PreviousPromoted returns the largest promoted generation for app that
// is strictly below gen — the rollback target.
func (j *Journal) PreviousPromoted(app string, gen int) (int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	best, ok := 0, false
	for _, e := range j.entries {
		if e.App == app && e.Event == EventPromoted && e.Gen < gen && e.Gen > best {
			best, ok = e.Gen, true
		}
	}
	return best, ok
}

// lastRecords returns, per app, the store record count of its latest
// entry carrying one — the persisted trigger baseline.
func (j *Journal) lastRecords() map[string]int {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := map[string]int{}
	for _, e := range j.entries {
		if e.Records > 0 {
			out[e.App] = e.Records
		}
	}
	return out
}
