package pipeline

import (
	"fmt"
	"sync"
)

// Trigger is the retrain policy: an application is due for a training
// cycle when at least minNew records arrived since its last handled
// cycle, or when it was explicitly kicked. The trigger only bookkeeps —
// the pipeline asks Due, runs the cycle, and acknowledges with Mark —
// so a rejected candidate still consumes its trigger (no retrain storm
// over unchanged data; Kick forces a rerun).
type Trigger struct {
	minNew int

	mu     sync.Mutex
	kicked map[string]bool
	seen   map[string]int // store record count at the last handled cycle
}

// NewTrigger builds a trigger firing after minNew new records (>= 1).
func NewTrigger(minNew int) *Trigger {
	if minNew < 1 {
		minNew = 1
	}
	return &Trigger{minNew: minNew, kicked: map[string]bool{}, seen: map[string]int{}}
}

// Prime seeds the last-handled record count for app, used to rebuild
// state from the journal when a pipeline reopens.
func (t *Trigger) Prime(app string, count int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if count > t.seen[app] {
		t.seen[app] = count
	}
}

// Kick forces the next Due check for app to fire.
func (t *Trigger) Kick(app string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.kicked[app] = true
}

// Due reports whether app should retrain given its current record
// count, with a human-readable reason either way.
func (t *Trigger) Due(app string, count int) (bool, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.kicked[app] {
		return true, "kicked"
	}
	fresh := count - t.seen[app]
	if fresh >= t.minNew {
		return true, fmt.Sprintf("%d new records (threshold %d)", fresh, t.minNew)
	}
	return false, fmt.Sprintf("%d of %d new records", fresh, t.minNew)
}

// Mark acknowledges a handled cycle: the kick (if any) is consumed and
// the record count becomes the new baseline.
func (t *Trigger) Mark(app string, count int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.kicked, app)
	if count > t.seen[app] {
		t.seen[app] = count
	}
}
