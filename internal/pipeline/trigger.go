package pipeline

import (
	"fmt"
	"sync"
)

// Trigger is the retrain policy: an application is due for a training
// cycle when at least minNew records arrived since its last handled
// cycle, or when it was explicitly kicked. The trigger only bookkeeps —
// the pipeline asks Due, runs the cycle, and acknowledges with Mark —
// so a rejected candidate still consumes its trigger (no retrain storm
// over unchanged data; Kick forces a rerun).
type Trigger struct {
	minNew int

	mu     sync.Mutex
	kicked map[string]string // app -> kick reason
	seen   map[string]int    // store record count at the last handled cycle
}

// NewTrigger builds a trigger firing after minNew new records (>= 1).
func NewTrigger(minNew int) *Trigger {
	if minNew < 1 {
		minNew = 1
	}
	return &Trigger{minNew: minNew, kicked: map[string]string{}, seen: map[string]int{}}
}

// Prime seeds the last-handled record count for app, used to rebuild
// state from the journal when a pipeline reopens.
func (t *Trigger) Prime(app string, count int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if count > t.seen[app] {
		t.seen[app] = count
	}
}

// Kick forces the next Due check for app to fire.
func (t *Trigger) Kick(app string) { t.KickReason(app, "") }

// KickReason forces the next Due check for app to fire and records why
// (e.g. a drift monitor's breach diagnosis) so the journal can name the
// signal. An existing pending reason is kept: the first cause wins until
// the cycle consumes it.
func (t *Trigger) KickReason(app, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.kicked[app]; !ok || cur == "" {
		t.kicked[app] = reason
	}
}

// Due reports whether app should retrain given its current record
// count, with a human-readable reason either way.
func (t *Trigger) Due(app string, count int) (bool, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if reason, ok := t.kicked[app]; ok {
		if reason == "" {
			return true, "kicked"
		}
		return true, "kicked: " + reason
	}
	fresh := count - t.seen[app]
	if fresh >= t.minNew {
		return true, fmt.Sprintf("%d new records (threshold %d)", fresh, t.minNew)
	}
	return false, fmt.Sprintf("%d of %d new records", fresh, t.minNew)
}

// Mark acknowledges a handled cycle: the kick (if any) is consumed and
// the record count becomes the new baseline.
func (t *Trigger) Mark(app string, count int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.kicked, app)
	if count > t.seen[app] {
		t.seen[app] = count
	}
}
