package pipeline

import (
	"fmt"
	"sync"
)

// Trigger is the retrain policy: an application is due for a training
// cycle when at least minNew records arrived since its last handled
// cycle, or when it was explicitly kicked. The trigger only bookkeeps —
// the pipeline asks Due, runs the cycle, and acknowledges with Mark —
// so a rejected candidate still consumes its trigger (no retrain storm
// over unchanged data; Kick forces a rerun).
type Trigger struct {
	minNew int

	mu     sync.Mutex
	kicked map[string]kickInfo // app -> pending kick
	seen   map[string]int      // store record count at the last handled cycle
}

// kickInfo is one pending forced retrain: why it was requested and the
// opaque origin identifier (e.g. the HTTP request ID of the observation
// that breached the drift floor) for end-to-end traceability.
type kickInfo struct {
	reason string
	origin string
}

// NewTrigger builds a trigger firing after minNew new records (>= 1).
func NewTrigger(minNew int) *Trigger {
	if minNew < 1 {
		minNew = 1
	}
	return &Trigger{minNew: minNew, kicked: map[string]kickInfo{}, seen: map[string]int{}}
}

// Prime seeds the last-handled record count for app, used to rebuild
// state from the journal when a pipeline reopens.
func (t *Trigger) Prime(app string, count int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if count > t.seen[app] {
		t.seen[app] = count
	}
}

// Kick forces the next Due check for app to fire.
func (t *Trigger) Kick(app string) { t.KickOrigin(app, "", "") }

// KickReason forces the next Due check for app to fire and records why
// (e.g. a drift monitor's breach diagnosis) so the journal can name the
// signal.
func (t *Trigger) KickReason(app, reason string) { t.KickOrigin(app, reason, "") }

// KickOrigin is KickReason carrying the originating identity — the
// request ID of the observation whose arrival breached the drift floor
// — so the cycle's journal entry links the retrain back to the exact
// ingest that provoked it. An existing pending reason is kept: the
// first cause wins until the cycle consumes it.
func (t *Trigger) KickOrigin(app, reason, origin string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.kicked[app]; !ok || cur.reason == "" {
		t.kicked[app] = kickInfo{reason: reason, origin: origin}
	}
}

// Origin returns the pending kick's origin identifier ("" when no kick
// is pending or the kick carried none). Read it alongside Due; Mark
// consumes it with the kick.
func (t *Trigger) Origin(app string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kicked[app].origin
}

// Due reports whether app should retrain given its current record
// count, with a human-readable reason either way.
func (t *Trigger) Due(app string, count int) (bool, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if k, ok := t.kicked[app]; ok {
		if k.reason == "" {
			return true, "kicked"
		}
		return true, "kicked: " + k.reason
	}
	fresh := count - t.seen[app]
	if fresh >= t.minNew {
		return true, fmt.Sprintf("%d new records (threshold %d)", fresh, t.minNew)
	}
	return false, fmt.Sprintf("%d of %d new records", fresh, t.minNew)
}

// Mark acknowledges a handled cycle: the kick (if any) is consumed and
// the record count becomes the new baseline.
func (t *Trigger) Mark(app string, count int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.kicked, app)
	if count > t.seen[app] {
		t.seen[app] = count
	}
}
