package pipeline

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/serving"
)

// Promoter is the promotion stage: it owns the generations directory of
// model files (one per promoted generation, named app-gen000042.json),
// installs winners into the serving registry, and performs one-step
// rollback. Model files are written with core.Save's temp+rename
// protocol, so a serving process reloading from disk can never observe
// a torn file; files of superseded generations are kept — they are the
// rollback targets and the audit trail's artifacts.
type Promoter struct {
	dir     string
	journal *Journal
	reg     *serving.Registry // optional
}

// NewPromoter builds a promoter writing into dir. reg may be nil.
func NewPromoter(dir string, j *Journal, reg *serving.Registry) *Promoter {
	return &Promoter{dir: dir, journal: j, reg: reg}
}

// ModelPath returns the on-disk path of one generation's model file.
func (p *Promoter) ModelPath(app string, gen int) string {
	return filepath.Join(p.dir, fmt.Sprintf("%s-gen%06d.json", app, gen))
}

// Promote atomically writes the candidate as a generation-numbered
// model file and returns its path and content hash. The journal entry
// and registry install are the caller's next steps (the pipeline
// journals before installing, so a crash between the two is recovered
// by InstallActive).
func (p *Promoter) Promote(m *core.TwoLevelModel, app string, gen int) (path, sha string, err error) {
	path = p.ModelPath(app, gen)
	if err := m.Save(path); err != nil {
		return "", "", err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	return path, fmt.Sprintf("%x", sha256.Sum256(raw)), nil
}

// install hot-swaps the model into the registry (when attached) under
// the app's name and notes the promotion for /metrics.
func (p *Promoter) install(app string, gen int, m *core.TwoLevelModel, detail string) {
	if p.reg == nil {
		return
	}
	p.reg.Install(app, m)
	p.reg.NotePromotion(serving.PromotionStatus{
		App: app, Generation: gen, Outcome: serving.PromotionPromoted, Detail: detail,
	})
}

// ActiveModel loads app's currently active generation from disk.
// A nil model with a nil error means no generation has been promoted.
func (p *Promoter) ActiveModel(app string) (*core.TwoLevelModel, int, error) {
	gen, ok := p.journal.Active(app)
	if !ok {
		return nil, 0, nil
	}
	m, err := core.Load(p.ModelPath(app, gen))
	if err != nil {
		return nil, 0, fmt.Errorf("active generation %d: %w", gen, err)
	}
	return m, gen, nil
}

// InstallActive installs every app's active generation into the
// registry — the restart path: the journal says what should be
// serving, the generations directory has the bytes.
func (p *Promoter) InstallActive() error {
	if p.reg == nil {
		return nil
	}
	apps := map[string]bool{}
	for _, e := range p.journal.Entries() {
		apps[e.App] = true
	}
	for _, app := range sortedKeys(apps) {
		m, _, err := p.ActiveModel(app)
		if err != nil {
			return fmt.Errorf("pipeline: app %q: %w", app, err)
		}
		if m == nil {
			continue
		}
		p.reg.Install(app, m)
	}
	return nil
}

// Rollback reverts app to the generation promoted before the currently
// active one: the model file is re-read, journaled as the new active
// generation, and hot-swapped into the registry. Rolling back twice
// walks back one more promotion each time until none remain.
func (p *Promoter) Rollback(app, now string) (int, error) {
	cur, ok := p.journal.Active(app)
	if !ok {
		return 0, fmt.Errorf("pipeline: app %q has no promoted generation to roll back", app)
	}
	prev, ok := p.journal.PreviousPromoted(app, cur)
	if !ok {
		return 0, fmt.Errorf("pipeline: app %q has no generation before %d to roll back to", app, cur)
	}
	m, err := core.Load(p.ModelPath(app, prev))
	if err != nil {
		return 0, fmt.Errorf("pipeline: loading rollback target gen %d: %w", prev, err)
	}
	if err := p.journal.Append(Entry{
		Gen: prev, App: app, Event: EventRollback,
		Reason: fmt.Sprintf("rolled back from generation %d", cur), Time: now,
	}); err != nil {
		return 0, err
	}
	if p.reg != nil {
		p.reg.Install(app, m)
		p.reg.NotePromotion(serving.PromotionStatus{
			App: app, Generation: prev, Outcome: serving.PromotionRollback,
			Detail: fmt.Sprintf("rolled back from generation %d", cur),
		})
	}
	return prev, nil
}

// sortedKeys returns a map's keys in sorted order (deterministic
// iteration for installs and reports).
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
