package pipeline

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/uncertainty"
)

// calibrate computes a candidate's split-conformal calibration on the
// holdout slice: for every held-out configuration with a measurement at
// a target large scale, the absolute log-residual between the model's
// prediction and the measured runtime, bucketed per scale and per shape
// cluster. Returns nil when the holdout has no large-scale measurements
// (the model then serves ensemble-spread fallback intervals).
//
// The holdout is the parameter-hash slice the gate already uses — data
// the candidate never saw in training, which is the exchangeability
// requirement for conformal validity. Iteration order is GroupByConfig's
// deterministic ParamKey order, so the artifact is byte-reproducible.
func calibrate(m *core.TwoLevelModel, holdout *dataset.Table) *uncertainty.Calibration {
	if holdout == nil || holdout.Len() == 0 {
		return nil
	}
	scales := m.Cfg.LargeScales
	scaleIdx := make(map[int]int, len(scales))
	for i, s := range scales {
		scaleIdx[s] = i
	}
	cal := uncertainty.NewCalibrator(scales, m.Clusters())
	pred := make([]float64, len(scales))
	for _, c := range holdout.GroupByConfig() {
		predicted := false
		for s := range c.Runtimes {
			if _, ok := scaleIdx[s]; ok {
				predicted = true
				break
			}
		}
		if !predicted {
			continue // nothing measured at a target scale; skip the predict
		}
		m.PredictInto(c.Params, pred)
		cluster := m.AssignCluster(c.Params)
		for s, actual := range c.Runtimes {
			if i, ok := scaleIdx[s]; ok {
				cal.Add(cluster, i, pred[i], actual)
			}
		}
	}
	return cal.Finish()
}
