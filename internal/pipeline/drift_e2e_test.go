package pipeline

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/serving"
	"repro/internal/uncertainty"
)

// TestDriftKicksRetraining is the full feedback loop: a generation is
// promoted and served, measured runtimes drift away from its intervals,
// the serving monitor breaches its coverage floor, the breach kicks the
// pipeline, and the resulting cycle's journal entry names the drift
// trigger.
func TestDriftKicksRetraining(t *testing.T) {
	_, more := testHistories(t)
	store := newSeededStore(t, t.TempDir())
	reg := serving.NewRegistry()

	var p *Pipeline
	opts := serving.DefaultOptions()
	opts.Drift = uncertainty.DriftConfig{Window: 16, MinObservations: 8, Coverage: 0.75, Floor: 0.6}
	opts.OnDrift = func(model, reason, origin string) { p.KickOrigin(model, reason, origin) }
	srv := serving.New(reg, opts)
	h := srv.Handler()

	p, err := New(store, t.TempDir(), testPipelineConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}

	// ---- bootstrap: promote generation 1 into the live registry ----
	res, err := p.RunOnce(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("bootstrap cycle: %+v", res)
	}

	// The promoted generation serves conformal intervals. Coverage 0.75
	// is what the fixture's 3-configuration large-scale holdout can
	// certify (ceil((3+1)*0.75) = 3 ≤ 3; anything higher honestly falls
	// back to the ensemble band).
	probe := more.Runs[0].Params
	var pr struct {
		Results []struct {
			Runtimes  []float64 `json:"runtimes"`
			Intervals []struct {
				Scale  int     `json:"scale"`
				Lo     float64 `json:"lo"`
				Hi     float64 `json:"hi"`
				Source string  `json:"source"`
			} `json:"intervals"`
		} `json:"results"`
	}
	if code := doJSON(t, h, "POST", "/v1/predict",
		map[string]any{"model": testApp, "params": probe, "interval": 0.75}, &pr); code != http.StatusOK {
		t.Fatalf("predict returned %d", code)
	}
	ivs := pr.Results[0].Intervals
	if len(ivs) != len(testLarge) {
		t.Fatalf("%d intervals", len(ivs))
	}
	conformal := 0
	for _, iv := range ivs {
		if iv.Source == "conformal" {
			conformal++
		}
	}
	if conformal == 0 {
		t.Fatalf("pipeline-promoted model served no conformal intervals: %+v", ivs)
	}

	// ---- drift: the measured world shifts 3x away from the model ----
	scale := testLarge[0]
	predicted := pr.Results[0].Runtimes[0]
	kicked := false
	for i := 0; i < 12 && !kicked; i++ {
		var or struct {
			Results []struct {
				Covered bool   `json:"covered"`
				Drift   bool   `json:"drift"`
				Reason  string `json:"reason"`
			} `json:"results"`
		}
		if code := doJSON(t, h, "POST", "/v1/observe", map[string]any{
			"model": testApp, "params": probe, "scale": scale, "runtime": predicted * 3,
		}, &or); code != http.StatusOK {
			t.Fatalf("observe returned %d", code)
		}
		if or.Results[0].Drift {
			kicked = true
			if !strings.Contains(or.Results[0].Reason, "drift") {
				t.Fatalf("breach reason %q", or.Results[0].Reason)
			}
		}
	}
	if !kicked {
		t.Fatal("12 shifted observations never breached the coverage floor")
	}

	// ---- the kick retrains without any new records ----
	res, err = p.RunOnce(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped {
		t.Fatalf("drift-kicked cycle was skipped: %+v", res)
	}
	if !strings.Contains(res.Reason, "drift") {
		t.Fatalf("cycle reason %q does not name the drift trigger", res.Reason)
	}

	// ---- the journal names the trigger on the cycle's entry ----
	entries := p.Journal().Entries()
	last := entries[len(entries)-1]
	if last.Gen != res.Gen {
		t.Fatalf("last journal entry gen %d, cycle gen %d", last.Gen, res.Gen)
	}
	if !strings.Contains(last.Trigger, "drift") || !strings.Contains(last.Trigger, "coverage below floor") {
		t.Fatalf("journal trigger %q does not record the drift diagnosis", last.Trigger)
	}

	// A subsequent cycle with no kick and no new records is quiet again.
	res, err = p.RunOnce(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped {
		t.Fatalf("post-drift cycle ran without a trigger: %+v", res)
	}
}
