package pipeline

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// pipelineStages are the timed phases of one training cycle, in
// execution order. Each gets a span in the cycle's trace and a series
// of the pipeline_stage_duration_seconds histogram.
var pipelineStages = []string{"fit", "calibrate", "gate", "promote"}

// stageBounds spans the plausible range of training-cycle stage
// latencies: sub-millisecond gate checks up to multi-second fits on
// large stores.
func stageBounds() []time.Duration {
	return []time.Duration{
		time.Millisecond,
		10 * time.Millisecond,
		100 * time.Millisecond,
		time.Second,
		10 * time.Second,
	}
}

// pipelineObs holds the pipeline's observability handles. A nil
// *pipelineObs (EnableObs never called) turns every method into a
// no-op, so RunOnce needs no guards. Stage durations are measured by
// the trace spans (the obs clock boundary), so the histograms populate
// only when a tracer is attached — the pipeline itself stays
// clock-free either way.
type pipelineObs struct {
	tracer *obs.Tracer
	cycles map[string]*obs.Counter   // outcome ("promoted"/"rejected"/"skipped") -> counter
	stages map[string]*obs.Histogram // stage name -> duration histogram
}

// EnableObs attaches a metrics registry and a trace ring to the
// pipeline. Each subsequent training cycle records a "pipeline"-kind
// trace named after the app with ID "run-<app>-gen<N>" and per-stage
// spans (fit, calibrate, gate, promote), increments
// pipeline_cycles_total by outcome, and feeds the span durations into
// pipeline_stage_duration_seconds. Either argument may be nil to
// enable only the other half. Call before the first cycle; not safe
// concurrently with RunOnce.
func (p *Pipeline) EnableObs(reg *obs.Registry, tracer *obs.Tracer) {
	po := &pipelineObs{tracer: tracer}
	if reg != nil {
		po.cycles = map[string]*obs.Counter{}
		for _, ev := range []string{EventPromoted, EventRejected, "skipped"} {
			po.cycles[ev] = reg.Counter("pipeline_cycles_total",
				"Training cycles run, by outcome.", obs.L("event", ev))
		}
		po.stages = map[string]*obs.Histogram{}
		for _, st := range pipelineStages {
			po.stages[st] = reg.Histogram("pipeline_stage_duration_seconds",
				"Latency of training-cycle stages.", stageBounds(), obs.L("stage", st))
		}
	}
	p.obs = po
}

// startRun opens the trace for one training cycle. The run ID is
// deterministic — "run-<app>-gen<N>" — so journal origins and traces
// cross-reference by construction.
func (po *pipelineObs) startRun(app string, gen int) *obs.ReqTrace {
	if po == nil || po.tracer == nil {
		return nil
	}
	return po.tracer.StartRequest("pipeline", app, fmt.Sprintf("run-%s-gen%d", app, gen))
}

// stage closes the span opened by rt.StartSpan under name and feeds
// its duration into the stage histogram. With tracing off the duration
// is 0 (no clock was read) and nothing is recorded.
func (po *pipelineObs) stage(rt *obs.ReqTrace, name string, c obs.SpanClock) {
	if po == nil {
		return
	}
	d := rt.EndSpan(name, c)
	if d <= 0 || po.stages == nil {
		return
	}
	if h := po.stages[name]; h != nil {
		h.Observe(d)
	}
}

// count increments the cycle-outcome counter.
func (po *pipelineObs) count(event string) {
	if po == nil || po.cycles == nil {
		return
	}
	if c := po.cycles[event]; c != nil {
		c.Inc()
	}
}
