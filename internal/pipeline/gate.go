package pipeline

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// GateConfig controls candidate-vs-incumbent evaluation.
type GateConfig struct {
	// HoldoutDenominator D carves out every configuration whose parameter
	// key hashes to 0 mod D as held-out evaluation data (~1/D of the
	// store, the same slice every cycle so the incumbent was never
	// trained on it either). <= 1 selects the default of 5.
	HoldoutDenominator int
	// AllowedRegression is the relative MAPE slack: a candidate is
	// promoted when candidateMAPE <= incumbentMAPE * (1+AllowedRegression).
	// 0 means "at least as good"; 0.05 tolerates a 5% relative
	// regression (useful when fresh data shifts the holdout); negative
	// values demand strict improvement. NaN is never promoted past a
	// finite incumbent.
	AllowedRegression float64
}

// DefaultGateConfig returns the production defaults: a 20% holdout and
// a 5% tolerated relative regression.
func DefaultGateConfig() GateConfig {
	return GateConfig{HoldoutDenominator: 5, AllowedRegression: 0.05}
}

// withDefaults fills zero fields.
func (g GateConfig) withDefaults() GateConfig {
	if g.HoldoutDenominator <= 1 {
		g.HoldoutDenominator = 5
	}
	return g
}

// ScaleMAPE is one target scale's error breakdown over the holdout.
type ScaleMAPE struct {
	Scale     int     `json:"scale"`
	Candidate float64 `json:"candidate"`
	Incumbent float64 `json:"incumbent,omitempty"`
	N         int     `json:"n"` // holdout configurations measured at this scale
}

// GateResult is the gate's verdict with its evidence.
type GateResult struct {
	Promote bool   `json:"promote"`
	Reason  string `json:"reason"`
	// Candidate and Incumbent are pooled MAPEs over every (config, scale)
	// holdout point; NaN when no point was measurable.
	Candidate float64     `json:"candidate_mape"`
	Incumbent float64     `json:"incumbent_mape,omitempty"`
	PerScale  []ScaleMAPE `json:"per_scale,omitempty"`
	// HoldoutConfigs counts held-out configurations with at least one
	// large-scale measurement.
	HoldoutConfigs int `json:"holdout_configs"`
}

// SplitHoldout deterministically partitions a table's configurations:
// a configuration lands in the holdout iff the FNV-1a hash of its
// parameter key is 0 mod denom. Every run of a configuration stays on
// one side (the unit of generalization is a configuration), and the
// split is a pure function of the parameters — independent of record
// order, store growth, and pipeline generation — so successive
// candidates and their incumbents are always judged on data none of
// them trained on.
func SplitHoldout(t *dataset.Table, denom int) (train, holdout *dataset.Table) {
	if denom <= 1 {
		denom = DefaultGateConfig().HoldoutDenominator
	}
	train = dataset.NewTable(t.App, t.ParamNames)
	holdout = dataset.NewTable(t.App, t.ParamNames)
	for _, run := range t.Runs {
		if heldOut(run.Params, denom) {
			holdout.Runs = append(holdout.Runs, run)
		} else {
			train.Runs = append(train.Runs, run)
		}
	}
	return train, holdout
}

// heldOut reports whether a configuration belongs to the holdout slice.
func heldOut(params []float64, denom int) bool {
	h := fnv.New64a()
	_, _ = h.Write([]byte(dataset.ParamKey(params))) // hash.Hash.Write never fails
	return h.Sum64()%uint64(denom) == 0
}

// EvaluateGate scores a candidate model against the incumbent (nil on
// the first cycle) on the holdout slice at the given target scales and
// renders a promote/reject verdict under cfg. Only held-out
// configurations with measured runtimes at a target scale contribute;
// the breakdown records how many that was per scale. Non-finite MAPEs
// (which drive rejection) are reported as 0 in the result so it stays
// JSON-serializable (encoding/json rejects NaN); the Reason string
// names them.
func EvaluateGate(cand, inc *core.TwoLevelModel, holdout *dataset.Table, scales []int, cfg GateConfig) GateResult {
	res := evaluateGate(cand, inc, holdout, scales, cfg)
	res.Candidate = finiteOrZero(res.Candidate)
	res.Incumbent = finiteOrZero(res.Incumbent)
	for i := range res.PerScale {
		res.PerScale[i].Candidate = finiteOrZero(res.PerScale[i].Candidate)
		res.PerScale[i].Incumbent = finiteOrZero(res.PerScale[i].Incumbent)
	}
	return res
}

// finiteOrZero maps NaN/±Inf to 0 for serialization.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func evaluateGate(cand, inc *core.TwoLevelModel, holdout *dataset.Table, scales []int, cfg GateConfig) GateResult {
	cfg = cfg.withDefaults()
	res := GateResult{Candidate: math.NaN(), Incumbent: math.NaN()}

	var candAll, incAll, trueAll []float64
	configs := holdout.GroupByConfig()
	measured := map[string]bool{}
	for _, scale := range scales {
		var yTrue, yCand, yInc []float64
		for _, c := range configs {
			rt, ok := c.Runtimes[scale]
			if !ok {
				continue
			}
			measured[dataset.ParamKey(c.Params)] = true
			yTrue = append(yTrue, rt)
			yCand = append(yCand, predictAt(cand, c.Params, scale))
			if inc != nil {
				yInc = append(yInc, predictAt(inc, c.Params, scale))
			}
		}
		if len(yTrue) == 0 {
			continue
		}
		sm := ScaleMAPE{Scale: scale, N: len(yTrue), Candidate: stats.MAPE(yTrue, yCand)}
		if inc != nil {
			sm.Incumbent = stats.MAPE(yTrue, yInc)
		}
		res.PerScale = append(res.PerScale, sm)
		trueAll = append(trueAll, yTrue...)
		candAll = append(candAll, yCand...)
		incAll = append(incAll, yInc...)
	}
	res.HoldoutConfigs = len(measured)

	if len(trueAll) == 0 {
		if inc == nil {
			res.Promote = true
			res.Reason = "bootstrap: no incumbent and no large-scale holdout data"
			return res
		}
		res.Reason = "no large-scale holdout data to compare against the incumbent"
		return res
	}

	res.Candidate = stats.MAPE(trueAll, candAll)
	if inc == nil {
		if math.IsNaN(res.Candidate) || math.IsInf(res.Candidate, 0) {
			res.Reason = fmt.Sprintf("candidate MAPE %v is not finite", res.Candidate)
			return res
		}
		res.Promote = true
		res.Reason = fmt.Sprintf("bootstrap: no incumbent; candidate MAPE %.4f on %d holdout configs",
			res.Candidate, res.HoldoutConfigs)
		return res
	}
	res.Incumbent = stats.MAPE(trueAll, incAll)

	limit := res.Incumbent * (1 + cfg.AllowedRegression)
	switch {
	case math.IsNaN(res.Candidate) || math.IsInf(res.Candidate, 0):
		res.Reason = fmt.Sprintf("candidate MAPE %v is not finite", res.Candidate)
	case math.IsNaN(res.Incumbent) || math.IsInf(res.Incumbent, 0):
		// A broken incumbent loses to any finite candidate.
		res.Promote = true
		res.Reason = fmt.Sprintf("incumbent MAPE %v is not finite; candidate %.4f", res.Incumbent, res.Candidate)
	case res.Candidate <= limit:
		res.Promote = true
		res.Reason = fmt.Sprintf("candidate MAPE %.4f <= %.4f (incumbent %.4f, slack %+.0f%%)",
			res.Candidate, limit, res.Incumbent, cfg.AllowedRegression*100)
	default:
		res.Reason = fmt.Sprintf("candidate MAPE %.4f > %.4f (incumbent %.4f, slack %+.0f%%)",
			res.Candidate, limit, res.Incumbent, cfg.AllowedRegression*100)
	}
	return res
}

// predictAt evaluates one model at one scale, tolerating models whose
// target set does not include the scale (NaN contributes a pessimal
// error instead of aborting the gate).
func predictAt(m *core.TwoLevelModel, params []float64, scale int) float64 {
	v, err := m.PredictAt(params, scale)
	if err != nil {
		return math.NaN()
	}
	return v
}
