package pipeline

import "testing"

func TestTriggerCountPolicy(t *testing.T) {
	tr := NewTrigger(10)
	if due, _ := tr.Due("smg", 9); due {
		t.Fatal("due below threshold")
	}
	if due, why := tr.Due("smg", 10); !due {
		t.Fatalf("not due at threshold: %s", why)
	}
	tr.Mark("smg", 10)
	if due, _ := tr.Due("smg", 15); due {
		t.Fatal("due with only 5 fresh records after Mark")
	}
	if due, _ := tr.Due("smg", 20); !due {
		t.Fatal("not due with 10 fresh records after Mark")
	}
}

func TestTriggerKickForcesAndIsConsumed(t *testing.T) {
	tr := NewTrigger(1000)
	tr.Kick("smg")
	if due, why := tr.Due("smg", 0); !due || why != "kicked" {
		t.Fatalf("kick not honored: %v %q", due, why)
	}
	tr.Mark("smg", 0)
	if due, _ := tr.Due("smg", 0); due {
		t.Fatal("kick survived Mark")
	}
	// Kicking one app must not trigger another.
	tr.Kick("smg")
	if due, _ := tr.Due("lulesh", 0); due {
		t.Fatal("kick leaked across apps")
	}
}

func TestTriggerPrimeRestoresBaseline(t *testing.T) {
	tr := NewTrigger(10)
	tr.Prime("smg", 100)
	if due, _ := tr.Due("smg", 105); due {
		t.Fatal("primed trigger fired below threshold")
	}
	if due, _ := tr.Due("smg", 110); !due {
		t.Fatal("primed trigger did not fire at threshold")
	}
	// Prime never moves the baseline backwards.
	tr.Prime("smg", 50)
	if due, _ := tr.Due("smg", 105); due {
		t.Fatal("stale Prime lowered the baseline")
	}
}
