package pipeline

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dataset"
)

// Store is the ingest stage: an append-only run-record store on disk,
// one JSONL file per application under a root directory. Appends are
// fsync'd so an acknowledged record survives a crash; rewrites
// (Compact) go through the temp+rename idiom so readers never observe
// a torn file. Records are deduplicated by content hash, making both
// re-imports of the same CSV and crash-retry appends idempotent.
//
// File layout: line 1 is a header object naming the application and its
// parameter columns; every further line is one record. The file is
// self-contained — it can be rebuilt into a dataset.Table without
// external schema.
type Store struct {
	dir string

	mu   sync.Mutex
	apps map[string]*appPartition
}

// appPartition is the in-memory index of one application's file.
type appPartition struct {
	paramNames []string
	hashes     map[string]bool
	records    []Record
}

// storeHeader is the first line of every partition file.
type storeHeader struct {
	App        string   `json:"app"`
	ParamNames []string `json:"param_names"`
}

// Record is one observed execution as stored: an application name, the
// input-parameter vector, the scale, the measured runtime, and an
// optional repetition index distinguishing deliberate repeated
// measurements of the same point (otherwise byte-identical repeats are
// deduplicated as retries).
type Record struct {
	App     string    `json:"app,omitempty"` // implied by the partition; kept for Append convenience
	Params  []float64 `json:"params"`
	Scale   int       `json:"scale"`
	Runtime float64   `json:"runtime"`
	Rep     int       `json:"rep,omitempty"`
}

// Hash returns the record's content hash (hex), the dedup key.
func (rec Record) Hash() string {
	var b strings.Builder
	b.WriteString(rec.App)
	b.WriteByte('|')
	for i, v := range rec.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(rec.Scale))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(rec.Runtime, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(rec.Rep))
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// OpenStore opens (creating if needed) a store rooted at dir and
// indexes every existing partition.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: creating store dir: %w", err)
	}
	s := &Store{dir: dir, apps: map[string]*appPartition{}}
	if err := s.scanLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Refresh re-indexes the store from disk, picking up partitions and
// records appended by other processes (e.g. `pipeline ingest` feeding a
// server's embedded pipeline). Partition files are append-only and every
// in-process Append reaches disk before returning, so a rescan is the
// authoritative state; on error the previous index is kept.
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scanLocked()
}

// scanLocked rebuilds the partition index from the directory. Callers
// hold s.mu (or own the store exclusively, as in OpenStore). The index
// is replaced only after every partition read cleanly.
func (s *Store) scanLocked() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	apps := map[string]*appPartition{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		app := strings.TrimSuffix(e.Name(), ".jsonl")
		part, err := readPartition(filepath.Join(s.dir, e.Name()), app)
		if err != nil {
			return err
		}
		apps[app] = part
	}
	s.apps = apps
	return nil
}

// readPartition loads and indexes one partition file.
func readPartition(path, app string) (*appPartition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", path, err)
		}
		return nil, fmt.Errorf("pipeline: %s: empty partition file", path)
	}
	var hdr storeHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("pipeline: %s header: %w", path, err)
	}
	if hdr.App != app {
		return nil, fmt.Errorf("pipeline: %s: header names app %q, file is partition %q", path, hdr.App, app)
	}
	part := &appPartition{paramNames: hdr.ParamNames, hashes: map[string]bool{}}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("pipeline: %s line %d: %w", path, line, err)
		}
		rec.App = app
		if len(rec.Params) != len(part.paramNames) {
			return nil, fmt.Errorf("pipeline: %s line %d: %d params, partition has %d columns",
				path, line, len(rec.Params), len(part.paramNames))
		}
		h := rec.Hash()
		if part.hashes[h] {
			continue // duplicate left behind before a Compact
		}
		part.hashes[h] = true
		part.records = append(part.records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", path, err)
	}
	return part, nil
}

// path returns the partition file for app.
func (s *Store) path(app string) string { return filepath.Join(s.dir, app+".jsonl") }

// validAppName rejects names that would escape the store directory or
// collide with the file naming scheme.
func validAppName(app string) error {
	if app == "" {
		return fmt.Errorf("pipeline: empty app name")
	}
	for _, r := range app {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("pipeline: app name %q: only [A-Za-z0-9._-] allowed", app)
		}
	}
	if strings.HasPrefix(app, ".") {
		return fmt.Errorf("pipeline: app name %q may not start with a dot", app)
	}
	return nil
}

// Append adds one record to app's partition, creating the partition
// (with the given parameter columns) on first use. It returns false
// when the record is a duplicate of one already stored. The write is
// flushed and fsync'd before Append returns.
func (s *Store) Append(paramNames []string, rec Record) (bool, error) {
	if err := validAppName(rec.App); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	part, ok := s.apps[rec.App]
	if !ok {
		if len(paramNames) == 0 {
			return false, fmt.Errorf("pipeline: first record for %q needs parameter names", rec.App)
		}
		hdr, err := json.Marshal(storeHeader{App: rec.App, ParamNames: paramNames})
		if err != nil {
			return false, err
		}
		if err := appendLine(s.path(rec.App), hdr, true); err != nil {
			return false, err
		}
		part = &appPartition{paramNames: append([]string(nil), paramNames...), hashes: map[string]bool{}}
		s.apps[rec.App] = part
	}
	if len(rec.Params) != len(part.paramNames) {
		return false, fmt.Errorf("pipeline: record for %q has %d params, partition has %d columns (%v)",
			rec.App, len(rec.Params), len(part.paramNames), part.paramNames)
	}
	h := rec.Hash()
	if part.hashes[h] {
		return false, nil
	}
	fileRec := rec
	fileRec.App = "" // implied by the partition; keeps lines compact
	line, err := json.Marshal(fileRec)
	if err != nil {
		return false, err
	}
	if err := appendLine(s.path(rec.App), line, false); err != nil {
		return false, err
	}
	part.hashes[h] = true
	part.records = append(part.records, rec)
	return true, nil
}

// appendLine appends one newline-terminated line and fsyncs. create
// allows creating the file (first line of a new partition).
func appendLine(path string, line []byte, create bool) error {
	flags := os.O_WRONLY | os.O_APPEND
	if create {
		flags |= os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ImportTable appends every run of a dataset table under its App name,
// returning how many records were new vs. deduplicated. Runs that
// repeat a byte-identical measurement within the table get ascending
// repetition indices, so legitimate repeats are all stored while a
// re-import of the same table stays a no-op.
func (s *Store) ImportTable(t *dataset.Table) (added, skipped int, err error) {
	seen := map[string]int{}
	for _, run := range t.Runs {
		key := Record{Params: run.Params, Scale: run.Scale, Runtime: run.Runtime}.Hash()
		rep := seen[key]
		seen[key] = rep + 1
		ok, err := s.Append(t.ParamNames, Record{
			App: t.App, Params: run.Params, Scale: run.Scale, Runtime: run.Runtime, Rep: rep,
		})
		if err != nil {
			return added, skipped, err
		}
		if ok {
			added++
		} else {
			skipped++
		}
	}
	return added, skipped, nil
}

// ImportCSV reads an execution-history CSV (the dataset package's
// format) and appends its runs.
func (s *Store) ImportCSV(path string) (added, skipped int, err error) {
	t, err := dataset.LoadCSV(path)
	if err != nil {
		return 0, 0, err
	}
	if t.App == "" {
		return 0, 0, fmt.Errorf("pipeline: %s has no #app record; the store needs an application name", path)
	}
	return s.ImportTable(t)
}

// Apps returns the stored application names, sorted.
func (s *Store) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.apps))
	for app := range s.apps {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored records for app.
func (s *Store) Count(app string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	part, ok := s.apps[app]
	if !ok {
		return 0
	}
	return len(part.records)
}

// ParamNames returns app's parameter columns.
func (s *Store) ParamNames(app string) ([]string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	part, ok := s.apps[app]
	if !ok {
		return nil, false
	}
	return append([]string(nil), part.paramNames...), true
}

// Table materializes app's records as a dataset table in append order
// (deterministic: the file is append-only and dedup makes re-ingest a
// no-op).
func (s *Store) Table(app string) (*dataset.Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	part, ok := s.apps[app]
	if !ok {
		return nil, false
	}
	t := dataset.NewTable(app, part.paramNames)
	for _, rec := range part.records {
		t.Add(dataset.Run{Params: rec.Params, Scale: rec.Scale, Runtime: rec.Runtime})
	}
	return t, true
}

// Compact rewrites app's partition file from the in-memory index —
// dropping any duplicate lines a crashed retry may have left — using
// the temp+rename idiom, so concurrent readers of the file never see a
// torn state.
func (s *Store) Compact(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	part, ok := s.apps[app]
	if !ok {
		return fmt.Errorf("pipeline: unknown app %q", app)
	}
	path := s.path(app)
	tmp, err := os.CreateTemp(s.dir, "."+app+".jsonl.tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriter(tmp)
	if err := writePartition(w, app, part); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp uses 0600; match the permissions of a fresh partition.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // the deferred cleanup no longer owns the file
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return err
	}
	return nil
}

// writePartition streams header + records as JSONL.
func writePartition(w io.Writer, app string, part *appPartition) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(storeHeader{App: app, ParamNames: part.paramNames}); err != nil {
		return err
	}
	for _, rec := range part.records {
		fileRec := rec
		fileRec.App = ""
		if err := enc.Encode(fileRec); err != nil {
			return err
		}
	}
	return nil
}
