package pipeline

import (
	"testing"

	"repro/internal/serving"
)

// BenchmarkPipelineRetrainPromote measures one full continuous-training
// cycle — trigger, candidate fit on the store, gate evaluation against
// the incumbent, atomic file write, registry hot-swap — the unit of
// work the serve+retrain process pays per accepted trigger.
func BenchmarkPipelineRetrainPromote(b *testing.B) {
	store := newSeededStore(b, b.TempDir())
	reg := serving.NewRegistry()
	p, err := New(store, b.TempDir(), testPipelineConfig(), reg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Kick(testApp)
		res, err := p.RunOnce(testApp, "")
		if err != nil {
			b.Fatal(err)
		}
		if res.Skipped {
			b.Fatal("benchmark cycle skipped")
		}
	}
}

// BenchmarkStoreAppend measures the fsync'd ingest path per record.
func BenchmarkStoreAppend(b *testing.B) {
	store, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cols := []string{"nx", "ny", "nz", "c"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := store.Append(cols, Record{
			App: "bench", Params: []float64{float64(i), 1, 2, 3}, Scale: 8, Runtime: 1.25,
		})
		if err != nil || !ok {
			b.Fatalf("Append = %v, %v", ok, err)
		}
	}
}
