package pipeline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestSplitHoldoutIsDeterministicAndConfigAligned(t *testing.T) {
	hist, _ := testHistories(t)
	train1, hold1 := SplitHoldout(hist, 5)
	train2, hold2 := SplitHoldout(hist, 5)
	if TableHash(train1) != TableHash(train2) || TableHash(hold1) != TableHash(hold2) {
		t.Fatal("SplitHoldout is not deterministic")
	}
	if train1.Len()+hold1.Len() != hist.Len() {
		t.Fatalf("split loses runs: %d + %d != %d", train1.Len(), hold1.Len(), hist.Len())
	}
	if hold1.Len() == 0 || train1.Len() == 0 {
		t.Fatalf("degenerate split: train %d, holdout %d", train1.Len(), hold1.Len())
	}
	// No configuration straddles the split.
	holdKeys := map[string]bool{}
	for _, run := range hold1.Runs {
		holdKeys[dataset.ParamKey(run.Params)] = true
	}
	for _, run := range train1.Runs {
		if holdKeys[dataset.ParamKey(run.Params)] {
			t.Fatalf("configuration %v appears on both sides", run.Params)
		}
	}
	// The split is a function of the parameters only: growing the table
	// never moves an existing configuration across the boundary.
	_, more := testHistories(t)
	grown := dataset.NewTable(hist.App, hist.ParamNames)
	grown.Runs = append(append([]dataset.Run{}, hist.Runs...), more.Runs...)
	_, holdGrown := SplitHoldout(grown, 5)
	grownKeys := map[string]bool{}
	for _, run := range holdGrown.Runs {
		grownKeys[dataset.ParamKey(run.Params)] = true
	}
	for k := range holdKeys {
		if !grownKeys[k] {
			t.Fatalf("configuration %s left the holdout when the table grew", k)
		}
	}
}

// gateModels fits one good model and one deliberately broken one (a
// handful of training configs, scrambled runtimes) over the fixture
// history, shared by the gate tests.
func gateModels(t *testing.T) (good, bad *core.TwoLevelModel, holdout *dataset.Table) {
	t.Helper()
	hist, _ := testHistories(t)
	train, hold := SplitHoldout(hist, 5)
	cfg := testCoreConfig()
	g, err := core.Fit(rng.New(3), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble the training runtimes: same schema, garbage signal.
	r := rng.New(4)
	scrambled := dataset.NewTable(train.App, train.ParamNames)
	for _, run := range train.Runs {
		run.Runtime = r.Uniform(0.5, 1.5)
		scrambled.Runs = append(scrambled.Runs, run)
	}
	b, err := core.Fit(rng.New(5), scrambled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, b, hold
}

func TestGateBootstrapPromotesWithoutIncumbent(t *testing.T) {
	good, _, hold := gateModels(t)
	res := EvaluateGate(good, nil, hold, testLarge, DefaultGateConfig())
	if !res.Promote {
		t.Fatalf("bootstrap candidate rejected: %s", res.Reason)
	}
	if res.HoldoutConfigs == 0 || len(res.PerScale) == 0 {
		t.Fatalf("no evidence recorded: %+v", res)
	}
	if math.IsNaN(res.Candidate) {
		t.Fatal("candidate MAPE is NaN despite holdout data")
	}
}

func TestGateRejectsWorseCandidate(t *testing.T) {
	good, bad, hold := gateModels(t)
	res := EvaluateGate(bad, good, hold, testLarge, DefaultGateConfig())
	if res.Promote {
		t.Fatalf("garbage candidate promoted over a real incumbent: cand %.4f inc %.4f",
			res.Candidate, res.Incumbent)
	}
	if res.Candidate <= res.Incumbent {
		t.Fatalf("fixture is broken: scrambled model (%.4f) beat the real one (%.4f)",
			res.Candidate, res.Incumbent)
	}
	// Per-scale breakdown covers every target scale with data.
	if len(res.PerScale) != len(testLarge) {
		t.Fatalf("per-scale breakdown has %d entries, want %d", len(res.PerScale), len(testLarge))
	}
	for _, sm := range res.PerScale {
		if sm.N == 0 {
			t.Fatalf("scale %d has no holdout points", sm.Scale)
		}
	}
}

func TestGatePromotesEquallyGoodCandidateWithinSlack(t *testing.T) {
	good, _, hold := gateModels(t)
	// The incumbent evaluated against itself is exactly at the limit.
	res := EvaluateGate(good, good, hold, testLarge, GateConfig{AllowedRegression: 0})
	if !res.Promote {
		t.Fatalf("identical candidate rejected at zero slack: %s", res.Reason)
	}
	// A strict-improvement gate (negative slack) rejects the tie.
	res = EvaluateGate(good, good, hold, testLarge, GateConfig{AllowedRegression: -0.01})
	if res.Promote {
		t.Fatal("identical candidate promoted under strict-improvement gate")
	}
}

func TestGateNoHoldoutData(t *testing.T) {
	good, _, _ := gateModels(t)
	empty := dataset.NewTable("smg2000", []string{"a", "b", "c", "d"})
	if res := EvaluateGate(good, nil, empty, testLarge, DefaultGateConfig()); !res.Promote {
		t.Fatalf("bootstrap with empty holdout rejected: %s", res.Reason)
	}
	if res := EvaluateGate(good, good, empty, testLarge, DefaultGateConfig()); res.Promote {
		t.Fatal("candidate promoted over incumbent without any holdout evidence")
	}
}
