package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serving"
	"repro/internal/uncertainty"
)

// doJSONID is doJSON plus an explicit X-Request-Id; it returns the
// status and the ID the server echoed back.
func doJSONID(t *testing.T, h http.Handler, method, path, reqID string, body, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(raw))
	req.Header.Set(obs.RequestIDHeader, reqID)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code, rec.Header().Get(obs.RequestIDHeader)
}

// TestDriftTraceableToRequestID walks the full observability chain: a
// client-supplied X-Request-Id on /v1/observe is echoed back, rides the
// breach into the pipeline kick, lands in the cycle's journal entry as
// Origin, and the retraining run itself appears in the shared trace
// ring with its per-stage spans. One request ID, traceable from ingest
// to promotion.
func TestDriftTraceableToRequestID(t *testing.T) {
	_, more := testHistories(t)
	store := newSeededStore(t, t.TempDir())
	reg := serving.NewRegistry()

	oreg := obs.NewRegistry("repro")
	tracer := obs.NewTracer(64)

	var p *Pipeline
	opts := serving.DefaultOptions()
	opts.Obs = oreg
	opts.Tracer = tracer
	opts.Drift = uncertainty.DriftConfig{Window: 16, MinObservations: 8, Coverage: 0.75, Floor: 0.6}
	opts.OnDrift = func(model, reason, origin string) { p.KickOrigin(model, reason, origin) }
	srv := serving.New(reg, opts)
	h := srv.Handler()

	p, err := New(store, t.TempDir(), testPipelineConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableObs(oreg, tracer)

	res, err := p.RunOnce(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("bootstrap cycle: %+v", res)
	}
	if res.Origin != "" {
		t.Fatalf("count-policy cycle carries origin %q, want none", res.Origin)
	}

	probe := more.Runs[0].Params
	var pr struct {
		Results []struct {
			Runtimes []float64 `json:"runtimes"`
		} `json:"results"`
	}
	if code := doJSON(t, h, "POST", "/v1/predict",
		map[string]any{"model": testApp, "params": probe, "interval": 0.75}, &pr); code != http.StatusOK {
		t.Fatalf("predict returned %d", code)
	}
	predicted := pr.Results[0].Runtimes[0]
	scale := testLarge[0]

	// Shifted observations, each under its own request ID. Remember the
	// one whose arrival breached the floor.
	breachID := ""
	for i := 0; i < 12 && breachID == ""; i++ {
		id := fmt.Sprintf("e2e-obs-%d", i)
		var or struct {
			Results []struct {
				Drift bool `json:"drift"`
			} `json:"results"`
		}
		code, echoed := doJSONID(t, h, "POST", "/v1/observe", id, map[string]any{
			"model": testApp, "params": probe, "scale": scale, "runtime": predicted * 3,
		}, &or)
		if code != http.StatusOK {
			t.Fatalf("observe returned %d", code)
		}
		if echoed != id {
			t.Fatalf("observe echoed request ID %q, want %q", echoed, id)
		}
		if or.Results[0].Drift {
			breachID = id
		}
	}
	if breachID == "" {
		t.Fatal("12 shifted observations never breached the coverage floor")
	}

	// The kicked cycle carries the breaching request's ID end to end.
	res, err = p.RunOnce(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped {
		t.Fatalf("drift-kicked cycle was skipped: %+v", res)
	}
	if res.Origin != breachID {
		t.Fatalf("cycle origin %q, want breaching request ID %q", res.Origin, breachID)
	}
	entries := p.Journal().Entries()
	last := entries[len(entries)-1]
	if last.Gen != res.Gen || last.Origin != breachID {
		t.Fatalf("journal entry gen %d origin %q, want gen %d origin %q",
			last.Gen, last.Origin, res.Gen, breachID)
	}
	if !strings.Contains(last.Trigger, "drift") {
		t.Fatalf("journal trigger %q does not name drift", last.Trigger)
	}

	// The retraining run is in the same trace ring as the HTTP requests,
	// under its deterministic run ID, with per-stage spans.
	runID := fmt.Sprintf("run-%s-gen%d", testApp, res.Gen)
	var run *obs.Trace
	for _, tr := range tracer.Snapshot(0, false) {
		if tr.Kind == "pipeline" && tr.ID == runID {
			cp := tr
			run = &cp
			break
		}
	}
	if run == nil {
		t.Fatalf("no pipeline trace %q in ring", runID)
	}
	spans := map[string]bool{}
	for _, sp := range run.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"fit", "calibrate", "gate"} {
		if !spans[want] {
			t.Fatalf("pipeline trace %q missing span %q (has %v)", runID, want, run.Spans)
		}
	}

	// The cycle counters and stage histograms surface in the shared
	// registry's Prometheus exposition, and the output stays valid.
	var buf bytes.Buffer
	if err := oreg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	seen := map[string]bool{}
	for _, f := range fams {
		seen[f.Name] = true
	}
	for _, want := range []string{"repro_pipeline_cycles_total", "repro_pipeline_stage_duration_seconds"} {
		if !seen[want] {
			t.Fatalf("exposition missing family %q", want)
		}
	}
}
