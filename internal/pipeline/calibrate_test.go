package pipeline

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/core"
)

// runBootstrapCycle builds a fresh pipeline over the seeded fixture
// store and runs the bootstrap promotion, returning the promoted model
// path and the pipeline.
func runBootstrapCycle(t *testing.T) (string, *Pipeline) {
	t.Helper()
	store := newSeededStore(t, t.TempDir())
	p, err := New(store, t.TempDir(), testPipelineConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunOnce(testApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("bootstrap cycle did not promote: %+v", res)
	}
	return res.Path, p
}

// TestPromotedModelCarriesCalibration: a pipeline-trained generation
// ships with a holdout-derived conformal calibration that survives the
// save/load round trip and can answer interval requests.
func TestPromotedModelCarriesCalibration(t *testing.T) {
	path, p := runBootstrapCycle(t)
	m, err := core.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cal := m.Meta.Calibration
	if cal == nil {
		t.Fatal("promoted model has no calibration")
	}
	if err := cal.Validate(); err != nil {
		t.Fatalf("persisted calibration invalid: %v", err)
	}
	for _, sc := range cal.Pooled {
		found := false
		for _, s := range testLarge {
			if sc.Scale == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("calibration carries unknown scale %d", sc.Scale)
		}
	}
	min, total := cal.Samples()
	if min < 1 || total < len(testLarge) {
		t.Fatalf("calibration too thin: min %d total %d", min, total)
	}

	// The journal must record why the cycle ran.
	entries := p.Journal().Entries()
	if len(entries) == 0 || entries[0].Trigger == "" {
		t.Fatalf("journal entry missing trigger: %+v", entries)
	}
}

// TestCalibrationRerunByteIdentical: two pipelines over the same records
// produce byte-identical model files including the calibration artifact
// — the subsystem keeps the repo's determinism invariant.
func TestCalibrationRerunByteIdentical(t *testing.T) {
	pathA, _ := runBootstrapCycle(t)
	pathB, _ := runBootstrapCycle(t)
	a, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("calibrated model files differ across identical reruns")
	}
	if !bytes.Contains(a, []byte(`"calibration"`)) {
		t.Fatal("model file does not embed the calibration artifact")
	}
}
