// Package lint is a project-specific static-analysis suite enforcing the
// invariants this reproduction depends on but that no generic tool checks:
//
//   - every stochastic component draws from the deterministic internal/rng
//     (never math/rand, crypto/rand, or wall-clock seeds), so a single
//     integer seed reproduces an entire experiment;
//   - reconstructed tables/figures are byte-reproducible run to run (no
//     wall-clock reads or map-iteration-ordered output on artifact paths);
//   - the linear-algebra kernels do not rely on exact float equality or
//     silently drop errors.
//
// The suite is built on the stdlib go/ast + go/parser + go/types loader
// (see load.go) so the module stays dependency-free. Each invariant is an
// Analyzer; cmd/repolint runs them all and `make lint` wires the suite
// into the tier-1 gate.
//
// # Escape hatch
//
// A finding that is intentional is suppressed with a directive comment
//
//	//lint:allow <analyzer> -- <one-line justification>
//
// placed either on the flagged line or alone on the line directly above
// it. The justification is mandatory by convention (reviewed, not
// machine-checked); the analyzer name must match exactly.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding: an invariant violation at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check run over a type-checked package.
type Analyzer struct {
	Name string // short lowercase name, used in //lint:allow directives
	Doc  string // one-line description of the protected invariant
	Run  func(*Pass)
}

// Pass presents one package to one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	ModPath  string // module path, e.g. "repro"
	PkgPath  string // full import path of the package under analysis
	Files    []*ast.File
	// TestFiles are parsed but NOT type-checked; only syntactic checks
	// (such as import inspection) may use them.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RelPath returns the package path relative to the module root ("" for the
// root package). Analyzers use it to scope rules to package subtrees.
func (p *Pass) RelPath() string {
	if p.PkgPath == p.ModPath {
		return ""
	}
	return strings.TrimPrefix(p.PkgPath, p.ModPath+"/")
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDirectRand,
		NoWallClock,
		FloatEq,
		MapIterOrder,
		ErrIgnore,
	}
}

// ByName resolves a comma-separated analyzer list ("floateq,errignore").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer list")
	}
	return out, nil
}

// allowDirectives maps file -> line -> set of analyzer names allowed there.
// A directive on line L suppresses findings on L (inline form) and on L+1
// (standalone form).
type allowDirectives map[string]map[int]map[string]bool

const allowPrefix = "lint:allow"

// collectAllows scans the comments of all files for //lint:allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) allowDirectives {
	out := allowDirectives{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				text = strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				// Strip the justification: everything after "--" (or an
				// em dash) is prose for the reviewer.
				for _, sep := range []string{"--", "—"} {
					if i := strings.Index(text, sep); i >= 0 {
						text = text[:i]
					}
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					out[pos.Filename] = m
				}
				for _, name := range strings.FieldsFunc(text, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					if m[pos.Line] == nil {
						m[pos.Line] = map[string]bool{}
					}
					m[pos.Line][name] = true
				}
			}
		}
	}
	return out
}

// allowed reports whether a diagnostic is suppressed by a directive on its
// own line or the line directly above.
func (a allowDirectives) allowed(d Diagnostic) bool {
	m := a[d.Pos.Filename]
	if m == nil {
		return false
	}
	return m[d.Pos.Line][d.Analyzer] || m[d.Pos.Line-1][d.Analyzer]
}
