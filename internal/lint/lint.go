// Package lint is a project-specific static-analysis suite enforcing the
// invariants this reproduction depends on but that no generic tool checks:
//
//   - every stochastic component draws from the deterministic internal/rng
//     (never math/rand, crypto/rand, or wall-clock seeds), so a single
//     integer seed reproduces an entire experiment;
//   - reconstructed tables/figures are byte-reproducible run to run (no
//     wall-clock reads or map-iteration-ordered output on artifact paths);
//   - the linear-algebra kernels do not rely on exact float equality or
//     silently drop errors.
//
// The suite is built on the stdlib go/ast + go/parser + go/types loader
// (see load.go) so the module stays dependency-free. Each invariant is an
// Analyzer; cmd/repolint runs them all and `make lint` wires the suite
// into the tier-1 gate.
//
// Two analyzer shapes exist. Package-scoped analyzers (Run) see one
// type-checked package at a time. Module-scoped analyzers (RunModule) see
// the whole module at once and reason interprocedurally over the call
// graph (callgraph.go) and taint engine (taint.go): clockflow, randflow.
// goroutineshare is package-scoped but flow-aware within functions.
//
// # Escape hatch
//
// A finding that is intentional is suppressed with a directive comment
//
//	//lint:allow <analyzer> -- <one-line justification>
//
// placed either on the flagged line or alone on the line directly above
// it. The justification is mandatory by convention (reviewed, not
// machine-checked); the analyzer name must match exactly.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Diagnostic is one finding: an invariant violation at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Exactly one of Run (per-package)
// or RunModule (whole-module, interprocedural) is set.
type Analyzer struct {
	Name      string // short lowercase name, used in //lint:allow directives
	Doc       string // one-line description of the protected invariant
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass presents one package to one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	ModPath  string // module path, e.g. "repro"
	PkgPath  string // full import path of the package under analysis
	Files    []*ast.File
	// TestFiles are parsed but NOT type-checked; only syntactic checks
	// (such as import inspection) may use them.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RelPath returns the package path relative to the module root ("" for the
// root package). Analyzers use it to scope rules to package subtrees.
func (p *Pass) RelPath() string {
	if p.PkgPath == p.ModPath {
		return ""
	}
	return strings.TrimPrefix(p.PkgPath, p.ModPath+"/")
}

// ModulePass presents the whole module to one module-scoped analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Mod      *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Mod.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position renders pos module-relative ("internal/pipeline/journal.go:102")
// so messages are stable across checkouts.
func (p *ModulePass) Position(pos token.Pos) string {
	pp := p.Mod.Fset.Position(pos)
	name := pp.Filename
	if rel, err := filepath.Rel(p.Mod.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", name, pp.Line)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDirectRand,
		NoWallClock,
		FloatEq,
		MapIterOrder,
		ErrIgnore,
		ClockFlow,
		RandFlow,
		GoroutineShare,
	}
}

// ByName resolves a comma-separated analyzer list ("floateq,errignore").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer list")
	}
	return out, nil
}

// allowSite is one (directive, analyzer-name) pair: a directive naming two
// analyzers yields two sites. The audit (audit.go) reports sites that never
// suppress a finding.
type allowSite struct {
	pos  token.Position
	name string // analyzer name as written
	used bool   // set when the site suppresses at least one raw finding
}

// allowIndex holds every //lint:allow site of a module, in deterministic
// collection order, with a by-position lookup. A directive on line L
// suppresses findings on L (inline form) and on L+1 (standalone form).
type allowIndex struct {
	sites  []*allowSite
	byLine map[string]map[int][]*allowSite
}

const allowPrefix = "lint:allow"

// collectAllows scans the comments of files for //lint:allow directives,
// appending into idx (created when nil).
func collectAllows(idx *allowIndex, fset *token.FileSet, files []*ast.File) *allowIndex {
	if idx == nil {
		idx = &allowIndex{byLine: map[string]map[int][]*allowSite{}}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				text = strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				// Strip the justification: everything after "--" (or an
				// em dash) is prose for the reviewer.
				for _, sep := range []string{"--", "—"} {
					if i := strings.Index(text, sep); i >= 0 {
						text = text[:i]
					}
				}
				pos := fset.Position(c.Pos())
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = map[int][]*allowSite{}
					idx.byLine[pos.Filename] = m
				}
				for _, name := range strings.FieldsFunc(text, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					site := &allowSite{pos: pos, name: name}
					idx.sites = append(idx.sites, site)
					m[pos.Line] = append(m[pos.Line], site)
				}
			}
		}
	}
	return idx
}

// suppress reports whether a diagnostic is covered by a directive on its
// own line or the line directly above, marking the covering sites used.
func (idx *allowIndex) suppress(d Diagnostic) bool {
	m := idx.byLine[d.Pos.Filename]
	if m == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, site := range m[line] {
			if site.name == d.Analyzer {
				site.used = true
				hit = true
			}
		}
	}
	return hit
}
