package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// callgraph.go builds a deterministic, module-wide static call graph: one
// node per function body (declared functions, methods, and function
// literals), one edge per statically resolvable call site. It is the
// substrate the taint engine (taint.go) propagates facts over, and its
// construction touches no map iteration on the output path, so two builds
// over the same Module serialize byte-identically (asserted by
// TestCallGraphDeterminism).
//
// Resolution is intentionally static-only: calls through interface values,
// function-typed variables, and fields have no edge. The taint engine
// compensates with a conservative rule at such sites (tainted arguments
// taint the call result), so the missing edges lose precision, never
// soundness of the source→sink directions the analyzers check.

// FuncNode is one function body in the call graph.
type FuncNode struct {
	// ID is a stable human-readable identifier: the types.Func FullName
	// for declared functions/methods ("repro/internal/core.(*TwoLevelModel).Save"),
	// or the enclosing ID plus "$n" for the n-th function literal.
	ID   string
	Pkg  *Package
	Node ast.Node // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt

	// Obj is the declared function object; nil for function literals.
	Obj *types.Func

	// RecvObj is the receiver variable (methods only), ParamObjs the
	// declared parameters in order, ResultObjs the named results (nil
	// entries for unnamed). Variadic marks a trailing ...T parameter.
	RecvObj    types.Object
	ParamObjs  []types.Object
	ResultObjs []types.Object
	Variadic   bool
}

// CallEdge is one statically resolved call site.
type CallEdge struct {
	Caller, Callee string // FuncNode IDs
	Pos            token.Pos
}

// CallGraph is the module-wide graph. Funcs and Edges are in deterministic
// source order (packages topologically, files as loaded, declarations top
// to bottom, literals by position within their parent).
type CallGraph struct {
	Funcs []*FuncNode
	Edges []CallEdge

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// BuildCallGraph constructs the graph over every type-checked package of
// the module.
func BuildCallGraph(mod *Module) *CallGraph {
	cg := &CallGraph{
		byObj: map[*types.Func]*FuncNode{},
		byLit: map[*ast.FuncLit]*FuncNode{},
	}
	for _, pkg := range mod.Pkgs {
		if pkg.Types == nil {
			continue // test-only directory, not type-checked
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					node := cg.addDecl(pkg, d)
					cg.collectLits(pkg, node.ID, d.Body)
				case *ast.GenDecl:
					// Function literals in package-level initializers hang
					// off a per-package pseudo-parent.
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, v := range vs.Values {
								cg.collectLits(pkg, pkg.Path+".init", v)
							}
						}
					}
				}
			}
		}
	}
	for _, fn := range cg.Funcs {
		cg.addEdges(fn)
	}
	return cg
}

// FuncByObj returns the node for a declared function, nil if the object
// has no body in the module.
func (cg *CallGraph) FuncByObj(obj *types.Func) *FuncNode { return cg.byObj[obj] }

// FuncByLit returns the node for a function literal.
func (cg *CallGraph) FuncByLit(lit *ast.FuncLit) *FuncNode { return cg.byLit[lit] }

func (cg *CallGraph) addDecl(pkg *Package, d *ast.FuncDecl) *FuncNode {
	fn := &FuncNode{Pkg: pkg, Node: d, Body: d.Body}
	if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
		fn.Obj = obj
		fn.ID = obj.FullName()
		cg.byObj[obj] = fn
	} else {
		fn.ID = pkg.Path + "." + d.Name.Name
	}
	if d.Recv != nil && len(d.Recv.List) > 0 && len(d.Recv.List[0].Names) > 0 {
		fn.RecvObj = pkg.Info.Defs[d.Recv.List[0].Names[0]]
	}
	fn.ParamObjs, fn.Variadic = fieldObjs(pkg.Info, d.Type.Params)
	fn.ResultObjs, _ = fieldObjs(pkg.Info, d.Type.Results)
	cg.Funcs = append(cg.Funcs, fn)
	return fn
}

func (cg *CallGraph) addLit(pkg *Package, id string, lit *ast.FuncLit) *FuncNode {
	fn := &FuncNode{ID: id, Pkg: pkg, Node: lit, Body: lit.Body}
	fn.ParamObjs, fn.Variadic = fieldObjs(pkg.Info, lit.Type.Params)
	fn.ResultObjs, _ = fieldObjs(pkg.Info, lit.Type.Results)
	cg.byLit[lit] = fn
	cg.Funcs = append(cg.Funcs, fn)
	return fn
}

// collectLits registers every function literal under root (excluding root
// itself), numbering them in source order beneath parentID.
func (cg *CallGraph) collectLits(pkg *Package, parentID string, root ast.Node) {
	n := 0
	ast.Inspect(root, func(x ast.Node) bool {
		if x == root {
			return true
		}
		if lit, ok := x.(*ast.FuncLit); ok {
			n++
			id := fmt.Sprintf("%s$%d", parentID, n)
			cg.addLit(pkg, id, lit)
			cg.collectLits(pkg, id, lit.Body)
			return false
		}
		return true
	})
}

// fieldObjs resolves the declared objects of a parameter/result list.
// Unnamed and blank entries yield nil placeholders so indices line up
// with call-site arguments.
func fieldObjs(info *types.Info, fields *ast.FieldList) (objs []types.Object, variadic bool) {
	if fields == nil {
		return nil, false
	}
	for _, f := range fields.List {
		if _, ok := f.Type.(*ast.Ellipsis); ok {
			variadic = true
		}
		if len(f.Names) == 0 {
			objs = append(objs, nil)
			continue
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				objs = append(objs, nil)
				continue
			}
			objs = append(objs, info.Defs[name])
		}
	}
	return objs, variadic
}

// addEdges records the statically resolvable call sites of one function.
// Nested literals are separate nodes and are skipped here.
func (cg *CallGraph) addEdges(fn *FuncNode) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *FuncNode
		if obj := staticCallee(fn.Pkg.Info, call); obj != nil {
			callee = cg.byObj[obj]
		} else if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			callee = cg.byLit[lit]
		}
		if callee != nil {
			cg.Edges = append(cg.Edges, CallEdge{Caller: fn.ID, Callee: callee.ID, Pos: call.Pos()})
		}
		return true
	})
}

// staticCallee resolves a call to its declared function object: direct
// calls (f(...)), package-qualified calls (pkg.F(...)), and method calls
// (recv.M(...)). Indirect calls resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// String serializes the graph for determinism checks and debugging: one
// line per node, indented lines per outgoing edge, in graph order.
func (cg *CallGraph) String(fset *token.FileSet) string {
	var b strings.Builder
	edgesByCaller := map[string][]CallEdge{}
	for _, e := range cg.Edges {
		edgesByCaller[e.Caller] = append(edgesByCaller[e.Caller], e)
	}
	for _, fn := range cg.Funcs {
		pos := fset.Position(fn.Node.Pos())
		_, _ = fmt.Fprintf(&b, "%s (%s:%d)\n", fn.ID, pos.Filename, pos.Line)
		for _, e := range edgesByCaller[fn.ID] {
			p := fset.Position(e.Pos)
			_, _ = fmt.Fprintf(&b, "  -> %s @%d:%d\n", e.Callee, p.Line, p.Column)
		}
	}
	return b.String()
}
