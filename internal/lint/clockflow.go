package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ClockFlow is the interprocedural companion to nowallclock. nowallclock
// bans clock reads wholesale in pure packages; clockflow covers the
// packages that legitimately read the clock (internal/serving, cmd/) by
// tracing where each reading actually flows. A timestamp may feed logs,
// metrics, or latency histograms — but never a persisted artifact, or
// reruns of the pipeline stop being byte-identical and the paper's
// small-scale→large-scale extrapolation loses its reproducibility
// contract.
//
// Findings are reported at the SOURCE (the time.Now/Since/Until call), so
// the one sanctioned pattern — stamping at the CLI boundary — carries its
// //lint:allow where the clock is read, and every flow it feeds is
// covered by that single annotated decision.
var ClockFlow = &Analyzer{
	Name:      "clockflow",
	Doc:       "wall-clock values must not flow into persisted artifacts (model files, ModelMeta, pipeline journal/store, conformal calibration)",
	RunModule: runClockFlow,
}

// clockCallSinks are the calls that persist their arguments: a tainted
// argument or receiver means a clock value is being written to disk.
// Matched by defining package path + receiver type + name, so the fixture
// module (testdata/clockflow) exercises them with fake declarations under
// the same paths.
var clockCallSinks = []struct {
	pkg, recv, name, desc string
}{
	{"repro/internal/core", "TwoLevelModel", "Save", "the model file ((*TwoLevelModel).Save)"},
	{"repro/internal/core", "TwoLevelModel", "Write", "the model stream ((*TwoLevelModel).Write)"},
	{"repro/internal/pipeline", "Journal", "Append", "the pipeline journal ((*Journal).Append)"},
	{"repro/internal/pipeline", "Store", "Append", "the run-record store ((*Store).Append)"},
	{"repro/internal/pipeline", "Store", "ImportTable", "the run-record store ((*Store).ImportTable)"},
}

// clockStructSinks are the persisted record types: assigning a clock-
// derived value to any of their fields (directly or in a composite
// literal) is a finding even before the value reaches disk.
var clockStructSinks = map[string]string{
	"repro/internal/core.ModelMeta":          "persisted model metadata (core.ModelMeta)",
	"repro/internal/pipeline.Entry":          "a pipeline journal entry (pipeline.Entry)",
	"repro/internal/pipeline.Record":         "a run-record store record (pipeline.Record)",
	"repro/internal/uncertainty.Calibration": "persisted conformal calibration (uncertainty.Calibration)",
	"repro/internal/uncertainty.ScaleCalib":  "persisted conformal score lists (uncertainty.ScaleCalib)",
}

func runClockFlow(mp *ModulePass) {
	cg := BuildCallGraph(mp.Mod)
	cfg := &taintConfig{
		maxDepth: defaultTaintDepth,
		isSource: func(pkg *Package, call *ast.CallExpr) (string, bool) {
			for _, fn := range wallClockFuncs {
				if isPkgFunc(pkg.Info, call, "time", fn) {
					return "time." + fn, true
				}
			}
			return "", false
		},
		callSink:    matchCallSinks(clockCallSinks),
		structSinks: clockStructSinks,
		report: func(src *taintSource, sinkPos token.Pos, sink string) {
			mp.Reportf(src.pos, "%s value flows into %s at %s; persisted artifacts must be clock-free so reruns are byte-identical — derive the value from data, or annotate this boundary", src.desc, sink, mp.Position(sinkPos))
		},
		giveUp: func(pos token.Pos, src *taintSource) {
			if src == nil {
				mp.Reportf(pos, "taint analysis did not converge within %d rounds; treat the module as unverified and simplify the offending flow", taintMaxRounds)
				return
			}
			// Reported at the SOURCE like sink findings, so the one allow
			// at the clock read also covers chains the engine lost track of.
			mp.Reportf(src.pos, "taint path from this %s exceeds the interprocedural depth bound (%d) at %s; clockflow cannot prove the flow artifact-free — shorten the call chain or annotate this clock read", src.desc, defaultTaintDepth, mp.Position(pos))
		},
	}
	newTaintEngine(cg, cfg).run()
}

// matchCallSinks builds a callSink classifier from a (pkg, recv, name)
// table. recv "" matches package-level functions; otherwise the receiver's
// named type (pointer or value) must match.
func matchCallSinks(sinks []struct{ pkg, recv, name, desc string }) func(*Package, *ast.CallExpr) (string, bool) {
	return func(pkg *Package, call *ast.CallExpr) (string, bool) {
		obj := staticCallee(pkg.Info, call)
		if obj == nil || obj.Pkg() == nil {
			return "", false
		}
		recvName := ""
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				recvName = n.Obj().Name()
			}
		}
		for _, s := range sinks {
			if obj.Pkg().Path() == s.pkg && obj.Name() == s.name && recvName == s.recv {
				return s.desc, true
			}
		}
		return "", false
	}
}
