package lint

import (
	"go/ast"
	"go/types"
)

// ErrIgnore flags statements that call an error-returning function and
// silently drop the error — the pattern that loses a failed CSV flush or
// model save without a trace. Explicit discards (`_ = f()`) are allowed:
// they are visible in review. Best-effort terminal output via
// fmt.Print/Printf/Println and the never-failing writers strings.Builder
// and bytes.Buffer are exempt.
var ErrIgnore = &Analyzer{
	Name: "errignore",
	Doc:  "no silently discarded error returns; handle the error or discard explicitly with _ =",
	Run:  runErrIgnore,
}

// errIgnoreExemptFuncs never carry an error worth handling at a call site:
// fmt's stdout printers are best-effort by convention in CLI code.
var errIgnoreExemptFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

// errIgnoreExemptFprints are exempt only when writing to os.Stdout or
// os.Stderr (best-effort terminal output); the same calls against a file
// or network writer are flagged.
var errIgnoreExemptFprints = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// errIgnoreExemptRecvs are writer types documented to always return a nil
// error.
var errIgnoreExemptRecvs = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runErrIgnore(pass *Pass) {
	if pass.Info == nil || pass.Info.Types == nil {
		return
	}
	errorType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
			if !ok {
				return true // conversion or builtin
			}
			returnsError := false
			for i := 0; i < sig.Results().Len(); i++ {
				if types.Identical(sig.Results().At(i).Type(), errorType) {
					returnsError = true
					break
				}
			}
			if !returnsError || exemptErrCall(pass.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s is silently discarded; handle it or write `_ = ...` to discard explicitly",
				exprString(pass.Fset, call.Fun))
			return true
		})
	}
}

// exemptErrCall implements the small always-safe allowlist.
func exemptErrCall(info *types.Info, call *ast.CallExpr) bool {
	for fn := range errIgnoreExemptFuncs {
		if isPkgFunc(info, call, "fmt", fn) {
			return true
		}
	}
	for fn := range errIgnoreExemptFprints {
		if isPkgFunc(info, call, "fmt", fn) && len(call.Args) > 0 && isStdStream(info, call.Args[0]) {
			return true
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return errIgnoreExemptRecvs[named.Obj().Pkg().Name()+"."+named.Obj().Name()]
}

// isStdStream reports whether e resolves to os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	obj := usedObject(info, e)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr")
}
