package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineShare flags the data-race shapes that survive `go vet` and only
// show up under `-race` when the schedule cooperates: a goroutine closure
// writing to state captured from the enclosing function without a visible
// synchronization token, and sync.WaitGroup counters added after the
// goroutine they account for has already launched.
//
// The module's sanctioned fan-out idiom — each worker writes a DISJOINT
// index of a pre-sized slice (forest training, blocked matmul) — is
// deliberately exempt: slice/array element writes through an index are
// never flagged. Everything else that mutates captured storage is:
//
//   - map element writes (maps are never safe for concurrent mutation);
//   - append-and-reassign of a captured slice (races on len and backing
//     array even with disjoint "slots");
//   - plain assignment, op-assignment, or ++/-- of a captured variable;
//   - field writes and writes through a captured pointer.
//
// A write is considered guarded when a synchronization acquire — a
// Lock/RLock method call, a sync/atomic call, or a channel receive —
// appears earlier in the closure body's source order. That is a heuristic
// (source order is not happens-before), but it cleanly separates the
// mutex-guarded registry pattern from the bare captured write, and the
// race detector backs it up at runtime.
var GoroutineShare = &Analyzer{
	Name: "goroutineshare",
	Doc:  "goroutine closures must not write captured maps/slices/fields without synchronization; WaitGroup.Add must precede the goroutine it counts",
	Run:  runGoroutineShare,
}

func runGoroutineShare(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkGoClosure(p, lit)
				}
			case *ast.BlockStmt:
				checkAddAfterGo(p, n)
			}
			return true
		})
	}
}

// checkGoClosure flags unsynchronized writes to captured storage inside
// one launched closure.
func checkGoClosure(p *Pass, lit *ast.FuncLit) {
	guardPos := firstSyncToken(p, lit.Body)
	guarded := func(pos token.Pos) bool {
		return guardPos != token.NoPos && guardPos < pos
	}
	captured := func(e ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := p.Info.Uses[id]
		if obj == nil || obj.Parent() == nil {
			return nil, false
		}
		// Captured = declared outside the closure (including the literal's
		// own parameters, which are declared at the type's position).
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return nil, false
		}
		// Package-level state shared by construction; still counts.
		return obj, true
	}

	checkTarget := func(l ast.Expr, verb string) {
		if guarded(l.Pos()) {
			return
		}
		switch l := ast.Unparen(l).(type) {
		case *ast.IndexExpr:
			obj, ok := captured(l.X)
			if !ok {
				return
			}
			switch p.Info.TypeOf(l.X).Underlying().(type) {
			case *types.Map:
				p.Reportf(l.Pos(), "goroutine writes captured map %s without synchronization; concurrent map writes fault at runtime — guard with a mutex or collect per-goroutine and merge after Wait", obj.Name())
			case *types.Slice, *types.Array, *types.Pointer:
				// Disjoint-index fan-out: each worker owns its slot. Exempt.
			default:
				p.Reportf(l.Pos(), "goroutine %s captured %s without synchronization", verb, obj.Name())
			}
		case *ast.Ident:
			if obj, ok := captured(l); ok {
				p.Reportf(l.Pos(), "goroutine %s captured variable %s without synchronization; the parent's reads race with this write — use a channel, a mutex, or a per-goroutine slot", verb, obj.Name())
			}
		case *ast.SelectorExpr:
			if obj, ok := captured(l.X); ok {
				p.Reportf(l.Pos(), "goroutine writes field %s.%s of captured %s without synchronization — guard the write or give each goroutine its own struct", obj.Name(), l.Sel.Name, obj.Name())
			}
		case *ast.StarExpr:
			if obj, ok := captured(l.X); ok {
				p.Reportf(l.Pos(), "goroutine writes through captured pointer %s without synchronization — the pointee is shared with the parent", obj.Name())
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != lit {
				return false // nested launches are visited by the outer walk
			}
		case *ast.AssignStmt:
			// s = append(s, x) on a captured slice races regardless of the
			// exempt index-write rule: len and backing array are shared.
			if n.Tok == token.ASSIGN && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if obj, ok := capturedAppendTarget(p, lit, n); ok {
					if !guarded(n.Pos()) {
						p.Reportf(n.Pos(), "goroutine appends to captured slice %s without synchronization; append races on length and backing array — collect per-goroutine and merge after Wait", obj.Name())
					}
					return true
				}
			}
			for _, l := range n.Lhs {
				checkTarget(l, "assigns to")
			}
		case *ast.IncDecStmt:
			checkTarget(n.X, "increments")
		}
		return true
	})
}

// capturedAppendTarget matches `s = append(s, ...)` where s is captured.
func capturedAppendTarget(p *Pass, lit *ast.FuncLit, as *ast.AssignStmt) (types.Object, bool) {
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := p.Info.Uses[id]
	if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
		return nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || calleeName(call) != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if _, isBuiltin := p.Info.Uses[ast.Unparen(call.Fun).(*ast.Ident)].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return obj, ok && p.Info.Uses[first] == obj
}

// firstSyncToken returns the position of the earliest synchronization
// acquire in body: a Lock/RLock method call, a sync/atomic call, or a
// channel receive. token.NoPos when none exists.
func firstSyncToken(p *Pass, body *ast.BlockStmt) token.Pos {
	first := token.NoPos
	note := func(pos token.Pos) {
		if first == token.NoPos || pos < first {
			first = pos
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					note(n.Pos())
				}
				if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
					note(n.Pos())
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				note(n.Pos())
			}
		}
		return true
	})
	return first
}

// checkAddAfterGo flags WaitGroup counter bumps that land after a
// goroutine launch in the same block — the classic
//
//	go worker()
//	wg.Add(1)        // racy: Wait may have already returned
//
// misordering — and Add calls inside a launched closure, which race with
// the parent's Wait the same way.
func checkAddAfterGo(p *Pass, block *ast.BlockStmt) {
	sawGo := false
	for _, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.GoStmt:
			sawGo = true
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(p, call, "Add") {
						p.Reportf(call.Pos(), "WaitGroup.Add inside the launched goroutine races with Wait in the parent; call Add before the go statement")
					}
					return true
				})
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && sawGo && isWaitGroupCall(p, call, "Add") {
				p.Reportf(call.Pos(), "WaitGroup.Add after a go statement in the same block; a Wait that started between them can return early — Add before launching")
			}
		}
	}
}

// isWaitGroupCall reports whether call is <sync.WaitGroup>.name(...).
func isWaitGroupCall(p *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
