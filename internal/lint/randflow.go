package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// RandFlow enforces the single-root randomness contract module-wide:
// every stream must provably derive from the seeded internal/rng root.
// It subsumes the old package-scoped import ban (nodirectrand's
// restricted list) with three precise, module-wide checks:
//
//  1. No math/rand, math/rand/v2, or crypto/rand anywhere in the module —
//     imports (including test files, syntactically) and resolved calls
//     (type-checked files, so laundering through a renamed import or a
//     helper in a "free" package is still caught).
//  2. The seed handed to internal/rng's constructors (New, NewStream)
//     must not derive — even transitively, through helpers in cmd/ or
//     internal/serving — from the wall clock or a forbidden generator.
//     nodirectrand catches the syntactic `New(time.Now()...)` form; this
//     taint check catches the laundered ones.
//  3. An rng stream is not safe for concurrent use: a *rng.Source
//     referenced from two goroutines (or from a goroutine and its parent)
//     is flagged. The sanctioned pattern is Split(): derive a child per
//     goroutine before launching it.
var RandFlow = &Analyzer{
	Name:      "randflow",
	Doc:       "all randomness derives from the seeded internal/rng root: no math/rand or crypto/rand anywhere, no tainted seeds, no stream shared across goroutines",
	RunModule: runRandFlow,
}

// rngSourceType identifies the module's stream type and its roots.
const (
	rngPkgPath    = "repro/internal/rng"
	rngSourceName = "Source"
)

var rngRootConstructors = []string{"New", "NewStream"}

func runRandFlow(mp *ModulePass) {
	for _, pkg := range mp.Mod.Pkgs {
		randFlowImports(mp, pkg)
		if pkg.Info == nil || pkg.Info.Uses == nil {
			continue
		}
		randFlowCalls(mp, pkg)
	}
	randFlowSeeds(mp)
	cg := BuildCallGraph(mp.Mod)
	for _, fn := range cg.Funcs {
		if _, ok := fn.Node.(*ast.FuncDecl); ok {
			randFlowSharing(mp, fn)
		}
	}
}

// randFlowImports flags forbidden generator imports, test files included:
// a test seeding from math/rand is as non-reproducible as library code.
func randFlowImports(mp *ModulePass, pkg *Package) {
	for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, bad := range forbiddenRandImports {
				if path == bad {
					mp.Reportf(imp.Pos(), "import of %s in %s; every stream must derive from the seeded internal/rng root so one integer seed reproduces the run", path, pkg.Path)
				}
			}
		}
	}
}

// randFlowCalls flags resolved calls into the forbidden generators — this
// catches renamed imports and dot-imports the syntactic check would miss,
// and gives a finding at the use site rather than only the import line.
func randFlowCalls(mp *ModulePass, pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := staticCallee(pkg.Info, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			for _, bad := range forbiddenRandImports {
				if obj.Pkg().Path() == bad {
					mp.Reportf(call.Pos(), "call to %s.%s; draw from internal/rng (Split a child stream if you need independence) so the run stays seed-reproducible", bad, obj.Name())
				}
			}
			return true
		})
	}
}

// randFlowSeeds taints values derived from the wall clock or a forbidden
// generator and reports any that reach an internal/rng constructor seed.
func randFlowSeeds(mp *ModulePass) {
	cg := BuildCallGraph(mp.Mod)
	cfg := &taintConfig{
		maxDepth: defaultTaintDepth,
		isSource: func(pkg *Package, call *ast.CallExpr) (string, bool) {
			for _, fn := range wallClockFuncs {
				if isPkgFunc(pkg.Info, call, "time", fn) {
					return "time." + fn, true
				}
			}
			if obj := staticCallee(pkg.Info, call); obj != nil && obj.Pkg() != nil {
				for _, bad := range forbiddenRandImports {
					if obj.Pkg().Path() == bad {
						return bad + "." + obj.Name(), true
					}
				}
			}
			return "", false
		},
		callSink: func(pkg *Package, call *ast.CallExpr) (string, bool) {
			obj := staticCallee(pkg.Info, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != rngPkgPath {
				return "", false
			}
			for _, name := range rngRootConstructors {
				if obj.Name() == name {
					return "the rng root seed (rng." + name + ")", true
				}
			}
			return "", false
		},
		report: func(src *taintSource, sinkPos token.Pos, sink string) {
			mp.Reportf(src.pos, "%s value flows into %s at %s; the rng root must be seeded from a fixed or flag-provided integer so the run is reproducible", src.desc, sink, mp.Position(sinkPos))
		},
		giveUp: func(pos token.Pos, src *taintSource) {
			if src == nil {
				mp.Reportf(pos, "taint analysis did not converge within %d rounds; treat the module as unverified and simplify the offending flow", taintMaxRounds)
				return
			}
			// Reported at the SOURCE like sink findings, so one allow at
			// the offending read also covers chains the engine lost.
			mp.Reportf(src.pos, "taint path from this %s exceeds the interprocedural depth bound (%d) at %s; randflow cannot prove the seed clean — shorten the call chain or annotate this read", src.desc, defaultTaintDepth, mp.Position(pos))
		},
	}
	newTaintEngine(cg, cfg).run()
}

// randFlowSharing flags an rng stream reachable from two goroutines
// within one declared function: referenced inside two `go` statements, or
// inside one while also used by the spawning code. Arguments of a go call
// are evaluated synchronously, so an ident buried in an argument
// expression (src.Split()) counts as parent-side use; only the whole
// ident passed as an argument, the call's receiver, or any use inside a
// launched closure body crosses into the goroutine.
func randFlowSharing(mp *ModulePass, fn *FuncNode) {
	decl := fn.Node.(*ast.FuncDecl)
	info := fn.Pkg.Info

	// goUses[obj] = distinct go statements referencing obj concurrently.
	goUses := map[types.Object][]*ast.GoStmt{}
	var goOrder []types.Object // deterministic report order
	inGo := map[types.Object]map[*ast.GoStmt]bool{}
	record := func(obj types.Object, g *ast.GoStmt) {
		if inGo[obj] == nil {
			inGo[obj] = map[*ast.GoStmt]bool{}
		}
		if !inGo[obj][g] {
			inGo[obj][g] = true
			if len(goUses[obj]) == 0 {
				goOrder = append(goOrder, obj)
			}
			goUses[obj] = append(goUses[obj], g)
		}
	}

	var goRegions []*ast.GoStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		goRegions = append(goRegions, g)
		call := g.Call
		// Whole-ident arguments are handed to the goroutine.
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && isRngSource(obj.Type()) {
					record(obj, g)
				}
			}
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			// Every stream ident inside the closure body runs concurrently.
			ast.Inspect(fun.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && isRngSource(obj.Type()) {
						record(obj, g)
					}
				}
				return true
			})
		case *ast.SelectorExpr:
			// go src.Method(...): the receiver crosses.
			if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && isRngSource(obj.Type()) {
					record(obj, g)
				}
			}
		}
		return true
	})
	if len(goOrder) == 0 {
		return
	}

	// Parent-side uses: stream idents outside every launched-closure body.
	parentUse := map[types.Object]token.Pos{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !isRngSource(obj.Type()) {
			return true
		}
		for _, g := range goRegions {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				if id.Pos() >= lit.Body.Pos() && id.Pos() < lit.Body.End() {
					return true // concurrent use, already recorded
				}
			}
			// The whole-ident argument form is a hand-off, not a parent use.
			for _, arg := range g.Call.Args {
				if ast.Unparen(arg) == ast.Node(id) {
					return true
				}
			}
			if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == ast.Node(id) {
				return true
			}
		}
		if _, seen := parentUse[obj]; !seen {
			parentUse[obj] = id.Pos()
		}
		return true
	})

	for _, obj := range goOrder {
		gs := goUses[obj]
		switch {
		case len(gs) > 1:
			mp.Reportf(gs[1].Pos(), "rng stream %s is used by %d goroutines in %s; a Source is not concurrency-safe and shared draws destroy determinism — Split() a child per goroutine", obj.Name(), len(gs), fn.ID)
		default:
			if _, ok := parentUse[obj]; ok {
				mp.Reportf(gs[0].Pos(), "rng stream %s is used by this goroutine and by its parent in %s; Split() a child for the goroutine so both sequences stay deterministic", obj.Name(), fn.ID)
			}
		}
	}
}

// isRngSource reports whether t is rng.Source or *rng.Source.
func isRngSource(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	// Match the real module path and the fixture module's equivalent.
	path := named.Obj().Pkg().Path()
	return named.Obj().Name() == rngSourceName &&
		(path == rngPkgPath || strings.HasSuffix(path, "/internal/rng"))
}
