package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between two COMPUTED floating-point expressions.
// Exact float equality between computed values is almost always a latent
// bug next to accumulated rounding error. Comparisons where either side is
// a compile-time constant are exempt: `x == 0` / `w != initialWeight` is
// the sentinel/guard idiom — the program asks "is this still exactly the
// value something assigned", which IEEE 754 answers reliably. Only
// computed-vs-computed comparisons (sums, products, function results on
// both sides) remain findings; the rare intentional one carries a
// //lint:allow floateq annotation with a justification.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= between two computed floats; compare with a tolerance, use math.IsNaN, or annotate an intentional exact guard (constant comparands are exempt)",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	if pass.Info == nil || pass.Info.Types == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt := pass.Info.Types[be.X]
			yt := pass.Info.Types[be.Y]
			// A constant on either side is the sentinel/guard idiom
			// (x == 0, w != maxFloat): exact by construction, not a bug.
			if xt.Value != nil || yt.Value != nil {
				return true
			}
			if isFloat(xt.Type) || isFloat(yt.Type) {
				pass.Reportf(be.OpPos, "floating-point %s between two computed values (%s %s %s); use a tolerance or math.IsNaN, or annotate with //lint:allow floateq",
					be.Op, exprString(pass.Fset, be.X), be.Op, exprString(pass.Fset, be.Y))
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
