package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point expressions. Exact float
// equality is almost always a latent bug next to accumulated rounding
// error; intentional exact guards (sparsity checks against a value that
// was literally assigned zero, NaN self-comparison) carry a
// //lint:allow floateq annotation with a justification.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= between floats; compare with a tolerance, use math.IsNaN, or annotate an intentional exact guard",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	if pass.Info == nil || pass.Info.Types == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt := pass.Info.Types[be.X]
			yt := pass.Info.Types[be.Y]
			// Two untyped constants compare exactly at compile time.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			if isFloat(xt.Type) || isFloat(yt.Type) {
				pass.Reportf(be.OpPos, "floating-point %s comparison (%s %s %s); use a tolerance or math.IsNaN, or annotate with //lint:allow floateq",
					be.Op, exprString(pass.Fset, be.X), be.Op, exprString(pass.Fset, be.Y))
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
