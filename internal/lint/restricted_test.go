package lint

import (
	"strings"
	"testing"
)

// TestWallClockAllowedPkgsFrozen pins the nowallclock allowed list. The
// load controller (internal/loadctl) is deliberately NOT on it: every
// time value it handles must be a Duration measured by the serving
// boundary, so its admission decisions stay a pure function of inputs.
// Growing this list is a design decision, not a convenience — update
// this test only alongside a DESIGN.md note saying why.
func TestWallClockAllowedPkgsFrozen(t *testing.T) {
	want := []string{"internal/serving", "cmd"}
	if len(wallClockAllowedPkgs) != len(want) {
		t.Fatalf("wallClockAllowedPkgs = %v, want %v", wallClockAllowedPkgs, want)
	}
	for i, p := range want {
		if wallClockAllowedPkgs[i] != p {
			t.Fatalf("wallClockAllowedPkgs[%d] = %q, want %q", i, wallClockAllowedPkgs[i], p)
		}
	}
}

// TestWallClockAllowedFilesFrozen pins the single-file clock
// boundaries. internal/obs/clock.go is the only one: it stamps trace
// spans and stopwatches at the measurement boundary and exports only
// opaque Duration-producing values, so the rest of internal/obs (ring
// buffer, exposition, IDs) stays clock-free and usable from restricted
// packages. Growing this list is a design decision, not a convenience
// — update this test only alongside a DESIGN.md note saying why.
func TestWallClockAllowedFilesFrozen(t *testing.T) {
	want := []string{"internal/obs/clock.go"}
	if len(wallClockAllowedFiles) != len(want) {
		t.Fatalf("wallClockAllowedFiles = %v, want %v", wallClockAllowedFiles, want)
	}
	for i, p := range want {
		if wallClockAllowedFiles[i] != p {
			t.Fatalf("wallClockAllowedFiles[%d] = %q, want %q", i, wallClockAllowedFiles[i], p)
		}
	}
}

// TestObsClockBoundary proves the file-level allowance is exactly one
// file wide: clock.go in an obs-shaped package may read the clock, a
// sibling file in the same package may not.
func TestObsClockBoundary(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"internal/obs/clock.go": "package obs\n\nimport \"time\"\n\n" +
			"func Start() time.Time { return time.Now() }\n",
		"internal/obs/ring.go": "package obs\n\nimport \"time\"\n\n" +
			"func Bad() time.Time { return time.Now() }\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var inClock, inRing int
	for _, d := range Run(mod, []*Analyzer{NoWallClock}) {
		switch {
		case strings.Contains(d.Pos.Filename, "clock.go"):
			inClock++
		case strings.Contains(d.Pos.Filename, "ring.go"):
			inRing++
		}
	}
	if inClock != 0 {
		t.Fatalf("obs/clock.go time.Now flagged %d times, want 0 (pinned boundary)", inClock)
	}
	if inRing != 1 {
		t.Fatalf("obs/ring.go time.Now: %d findings, want 1 (allowance must be file-scoped)", inRing)
	}
}

// TestLoadctlIsClockRestricted proves the restriction is live: a
// loadctl-shaped package reading time.Now is flagged by nowallclock.
func TestLoadctlIsClockRestricted(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"internal/loadctl/ctl.go": "package loadctl\n\nimport \"time\"\n\n" +
			"func Bad() time.Time { return time.Now() }\n",
		"internal/serving/ok.go": "package serving\n\nimport \"time\"\n\n" +
			"func OK() time.Time { return time.Now() }\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var inLoadctl, inServing int
	for _, d := range Run(mod, []*Analyzer{NoWallClock}) {
		switch {
		case strings.Contains(d.Pos.Filename, "internal/loadctl"):
			inLoadctl++
		case strings.Contains(d.Pos.Filename, "internal/serving"):
			inServing++
		}
	}
	if inLoadctl != 1 {
		t.Fatalf("loadctl time.Now: %d findings, want 1", inLoadctl)
	}
	if inServing != 0 {
		t.Fatalf("serving time.Now flagged %d times, want 0 (allowed package)", inServing)
	}
}
