package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadModule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":  "module example.com/m\n\ngo 1.22\n",
		"root.go": "package m\n\nimport \"example.com/m/b\"\n\nfunc Use() int { return b.B() }\n",
		"a/a.go":  "package a\n\nfunc A() int { return 1 }\n",
		"a/a_test.go": "package a\n\nimport \"testing\"\n\n" +
			"func TestA(t *testing.T) { if A() != 1 { t.Fail() } }\n",
		"b/b.go": "package b\n\nimport \"example.com/m/a\"\n\nfunc B() int { return a.A() }\n",
		// Must all be skipped:
		"a/testdata/broken.go": "package !!!syntax error\n",
		"vendor/v/v.go":        "package v\n\nfunc !!!\n",
		".hidden/h.go":         "package h\n\nfunc !!!\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "example.com/m" {
		t.Fatalf("module path = %q", mod.Path)
	}
	idx := map[string]int{}
	for i, p := range mod.Pkgs {
		idx[p.Path] = i
		if p.Types == nil && len(p.Files) > 0 {
			t.Errorf("%s not type-checked", p.Path)
		}
	}
	if len(mod.Pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3: %v", len(mod.Pkgs), idx)
	}
	// Topological: a before b, b before the root (which imports b).
	if !(idx["example.com/m/a"] < idx["example.com/m/b"] && idx["example.com/m/b"] < idx["example.com/m"]) {
		t.Fatalf("packages not dependencies-first: %v", idx)
	}
	a := mod.Pkgs[idx["example.com/m/a"]]
	if len(a.TestFiles) != 1 {
		t.Fatalf("package a has %d test files, want 1", len(a.TestFiles))
	}
}

func TestLoadModuleRejectsCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nvar A = b.B\n",
		"b/b.go": "package b\n\nimport \"example.com/m/a\"\n\nvar B = a.A\n",
	})
	if _, err := LoadModule(root); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected import-cycle error, got %v", err)
	}
}

func TestLoadModuleReportsTypeErrors(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() int { return \"not an int\" }\n",
	})
	if _, err := LoadModule(root); err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("expected type-check error, got %v", err)
	}
}

func TestModulePathUnquoted(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "// comment\nmodule \"example.com/q\"\n",
		"a.go":   "package q\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "example.com/q" {
		t.Fatalf("module path = %q", mod.Path)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("floateq, errignore")
	if err != nil || len(as) != 2 || as[0].Name != "floateq" || as[1].Name != "errignore" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	if _, err := ByName(" ,"); err == nil {
		t.Fatal("empty list accepted")
	}
}

func TestAllowDirectiveParsing(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": `package a

func cmp(x, y float64) bool {
	//lint:allow floateq -- standalone form
	return x == y
}

func cmp2(x, y float64) bool {
	return x == y //lint:allow floateq — em-dash justification
}

func cmp3(x, y float64) bool {
	return x == y //lint:allow nowallclock -- wrong analyzer: must NOT suppress
}
`,
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod, []*Analyzer{FloatEq})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the wrong-name one: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 13 {
		t.Fatalf("surviving diagnostic at line %d, want 13", diags[0].Pos.Line)
	}
}
