package lint

import (
	"go/ast"
	"strings"
)

// wallClockAllowedPkgs are module-relative subtrees where reading the wall
// clock is legitimate: the serving stack (uptime, latency metrics) and the
// CLIs (progress reporting). Everything else — models, simulator,
// experiments — must be a pure function of its seed so artifacts are
// byte-reproducible.
var wallClockAllowedPkgs = []string{
	"internal/serving",
	"cmd",
}

// wallClockAllowedFiles are single files outside the allowed packages
// that form a sanctioned clock boundary: internal/obs/clock.go stamps
// trace spans and stopwatches at the moment of measurement, exporting
// only opaque values that collapse to Durations, so the rest of the
// observability layer (and the clock-restricted packages using it)
// never hold a time.Time. The list is pinned by
// TestWallClockAllowedFilesFrozen, exactly like the package list.
var wallClockAllowedFiles = []string{
	"internal/obs/clock.go",
}

// wallClockFuncs are the time-package functions that observe the clock.
var wallClockFuncs = []string{"Now", "Since", "Until"}

// NoWallClock forbids time.Now / time.Since / time.Until outside
// internal/serving and cmd/, keeping experiment artifacts seed-deterministic.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "no wall-clock reads outside internal/serving and cmd/; experiment output must be a function of the seed",
	Run:  runNoWallClock,
}

func runNoWallClock(pass *Pass) {
	rel := pass.RelPath()
	for _, p := range wallClockAllowedPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return
		}
	}
	if pass.Info == nil || pass.Info.Uses == nil {
		return
	}
	for _, f := range pass.Files {
		if wallClockFileAllowed(rel, pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range wallClockFuncs {
				if isPkgFunc(pass.Info, call, "time", fn) {
					pass.Reportf(call.Pos(), "time.%s in %s reads the wall clock; only internal/serving and cmd/ may observe real time", fn, pass.PkgPath)
				}
			}
			return true
		})
	}
}

// wallClockFileAllowed reports whether f is one of the pinned
// single-file clock boundaries (matched as "<pkg rel path>/<base>").
func wallClockFileAllowed(rel string, pass *Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	key := rel + "/" + name
	for _, allowed := range wallClockAllowedFiles {
		if key == allowed {
			return true
		}
	}
	return false
}
