package lint

import (
	"go/ast"
	"strings"
)

// wallClockAllowedPkgs are module-relative subtrees where reading the wall
// clock is legitimate: the serving stack (uptime, latency metrics) and the
// CLIs (progress reporting). Everything else — models, simulator,
// experiments — must be a pure function of its seed so artifacts are
// byte-reproducible.
var wallClockAllowedPkgs = []string{
	"internal/serving",
	"cmd",
}

// wallClockFuncs are the time-package functions that observe the clock.
var wallClockFuncs = []string{"Now", "Since", "Until"}

// NoWallClock forbids time.Now / time.Since / time.Until outside
// internal/serving and cmd/, keeping experiment artifacts seed-deterministic.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "no wall-clock reads outside internal/serving and cmd/; experiment output must be a function of the seed",
	Run:  runNoWallClock,
}

func runNoWallClock(pass *Pass) {
	rel := pass.RelPath()
	for _, p := range wallClockAllowedPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return
		}
	}
	if pass.Info == nil || pass.Info.Uses == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range wallClockFuncs {
				if isPkgFunc(pass.Info, call, "time", fn) {
					pass.Reportf(call.Pos(), "time.%s in %s reads the wall clock; only internal/serving and cmd/ may observe real time", fn, pass.PkgPath)
				}
			}
			return true
		})
	}
}
