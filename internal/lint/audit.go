package lint

import "go/ast"

// audit.go checks the suppression escape hatch itself: every //lint:allow
// directive must still suppress at least one live finding of the analyzer
// it names. Directives that suppress nothing are debt — the code they
// excused has changed, or an analyzer got more precise — and directives
// naming an unknown analyzer are typos that silently suppress nothing.
// `repolint -audit` runs this; TestRepositoryClean asserts it stays empty.

// AuditAnalyzerName labels audit findings in output and suppression. (The
// audit itself cannot be suppressed with //lint:allow — a stale directive
// is fixed by deletion, not by a second directive.)
const AuditAnalyzerName = "allowaudit"

// CountAllowSites returns how many //lint:allow sites the module carries
// (a directive naming two analyzers counts twice). The CLI reports it so
// the audit summary shows the denominator.
func CountAllowSites(mod *Module) int {
	var allows *allowIndex
	for _, pkg := range mod.Pkgs {
		all := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		allows = collectAllows(allows, mod.Fset, all)
	}
	if allows == nil {
		return 0
	}
	return len(allows.sites)
}

// Audit runs every analyzer over the module and reports each allow site
// that is stale (suppresses no raw finding) or names an unknown analyzer.
// Findings come back as Diagnostics so the CLI's output formats apply.
func Audit(mod *Module) []Diagnostic {
	_, allows := runAll(mod, All())
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, site := range allows.sites {
		switch {
		case !known[site.name]:
			diags = append(diags, Diagnostic{
				Analyzer: AuditAnalyzerName,
				Pos:      site.pos,
				Message:  "//lint:allow names unknown analyzer " + site.name + "; it suppresses nothing — fix the name or delete the directive",
			})
		case !site.used:
			diags = append(diags, Diagnostic{
				Analyzer: AuditAnalyzerName,
				Pos:      site.pos,
				Message:  "stale //lint:allow " + site.name + ": no " + site.name + " finding on this or the next line — delete the directive",
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}
