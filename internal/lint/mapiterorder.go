package lint

import (
	"go/ast"
	"go/types"
)

// MapIterOrder flags `range` over a map whose body has order-dependent
// effects: writing to an output stream, or appending to a slice that
// outlives the loop. Go randomizes map iteration order, so both patterns
// are the classic source of run-to-run diffs in reports, CSV, and JSON.
//
// The canonical fix — collect keys, sort, iterate the sorted slice — is
// recognized: an append-collecting loop is NOT flagged when a following
// statement in the same block sorts the collected slice. Loops whose
// order genuinely does not matter carry //lint:allow mapiterorder.
var MapIterOrder = &Analyzer{
	Name: "mapiterorder",
	Doc:  "no order-dependent output or accumulation inside range-over-map; iterate sorted keys instead",
	Run:  runMapIterOrder,
}

// orderedWriteMethods are method names that emit to a stream in call order.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Printf": true, "Print": true, "Println": true,
}

// fmtPrintFuncs are the fmt emitters (both stdout and io.Writer forms).
var fmtPrintFuncs = []string{"Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println"}

func runMapIterOrder(pass *Pass) {
	if pass.Info == nil || pass.Info.Types == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass.Info, rs) {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange reports order-dependent effects in one map-range body.
// rest holds the statements following the loop in its enclosing block,
// consulted to recognize the collect-then-sort idiom.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	// Order-dependent stream writes anywhere in the body.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isOrderedWrite(pass.Info, call) {
			pass.Reportf(call.Pos(), "%s emits output inside range over map %s; iteration order is random — iterate sorted keys",
				exprString(pass.Fset, call.Fun), exprString(pass.Fset, rs.X))
		}
		return true
	})

	// Appends that accumulate into a slice outliving the loop.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(as.Lhs) {
				continue
			}
			obj := usedObject(pass.Info, as.Lhs[i])
			if obj == nil || declaredWithin(obj, rs) || sortedLater(pass.Info, obj, rest) {
				continue
			}
			pass.Reportf(call.Pos(), "append to %s inside range over map %s accumulates in random order; sort %s afterwards or iterate sorted keys",
				obj.Name(), exprString(pass.Fset, rs.X), obj.Name())
		}
		return true
	})
}

// isOrderedWrite reports whether the call emits bytes to a stream whose
// contents depend on call order: fmt print/fprint functions or Write-like
// methods (Write, WriteString, Encode, ...).
func isOrderedWrite(info *types.Info, call *ast.CallExpr) bool {
	for _, fn := range fmtPrintFuncs {
		if isPkgFunc(info, call, "fmt", fn) {
			return true
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !orderedWriteMethods[sel.Sel.Name] {
		return false
	}
	// Only method calls count (x.Write(...)), not package functions named
	// Write — the receiver is what identifies a stream.
	_, isMethod := info.Selections[sel]
	return isMethod
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// declaredWithin reports whether obj is declared inside node's extent
// (i.e. loop-local, so its order resets every iteration group).
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// sortedLater reports whether a statement after the loop sorts obj: a call
// into package sort or slices that mentions the object. That is the
// canonical deterministic-iteration idiom and must not be flagged.
func sortedLater(info *types.Info, obj types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel]
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			if mentionsObject(info, call, obj) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
