package lint_test

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// loadTestModule loads a self-contained mini-module under testdata/<dir>
// (its own go.mod declares `module repro`, so fixture sink paths like
// repro/internal/core resolve exactly like the real tree's).
func loadTestModule(t *testing.T, dir string) *lint.Module {
	t.Helper()
	mod, err := lint.LoadModule(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", dir, err)
	}
	return mod
}

// moduleWantLines recursively scans a fixture module for `// want
// <analyzer>...` markers, returning expected "basename.go:line" keys.
func moduleWantLines(t *testing.T, dir, analyzer string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	root := filepath.Join("testdata", dir)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				for _, name := range strings.Fields(m[1]) {
					if name == analyzer {
						want[filepath.Base(path)+":"+strconv.Itoa(i+1)] = true
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// checkModuleFixture asserts a module-scoped analyzer fires exactly on
// the want-marked lines of its fixture module and nowhere else.
func checkModuleFixture(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	mod := loadTestModule(t, dir)
	got := map[string][]string{}
	for _, d := range lint.Run(mod, []*lint.Analyzer{a}) {
		key := filepath.Base(d.Pos.Filename) + ":" + strconv.Itoa(d.Pos.Line)
		got[key] = append(got[key], d.Message)
	}
	want := moduleWantLines(t, dir, a.Name)
	for key := range want {
		if len(got[key]) == 0 {
			t.Errorf("%s: expected a %s finding at %s, got none", dir, a.Name, key)
		}
	}
	for key, msgs := range got {
		if !want[key] {
			t.Errorf("%s: unexpected %s finding at %s: %v", dir, a.Name, key, msgs)
		}
	}
}

func TestClockFlowModuleFixture(t *testing.T) {
	checkModuleFixture(t, lint.ClockFlow, "flowmod")
}

func TestRandFlowModuleFixture(t *testing.T) {
	checkModuleFixture(t, lint.RandFlow, "flowmod")
}

// TestTaintDepthGiveUpReports pins the fail-closed contract: a flow the
// engine loses past the depth bound must produce a finding that says so,
// not silently pass.
func TestTaintDepthGiveUpReports(t *testing.T) {
	mod := loadTestModule(t, "flowmod")
	found := false
	for _, d := range lint.Run(mod, []*lint.Analyzer{lint.ClockFlow}) {
		if strings.Contains(d.Message, "depth bound") {
			found = true
			if !strings.Contains(filepath.Base(d.Pos.Filename)+":"+strconv.Itoa(d.Pos.Line), "main.go") {
				t.Errorf("give-up reported away from the source: %s", d)
			}
		}
	}
	if !found {
		t.Error("13-hop chain produced no depth-bound give-up finding")
	}
}

// TestCallGraphDeterminism loads the same module twice and demands
// byte-identical graph serializations — the substrate every module
// analyzer iterates, so this is the root of output stability.
func TestCallGraphDeterminism(t *testing.T) {
	a := loadTestModule(t, "flowmod")
	b := loadTestModule(t, "flowmod")
	sa := lint.BuildCallGraph(a).String(a.Fset)
	sb := lint.BuildCallGraph(b).String(b.Fset)
	if sa != sb {
		t.Fatalf("call graph serialization differs across loads:\n--- first\n%s\n--- second\n%s", sa, sb)
	}
	if !strings.Contains(sa, "repro/internal/rng.New") || !strings.Contains(sa, "$1") {
		t.Fatalf("graph is missing declared functions or literals:\n%s", sa)
	}
}

// TestFindingOrderDeterminism runs the full suite twice over fresh loads
// and demands byte-identical rendered findings.
func TestFindingOrderDeterminism(t *testing.T) {
	render := func() []byte {
		mod := loadTestModule(t, "flowmod")
		out, err := lint.FormatJSON(lint.Run(mod, lint.All()))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Fatalf("findings differ across runs:\n--- first\n%s\n--- second\n%s", first, second)
	}
	if len(first) == 0 || string(first) == "[]\n" {
		t.Fatal("fixture module unexpectedly produced no findings")
	}
}

func TestAuditFlagsStaleAndUnknown(t *testing.T) {
	mod := loadTestModule(t, "flowmod")
	diags := lint.Audit(mod)
	var stale, unknown int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "stale //lint:allow floateq"):
			stale++
		case strings.Contains(d.Message, "unknown analyzer nosuchanalyzer"):
			unknown++
		case strings.Contains(d.Message, "lint:allow clockflow"):
			t.Errorf("audit flagged the live clockflow directive: %s", d)
		}
		if d.Analyzer != lint.AuditAnalyzerName {
			t.Errorf("audit finding with wrong analyzer label: %s", d)
		}
	}
	if stale != 1 || unknown != 1 || len(diags) != 2 {
		t.Fatalf("audit = %d findings (stale=%d unknown=%d), want exactly 1+1: %v", len(diags), stale, unknown, diags)
	}
}

func TestFormatJSON(t *testing.T) {
	if out, err := lint.FormatJSON(nil); err != nil || string(out) != "[]\n" {
		t.Fatalf("empty findings render %q, %v; want [] and a newline", out, err)
	}
	d := lint.Diagnostic{Analyzer: "floateq", Message: "a < b stays unescaped"}
	d.Pos.Filename = "internal/mat/matrix.go"
	d.Pos.Line, d.Pos.Column = 3, 7
	out, err := lint.FormatJSON([]lint.Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"analyzer": "floateq"`, `"file": "internal/mat/matrix.go"`, `"line": 3`, `"col": 7`, "a < b stays unescaped"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("JSON output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(string(out), `\u003c`) {
		t.Errorf("JSON output HTML-escapes source snippets:\n%s", out)
	}
}

func TestFormatSARIF(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "clockflow", Message: "m"}
	d.Pos.Filename = "cmd/pipeline/main.go"
	d.Pos.Line, d.Pos.Column = 65, 30
	out, err := lint.FormatSARIF([]lint.Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`"version": "2.1.0"`,
		`"name": "repolint"`,
		`"ruleId": "clockflow"`,
		`"uri": "cmd/pipeline/main.go"`,
		`"startLine": 65,`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SARIF output missing %q:\n%s", want, s)
		}
	}
	// The rule table always carries the full suite plus the audit rule,
	// independent of which findings are present.
	for _, a := range lint.All() {
		if !strings.Contains(s, `"id": "`+a.Name+`"`) {
			t.Errorf("SARIF rule table missing %s", a.Name)
		}
	}
	if !strings.Contains(s, `"id": "`+lint.AuditAnalyzerName+`"`) {
		t.Error("SARIF rule table missing the audit pseudo-rule")
	}
	two, err := lint.FormatSARIF([]lint.Diagnostic{d})
	if err != nil || !bytes.Equal(out, two) {
		t.Error("SARIF output not byte-identical across calls")
	}
}
