package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestRepositoryClean is the enforcement half of the suite: the module's
// own tree must produce zero findings, so introducing a violation (or
// deleting a required //lint:allow justification) fails `go test ./...`
// directly, independent of the `make lint` wiring.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; covered by make lint")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "repro" {
		t.Fatalf("unexpected module path %q — is the test running inside the repo?", mod.Path)
	}
	if len(mod.Pkgs) < 20 {
		t.Fatalf("only %d packages loaded; loader is missing the tree", len(mod.Pkgs))
	}
	for _, d := range lint.Run(mod, lint.All()) {
		t.Errorf("%s", d)
	}
	// Audit cleanliness is part of the gate: every //lint:allow in the
	// tree must still suppress a live finding. A stale directive is a
	// deleted invariant pretending to be an accepted one.
	for _, d := range lint.Audit(mod) {
		t.Errorf("%s", d)
	}
}

func TestAnalyzerNamesAreUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("malformed analyzer %+v", a)
		}
		// Exactly one of the two shapes: per-package or module-scoped.
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 8 {
		t.Errorf("suite has %d analyzers, want 8", len(seen))
	}
	if lint.AuditAnalyzerName != "allowaudit" || seen[lint.AuditAnalyzerName] {
		t.Errorf("the audit pseudo-analyzer must stay outside the suite (cannot be suppressed)")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "floateq", Message: "m"}
	d.Pos.Filename = "x.go"
	d.Pos.Line, d.Pos.Column = 3, 7
	if got, want := d.String(), "x.go:3:7: [floateq] m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
