package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one module package, parsed and type-checked.
type Package struct {
	Path string // full import path
	Dir  string // absolute directory
	// Files are the non-test sources, type-checked.
	Files []*ast.File
	// TestFiles are _test.go sources, parsed with comments but not
	// type-checked (external test packages would need a second checker
	// pass for little analytical value here).
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info

	imports []string // module-internal import paths, for topo-sort
}

// Module is a fully loaded module: every package in topological
// (dependencies-first) order, sharing one FileSet.
type Module struct {
	Root string // absolute module root directory
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package
}

// LoadModule discovers, parses, and type-checks every package under root.
// Standard-library imports are type-checked from source (importer "source"),
// so the loader needs no pre-built export data and no external tooling.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{Root: root, Path: modPath, Fset: fset}

	dirs, err := goSourceDirs(root)
	if err != nil {
		return nil, err
	}
	byPath := map[string]*Package{}
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
			mod.Pkgs = append(mod.Pkgs, pkg)
		}
	}
	if err := topoSort(mod, byPath); err != nil {
		return nil, err
	}

	std := importer.ForCompiler(fset, "source", nil)
	imp := &moduleImporter{std: std, mod: map[string]*types.Package{}}
	for _, pkg := range mod.Pkgs {
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, err
		}
		imp.mod[pkg.Path] = pkg.Types
	}
	return mod, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// goSourceDirs returns every directory under root that contains .go files,
// skipping VCS internals, testdata, vendor, and hidden/underscore dirs.
func goSourceDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// parseDir parses one directory into a Package (nil if it has no non-test
// and no test Go files after filtering).
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir}
	importSet := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
			continue
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				importSet[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil, nil
	}
	for p := range importSet {
		pkg.imports = append(pkg.imports, p)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// topoSort orders mod.Pkgs dependencies-first and rejects import cycles.
func topoSort(mod *Module, byPath map[string]*Package) error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		case done:
			return nil
		}
		state[p.Path] = visiting
		for _, dep := range p.imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.Path] = done
		order = append(order, p)
		return nil
	}
	for _, p := range mod.Pkgs {
		if err := visit(p); err != nil {
			return err
		}
	}
	mod.Pkgs = order
	return nil
}

// moduleImporter resolves module-internal imports from already-checked
// packages and everything else (the standard library) from source.
type moduleImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mod[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// typeCheck runs the go/types checker over one package's non-test files.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	if len(pkg.Files) == 0 {
		// Test-only directory: nothing to type-check.
		pkg.Info = &types.Info{}
		return nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(pkg.Path, fset, pkg.Files, info)
	if len(errs) > 0 {
		max := len(errs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		for _, e := range errs[:max] {
			msgs = append(msgs, e.Error())
		}
		return fmt.Errorf("lint: type-checking %s failed:\n  %s", pkg.Path, strings.Join(msgs, "\n  "))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
