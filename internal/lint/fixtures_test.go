package lint_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// The fixture checker shares one FileSet and one source importer so the
// standard library is type-checked once per test binary, not once per
// fixture. go/types is not safe for concurrent use with a shared
// importer, so loads are serialized.
var (
	fixMu   sync.Mutex
	fixFset = token.NewFileSet()
	fixImp  types.Importer
)

// loadFixture parses and type-checks every .go file under testdata/<dir>
// as one package with the given import path.
func loadFixture(t *testing.T, dir, pkgPath string) *lint.Package {
	t.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if fixImp == nil {
		fixImp = importer.ForCompiler(fixFset, "source", nil)
	}
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &lint.Package{Path: pkgPath, Dir: full}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fixFset, filepath.Join(full, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: fixImp}
	tpkg, err := conf.Check(pkgPath, fixFset, pkg.Files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg
}

// runFixture runs one analyzer over a fixture package (through lint.Run,
// so //lint:allow suppression is exercised) and returns findings keyed
// "basename.go:line".
func runFixture(t *testing.T, a *lint.Analyzer, dir, pkgPath string) map[string][]string {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	mod := &lint.Module{Path: "repro", Fset: fixFset, Pkgs: []*lint.Package{pkg}}
	got := map[string][]string{}
	for _, d := range lint.Run(mod, []*lint.Analyzer{a}) {
		key := filepath.Base(d.Pos.Filename) + ":" + strconv.Itoa(d.Pos.Line)
		got[key] = append(got[key], d.Message)
	}
	return got
}

var wantRe = regexp.MustCompile(`//\s*want\s+([a-z]+(?: [a-z]+)*)`)

// wantLines scans a fixture directory for `// want <analyzer>...` markers
// (one marker may name several space-separated analyzers) and returns the
// expected "basename.go:line" keys for that analyzer.
func wantLines(t *testing.T, dir, analyzer string) map[string]bool {
	t.Helper()
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(full, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				for _, name := range strings.Fields(m[1]) {
					if name == analyzer {
						want[e.Name()+":"+strconv.Itoa(i+1)] = true
					}
				}
			}
		}
	}
	return want
}

// checkFixture asserts that an analyzer fires exactly on the want-marked
// lines of its fixture and nowhere else.
func checkFixture(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	got := runFixture(t, a, dir, pkgPath)
	want := wantLines(t, dir, a.Name)
	for key := range want {
		if len(got[key]) == 0 {
			t.Errorf("%s: expected a %s finding at %s, got none", dir, a.Name, key)
		}
	}
	for key, msgs := range got {
		if !want[key] {
			t.Errorf("%s: unexpected %s finding at %s: %v", dir, a.Name, key, msgs)
		}
	}
}

func TestNoDirectRandFixture(t *testing.T) {
	checkFixture(t, lint.NoDirectRand, "nodirectrand", "repro/internal/tree")
}

func TestRandFlowImportAndCallBan(t *testing.T) {
	// The ban is module-wide — randflow flags forbidden imports and calls
	// under ANY package path, including cmd/ (which the old nodirectrand
	// restricted list exempted). Strictly stronger, by test.
	for _, path := range []string{"repro/internal/tree", "repro/cmd/tool"} {
		checkFixture(t, lint.RandFlow, "nodirectrand", path)
	}
}

func TestNoWallClockFixture(t *testing.T) {
	checkFixture(t, lint.NoWallClock, "nowallclock", "repro/internal/experiments")
}

func TestNoWallClockAllowedPackages(t *testing.T) {
	for _, path := range []string{"repro/internal/serving", "repro/cmd/experiment"} {
		if got := runFixture(t, lint.NoWallClock, "nowallclock", path); len(got) != 0 {
			t.Errorf("nowallclock fired in allowed package %s: %v", path, got)
		}
	}
}

func TestFloatEqFixture(t *testing.T) {
	checkFixture(t, lint.FloatEq, "floateq", "repro/internal/mat")
}

func TestMapIterOrderFixture(t *testing.T) {
	checkFixture(t, lint.MapIterOrder, "mapiterorder", "repro/internal/experiments")
}

func TestErrIgnoreFixture(t *testing.T) {
	checkFixture(t, lint.ErrIgnore, "errignore", "repro/internal/core")
}

func TestGoroutineShareFixture(t *testing.T) {
	checkFixture(t, lint.GoroutineShare, "goroutineshare", "repro/internal/forest")
}
