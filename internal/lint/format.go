package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// format.go renders findings machine-readably for CI. Both formats are
// byte-deterministic: findings arrive sorted (sortDiagnostics), structs
// marshal in declaration order, and nothing stamps a clock or a random
// id. Filenames are whatever the caller put in Diagnostic.Pos.Filename —
// cmd/repolint relativizes them to the module root first so output is
// identical across checkouts.

// jsonFinding is the -format json element.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// FormatJSON renders findings as an indented JSON array (never null).
func FormatJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	return marshalIndent(out)
}

// Minimal SARIF 2.1.0 document structure — just enough for CI annotation
// uploads, kept as concrete structs so field order (and therefore output
// bytes) is fixed.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string    `json:"id"`
	Desc sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// FormatSARIF renders findings as a SARIF 2.1.0 log. The rule table is
// always the full suite plus the audit pseudo-rule, independent of which
// findings are present, so the byte layout depends only on the findings.
func FormatSARIF(diags []Diagnostic) ([]byte, error) {
	rules := make([]sarifRule, 0, len(All())+1)
	for _, a := range All() {
		rules = append(rules, sarifRule{ID: a.Name, Desc: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:   AuditAnalyzerName,
		Desc: sarifText{Text: "every //lint:allow directive must still suppress a live finding"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: d.Pos.Filename},
				Region:   sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	return marshalIndent(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "repolint", Rules: rules}}, Results: results}},
	})
}

// marshalIndent is json.MarshalIndent with unescaped HTML (messages quote
// source like `a < b`) and a trailing newline.
func marshalIndent(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("lint: encoding findings: %w", err)
	}
	return buf.Bytes(), nil
}
