package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// taint.go is a forward, interprocedural taint engine over the call graph.
// A configured source classifier marks call expressions as taint roots;
// facts then propagate through assignments, composite literals, arithmetic,
// conversions, returns, and call arguments/receivers — across function
// boundaries via the parameter and result objects of module functions —
// until a fixpoint. Sinks (specific calls, or writes into specific struct
// types) report the SOURCE position, so one //lint:allow on the line that
// reads the clock (or constructs the stream) suppresses every flow it
// feeds, and responsibility sits where the value enters the program.
//
// Precision/soundness trade-offs (documented in DESIGN.md "Static
// analysis v2"):
//
//   - Granularity is the types.Object: variables, parameters, and results.
//     Struct fields are NOT tracked as shared objects — a field write
//     taints the container value it was written through, and a field read
//     is tainted iff its container is. Tracking field objects directly
//     (field-sensitive, instance-INsensitive) was tried first and rejected:
//     one tainted `entry.Time` write contaminated every Entry in the
//     module, cascading hundreds of findings into unrelated commands.
//     Instance-local containers lose cross-function aliasing flows (which
//     the engine never promised — no alias analysis) and nothing else.
//   - An object carries a SET of facts, one per distinct source. The
//     engine is context-insensitive (a shared helper's parameter merges
//     the taints of all its callers), so a single-fact lattice would let
//     whichever source reaches a shared parameter first shadow every
//     other source flowing through it. Per-source facts keep each
//     (source, sink) pair independently reportable and suppressible.
//   - Calls into packages outside the module (stdlib) propagate
//     conservatively: a tainted argument or receiver taints the result,
//     so laundering through fmt.Sprintf, time.Time.Format, or strconv
//     stays visible. There are no sanitizers.
//   - Comparison and boolean operators stop propagation: branching on a
//     tainted value is not a data flow into an artifact (implicit flows
//     are out of scope).
//   - No alias analysis: writes through a pointer taint the pointer
//     variable's object, not other names for the same storage.
//   - Propagation across call boundaries is depth-bounded. Exceeding the
//     bound REPORTS a give-up diagnostic (attributed to the source)
//     instead of silently dropping the fact, so the bounded analysis
//     fails closed.
//
// Facts only ever accumulate (per object, the first fact per source is
// kept; the source set is finite), so the fixpoint terminates; rounds are
// additionally capped, with a reported give-up on non-convergence.

const (
	// defaultTaintDepth bounds interprocedural hops per fact. Deep enough
	// for every legitimate chain in this module (longest today is 5);
	// exceeding it is reported, not ignored.
	defaultTaintDepth = 12

	// taintMaxRounds caps fixpoint iterations as a backstop; each round
	// extends every fact chain by at least one hop, so depth-bounded
	// analyses converge far earlier.
	taintMaxRounds = 64
)

// taintSource is one taint root (e.g. a time.Now() call site).
type taintSource struct {
	pos  token.Pos
	desc string
}

// taintFact records which source a value derives from and across how many
// call boundaries the derivation traveled.
type taintFact struct {
	src   *taintSource
	depth int
}

// factSet holds at most one fact per distinct source. Sets only grow, and
// the per-source fact never changes once installed, so propagation is
// monotone and the fixpoint terminates.
type factSet []*taintFact

// add installs f unless a fact from the same source exists; reports growth.
func (s factSet) add(f *taintFact) (factSet, bool) {
	for _, have := range s {
		if have.src == f.src {
			return s, false
		}
	}
	return append(s, f), true
}

// merge unions two sets (first fact per source wins); reports growth.
func (s factSet) merge(other factSet) (factSet, bool) {
	grew := false
	for _, f := range other {
		var g bool
		if s, g = s.add(f); g {
			grew = true
		}
	}
	return s, grew
}

// taintConfig parameterizes one engine run.
type taintConfig struct {
	maxDepth int

	// isSource classifies a call as a taint root.
	isSource func(pkg *Package, call *ast.CallExpr) (string, bool)
	// callSink classifies a call as a sink; a tainted argument or
	// receiver triggers report.
	callSink func(pkg *Package, call *ast.CallExpr) (string, bool)
	// structSinks maps "pkgpath.TypeName" to a description; assigning a
	// tainted value to any field of such a type (directly or in a
	// composite literal) triggers report.
	structSinks map[string]string

	// report receives each (source, sink) pair once.
	report func(src *taintSource, sinkPos token.Pos, sink string)
	// giveUp receives each (position, source) where the depth bound was
	// hit once; src is nil for non-convergence.
	giveUp func(pos token.Pos, src *taintSource)
}

type taintEngine struct {
	cg  *CallGraph
	cfg *taintConfig

	objFacts map[types.Object]factSet
	retFacts map[ast.Node]factSet // FuncDecl/FuncLit → some result tainted
	srcPool  map[token.Pos]*taintSource
	reported map[[2]token.Pos]bool
	gaveUp   map[[2]token.Pos]bool
	changed  bool
}

func newTaintEngine(cg *CallGraph, cfg *taintConfig) *taintEngine {
	if cfg.maxDepth <= 0 {
		cfg.maxDepth = defaultTaintDepth
	}
	return &taintEngine{
		cg:       cg,
		cfg:      cfg,
		objFacts: map[types.Object]factSet{},
		retFacts: map[ast.Node]factSet{},
		srcPool:  map[token.Pos]*taintSource{},
		reported: map[[2]token.Pos]bool{},
		gaveUp:   map[[2]token.Pos]bool{},
	}
}

// run drives the analysis to a fixpoint. All iteration is over the
// deterministic call-graph order, so findings emerge in a stable order.
func (e *taintEngine) run() {
	for round := 0; round < taintMaxRounds; round++ {
		e.changed = false
		for _, fn := range e.cg.Funcs {
			e.walkFunc(fn)
		}
		if !e.changed {
			return
		}
	}
	if len(e.cg.Funcs) > 0 {
		e.cfg.giveUp(e.cg.Funcs[0].Node.Pos(), nil)
	}
}

// walkFunc applies the transfer functions of one function body. Nested
// literals are separate call-graph nodes and are skipped here.
func (e *taintEngine) walkFunc(fn *FuncNode) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			e.handleAssign(fn.Pkg, n)
		case *ast.ValueSpec:
			e.handleValueSpec(fn.Pkg, n)
		case *ast.ReturnStmt:
			e.handleReturn(fn, n)
		case *ast.RangeStmt:
			e.handleRange(fn.Pkg, n)
		case *ast.CallExpr:
			e.handleCall(fn.Pkg, n)
		case *ast.CompositeLit:
			e.handleComposite(fn.Pkg, n)
		}
		return true
	})
}

// --- transfer functions ---

func (e *taintEngine) handleAssign(pkg *Package, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// a, b := f(): one multi-value source taints every target.
		if fs := e.taintOf(pkg, as.Rhs[0]); len(fs) > 0 {
			for _, l := range as.Lhs {
				e.taintLValue(pkg, l, fs)
			}
		}
		return
	}
	for i, l := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		if fs := e.taintOf(pkg, as.Rhs[i]); len(fs) > 0 {
			e.taintLValue(pkg, l, fs)
		}
	}
}

func (e *taintEngine) handleValueSpec(pkg *Package, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		var fs factSet
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			fs = e.taintOf(pkg, vs.Values[0])
		} else if i < len(vs.Values) {
			fs = e.taintOf(pkg, vs.Values[i])
		}
		if len(fs) > 0 {
			e.taintLValue(pkg, name, fs)
		}
	}
}

func (e *taintEngine) handleReturn(fn *FuncNode, rs *ast.ReturnStmt) {
	if len(rs.Results) == 0 {
		// Bare return: named results carry whatever they were assigned.
		for _, obj := range fn.ResultObjs {
			if obj == nil {
				continue
			}
			e.setRetFacts(fn.Node, e.objFacts[obj])
		}
		return
	}
	for _, res := range rs.Results {
		e.setRetFacts(fn.Node, e.taintOf(fn.Pkg, res))
	}
}

func (e *taintEngine) handleRange(pkg *Package, rs *ast.RangeStmt) {
	fs := e.taintOf(pkg, rs.X)
	if len(fs) == 0 {
		return
	}
	if rs.Key != nil {
		e.taintLValue(pkg, rs.Key, fs)
	}
	if rs.Value != nil {
		e.taintLValue(pkg, rs.Value, fs)
	}
}

// handleCall performs the side effects of a call site: sink detection and
// interprocedural propagation into module callees.
func (e *taintEngine) handleCall(pkg *Package, call *ast.CallExpr) {
	if desc, ok := e.cfg.callSink(pkg, call); ok {
		for _, f := range e.argOrRecvTaint(pkg, call) {
			e.reportSink(f.src, call.Pos(), desc)
		}
	}

	var fn *FuncNode
	if obj := staticCallee(pkg.Info, call); obj != nil {
		fn = e.cg.FuncByObj(obj)
	} else if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		fn = e.cg.FuncByLit(lit)
	}
	if fn == nil {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fn.RecvObj != nil {
		e.setObjFacts(fn.RecvObj, e.hop(e.taintOf(pkg, sel.X), call.Pos()))
	}
	for i, arg := range call.Args {
		fs := e.taintOf(pkg, arg)
		if len(fs) == 0 {
			continue
		}
		var param types.Object
		switch {
		case i < len(fn.ParamObjs):
			param = fn.ParamObjs[i]
		case fn.Variadic && len(fn.ParamObjs) > 0:
			param = fn.ParamObjs[len(fn.ParamObjs)-1]
		}
		if param != nil {
			e.setObjFacts(param, e.hop(fs, call.Pos()))
		}
	}
}

// handleComposite reports tainted elements of sink-typed literals.
func (e *taintEngine) handleComposite(pkg *Package, cl *ast.CompositeLit) {
	desc, ok := e.structSinkType(pkg.Info.Types[cl].Type)
	if !ok {
		return
	}
	for _, elt := range cl.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		for _, f := range e.taintOf(pkg, v) {
			e.reportSink(f.src, v.Pos(), desc)
		}
	}
}

// taintLValue records that the storage behind l now holds tainted values.
func (e *taintEngine) taintLValue(pkg *Package, l ast.Expr, fs factSet) {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := pkg.Info.Defs[l]
		if obj == nil {
			obj = pkg.Info.Uses[l]
		}
		if obj != nil {
			e.setObjFacts(obj, fs)
		}
	case *ast.SelectorExpr:
		// x.F = v: sink check on F's owner, then taint the container so
		// later uses of x (passing it to a writer, returning it) carry the
		// fact. The field object itself is deliberately not tracked — see
		// the package comment on instance-locality.
		if desc, ok := e.structSinkType(pkg.Info.TypeOf(l.X)); ok {
			for _, f := range fs {
				e.reportSink(f.src, l.Sel.Pos(), desc)
			}
		}
		e.taintLValue(pkg, l.X, fs)
	case *ast.IndexExpr:
		e.taintLValue(pkg, l.X, fs) // element write taints the container
	case *ast.StarExpr:
		e.taintLValue(pkg, l.X, fs) // *p = v taints p (no alias analysis)
	}
}

// --- expression taint (side-effect free except give-up dedup) ---

func (e *taintEngine) taintOf(pkg *Package, x ast.Expr) factSet {
	info := pkg.Info
	switch x := x.(type) {
	case *ast.ParenExpr:
		return e.taintOf(pkg, x.X)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return nil
		}
		return e.objFacts[obj]
	case *ast.SelectorExpr:
		// A field read is tainted iff its container is (instance-local);
		// a package-qualified name (pkg.Var) resolves through the object.
		if fs := e.taintOf(pkg, x.X); len(fs) > 0 {
			return fs
		}
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if obj := info.Uses[x.Sel]; obj != nil {
					return e.objFacts[obj]
				}
			}
		}
		return nil
	case *ast.CallExpr:
		return e.callTaint(pkg, x)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return nil // booleans do not carry the value
		}
		fs, _ := e.taintOf(pkg, x.X).merge(e.taintOf(pkg, x.Y))
		return fs
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return nil
		}
		return e.taintOf(pkg, x.X)
	case *ast.StarExpr:
		return e.taintOf(pkg, x.X)
	case *ast.IndexExpr:
		return e.taintOf(pkg, x.X)
	case *ast.IndexListExpr:
		return e.taintOf(pkg, x.X)
	case *ast.SliceExpr:
		return e.taintOf(pkg, x.X)
	case *ast.TypeAssertExpr:
		return e.taintOf(pkg, x.X)
	case *ast.KeyValueExpr:
		return e.taintOf(pkg, x.Value)
	case *ast.CompositeLit:
		var fs factSet
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			fs, _ = fs.merge(e.taintOf(pkg, v))
		}
		return fs
	case *ast.FuncLit:
		// The literal as a value: calling it later yields its return taint.
		return e.retFacts[x]
	}
	return nil
}

// callTaint computes the taint of a call expression's result.
func (e *taintEngine) callTaint(pkg *Package, call *ast.CallExpr) factSet {
	info := pkg.Info
	if desc, ok := e.cfg.isSource(pkg, call); ok {
		src := e.srcPool[call.Pos()]
		if src == nil {
			src = &taintSource{pos: call.Pos(), desc: desc}
			e.srcPool[call.Pos()] = src
		}
		return factSet{&taintFact{src: src}}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): taint passes through.
		if len(call.Args) == 1 {
			return e.taintOf(pkg, call.Args[0])
		}
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "min", "max":
				var fs factSet
				for _, a := range call.Args {
					fs, _ = fs.merge(e.taintOf(pkg, a))
				}
				return fs
			}
			// len, cap, make, new, delete, copy, ... yield no tainted value.
			return nil
		}
	}
	if obj := staticCallee(info, call); obj != nil {
		if fn := e.cg.FuncByObj(obj); fn != nil {
			return e.hop(e.retFacts[fn.Node], call.Pos())
		}
		return e.externalCallTaint(pkg, call)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return e.hop(e.retFacts[lit], call.Pos())
	}
	// Indirect call through a variable or field: conservative.
	if fs := e.taintOf(pkg, call.Fun); len(fs) > 0 {
		return fs
	}
	return e.externalCallTaint(pkg, call)
}

// externalCallTaint is the conservative rule for functions without a body
// in the module: a tainted receiver or argument taints the result.
func (e *taintEngine) externalCallTaint(pkg *Package, call *ast.CallExpr) factSet {
	return e.argOrRecvTaint(pkg, call)
}

// argOrRecvTaint unions the taints of a call's receiver and arguments.
func (e *taintEngine) argOrRecvTaint(pkg *Package, call *ast.CallExpr) factSet {
	var fs factSet
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := pkg.Info.Selections[sel]; isMethod {
			fs, _ = fs.merge(e.taintOf(pkg, sel.X))
		}
	}
	for _, a := range call.Args {
		fs, _ = fs.merge(e.taintOf(pkg, a))
	}
	return fs
}

// --- fact bookkeeping ---

// setObjFacts unions facts into an object's set. Per-source first fact
// wins: sets only grow, guaranteeing a monotone fixpoint.
func (e *taintEngine) setObjFacts(obj types.Object, fs factSet) {
	if len(fs) == 0 || obj == nil {
		return
	}
	merged, grew := e.objFacts[obj].merge(fs)
	if grew {
		e.objFacts[obj] = merged
		e.changed = true
	}
}

func (e *taintEngine) setRetFacts(node ast.Node, fs factSet) {
	if len(fs) == 0 {
		return
	}
	merged, grew := e.retFacts[node].merge(fs)
	if grew {
		e.retFacts[node] = merged
		e.changed = true
	}
}

// hop crosses one call boundary, enforcing the depth bound per fact.
// Exceeding it reports a give-up (once per position and source) and drops
// that fact; the rest pass through one hop deeper.
func (e *taintEngine) hop(fs factSet, pos token.Pos) factSet {
	if len(fs) == 0 {
		return nil
	}
	out := make(factSet, 0, len(fs))
	for _, f := range fs {
		if f.depth+1 > e.cfg.maxDepth {
			key := [2]token.Pos{pos, f.src.pos}
			if !e.gaveUp[key] {
				e.gaveUp[key] = true
				e.cfg.giveUp(pos, f.src)
			}
			continue
		}
		out = append(out, &taintFact{src: f.src, depth: f.depth + 1})
	}
	return out
}

func (e *taintEngine) reportSink(src *taintSource, sinkPos token.Pos, desc string) {
	key := [2]token.Pos{src.pos, sinkPos}
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	e.cfg.report(src, sinkPos, desc)
}

// structSinkType matches a (possibly pointer) named struct type against
// the configured sinks.
func (e *taintEngine) structSinkType(t types.Type) (string, bool) {
	if len(e.cfg.structSinks) == 0 || t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	desc, ok := e.cfg.structSinks[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
	return desc, ok
}
