// Package pipeline mirrors the real repro/internal/pipeline journal
// surface for the clockflow sink table.
package pipeline

// Entry is a persisted journal record: a struct sink for clockflow.
type Entry struct {
	Time string
	Op   string
}

// Journal persists entries; Append is a call sink for clockflow.
type Journal struct {
	entries []Entry
}

// Append records one entry.
func (j *Journal) Append(e Entry) error {
	j.entries = append(j.entries, e)
	return nil
}
