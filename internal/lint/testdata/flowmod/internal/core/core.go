// Package core mirrors the real repro/internal/core persistence surface
// so the module-scoped analyzers resolve the same sink paths they match
// in the real tree.
package core

// ModelMeta is a persisted-metadata struct sink for clockflow.
type ModelMeta struct {
	Created string
	Note    string
}

// TwoLevelModel carries a Save call sink for clockflow.
type TwoLevelModel struct {
	Meta ModelMeta
}

// Save persists the model; any clock-derived argument is a finding.
func (m *TwoLevelModel) Save(path, note string) error {
	_ = path
	_ = note
	return nil
}
