// Package rng mirrors the real repro/internal/rng constructor surface so
// randflow resolves the same seed sinks and stream type.
package rng

// Source is a deterministic stream; not safe for concurrent use.
type Source struct {
	state uint64
}

// New derives a root stream from an integer seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// NewStream derives an independent stream.
func NewStream(seed, stream uint64) *Source { return &Source{state: seed ^ stream} }

// Split derives a child stream; the sanctioned per-goroutine pattern.
func (s *Source) Split() *Source {
	return NewStream(s.Uint64(), s.Uint64())
}

// Uint64 draws the next value.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}
