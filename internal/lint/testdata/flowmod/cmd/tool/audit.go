// audit.go carries deliberately broken directives for the audit tests:
// one stale (the comparison is between ints, floateq never fires) and one
// naming an analyzer that does not exist.
package main

func intsEqual(a, b int) bool {
	//lint:allow floateq -- fixture: stale, ints are not floats
	return a == b
}

//lint:allow nosuchanalyzer -- fixture: unknown analyzer name
func unusedHelper() int { return 0 }
