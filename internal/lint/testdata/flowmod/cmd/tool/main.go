// Fixture command exercising the module-scoped analyzers: clockflow
// (clock values reaching persisted artifacts, directly and through
// helpers), randflow (clock-derived seeds, streams shared across
// goroutines), and the depth-bound give-up. `// want <analyzer>...`
// markers sit on the SOURCE lines, where both analyzers report.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

func main() {
	direct()
	transitive()
	sanctioned()
	operational()
	_ = c1() // depth bound exceeded: give-up reported at the source
	seedFromClock()
	sharedStream()
	parentAndChild()
	splitPerGoroutine()
}

// direct writes a clock value straight into a persisted struct field.
func direct() {
	now := time.Now() // want clockflow
	var m core.TwoLevelModel
	m.Meta.Created = now.Format(time.RFC3339)
}

// stamp launders the clock through a helper before it reaches the journal.
func stamp() string { return time.Now().Format(time.RFC3339) } // want clockflow

func buildEntry(t string) pipeline.Entry { return pipeline.Entry{Time: t, Op: "train"} }

func transitive() {
	var j pipeline.Journal
	e := buildEntry(stamp())
	_ = j.Append(e)
}

// sanctioned is the annotated boundary: suppressed, and the directive is
// live (the audit must not flag it).
func sanctioned() {
	//lint:allow clockflow -- fixture: the one sanctioned boundary stamp
	note := time.Now().Format(time.RFC3339)
	var m core.TwoLevelModel
	_ = m.Save("model.bin", note)
}

// operational reads the clock for a log line only: no persisted sink.
func operational() {
	start := time.Now()
	fmt.Println(time.Since(start))
}

// c1..c13 launder a clock value across thirteen call boundaries — one
// more than the depth bound — so the engine must give up AND report.
func c1() string  { return c2() }
func c2() string  { return c3() }
func c3() string  { return c4() }
func c4() string  { return c5() }
func c5() string  { return c6() }
func c6() string  { return c7() }
func c7() string  { return c8() }
func c8() string  { return c9() }
func c9() string  { return c10() }
func c10() string { return c11() }
func c11() string { return c12() }
func c12() string { return c13() }
func c13() string { return time.Now().String() } // want clockflow randflow

// mkSeed derives an rng seed from the wall clock through a helper: the
// laundered form the old syntactic check missed.
func mkSeed() uint64 { return uint64(time.Now().UnixNano()) } // want randflow

func seedFromClock() {
	s := rng.New(mkSeed())
	_ = s.Uint64()
}

// sharedStream hands one stream to two goroutines.
func sharedStream() {
	shared := rng.New(1)
	done := make(chan struct{}, 2)
	go func() { _ = shared.Uint64(); done <- struct{}{} }()
	go func() { _ = shared.Uint64(); done <- struct{}{} }() // want randflow
	<-done
	<-done
}

// parentAndChild uses one stream from a goroutine and its parent.
func parentAndChild() {
	s := rng.New(2)
	go func() { _ = s.Uint64() }() // want randflow
	_ = s.Uint64()
}

// splitPerGoroutine is the sanctioned pattern: derive a child before
// launching; parent and goroutine each own their stream.
func splitPerGoroutine() {
	root := rng.New(3)
	child := root.Split()
	go func() { _ = child.Uint64() }()
	_ = root.Uint64()
}
