// Fixture: goroutine closures mutating captured state. Marked lines must
// be flagged; the disjoint-slice-index fan-out, guarded writes, and
// correctly ordered WaitGroup uses must stay silent.
package fixture

import "sync"

func mapWrite() {
	m := map[string]int{}
	go func() {
		m["k"] = 1 // want goroutineshare
	}()
}

func appendReassign() {
	var s []int
	go func() {
		s = append(s, 1) // want goroutineshare
	}()
}

func scalarWrite() {
	n := 0
	go func() {
		n = 1 // want goroutineshare
	}()
	_ = n
}

func scalarIncrement() {
	n := 0
	go func() {
		n++ // want goroutineshare
	}()
	_ = n
}

type box struct{ v int }

func fieldWrite() {
	b := &box{}
	go func() {
		b.v = 1 // want goroutineshare
	}()
}

func pointerWrite() {
	x := 0
	p := &x
	go func() {
		*p = 2 // want goroutineshare
	}()
}

// disjointSlots is the sanctioned fan-out: each goroutine owns index i.
func disjointSlots(f func(int) float64) []float64 {
	out := make([]float64, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = f(i)
		}(i)
	}
	wg.Wait()
	return out
}

// mutexGuarded acquires a lock before the captured write.
func mutexGuarded() {
	var mu sync.Mutex
	cnt := 0
	go func() {
		mu.Lock()
		cnt++
		mu.Unlock()
	}()
	mu.Lock()
	_ = cnt
	mu.Unlock()
}

// channelGuarded synchronizes through a receive before writing.
func channelGuarded() {
	ready := make(chan struct{})
	n := 0
	go func() {
		<-ready
		n = 1
	}()
	close(ready)
	_ = n
}

// localState writes only goroutine-local variables.
func localState() {
	go func() {
		x := 0
		x++
		_ = x
	}()
}

func addAfterGo(work func()) {
	var wg sync.WaitGroup
	go work()
	wg.Add(1) // want goroutineshare
	wg.Wait()
}

func addInsideGoroutine(work func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want goroutineshare
		work()
		wg.Done()
	}()
	wg.Wait()
}

// addBeforeGo is the correct ordering.
func addBeforeGo(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
