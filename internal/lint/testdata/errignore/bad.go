// Fixture: silently discarded error returns, plus every exempt form.
package fixture

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func drop(path string) {
	os.Remove(path) // want errignore
}

func dropMethod(f *os.File) {
	f.Close() // want errignore
}

func fileFprintf(f *os.File) {
	fmt.Fprintf(f, "x") // want errignore: a file is not a std stream
}

func propagate(path string) error { return os.Remove(path) }

func explicit(path string) {
	_ = os.Remove(path) // visible discard: fine
}

func stdStreams() {
	fmt.Println("hi")
	fmt.Fprintln(os.Stderr, "hi")
	fmt.Fprintf(os.Stdout, "%d\n", 1)
}

func neverFails(b *strings.Builder, buf *bytes.Buffer) {
	b.WriteString("x")
	buf.WriteString("y")
}

func noError() { println("builtin") }
