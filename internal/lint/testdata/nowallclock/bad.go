// Fixture: wall-clock reads that must be flagged outside the serving and
// cmd subtrees (the tests check this file under several package paths).
package fixture

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want nowallclock
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want nowallclock
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want nowallclock
}

// Durations and formatting do not observe the clock and stay legal.
func pause() time.Duration { return 3 * time.Second }
