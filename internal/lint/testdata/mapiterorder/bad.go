// Fixture: order-dependent effects inside range-over-map, plus the
// canonical collect-then-sort idiom that must stay silent.
package fixture

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want mapiterorder
	}
}

func build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want mapiterorder
	}
	return b.String()
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want mapiterorder
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // order-insensitive accumulation is fine
	}
	return total
}

func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v) // loop-local slice: fine
		}
		n += len(doubled)
	}
	return n
}

func sliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x) // slices iterate in order: fine
	}
}
