// Fixture: float equality comparisons; marked lines must be flagged,
// the rest must not. Constant comparands (x == 0, x == eps) are exempt —
// the sentinel/guard idiom is exact by construction.
package fixture

func eq(a, b float64) bool {
	return a == b // want floateq
}

func nanCheck(a float64) bool {
	return a != a // want floateq
}

func narrow(a, b float32) bool {
	return a == b // want floateq
}

func computed(a, b float64) bool {
	return a*2 == b+1 // want floateq
}

func allowedGuard(a, b float64) bool {
	//lint:allow floateq -- fixture: intentional exact comparison, suppressed
	return a == b
}

func inlineAllowed(a, b float64) bool {
	return a == b //lint:allow floateq -- fixture: inline form
}

func wrongAllow(a, b float64) bool {
	return a == b //lint:allow nowallclock -- fixture: wrong analyzer name must not suppress // want floateq
}

func ints(a, b int) bool { return a == b }

const eps = 1e-9

// Constant on either side: the sentinel/guard idiom, exempt.
func zeroGuard(a float64) bool  { return a != 0 }
func epsGuard(a float64) bool   { return a == eps }
func narrowLit(a float32) bool  { return a == 1.5 }
func constFold() bool           { return eps == 1e-9 }
func flipped(a float64) bool    { return 0 == a }
func ordered(a, b float64) bool { return a < b } // inequalities are fine
