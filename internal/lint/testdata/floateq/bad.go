// Fixture: float equality comparisons; marked lines must be flagged,
// the rest must not.
package fixture

func eq(a, b float64) bool {
	return a == b // want floateq
}

func zeroGuard(a float64) bool {
	return a != 0 // want floateq
}

func nanCheck(a float64) bool {
	return a != a // want floateq
}

func narrow(a float32) bool {
	return a == 1.5 // want floateq
}

func allowedGuard(a float64) bool {
	//lint:allow floateq -- fixture: intentional exact guard, suppressed
	return a == 0
}

func inlineAllowed(a float64) bool {
	return a == 0 //lint:allow floateq -- fixture: inline form
}

func wrongAllow(a float64) bool {
	return a == 2 //lint:allow nowallclock -- fixture: wrong analyzer name must not suppress // want floateq
}

func ints(a, b int) bool { return a == b }

const eps = 1e-9

func constFold() bool { return eps == 1e-9 } // constant comparison: compile-time exact

func ordered(a, b float64) bool { return a < b } // inequalities are fine
