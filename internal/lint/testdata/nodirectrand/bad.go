// Fixture: known-bad randomness sources. Checked under a restricted
// package path (repro/internal/tree) by the tests; `// want <analyzer>`
// comments mark the lines that must be flagged.
package fixture

import (
	crand "crypto/rand" // want nodirectrand
	"math/rand"         // want nodirectrand
	"time"
)

func draw() float64 {
	return rand.New(rand.NewSource(time.Now().UnixNano())).Float64() // want nodirectrand
}

func fill(b []byte) {
	_, _ = crand.Read(b)
}

func reseed(r *rand.Rand) {
	r.Seed(time.Now().Unix()) // want nodirectrand
}
