// Fixture: known-bad randomness sources. nodirectrand flags the
// clock-derived seeds; randflow flags the forbidden imports and every
// resolved call into them. `// want <analyzer>` comments mark the lines
// each analyzer must flag.
package fixture

import (
	crand "crypto/rand" // want randflow
	"math/rand"         // want randflow
	"time"
)

func draw() float64 {
	return rand.New(rand.NewSource(time.Now().UnixNano())).Float64() // want nodirectrand randflow
}

func fill(b []byte) {
	_, _ = crand.Read(b) // want randflow
}

func reseed(r *rand.Rand) {
	r.Seed(time.Now().Unix()) // want nodirectrand randflow
}
