// Fixture: known-good code that nodirectrand must stay silent on — a
// hand-rolled deterministic generator with an explicit integer seed, the
// pattern internal/rng implements.
package fixture

type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng { return &prng{state: seed} }

func (p *prng) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return p.state
}

func sample(seed uint64, n int) []uint64 {
	r := newPRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.next()
	}
	return out
}
