package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// forbiddenRandImports are the generators that would silently break
// seed-determinism (math/rand family) or are non-deterministic by design
// (crypto/rand). The module-wide import and call ban lives in randflow
// (randflow.go); this analyzer keeps only the syntactic clock-seed check.
var forbiddenRandImports = []string{"math/rand", "math/rand/v2", "crypto/rand"}

// NoDirectRand flags wall-clock-derived seeding: a time.Now() call nested
// in the arguments of anything spelled Seed(...) or New*(...), anywhere in
// the module, including cmd/ where the clock itself is otherwise legal.
// (The import ban on math/rand and crypto/rand used to live here behind a
// package-subtree restricted list; randflow now enforces it module-wide —
// strictly stronger — so the blunt list is gone.)
var NoDirectRand = &Analyzer{
	Name: "nodirectrand",
	Doc:  "no wall-clock-derived seeds: time.Now must not appear in the arguments of Seed/New* calls",
	Run:  runNoDirectRand,
}

func runNoDirectRand(pass *Pass) {
	// Clock-derived seeding: a call spelled Seed(...) or New*(...) with a
	// time.Now() call anywhere in its arguments. This needs type info and
	// runs over every package — cmd/ may read the clock, but must not feed
	// it into a generator.
	if pass.Info == nil || pass.Info.Uses == nil {
		return
	}
	// Nested constructor calls (rand.New(rand.NewSource(time.Now()...)))
	// would otherwise report the same clock read once per enclosing call.
	seen := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name != "Seed" && !strings.HasPrefix(name, "New") {
				return true
			}
			for _, arg := range call.Args {
				var clock ast.Node
				ast.Inspect(arg, func(m ast.Node) bool {
					if clock != nil {
						return false
					}
					if c, ok := m.(*ast.CallExpr); ok && isPkgFunc(pass.Info, c, "time", "Now") {
						clock = c
						return false
					}
					return true
				})
				if clock != nil && !seen[clock.Pos()] {
					seen[clock.Pos()] = true
					pass.Reportf(clock.Pos(), "wall-clock value seeds %s; use a fixed or flag-provided seed so the run is reproducible", name)
				}
			}
			return true
		})
	}
}
