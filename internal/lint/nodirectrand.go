package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// randRestrictedPkgs are the module-relative package subtrees whose
// stochastic behaviour must flow from internal/rng so a single seed
// reproduces every experiment. cmd/ and internal/serving may import other
// libraries freely (they hold no experiment randomness), and internal/rng
// itself is the one sanctioned generator.
var randRestrictedPkgs = []string{
	"internal/tree",
	"internal/linmod",
	"internal/hpcsim",
	"internal/experiments",
	"internal/core",
	"internal/forest",
	"internal/gbrt",
	"internal/cluster",
	"internal/knn",
	"internal/dataset",
	"internal/pipeline",
	"internal/scalefit",
	"internal/baselines",
	"internal/stats",
	"internal/mat",
	"internal/uncertainty",
}

// forbiddenRandImports are the generators that would silently break
// seed-determinism (math/rand family) or are non-deterministic by design
// (crypto/rand).
var forbiddenRandImports = []string{"math/rand", "math/rand/v2", "crypto/rand"}

// NoDirectRand forbids math/rand, math/rand/v2, and crypto/rand imports in
// model/experiment packages (which must draw from internal/rng), and flags
// wall-clock-derived seeding (time.Now inside a Seed/New* call) anywhere
// in the module, including cmd/ where the clock itself is otherwise legal.
var NoDirectRand = &Analyzer{
	Name: "nodirectrand",
	Doc:  "model/experiment packages must use internal/rng, never math/rand, crypto/rand, or time-based seeds",
	Run:  runNoDirectRand,
}

func runNoDirectRand(pass *Pass) {
	rel := pass.RelPath()
	restricted := false
	for _, p := range randRestrictedPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			restricted = true
			break
		}
	}
	if restricted {
		// Import inspection is purely syntactic, so test files are held to
		// the same standard: a test seeding from math/rand is as
		// non-reproducible as library code doing it.
		for _, f := range append(append([]*ast.File{}, pass.Files...), pass.TestFiles...) {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				for _, bad := range forbiddenRandImports {
					if path == bad {
						pass.Reportf(imp.Pos(), "import of %s in model/experiment package %s; draw randomness from internal/rng so one seed reproduces the run", path, pass.PkgPath)
					}
				}
			}
		}
	}

	// Clock-derived seeding: a call spelled Seed(...) or New*(...) with a
	// time.Now() call anywhere in its arguments. This needs type info and
	// runs over every package — cmd/ may read the clock, but must not feed
	// it into a generator.
	if pass.Info == nil || pass.Info.Uses == nil {
		return
	}
	// Nested constructor calls (rand.New(rand.NewSource(time.Now()...)))
	// would otherwise report the same clock read once per enclosing call.
	seen := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name != "Seed" && !strings.HasPrefix(name, "New") {
				return true
			}
			for _, arg := range call.Args {
				var clock ast.Node
				ast.Inspect(arg, func(m ast.Node) bool {
					if clock != nil {
						return false
					}
					if c, ok := m.(*ast.CallExpr); ok && isPkgFunc(pass.Info, c, "time", "Now") {
						clock = c
						return false
					}
					return true
				})
				if clock != nil && !seen[clock.Pos()] {
					seen[clock.Pos()] = true
					pass.Reportf(clock.Pos(), "wall-clock value seeds %s; use a fixed or flag-provided seed so the run is reproducible", name)
				}
			}
			return true
		})
	}
}
