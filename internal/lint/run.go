package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
)

// Run executes the analyzers over the module, applies //lint:allow
// suppression, and returns the surviving findings sorted by position.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	diags, _ := runAll(mod, analyzers)
	return diags
}

// runAll runs package- and module-scoped analyzers, filters suppressed
// findings through a module-wide allow index (marking used sites for the
// audit), and returns the sorted survivors plus the index.
func runAll(mod *Module, analyzers []*Analyzer) ([]Diagnostic, *allowIndex) {
	var allows *allowIndex
	for _, pkg := range mod.Pkgs {
		allFiles := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		allows = collectAllows(allows, mod.Fset, allFiles)
	}
	if allows == nil {
		allows = collectAllows(nil, mod.Fset, nil)
	}

	var raw []Diagnostic
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Analyzer: a, Mod: mod, diags: &raw})
		}
	}
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      mod.Fset,
				ModPath:   mod.Path,
				PkgPath:   pkg.Path,
				Files:     pkg.Files,
				TestFiles: pkg.TestFiles,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				diags:     &raw,
			}
			a.Run(pass)
		}
	}

	var diags []Diagnostic
	for _, d := range raw {
		if !allows.suppress(d) {
			diags = append(diags, d)
		}
	}
	sortDiagnostics(diags)
	return diags, allows
}

// sortDiagnostics orders findings by position, then analyzer, then
// message — a total order, so output is byte-identical across runs.
func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// --- shared AST/type helpers used by the analyzers ---

// calleeName returns the bare name a call is spelled with: "f" for f(x),
// "Method" for recv.Method(x). Empty for indirect calls like fns[i]().
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isPkgFunc reports whether the call invokes the package-level function
// pkgPath.name (e.g. "time".Now), resolved through the type info so that
// renamed imports are still caught.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// usedObject resolves the types.Object behind an identifier or the field
// of a selector expression; nil when unresolved.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return usedObject(info, e.X)
	}
	return nil
}

// mentionsObject reports whether obj is referenced anywhere under node.
func mentionsObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprString renders a (small) expression back to source for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
