// Package gbrt implements least-squares gradient-boosted regression trees
// (Friedman's LS_Boost with shrinkage and optional row subsampling), used
// as an "existing ML methods" baseline against the two-level model.
package gbrt

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tree"
)

// Params configures boosting.
type Params struct {
	Rounds    int     // number of boosting stages (default 200)
	Shrinkage float64 // learning rate in (0, 1] (default 0.1)
	Subsample float64 // row fraction per stage in (0, 1]; 1 disables (default 1)
	MaxDepth  int     // depth of each weak tree (default 3)
	MinLeaf   int     // minimum samples per leaf (default 5)
}

// Defaults returns the baseline configuration used in the experiments.
func Defaults() Params {
	return Params{Rounds: 200, Shrinkage: 0.1, Subsample: 1, MaxDepth: 3, MinLeaf: 5}
}

func (p Params) withDefaults() Params {
	d := Defaults()
	if p.Rounds <= 0 {
		p.Rounds = d.Rounds
	}
	if p.Shrinkage <= 0 || p.Shrinkage > 1 {
		p.Shrinkage = d.Shrinkage
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		p.Subsample = d.Subsample
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = d.MaxDepth
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = d.MinLeaf
	}
	return p
}

// Model is a fitted gradient-boosted ensemble.
type Model struct {
	Base      float64      `json:"base"` // initial prediction (target mean)
	Shrinkage float64      `json:"shrinkage"`
	Trees     []*tree.Tree `json:"trees"`
	Features  int          `json:"features"`
}

// Fit trains a GBRT model. r is needed only when Subsample < 1 (it may be
// nil otherwise).
func Fit(x *mat.Dense, y []float64, p Params, r *rng.Source) *Model {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("gbrt: %d rows vs %d targets", x.Rows, len(y)))
	}
	if x.Rows == 0 {
		panic("gbrt: empty training set")
	}
	p = p.withDefaults()
	if p.Subsample < 1 && r == nil {
		panic("gbrt: Subsample < 1 requires a random source")
	}

	var base float64
	for _, v := range y {
		base += v
	}
	base /= float64(len(y))

	m := &Model{Base: base, Shrinkage: p.Shrinkage, Features: x.Cols}
	resid := make([]float64, len(y))
	cur := make([]float64, len(y))
	for i := range cur {
		cur[i] = base
	}

	tp := tree.Defaults()
	tp.MaxDepth = p.MaxDepth
	tp.MinLeafSamples = p.MinLeaf

	nSub := int(p.Subsample * float64(x.Rows))
	if nSub < 1 {
		nSub = 1
	}

	// One Fitter across all rounds: the workspace arena is reused and the
	// per-feature presort of x is computed once, not once per stage.
	ft := tree.NewFitter()
	m.Trees = make([]*tree.Tree, 0, p.Rounds)
	for round := 0; round < p.Rounds; round++ {
		for i := range resid {
			resid[i] = y[i] - cur[i]
		}
		var t *tree.Tree
		if p.Subsample < 1 {
			idx := r.Sample(x.Rows, nSub)
			t = ft.FitIndices(x, resid, idx, tp, nil)
		} else {
			t = ft.Fit(x, resid, tp, nil)
		}
		m.Trees = append(m.Trees, t)
		for i := 0; i < x.Rows; i++ {
			cur[i] += p.Shrinkage * t.Predict(x.Row(i))
		}
	}
	return m
}

// Predict evaluates the ensemble on feature vector v.
func (m *Model) Predict(v []float64) float64 {
	if len(v) != m.Features {
		panic(fmt.Sprintf("gbrt: predict with %d features, model has %d", len(v), m.Features))
	}
	s := m.Base
	for _, t := range m.Trees {
		s += m.Shrinkage * t.Predict(v)
	}
	return s
}

// predictBlock is the row-block size for batch prediction; see the
// identical blocking in forest.PredictBatch.
const predictBlock = 128

// PredictBatch fills dst with predictions for every row of x. With a
// non-nil dst the call performs no allocations, and results are
// bit-identical to calling Predict per row (same accumulation order).
func (m *Model) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	if x.Cols != m.Features {
		panic(fmt.Sprintf("gbrt: predict with %d features, model has %d", x.Cols, m.Features))
	}
	if dst == nil {
		dst = make([]float64, x.Rows)
	}
	if len(dst) != x.Rows {
		panic("gbrt: PredictBatch dst length mismatch")
	}
	data := x.Data
	cols := x.Cols
	for b := 0; b < x.Rows; b += predictBlock {
		be := b + predictBlock
		if be > x.Rows {
			be = x.Rows
		}
		for i := b; i < be; i++ {
			dst[i] = m.Base
		}
		for _, t := range m.Trees {
			nodes := t.Nodes
			for i := b; i < be; i++ {
				row := data[i*cols : i*cols+cols]
				j := int32(0)
				for {
					n := &nodes[j]
					if n.Feature < 0 {
						dst[i] += m.Shrinkage * n.Value
						break
					}
					if row[n.Feature] <= n.Threshold {
						j = n.Left
					} else {
						j = n.Right
					}
				}
			}
		}
	}
	return dst
}

// Staged returns the model's prediction for v after each boosting stage,
// useful for selecting the round count by validation error.
func (m *Model) Staged(v []float64) []float64 {
	out := make([]float64, len(m.Trees))
	s := m.Base
	for i, t := range m.Trees {
		s += m.Shrinkage * t.Predict(v)
		out[i] = s
	}
	return out
}
