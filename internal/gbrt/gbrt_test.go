package gbrt

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/stats"
)

func waveData(r *rng.Source, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = math.Sin(4*x.At(i, 0)) + 2*x.At(i, 1) + 0.05*r.Norm()
	}
	return x, y
}

func TestFitAccuracy(t *testing.T) {
	r := rng.New(1)
	xTr, yTr := waveData(r, 500)
	xTe, yTe := waveData(r, 200)
	m := Fit(xTr, yTr, Defaults(), nil)
	pred := m.PredictBatch(xTe, nil)
	if r2 := stats.R2(yTe, pred); r2 < 0.95 {
		t.Fatalf("GBRT R2 = %v", r2)
	}
}

func TestMoreRoundsReduceTrainingError(t *testing.T) {
	r := rng.New(2)
	x, y := waveData(r, 300)
	prev := math.Inf(1)
	for _, rounds := range []int{5, 25, 100} {
		p := Defaults()
		p.Rounds = rounds
		m := Fit(x, y, p, nil)
		e := stats.RMSE(y, m.PredictBatch(x, nil))
		if e > prev+1e-9 {
			t.Fatalf("training error rose: %v -> %v at %d rounds", prev, e, rounds)
		}
		prev = e
	}
}

func TestZeroRoundsDefaulted(t *testing.T) {
	r := rng.New(3)
	x, y := waveData(r, 60)
	m := Fit(x, y, Params{}, nil)
	if len(m.Trees) != Defaults().Rounds {
		t.Fatalf("defaulting failed: %d trees", len(m.Trees))
	}
}

func TestBasePredictionIsMean(t *testing.T) {
	r := rng.New(4)
	x, y := waveData(r, 100)
	p := Defaults()
	p.Rounds = 1
	m := Fit(x, y, p, nil)
	if math.Abs(m.Base-stats.Mean(y)) > 1e-12 {
		t.Fatalf("base = %v, mean = %v", m.Base, stats.Mean(y))
	}
}

func TestStagedMonotoneLength(t *testing.T) {
	r := rng.New(5)
	x, y := waveData(r, 150)
	p := Defaults()
	p.Rounds = 30
	m := Fit(x, y, p, nil)
	st := m.Staged(x.Row(0))
	if len(st) != 30 {
		t.Fatalf("staged length %d", len(st))
	}
	if st[len(st)-1] != m.Predict(x.Row(0)) {
		t.Fatal("last staged value != Predict")
	}
}

func TestSubsampleRequiresRNG(t *testing.T) {
	r := rng.New(6)
	x, y := waveData(r, 50)
	p := Defaults()
	p.Subsample = 0.5
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fit(x, y, p, nil)
}

func TestSubsampleStillLearns(t *testing.T) {
	r := rng.New(7)
	xTr, yTr := waveData(r, 400)
	xTe, yTe := waveData(r, 150)
	p := Defaults()
	p.Subsample = 0.6
	m := Fit(xTr, yTr, p, r)
	pred := m.PredictBatch(xTe, nil)
	if r2 := stats.R2(yTe, pred); r2 < 0.9 {
		t.Fatalf("subsampled GBRT R2 = %v", r2)
	}
}

func TestShrinkageTradeoff(t *testing.T) {
	// with few rounds, larger shrinkage fits training data faster
	r := rng.New(8)
	x, y := waveData(r, 200)
	pSlow := Defaults()
	pSlow.Rounds = 10
	pSlow.Shrinkage = 0.01
	pFast := Defaults()
	pFast.Rounds = 10
	pFast.Shrinkage = 0.5
	eSlow := stats.RMSE(y, Fit(x, y, pSlow, nil).PredictBatch(x, nil))
	eFast := stats.RMSE(y, Fit(x, y, pFast, nil).PredictBatch(x, nil))
	if eFast >= eSlow {
		t.Fatalf("shrinkage 0.5 (%v) not faster-fitting than 0.01 (%v) at 10 rounds", eFast, eSlow)
	}
}

func TestPredictDimPanics(t *testing.T) {
	r := rng.New(9)
	x, y := waveData(r, 40)
	p := Defaults()
	p.Rounds = 3
	m := Fit(x, y, p, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fit(mat.NewDense(0, 1), nil, Defaults(), nil)
}

func BenchmarkFit(b *testing.B) {
	r := rng.New(1)
	x, y := waveData(r, 300)
	p := Defaults()
	p.Rounds = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(x, y, p, nil)
	}
}

// friedmanBench mirrors the friedman generator used by the forest and
// treec bench suites, so BenchmarkGBRTPredictBatch and its compiled twin
// BenchmarkGBRTPredictBatchCompiled (internal/treec) measure the same
// model on the same data and their ns/op ratio is the compiled layout's
// speedup.
func friedmanBench(r *rng.Source, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 6)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 6; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = 10*math.Sin(math.Pi*x.At(i, 0)*x.At(i, 1)) +
			20*math.Pow(x.At(i, 2)-0.5, 2) +
			10*x.At(i, 3) + 5*x.At(i, 4) + 0.1*r.Norm()
	}
	return x, y
}

func BenchmarkGBRTPredictBatch(b *testing.B) {
	r := rng.New(1)
	x, y := friedmanBench(r, 2000)
	m := Fit(x, y, Defaults(), r)
	dst := make([]float64, x.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(x, dst)
	}
}
