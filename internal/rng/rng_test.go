package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different streams produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 200; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	s := New(19)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal(10,2) mean = %v", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(23)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(29)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(2.0)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBootstrapRange(t *testing.T) {
	s := New(37)
	idx := s.Bootstrap(nil, 50)
	if len(idx) != 50 {
		t.Fatalf("bootstrap length %d", len(idx))
	}
	for _, v := range idx {
		if v < 0 || v >= 50 {
			t.Fatalf("bootstrap index %d out of range", v)
		}
	}
}

func TestBootstrapReuse(t *testing.T) {
	s := New(38)
	buf := make([]int, 10)
	got := s.Bootstrap(buf, 10)
	if &got[0] != &buf[0] {
		t.Fatal("Bootstrap did not reuse provided buffer")
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(41)
	for _, tc := range []struct{ n, k int }{{10, 3}, {10, 10}, {1000, 5}, {5, 0}} {
		got := s.Sample(tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("Sample(%d,%d) length %d", tc.n, tc.k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid: %v", tc.n, tc.k, got)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestSampleCoversAll(t *testing.T) {
	// Small-k Floyd path must be able to produce every index.
	s := New(43)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		for _, v := range s.Sample(20, 2) {
			seen[v] = true
		}
	}
	if len(seen) != 20 {
		t.Fatalf("Sample(20,2) only ever produced %d distinct values", len(seen))
	}
}

func TestUniformRange(t *testing.T) {
	s := New(47)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(53)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(59)
	for i := 0; i < 10000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestMul64MatchesBigMul(t *testing.T) {
	// property: mul64 agrees with the identity on low bits and with
	// independent high-bit computation via per-32-bit decomposition.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		if lo != a*b {
			return false
		}
		// verify hi by long multiplication over 16-bit limbs
		var limbsA, limbsB [4]uint64
		for i := 0; i < 4; i++ {
			limbsA[i] = (a >> (16 * i)) & 0xffff
			limbsB[i] = (b >> (16 * i)) & 0xffff
		}
		var acc [8]uint64
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				acc[i+j] += limbsA[i] * limbsB[j]
			}
		}
		var carry uint64
		var words [8]uint64
		for i := 0; i < 8; i++ {
			v := acc[i] + carry
			words[i] = v & 0xffff
			carry = v >> 16
		}
		wantHi := words[4] | words[5]<<16 | words[6]<<32 | words[7]<<48
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(61)
	p := []int{5, 6, 7, 8, 9}
	s.Shuffle(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 35 {
		t.Fatalf("Shuffle changed multiset, sum=%d", sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Norm()
	}
	_ = sink
}
