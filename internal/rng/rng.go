// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the repository.
//
// Every stochastic component (simulator noise, bootstrap sampling, k-means
// seeding, parameter-space sampling) draws from an rng.Source so that a
// single integer seed reproduces an entire experiment, including its
// parallel parts: independent goroutines receive independent streams via
// Split, which derives a child generator whose sequence is uncorrelated
// with the parent's by construction (distinct 64-bit stream increments).
//
// The core generator is PCG-XSH-RR 64/32 extended to 64-bit output by
// pairing two 32-bit draws; it is small, fast, and passes the statistical
// test batteries relevant at this scale. We intentionally do not use
// math/rand so that results are stable across Go releases.
package rng

import (
	"math"
)

const (
	pcgMultiplier = 6364136223846793005
	mixGamma      = 0x9e3779b97f4a7c15 // golden-ratio increment for Split
)

// Source is a deterministic random number generator. It is NOT safe for
// concurrent use; share work across goroutines by giving each one a Split.
type Source struct {
	state uint64
	inc   uint64 // stream selector; always odd

	// cached second normal from the Box-Muller pair
	hasGauss bool
	gauss    float64
}

// New returns a Source seeded with seed on the default stream.
func New(seed uint64) *Source {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a Source with an explicit stream identifier. Two
// sources with different streams produce independent sequences even when
// seeded identically.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: stream<<1 | 1}
	s.state = 0
	s.next32()
	s.state += seed
	s.next32()
	return s
}

// Split derives a child generator from the parent's stream. The parent
// advances, so successive Splits yield distinct children. Children are
// safe to hand to other goroutines.
func (s *Source) Split() *Source {
	seed := s.Uint64()
	stream := s.Uint64() + mixGamma
	return NewStream(seed, stream)
}

func (s *Source) next32() uint32 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	hi := uint64(s.next32())
	lo := uint64(s.next32())
	return hi<<32 | lo
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return s.next32() }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded generation avoids modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Int63 returns a non-negative 63-bit value, mirroring math/rand's contract.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal variate (Box-Muller with caching).
func (s *Source) Norm() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	var u, v, q float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		q = u*u + v*v
		if q > 0 && q < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(q) / q)
	s.gauss = v * f
	s.hasGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// LogNormal returns exp(N(mu, sigma)); used for multiplicative runtime noise.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exp returns an exponential variate with the given rate (lambda > 0).
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	return -math.Log(1-s.Float64()) / rate
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.Float64() < p }

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(p)
	return p
}

// Shuffle permutes p in place.
func (s *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bootstrap fills dst with indices drawn uniformly with replacement
// from [0, n) and returns it. dst may be nil.
func (s *Source) Bootstrap(dst []int, n int) []int {
	if dst == nil {
		dst = make([]int, n)
	}
	for i := range dst {
		dst[i] = s.Intn(n)
	}
	return dst
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n. For k close to n it shuffles; for small k it
// uses Floyd's algorithm to avoid the O(n) allocation.
func (s *Source) Sample(n, k int) []int {
	if k > n {
		panic("rng: Sample k > n")
	}
	if k*3 >= n {
		p := s.Perm(n)
		return p[:k]
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Floyd's method yields a set; randomize order for downstream fairness.
	s.Shuffle(out)
	return out
}
