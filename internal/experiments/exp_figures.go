package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hpcsim"
	"repro/internal/stats"
)

// runFig1 renders prediction error as a function of the target scale for
// every method — the series version of Table 3, extended to the small
// scales so the in-distribution/out-of-distribution divergence is visible.
func runFig1(p Protocol) ([]*Report, error) {
	var reports []*Report
	for _, app := range paperApps() {
		s, err := NewSetup(app, p)
		if err != nil {
			return nil, err
		}
		m, err := newMethods(s, p.Seed+61)
		if err != nil {
			return nil, err
		}
		rep := &Report{
			ID:    "fig1",
			Title: fmt.Sprintf("MAPE vs target scale, %s", app.Name()),
			Cols:  append([]string{"scale"}, MethodNames...),
			Notes: []string{
				"expected: curves overlap at small (training) scales, then the direct methods blow up",
				"past the training boundary while two-level stays flat",
			},
		}
		scales := append(append([]int{}, p.SmallScales...), p.LargeScales...)
		for _, scale := range scales {
			row := []string{fmt.Sprintf("%d", scale)}
			for _, name := range MethodNames {
				if name == "curve-fit" && isSmall(scale, p.SmallScales) {
					row = append(row, "-") // curve-fit interpolating its own inputs is meaningless
					continue
				}
				row = append(row, pct(m.mapeAt(name, scale)))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

func isSmall(scale int, small []int) bool {
	for _, s := range small {
		if s == scale {
			return true
		}
	}
	return false
}

// runFig2 sweeps the cluster count K and reports MAPE at the largest
// target scale for both backends. The basis backend is where clustering
// carries the model (the shared terms ARE the scalability knowledge), so
// its column shows the paper's "moderate K is best" curve; the anchored
// backend clusters only its anchors, capping the effective K.
func runFig2(p Protocol) ([]*Report, error) {
	scale := p.LargeScales[len(p.LargeScales)-1]
	idx := len(p.LargeScales) - 1
	var reports []*Report
	for _, app := range paperApps() {
		s, err := NewSetup(app, p)
		if err != nil {
			return nil, err
		}
		rep := &Report{
			ID:    "fig2",
			Title: fmt.Sprintf("MAPE at p=%d vs number of clusters, %s", scale, app.Name()),
			Cols: []string{
				"K (requested)",
				"anchored K(eff)", "anchored MAPE",
				"basis K(eff)", "basis MAPE",
			},
			Notes: []string{"expected: error drops from K=1 to a moderate K, then flattens or rises as clusters thin out"},
		}
		for _, k := range []int{1, 2, 3, 4, 5, 6, 8} {
			row := []string{fmt.Sprintf("%d", k)}
			for _, mode := range []core.Mode{core.ModeAnchored, core.ModeBasis} {
				cfg := s.CoreConfig()
				cfg.Mode = mode
				cfg.Clusters = k
				m, err := s.FitTwoLevel(p.Seed+71, cfg)
				if err != nil {
					return nil, err
				}
				mape, _ := s.EvalAtScale(scale, func(c dataset.Config, _ []float64) float64 {
					return m.Predict(c.Params)[idx]
				})
				row = append(row, fmt.Sprintf("%d", m.Clusters()), pct(mape))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// runFig3 is the learning curve: MAPE at the largest scale as the number
// of training configurations grows.
func runFig3(p Protocol) ([]*Report, error) {
	sizes := []int{50, 100, 150, 200, 300}
	if p.NumConfigs < 300 { // quick protocol: shrink the sweep
		sizes = []int{30, 50, 80}
	}
	var reports []*Report
	for _, app := range paperApps() {
		cols := []string{"train configs", "usable configs"}
		for _, sc := range p.LargeScales {
			cols = append(cols, fmt.Sprintf("p=%d", sc))
		}
		rep := &Report{
			ID:    "fig3",
			Title: fmt.Sprintf("Learning curve, %s", app.Name()),
			Cols:  cols,
			Notes: []string{"expected: error falls steeply then saturates after a few hundred configurations"},
		}
		for _, n := range sizes {
			pp := p
			pp.NumConfigs = n
			s, err := NewSetup(app, pp)
			if err != nil {
				return nil, err
			}
			m, err := s.FitTwoLevel(p.Seed+83, s.CoreConfig())
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", m.TrainConfigs)}
			for li := range pp.LargeScales {
				idx := li
				mape, _ := s.EvalAtScale(pp.LargeScales[li], func(c dataset.Config, _ []float64) float64 {
					return m.Predict(c.Params)[idx]
				})
				row = append(row, pct(mape))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// runFig4 is the predicted-vs-actual scatter at the largest target scale.
func runFig4(p Protocol) ([]*Report, error) {
	var reports []*Report
	scale := p.LargeScales[len(p.LargeScales)-1]
	for _, app := range paperApps() {
		s, err := NewSetup(app, p)
		if err != nil {
			return nil, err
		}
		m, err := s.FitTwoLevel(p.Seed+97, s.CoreConfig())
		if err != nil {
			return nil, err
		}
		idx := len(p.LargeScales) - 1
		yTrue, yPred := s.PairsAtScale(scale, func(c dataset.Config, _ []float64) float64 {
			return m.Predict(c.Params)[idx]
		})
		rep := &Report{
			ID:    "fig4",
			Title: fmt.Sprintf("Predicted vs actual at p=%d, %s", scale, app.Name()),
			Cols:  []string{"actual (s)", "predicted (s)", "APE"},
			Notes: []string{
				fmt.Sprintf("pearson=%.4f spearman=%.4f mape=%s n=%d",
					stats.Pearson(yTrue, yPred), stats.Spearman(yTrue, yPred),
					pct(stats.MAPE(yTrue, yPred)), len(yTrue)),
				"expected: points hug the diagonal across 2-3 orders of magnitude",
			},
		}
		for i := range yTrue {
			ape := 0.0
			if yTrue[i] != 0 {
				ape = abs(yTrue[i]-yPred[i]) / yTrue[i]
			}
			rep.AddRow(fmt.Sprintf("%.4g", yTrue[i]), fmt.Sprintf("%.4g", yPred[i]), pct(ape))
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// runFig5 sweeps which small scales feed the extrapolation level.
func runFig5(p Protocol) ([]*Report, error) {
	full := p.SmallScales
	subsets := [][]int{full}
	if len(full) > 4 {
		subsets = append(subsets,
			full[1:],           // drop the smallest
			full[2:],           // drop the two smallest
			full[:len(full)-1], // drop the largest small scale
			// sparse quadruple: endpoints plus two interior scales
			[]int{full[0], full[len(full)/3], full[2*len(full)/3], full[len(full)-1]},
		)
	}
	var reports []*Report
	for _, app := range paperApps() {
		cols := []string{"small scales"}
		for _, sc := range p.LargeScales {
			cols = append(cols, fmt.Sprintf("p=%d", sc))
		}
		rep := &Report{
			ID:    "fig5",
			Title: fmt.Sprintf("MAPE vs small-scale set, %s", app.Name()),
			Cols:  cols,
			Notes: []string{"expected: the largest small scales carry the most signal; dropping them hurts most"},
		}
		for _, subset := range subsets {
			pp := p
			pp.SmallScales = subset
			s, err := NewSetup(app, pp)
			if err != nil {
				return nil, err
			}
			m, err := s.FitTwoLevel(p.Seed+103, s.CoreConfig())
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%v", subset)}
			for li := range pp.LargeScales {
				idx := li
				mape, _ := s.EvalAtScale(pp.LargeScales[li], func(c dataset.Config, _ []float64) float64 {
					return m.Predict(c.Params)[idx]
				})
				row = append(row, pct(mape))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// runFig6 sweeps the simulator's measurement-noise level.
func runFig6(p Protocol) ([]*Report, error) {
	sigmas := []float64{0, 0.01, 0.03, 0.05, 0.10, 0.20}
	var reports []*Report
	for _, app := range paperApps() {
		cols := []string{"noise sigma"}
		for _, sc := range p.LargeScales {
			cols = append(cols, fmt.Sprintf("p=%d", sc))
		}
		rep := &Report{
			ID:    "fig6",
			Title: fmt.Sprintf("MAPE vs measurement noise, %s", app.Name()),
			Cols:  cols,
			Notes: []string{"expected: graceful degradation — error grows roughly with sigma, no cliff"},
		}
		for _, sigma := range sigmas {
			s, err := noisySetup(app, p, sigma)
			if err != nil {
				return nil, err
			}
			m, err := s.FitTwoLevel(p.Seed+113, s.CoreConfig())
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%.2f", sigma)}
			for li := range p.LargeScales {
				idx := li
				mape, _ := s.EvalAtScale(p.LargeScales[li], func(c dataset.Config, _ []float64) float64 {
					return m.Predict(c.Params)[idx]
				})
				row = append(row, pct(mape))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// noisySetup regenerates a setup with an engine at the given noise level.
func noisySetup(app hpcsim.App, p Protocol, sigma float64) (*Setup, error) {
	s, err := NewSetup(app, p)
	if err != nil {
		return nil, err
	}
	eng := hpcsim.NewEngine(nil, p.Seed)
	eng.NoiseSigma = sigma
	if sigma == 0 {
		eng.InterferenceProb = 0
	}
	// regenerate both tables under the adjusted engine
	sp := app.Space()
	r := rngFor(p.Seed ^ 0x5eed)
	trainCfgs := sp.SampleLatinHypercube(r, p.NumConfigs)
	testCfgs := sp.SampleLatinHypercube(r, p.NumTest)
	train, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs, Scales: p.SmallScales, Reps: p.Reps})
	if err != nil {
		return nil, err
	}
	if p.NumAnchors > 0 {
		nAnchor := p.NumAnchors
		if nAnchor > p.NumConfigs {
			nAnchor = p.NumConfigs
		}
		anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs[:nAnchor], Scales: p.LargeScales, Reps: p.Reps})
		if err != nil {
			return nil, err
		}
		train.Merge(anchors)
	}
	allScales := append(append([]int{}, p.SmallScales...), p.LargeScales...)
	test, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: testCfgs, Scales: allScales, Reps: 1})
	if err != nil {
		return nil, err
	}
	s.Engine = eng
	s.Train = train
	s.Test = test
	return s, nil
}
