package experiments

import (
	"bytes"
	"testing"
)

// renderAll runs one experiment under a fresh tiny protocol and renders
// every report twice over: the aligned ASCII table (what the experiment
// CLI prints) and the CSV emission (what plotting consumes).
func renderAll(t *testing.T, id string) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := e.Run(tinyProtocol())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range reports {
		if err := r.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestGoldenDeterminism is the byte-level reproducibility gate the
// repolint suite exists to protect: the same seed must produce the
// identical report and CSV bytes on every run, including across the
// parallel parts of the pipeline. A failure here usually means a stray
// randomness source, wall-clock read, or map-ordered emission slipped in.
func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (reduced-size) experiment twice")
	}
	// table2 exercises history generation, clustering, the interpolation
	// level, and every direct baseline; fig2 adds the extrapolation level
	// across cluster counts.
	for _, id := range []string{"table2", "fig2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			a := renderAll(t, id)
			b := renderAll(t, id)
			if !bytes.Equal(a, b) {
				d := firstDiff(a, b)
				t.Fatalf("two same-seed runs of %s differ at byte %d:\n run1: %s\n run2: %s",
					id, d, excerpt(a, d), excerpt(b, d))
			}
		})
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// excerpt shows the bytes around position d for the failure message.
func excerpt(s []byte, d int) string {
	lo, hi := d-40, d+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return string(s[lo:hi])
}
