package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hpcsim"
)

// tinyProtocol keeps experiment smoke tests fast.
func tinyProtocol() Protocol {
	return Protocol{
		Seed:        7,
		NumConfigs:  40,
		NumAnchors:  16,
		NumTest:     10,
		Reps:        1,
		SmallScales: []int{2, 4, 8, 16, 32, 64},
		LargeScales: []int{128, 256},
	}
}

func TestRegistryAndByID(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID accepted unknown id")
	}
	if len(IDs()) != len(reg) {
		t.Fatal("IDs() length mismatch")
	}
}

func TestNewSetupShape(t *testing.T) {
	p := tinyProtocol()
	s, err := NewSetup(hpcsim.NewSMG(), p)
	if err != nil {
		t.Fatal(err)
	}
	// train: 40 configs × 6 small scales + 16 anchors × 2 large scales
	if want := 40*6 + 16*2; s.Train.Len() != want {
		t.Fatalf("train has %d runs, want %d", s.Train.Len(), want)
	}
	// test: 10 configs × 8 scales
	if s.Test.Len() != 10*8 {
		t.Fatalf("test has %d runs", s.Test.Len())
	}
	cfg := s.CoreConfig()
	if len(cfg.SmallScales) != 6 || len(cfg.LargeScales) != 2 {
		t.Fatalf("core config scales wrong: %+v", cfg)
	}
}

func TestNewSetupRejectsDegenerate(t *testing.T) {
	p := tinyProtocol()
	p.NumConfigs = 2
	if _, err := NewSetup(hpcsim.NewSMG(), p); err == nil {
		t.Fatal("degenerate protocol accepted")
	}
}

func TestMethodsFitAndEvaluate(t *testing.T) {
	p := tinyProtocol()
	s, err := NewSetup(hpcsim.NewLulesh(), p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := newMethods(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range MethodNames {
		v := m.mapeAt(name, 256)
		if v != v || v < 0 {
			t.Fatalf("%s MAPE at 256 = %v", name, v)
		}
	}
}

func TestAllExperimentsRunUnderTinyProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	p := tinyProtocol()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			reports, err := e.Run(p)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(reports) == 0 {
				t.Fatalf("%s produced no reports", e.ID)
			}
			for _, r := range reports {
				if len(r.Rows) == 0 || len(r.Cols) == 0 {
					t.Fatalf("%s produced empty report", e.ID)
				}
				out := r.String()
				if !strings.Contains(out, r.ID) {
					t.Fatalf("%s render missing id:\n%s", e.ID, out)
				}
			}
		})
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:    "x",
		Title: "demo",
		Cols:  []string{"a", "bb"},
		Notes: []string{"hello"},
	}
	r.AddRow("1", "2")
	r.AddRow("only-one") // short row padded
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: hello", "only-one"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Cols: []string{"a", "b"}}
	r.AddRow("1", "2")
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestEvalAtScaleSkipsNaN(t *testing.T) {
	p := tinyProtocol()
	s, err := NewSetup(hpcsim.NewSMG(), p)
	if err != nil {
		t.Fatal(err)
	}
	// all-NaN predictor: zero evaluated points
	_, n := s.EvalAtScale(256, func(dataset.Config, []float64) float64 {
		return math.NaN()
	})
	if n != 0 {
		t.Fatalf("NaN predictions counted: n = %d", n)
	}
	// constant predictor: every test config counted
	mape, n := s.EvalAtScale(256, func(dataset.Config, []float64) float64 {
		return 1
	})
	if n != p.NumTest || mape <= 0 {
		t.Fatalf("n = %d mape = %v", n, mape)
	}
	// unknown scale: nothing to evaluate
	if _, n := s.EvalAtScale(999, func(dataset.Config, []float64) float64 { return 1 }); n != 0 {
		t.Fatal("unknown scale evaluated points")
	}
}
