package experiments

import "repro/internal/rng"

// rngFor is a tiny indirection so experiment files don't each import rng.
func rngFor(seed uint64) *rng.Source { return rng.New(seed) }
