package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is a rendered experiment result: one table (for R-Table*) or one
// series table (for R-Fig*, whose columns are the plotted series).
type Report struct {
	ID    string
	Title string
	Notes []string // qualitative expectations / caveats printed below
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (r *Report) AddRow(cells ...string) {
	row := make([]string, len(r.Cols))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	r.Rows = append(r.Rows, row)
}

// Fprint renders the report as an aligned ASCII table.
func (r *Report) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(r.Cols)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// String renders the report to a string.
func (r *Report) String() string {
	var b strings.Builder
	if err := r.Fprint(&b); err != nil {
		return fmt.Sprintf("<report render error: %v>", err)
	}
	return b.String()
}

// WriteCSV emits the report as CSV (header + rows), for plotting.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(r.Cols, ",")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// pct formats a MAPE fraction as a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
