package experiments

import (
	"fmt"
	"sort"

	"repro/internal/hpcsim"
)

// Experiment is one reconstructed table or figure from the paper's
// evaluation (see DESIGN.md for the index and EXPERIMENTS.md for results).
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment under a protocol, returning one report
	// per application (most experiments) or a single combined report.
	Run func(p Protocol) ([]*Report, error)
}

// paperApps returns the two applications standing in for the paper's two
// evaluation programs, in presentation order.
func paperApps() []hpcsim.App {
	return []hpcsim.App{hpcsim.NewSMG(), hpcsim.NewLulesh()}
}

// allApps additionally includes the extension applications.
func allApps() []hpcsim.App {
	return append(paperApps(), hpcsim.NewKripke(), hpcsim.NewCG())
}

// Registry returns every experiment keyed by id, in report order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Application parameter spaces and scales", Run: runTable1},
		{ID: "table2", Title: "Interpolation-level accuracy at small scales (MAPE)", Run: runTable2},
		{ID: "table3", Title: "Extrapolation accuracy at large scales: two-level vs baselines (MAPE)", Run: runTable3},
		{ID: "table4", Title: "Ablation study of the two-level model (MAPE)", Run: runTable4},
		{ID: "table5", Title: "Paired-bootstrap significance of the headline comparison", Run: runTable5},
		{ID: "fig1", Title: "Prediction error vs target scale, per method", Run: runFig1},
		{ID: "fig2", Title: "Sensitivity to the number of clusters K", Run: runFig2},
		{ID: "fig3", Title: "Learning curve: error vs training configurations", Run: runFig3},
		{ID: "fig4", Title: "Predicted vs actual runtime at the largest scale", Run: runFig4},
		{ID: "fig5", Title: "Sensitivity to the set of small scales", Run: runFig5},
		{ID: "fig6", Title: "Robustness to measurement noise", Run: runFig6},
		{ID: "fig7", Title: "Sensitivity to the amount of large-scale history", Run: runFig7},
		{ID: "fig8", Title: "Robustness across machine presets", Run: runFig8},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := IDs()
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	r := Registry()
	out := make([]string, len(r))
	for i, e := range r {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}
