package experiments

import (
	"fmt"

	"repro/internal/stats"
)

// runTable5 (beyond-paper extension) attaches statistical significance to
// the headline comparison: for each baseline, a paired bootstrap over the
// test configurations estimates a 95% confidence interval for
// MAPE(two-level) − MAPE(baseline) at the largest target scale. An
// interval entirely below zero means the two-level model is significantly
// more accurate on that workload; one straddling zero means the data
// cannot separate the methods.
func runTable5(p Protocol) ([]*Report, error) {
	scale := p.LargeScales[len(p.LargeScales)-1]
	const bootstraps = 2000
	var reports []*Report
	for _, app := range paperApps() {
		s, err := NewSetup(app, p)
		if err != nil {
			return nil, err
		}
		m, err := newMethods(s, p.Seed+163)
		if err != nil {
			return nil, err
		}
		rep := &Report{
			ID:    "table5",
			Title: fmt.Sprintf("Significance of the two-level advantage at p=%d, %s", scale, app.Name()),
			Cols:  []string{"baseline", "two-level MAPE", "baseline MAPE", "ΔMAPE 95% CI", "significant?"},
			Notes: []string{
				fmt.Sprintf("paired bootstrap over %d test configurations, %d resamples", p.NumTest, bootstraps),
				"Δ = two-level − baseline; CI entirely below 0 ⇒ two-level significantly better",
			},
		}
		yTrue, predTwo := s.PairsAtScale(scale, m.predictFn("two-level", scale))
		for _, name := range MethodNames {
			if name == "two-level" {
				continue
			}
			yt, predBase := s.PairsAtScale(scale, m.predictFn(name, scale))
			if len(yt) != len(yTrue) {
				// methods must be compared on identical points
				return nil, fmt.Errorf("experiments: %s evaluated %d points, two-level %d", name, len(yt), len(yTrue))
			}
			lo, hi := stats.PairedBootstrapMAPEDiff(rngFor(p.Seed+167), yTrue, predTwo, predBase, bootstraps, 0.05)
			verdict := "no"
			switch {
			case hi < 0:
				verdict = "yes (two-level better)"
			case lo > 0:
				verdict = "yes (baseline better)"
			}
			rep.AddRow(name,
				pct(stats.MAPE(yTrue, predTwo)),
				pct(stats.MAPE(yt, predBase)),
				fmt.Sprintf("[%+.1f%%, %+.1f%%]", 100*lo, 100*hi),
				verdict)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
