package experiments

import (
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// MethodNames is the presentation order of compared methods. "two-level"
// is the paper's method (anchored backend); "two-level-basis" is the
// variant that uses no large-scale history at all.
var MethodNames = []string{
	"two-level", "two-level-basis", "direct-rf", "direct-gbrt", "direct-knn", "direct-lasso", "curve-fit",
}

// methods bundles every compared method fitted on one setup's history.
type methods struct {
	setup    *Setup
	twoLevel *core.TwoLevelModel
	twoBasis *core.TwoLevelModel
	direct   map[string]baselines.Predictor
	curveFit *baselines.CurveFit
}

// newMethods fits the two-level model and every baseline on the setup.
func newMethods(s *Setup, seed uint64) (*methods, error) {
	m := &methods{
		setup:    s,
		direct:   map[string]baselines.Predictor{},
		curveFit: &baselines.CurveFit{Scales: s.Protocol.SmallScales},
	}
	tl, err := s.FitTwoLevel(seed, s.CoreConfig())
	if err != nil {
		return nil, fmt.Errorf("two-level: %w", err)
	}
	m.twoLevel = tl
	basisCfg := s.CoreConfig()
	basisCfg.Mode = core.ModeBasis
	tb, err := s.FitTwoLevel(seed, basisCfg)
	if err != nil {
		return nil, fmt.Errorf("two-level-basis: %w", err)
	}
	m.twoBasis = tb
	for _, b := range baselines.All() {
		p, err := b.Train(rng.New(seed^0xbadc0de), s.Train)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		m.direct[b.Name] = p
	}
	return m, nil
}

// predictFn returns the prediction closure for a named method at a scale.
// Unknown methods panic (programming error in an experiment).
func (m *methods) predictFn(name string, scale int) func(cfg dataset.Config, curve []float64) float64 {
	switch name {
	case "two-level", "two-level-basis":
		mdl := m.twoLevel
		if name == "two-level-basis" {
			mdl = m.twoBasis
		}
		idx := -1
		for i, s := range mdl.Cfg.LargeScales {
			if s == scale {
				idx = i
			}
		}
		if idx >= 0 {
			return func(cfg dataset.Config, _ []float64) float64 {
				return mdl.Predict(cfg.Params)[idx]
			}
		}
		// small-scale query: answer with the interpolation level
		for i, s := range mdl.Cfg.SmallScales {
			if s == scale {
				si := i
				return func(cfg dataset.Config, _ []float64) float64 {
					return mdl.PredictSmall(cfg.Params)[si]
				}
			}
		}
		return func(dataset.Config, []float64) float64 { return math.NaN() }
	case "curve-fit":
		return func(_ dataset.Config, curve []float64) float64 {
			v, err := m.curveFit.PredictFromCurve(curve, scale)
			if err != nil {
				return math.NaN()
			}
			return v
		}
	default:
		p, ok := m.direct[name]
		if !ok {
			panic(fmt.Sprintf("experiments: unknown method %q", name))
		}
		return func(cfg dataset.Config, _ []float64) float64 {
			return p.PredictAt(cfg.Params, scale)
		}
	}
}

// mapeAt evaluates one method's MAPE at one scale over the test set.
func (m *methods) mapeAt(name string, scale int) float64 {
	mape, n := m.setup.EvalAtScale(scale, m.predictFn(name, scale))
	if n == 0 {
		return math.NaN()
	}
	return mape
}
