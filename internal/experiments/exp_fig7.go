package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// runFig7 sweeps the amount of large-scale history (anchor count) and
// reports, at the largest target scale, the error of the two-level model
// against the strongest direct baselines. This locates the regime the
// paper targets: with scarce large-scale history the two-level model
// dominates; as large-scale runs become abundant, direct ML catches up
// because the problem degenerates to interpolation.
func runFig7(p Protocol) ([]*Report, error) {
	anchorCounts := []int{0, 10, 20, 40, 80, 150}
	if p.NumConfigs < 150 {
		anchorCounts = []int{0, 10, 20, 40}
	}
	scale := p.LargeScales[len(p.LargeScales)-1]
	var reports []*Report
	for _, app := range paperApps() {
		rep := &Report{
			ID:    "fig7",
			Title: fmt.Sprintf("MAPE at p=%d vs amount of large-scale history, %s", scale, app.Name()),
			Cols:  []string{"anchors", "mode", "two-level", "direct-rf", "direct-gbrt", "direct-lasso"},
			Notes: []string{
				"expected: two-level wins by a wide margin when anchors are scarce; direct methods close",
				"the gap only once large-scale runs are plentiful (defeating the purpose of prediction)",
			},
		}
		for _, nA := range anchorCounts {
			pp := p
			pp.NumAnchors = nA
			s, err := NewSetup(app, pp)
			if err != nil {
				return nil, err
			}
			tl, err := s.FitTwoLevel(p.Seed+131, s.CoreConfig())
			if err != nil {
				return nil, err
			}
			idx := len(p.LargeScales) - 1
			tlMAPE, _ := s.EvalAtScale(scale, func(c dataset.Config, _ []float64) float64 {
				return tl.Predict(c.Params)[idx]
			})
			row := []string{fmt.Sprintf("%d", nA), string(tl.Mode()), pct(tlMAPE)}
			for _, b := range []struct {
				name  string
				train baselines.Trainer
			}{
				{"direct-rf", baselines.TrainDirectForest},
				{"direct-gbrt", baselines.TrainDirectGBRT},
				{"direct-lasso", baselines.TrainDirectLasso},
			} {
				pr, err := b.train(rng.New(p.Seed+137), s.Train)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", b.name, err)
				}
				mape, _ := s.EvalAtScale(scale, func(c dataset.Config, _ []float64) float64 {
					return pr.PredictAt(c.Params, scale)
				})
				row = append(row, pct(mape))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
