// Package experiments reconstructs the paper's evaluation: every table
// and figure listed in DESIGN.md is an Experiment that generates its
// workload on the simulated platform, trains the two-level model and the
// baselines, and renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hpcsim"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Protocol fixes the experimental design shared by the experiments:
// how much history exists, which scales are "small" (abundant history)
// and "large" (prediction targets), and how test configurations are drawn.
type Protocol struct {
	Seed uint64
	// NumConfigs is the number of distinct training configurations with
	// small-scale history.
	NumConfigs int
	// NumAnchors is the number of those configurations whose history also
	// includes large-scale runs — the scarce big jobs a real history
	// contains. The two-level anchored backend and every baseline see the
	// SAME table, anchors included; scarcity is what separates them.
	// Zero means no large-scale history anywhere (basis-mode regime).
	NumAnchors int
	// NumTest is the number of held-out configurations evaluated.
	NumTest int
	// Reps is the number of repeated measurements per (config, scale).
	Reps int

	SmallScales []int
	LargeScales []int
}

// DefaultProtocol is the full-size experimental design.
func DefaultProtocol(seed uint64) Protocol {
	return Protocol{
		Seed:        seed,
		NumConfigs:  600,
		NumAnchors:  30,
		NumTest:     60,
		Reps:        3,
		SmallScales: []int{2, 4, 8, 16, 32, 64},
		LargeScales: []int{128, 256, 512, 1024},
	}
}

// QuickProtocol is a reduced design for smoke tests and benchmarks.
func QuickProtocol(seed uint64) Protocol {
	return Protocol{
		Seed:        seed,
		NumConfigs:  80,
		NumAnchors:  20,
		NumTest:     25,
		Reps:        1,
		SmallScales: []int{2, 4, 8, 16, 32, 64},
		LargeScales: []int{128, 256, 512},
	}
}

// Setup is one application's prepared data under a protocol.
type Setup struct {
	App      hpcsim.App
	Engine   *hpcsim.Engine
	Protocol Protocol
	// Train has small-scale runs for every training configuration plus
	// large-scale runs for the NumAnchors anchor configurations.
	Train *dataset.Table
	// Test has runs at every small AND large scale for held-out
	// configurations (ground truth for evaluation, measured curves for
	// the curve-fit baseline and the oracle ablation).
	Test *dataset.Table
}

// NewSetup generates the history for one application under the protocol.
func NewSetup(app hpcsim.App, p Protocol) (*Setup, error) {
	if p.NumConfigs < 6 || p.NumTest < 1 {
		return nil, fmt.Errorf("experiments: degenerate protocol %+v", p)
	}
	eng := hpcsim.NewEngine(nil, p.Seed)
	r := rng.New(p.Seed ^ 0x5eed)
	sp := app.Space()

	trainCfgs := sp.SampleLatinHypercube(r, p.NumConfigs)
	testCfgs := sp.SampleLatinHypercube(r, p.NumTest)

	train, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
		Configs: trainCfgs, Scales: p.SmallScales, Reps: p.Reps,
	})
	if err != nil {
		return nil, err
	}
	if p.NumAnchors > 0 {
		nAnchor := p.NumAnchors
		if nAnchor > p.NumConfigs {
			nAnchor = p.NumConfigs
		}
		anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
			Configs: trainCfgs[:nAnchor], Scales: p.LargeScales, Reps: p.Reps,
		})
		if err != nil {
			return nil, err
		}
		train.Merge(anchors)
	}

	allScales := append(append([]int{}, p.SmallScales...), p.LargeScales...)
	test, err := eng.GenerateHistory(app, hpcsim.HistorySpec{
		Configs: testCfgs, Scales: allScales, Reps: 1,
	})
	if err != nil {
		return nil, err
	}
	return &Setup{App: app, Engine: eng, Protocol: p, Train: train, Test: test}, nil
}

// CoreConfig returns the two-level model configuration matching the
// protocol's scales.
func (s *Setup) CoreConfig() core.Config {
	c := core.DefaultConfig()
	c.SmallScales = append([]int{}, s.Protocol.SmallScales...)
	c.LargeScales = append([]int{}, s.Protocol.LargeScales...)
	return c
}

// FitTwoLevel trains the paper's model on the setup's history.
func (s *Setup) FitTwoLevel(seed uint64, cfg core.Config) (*core.TwoLevelModel, error) {
	return core.Fit(rng.New(seed), s.Train, cfg)
}

// EvalAtScale computes MAPE of arbitrary per-config predictions at one
// large scale over the test set. predict receives the configuration and
// its measured small-scale curve (for curve-based methods) and returns
// the predicted runtime; returning NaN skips the point.
func (s *Setup) EvalAtScale(scale int, predict func(cfg dataset.Config, curve []float64) float64) (float64, int) {
	var yTrue, yPred []float64
	for _, c := range s.Test.GroupByConfig() {
		rt, ok := c.Runtimes[scale]
		if !ok {
			continue
		}
		curve, ok := c.Curve(s.Protocol.SmallScales)
		if !ok {
			continue
		}
		p := predict(c, curve)
		if math.IsNaN(p) {
			continue
		}
		yTrue = append(yTrue, rt)
		yPred = append(yPred, p)
	}
	if len(yTrue) == 0 {
		return 0, 0
	}
	return stats.MAPE(yTrue, yPred), len(yTrue)
}

// PairsAtScale returns aligned (true, predicted) runtimes at one scale.
func (s *Setup) PairsAtScale(scale int, predict func(cfg dataset.Config, curve []float64) float64) (yTrue, yPred []float64) {
	for _, c := range s.Test.GroupByConfig() {
		rt, ok := c.Runtimes[scale]
		if !ok {
			continue
		}
		curve, ok := c.Curve(s.Protocol.SmallScales)
		if !ok {
			continue
		}
		p := predict(c, curve)
		if math.IsNaN(p) {
			continue
		}
		yTrue = append(yTrue, rt)
		yPred = append(yPred, p)
	}
	return yTrue, yPred
}
