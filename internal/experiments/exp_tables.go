package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/scalefit"
)

// runTable1 lists, per application, its parameter space and the scales of
// the experimental design — the reconstruction of the paper's setup table.
func runTable1(p Protocol) ([]*Report, error) {
	rep := &Report{
		ID:    "table1",
		Title: "Application parameter spaces and scales",
		Cols:  []string{"app", "parameter", "values"},
		Notes: []string{
			fmt.Sprintf("small scales (training history): %v", p.SmallScales),
			fmt.Sprintf("large scales (prediction targets): %v", p.LargeScales),
			fmt.Sprintf("%d training configurations (small-scale history only), %d test configurations",
				p.NumConfigs, p.NumTest),
		},
	}
	for _, app := range allApps() {
		for _, pd := range app.Space().Params {
			var desc string
			if len(pd.Values) > 0 {
				if len(pd.Values) > 6 {
					desc = fmt.Sprintf("%g .. %g (%d levels)", pd.Values[0], pd.Values[len(pd.Values)-1], len(pd.Values))
				} else {
					parts := make([]string, len(pd.Values))
					for i, v := range pd.Values {
						parts[i] = fmt.Sprintf("%g", v)
					}
					desc = strings.Join(parts, ", ")
				}
			} else {
				desc = fmt.Sprintf("[%g, %g] continuous", pd.Lo, pd.Hi)
			}
			rep.AddRow(app.Name(), pd.Name, desc)
		}
	}
	return []*Report{rep}, nil
}

// runTable2 measures interpolation-level accuracy: every regressor trained
// per small scale on (params -> runtime), evaluated on held-out configs at
// the same scale. This is the regime where i.i.d. holds and all ML methods
// are viable — the motivation row for why the interpolation level uses a
// random forest.
func runTable2(p Protocol) ([]*Report, error) {
	var reports []*Report
	for _, app := range paperApps() {
		s, err := NewSetup(app, p)
		if err != nil {
			return nil, err
		}
		m, err := newMethods(s, p.Seed+17)
		if err != nil {
			return nil, err
		}
		cols := []string{"scale", "rf (interp level)", "direct-gbrt", "direct-knn", "direct-lasso"}
		rep := &Report{
			ID:    "table2",
			Title: fmt.Sprintf("Interpolation accuracy, %s (MAPE, held-out configs)", app.Name()),
			Cols:  cols,
			Notes: []string{"expected: all methods comparable here; the forest is competitive or best — interpolation is the easy regime"},
		}
		for _, scale := range p.SmallScales {
			row := []string{fmt.Sprintf("%d", scale)}
			// interpolation level of the two-level model
			row = append(row, pct(m.mapeAt("two-level", scale)))
			for _, name := range []string{"direct-gbrt", "direct-knn", "direct-lasso"} {
				row = append(row, pct(m.mapeAt(name, scale)))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// runTable3 is the headline comparison: extrapolation MAPE at every large
// scale for the two-level model against every baseline.
func runTable3(p Protocol) ([]*Report, error) {
	var reports []*Report
	for _, app := range allApps() {
		s, err := NewSetup(app, p)
		if err != nil {
			return nil, err
		}
		m, err := newMethods(s, p.Seed+31)
		if err != nil {
			return nil, err
		}
		rep := &Report{
			ID:    "table3",
			Title: fmt.Sprintf("Extrapolation accuracy, %s (MAPE at large scales)", app.Name()),
			Cols:  append([]string{"scale"}, MethodNames...),
			Notes: []string{
				"expected: two-level lowest at every scale; bounded direct methods (rf/gbrt/knn) degrade catastrophically;",
				"direct-lasso and curve-fit follow trends but miss regime changes",
			},
		}
		for _, scale := range p.LargeScales {
			row := []string{fmt.Sprintf("%d", scale)}
			for _, name := range MethodNames {
				row = append(row, pct(m.mapeAt(name, scale)))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// runTable4 is the ablation study over the two-level model's design
// choices, evaluated at every large scale. Ablations that only exist in
// one backend run in that backend (mode column).
func runTable4(p Protocol) ([]*Report, error) {
	type variant struct {
		name   string
		mutate func(core.Config) core.Config
		// oracleCurve predicts from the measured small-scale curve instead
		// of interpolation-level predictions.
		oracleCurve bool
	}
	basis := func(c core.Config) core.Config { c.Mode = core.ModeBasis; return c }
	variants := []variant{
		{name: "full method (anchored)", mutate: func(c core.Config) core.Config { return c }},
		{name: "no clustering (K=1)", mutate: func(c core.Config) core.Config { c.Clusters = 1; return c }},
		{name: "single-task lasso", mutate: func(c core.Config) core.Config { c.SingleTask = true; return c }},
		{name: "train on measured curves", mutate: func(c core.Config) core.Config {
			c.FeaturesFromMeasurements = true
			return c
		}},
		{name: "no log-target interpolation", mutate: func(c core.Config) core.Config {
			c.NoLogInterpolation = true
			return c
		}},
		{name: "oracle: measured curve input", mutate: func(c core.Config) core.Config {
			c.FeaturesFromMeasurements = true
			return c
		}, oracleCurve: true},
		{name: "basis mode", mutate: basis},
		{name: "basis, no clustering", mutate: func(c core.Config) core.Config {
			c = basis(c)
			c.Clusters = 1
			return c
		}},
		{name: "basis, single-task", mutate: func(c core.Config) core.Config {
			c = basis(c)
			c.SingleTask = true
			return c
		}},
		{name: "basis, amdahl-only", mutate: func(c core.Config) core.Config {
			c = basis(c)
			c.Basis = []scalefit.Term{{A: -1, B: 0}}
			return c
		}},
	}

	var reports []*Report
	for _, app := range paperApps() {
		s, err := NewSetup(app, p)
		if err != nil {
			return nil, err
		}
		cols := []string{"variant"}
		for _, sc := range p.LargeScales {
			cols = append(cols, fmt.Sprintf("p=%d", sc))
		}
		rep := &Report{
			ID:    "table4",
			Title: fmt.Sprintf("Ablations, %s (MAPE)", app.Name()),
			Cols:  cols,
			Notes: []string{
				"expected: oracle-curve input is the accuracy floor; log-target interpolation matters;",
				"clustering/multitask coupling matter most in basis mode, where the shared terms ARE the model",
			},
		}
		for _, v := range variants {
			cfg := v.mutate(s.CoreConfig())
			m, err := s.FitTwoLevel(p.Seed+47, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s / %s: %w", app.Name(), v.name, err)
			}
			row := []string{v.name}
			for li, sc := range p.LargeScales {
				idx := li
				var fn func(cfg dataset.Config, curve []float64) float64
				if v.oracleCurve {
					fn = func(_ dataset.Config, curve []float64) float64 {
						return m.PredictFromCurve(curve)[idx]
					}
				} else {
					fn = func(c dataset.Config, _ []float64) float64 {
						return m.Predict(c.Params)[idx]
					}
				}
				mape, _ := s.EvalAtScale(sc, fn)
				row = append(row, pct(mape))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
