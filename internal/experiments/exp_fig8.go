package experiments

import (
	"fmt"

	"repro/internal/hpcsim"
)

// runFig8 (beyond-paper extension) repeats the headline comparison on
// each machine preset: the method must hold up whether scaling curves are
// shaped by fat-node memory contention or by a slow interconnect — the
// platform knobs a reproduction on different hardware would vary.
func runFig8(p Protocol) ([]*Report, error) {
	scale := p.LargeScales[len(p.LargeScales)-1]
	machines := []string{"default", "fatnode", "slownet"}
	var reports []*Report
	for _, app := range paperApps() {
		rep := &Report{
			ID:    "fig8",
			Title: fmt.Sprintf("MAPE at p=%d per machine preset, %s", scale, app.Name()),
			Cols:  []string{"machine", "two-level", "two-level-basis", "direct-gbrt", "direct-lasso", "curve-fit"},
			Notes: []string{
				"expected: the two-level ordering holds on every machine; the slow network",
				"hurts every curve-based method because the up-turn moves below the observed scales",
			},
		}
		for _, mname := range machines {
			s, err := machineSetup(app, p, hpcsim.Machines()[mname])
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app.Name(), mname, err)
			}
			m, err := newMethods(s, p.Seed+149)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app.Name(), mname, err)
			}
			row := []string{mname}
			for _, method := range []string{"two-level", "two-level-basis", "direct-gbrt", "direct-lasso", "curve-fit"} {
				row = append(row, pct(m.mapeAt(method, scale)))
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// machineSetup is NewSetup on an explicit machine.
func machineSetup(app hpcsim.App, p Protocol, machine *hpcsim.Machine) (*Setup, error) {
	if machine == nil {
		return nil, fmt.Errorf("experiments: nil machine")
	}
	eng := hpcsim.NewEngine(machine, p.Seed)
	sp := app.Space()
	r := rngFor(p.Seed ^ 0x5eed)
	trainCfgs := sp.SampleLatinHypercube(r, p.NumConfigs)
	testCfgs := sp.SampleLatinHypercube(r, p.NumTest)
	train, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs, Scales: p.SmallScales, Reps: p.Reps})
	if err != nil {
		return nil, err
	}
	if p.NumAnchors > 0 {
		nAnchor := p.NumAnchors
		if nAnchor > p.NumConfigs {
			nAnchor = p.NumConfigs
		}
		anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs[:nAnchor], Scales: p.LargeScales, Reps: p.Reps})
		if err != nil {
			return nil, err
		}
		train.Merge(anchors)
	}
	allScales := append(append([]int{}, p.SmallScales...), p.LargeScales...)
	test, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: testCfgs, Scales: allScales, Reps: 1})
	if err != nil {
		return nil, err
	}
	return &Setup{App: app, Engine: eng, Protocol: p, Train: train, Test: test}, nil
}
