package core

import (
	"fmt"
	"math"
)

// Interval sources: how a band's width was derived.
const (
	// IntervalConformal marks a band from split-conformal calibration on
	// the pipeline's holdout slice — it carries a finite-sample coverage
	// guarantee under exchangeability.
	IntervalConformal = "conformal"
	// IntervalEnsemble marks a heuristic band from per-tree ensemble
	// spread — no coverage guarantee, used when no calibration exists or
	// the holdout is too small for the requested coverage.
	IntervalEnsemble = "ensemble"
)

// Interval is a prediction interval at one target scale.
type Interval struct {
	Scale int     `json:"scale"`
	Lo    float64 `json:"lo"`
	Mid   float64 `json:"mid"`
	Hi    float64 `json:"hi"`
	// Source is IntervalConformal or IntervalEnsemble; empty on intervals
	// built before source tracking (deserialized old responses).
	Source string `json:"source,omitempty"`
}

// NormalizeCoverage maps the public "interval" knob (serving request
// field, cmd/predict flag) to a coverage level in (0, 1). Values in
// (0, 0.5) are read as the legacy tail-quantile form q — the band
// [quantile q, quantile 1−q], i.e. coverage 1−2q — so pre-existing
// clients keep the bands they always got; values in [0.5, 1) are a
// coverage level directly.
func NormalizeCoverage(v float64) (float64, error) {
	if v <= 0 || v >= 1 {
		return 0, fmt.Errorf("core: interval %v outside (0, 1)", v)
	}
	if v < 0.5 {
		return 1 - 2*v, nil
	}
	return v, nil
}

// PredictInterval returns, per target scale, a heuristic uncertainty band
// derived from the interpolation level's tree-ensemble spread: the q and
// 1-q quantiles of per-tree predictions form pessimistic and optimistic
// small-scale curves, and each is pushed through the extrapolation level.
//
// The band reflects the interpolation level's epistemic uncertainty about
// the configuration (wide where the parameter space is sparsely covered);
// it does not account for extrapolation-level model error, so treat it as
// a lower bound on the true uncertainty. q must be in (0, 0.5).
func (m *TwoLevelModel) PredictInterval(params []float64, q float64) []Interval {
	if q <= 0 || q >= 0.5 {
		panic(fmt.Sprintf("core: interval quantile %v outside (0, 0.5)", q))
	}
	k := len(m.Cfg.SmallScales)
	loCurve := make([]float64, k)
	midCurve := make([]float64, k)
	hiCurve := make([]float64, k)
	qs := [2]float64{q, 1 - q}
	var band [2]float64
	var scratch []float64
	ci := m.compiled.Load()
	for i, f := range m.Interp {
		if scratch == nil {
			scratch = make([]float64, len(f.Trees))
		}
		var mid float64
		if ci != nil {
			// Compiled traversal; bit-identical to the pointer call below.
			mid = ci.forests[i].PredictQuantilesInto(params, qs[:], scratch, band[:])
		} else {
			mid = f.PredictQuantilesInto(params, qs[:], scratch, band[:])
		}
		lo, hi := band[0], band[1]
		if m.Cfg.LogInterpolation {
			lo, mid, hi = math.Exp(lo), math.Exp(mid), math.Exp(hi)
		}
		loCurve[i], midCurve[i], hiCurve[i] = lo, mid, hi
	}
	loPred := m.PredictFromCurve(loCurve)
	midPred := m.PredictFromCurve(midCurve)
	hiPred := m.PredictFromCurve(hiCurve)
	out := make([]Interval, len(m.Cfg.LargeScales))
	for i, s := range m.Cfg.LargeScales {
		lo, hi := loPred[i], hiPred[i]
		if lo > hi { // extrapolation can reorder the band; normalize
			lo, hi = hi, lo
		}
		mid := midPred[i]
		if mid < lo {
			mid = lo
		}
		if mid > hi {
			mid = hi
		}
		out[i] = Interval{Scale: s, Lo: lo, Mid: mid, Hi: hi, Source: IntervalEnsemble}
	}
	return out
}

// PredictIntervalCov returns, per target scale, an interval targeting the
// given coverage level in (0, 1). When the model carries a split-conformal
// calibration (pipeline-trained models do) and the holdout was large
// enough at a scale, the band is the calibrated multiplicative interval
// [mid/exp(q̂), mid·exp(q̂)] for the configuration's shape cluster — with
// the finite-sample guarantee conformal prediction provides. Scales the
// calibration cannot certify (and uncalibrated models entirely) fall back
// to the ensemble-spread band at matching tail mass, marked by Source.
func (m *TwoLevelModel) PredictIntervalCov(params []float64, coverage float64) []Interval {
	if coverage <= 0 || coverage >= 1 {
		panic(fmt.Sprintf("core: interval coverage %v outside (0, 1)", coverage))
	}
	var ens []Interval // ensemble fallback, computed at most once
	ensemble := func() []Interval {
		if ens == nil {
			ens = m.PredictInterval(params, (1-coverage)/2)
		}
		return ens
	}
	cal := m.Meta.Calibration
	if cal == nil {
		return ensemble()
	}
	cluster := m.AssignCluster(params)
	mid := m.Predict(params)
	out := make([]Interval, len(m.Cfg.LargeScales))
	for i, s := range m.Cfg.LargeScales {
		if f, ok := cal.Factor(cluster, s, coverage); ok {
			out[i] = Interval{Scale: s, Lo: mid[i] / f, Mid: mid[i], Hi: mid[i] * f, Source: IntervalConformal}
		} else {
			out[i] = ensemble()[i]
		}
	}
	return out
}

// Width returns the relative width (Hi-Lo)/Mid of the interval; 0 when
// the midpoint is zero.
func (iv Interval) Width() float64 {
	if iv.Mid == 0 {
		return 0
	}
	return (iv.Hi - iv.Lo) / iv.Mid
}
