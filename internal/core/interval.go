package core

import (
	"fmt"
	"math"
)

// Interval is a heuristic prediction interval at one target scale.
type Interval struct {
	Scale int     `json:"scale"`
	Lo    float64 `json:"lo"`
	Mid   float64 `json:"mid"`
	Hi    float64 `json:"hi"`
}

// PredictInterval returns, per target scale, a heuristic uncertainty band
// derived from the interpolation level's tree-ensemble spread: the q and
// 1-q quantiles of per-tree predictions form pessimistic and optimistic
// small-scale curves, and each is pushed through the extrapolation level.
//
// The band reflects the interpolation level's epistemic uncertainty about
// the configuration (wide where the parameter space is sparsely covered);
// it does not account for extrapolation-level model error, so treat it as
// a lower bound on the true uncertainty. q must be in (0, 0.5).
func (m *TwoLevelModel) PredictInterval(params []float64, q float64) []Interval {
	if q <= 0 || q >= 0.5 {
		panic(fmt.Sprintf("core: interval quantile %v outside (0, 0.5)", q))
	}
	k := len(m.Cfg.SmallScales)
	loCurve := make([]float64, k)
	midCurve := make([]float64, k)
	hiCurve := make([]float64, k)
	for i, f := range m.Interp {
		lo := f.PredictQuantile(params, q)
		mid := f.Predict(params)
		hi := f.PredictQuantile(params, 1-q)
		if m.Cfg.LogInterpolation {
			lo, mid, hi = math.Exp(lo), math.Exp(mid), math.Exp(hi)
		}
		loCurve[i], midCurve[i], hiCurve[i] = lo, mid, hi
	}
	loPred := m.PredictFromCurve(loCurve)
	midPred := m.PredictFromCurve(midCurve)
	hiPred := m.PredictFromCurve(hiCurve)
	out := make([]Interval, len(m.Cfg.LargeScales))
	for i, s := range m.Cfg.LargeScales {
		lo, hi := loPred[i], hiPred[i]
		if lo > hi { // extrapolation can reorder the band; normalize
			lo, hi = hi, lo
		}
		mid := midPred[i]
		if mid < lo {
			mid = lo
		}
		if mid > hi {
			mid = hi
		}
		out[i] = Interval{Scale: s, Lo: lo, Mid: mid, Hi: hi}
	}
	return out
}

// Width returns the relative width (Hi-Lo)/Mid of the interval; 0 when
// the midpoint is zero.
func (iv Interval) Width() float64 {
	//lint:allow floateq -- divide-by-zero guard on the exact degenerate midpoint
	if iv.Mid == 0 {
		return 0
	}
	return (iv.Hi - iv.Lo) / iv.Mid
}
