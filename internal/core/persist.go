package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// modelFileVersion guards against loading files written by incompatible
// releases.
const modelFileVersion = 1

// modelFile is the on-disk envelope.
type modelFile struct {
	Version int            `json:"version"`
	Model   *TwoLevelModel `json:"model"`
}

// Write serializes the model as JSON.
func (m *TwoLevelModel) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelFile{Version: modelFileVersion, Model: m})
}

// Read deserializes a model previously written with Write.
func Read(r io.Reader) (*TwoLevelModel, error) {
	var f modelFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if f.Version != modelFileVersion {
		return nil, fmt.Errorf("core: model file version %d, this build reads %d", f.Version, modelFileVersion)
	}
	if f.Model == nil {
		return nil, fmt.Errorf("core: model file has no model")
	}
	if err := f.Model.validateLoaded(); err != nil {
		return nil, err
	}
	return f.Model, nil
}

// Save writes the model to a file path.
func (m *TwoLevelModel) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a model from a file path.
func Load(path string) (*TwoLevelModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// validateLoaded sanity-checks structural invariants after deserialization
// so a corrupt file fails at load time, not at first prediction.
func (m *TwoLevelModel) validateLoaded() error {
	if len(m.Interp) != len(m.Cfg.SmallScales) {
		return fmt.Errorf("core: %d interpolation models for %d small scales", len(m.Interp), len(m.Cfg.SmallScales))
	}
	for i, f := range m.Interp {
		if f == nil || len(f.Trees) == 0 {
			return fmt.Errorf("core: interpolation model %d is empty", i)
		}
		if f.Features != len(m.ParamNames) {
			return fmt.Errorf("core: interpolation model %d expects %d features, model has %d params",
				i, f.Features, len(m.ParamNames))
		}
	}
	if len(m.ClusterModels) == 0 {
		return fmt.Errorf("core: no cluster models")
	}
	for i, cm := range m.ClusterModels {
		switch m.Cfg.Mode {
		case ModeAnchored:
			if cm.Multi == nil && len(cm.Single) == 0 {
				return fmt.Errorf("core: anchored cluster %d has no model", i)
			}
			if cm.Multi != nil && cm.Multi.Tasks != len(m.Cfg.LargeScales) {
				return fmt.Errorf("core: anchored cluster %d has %d tasks for %d large scales",
					i, cm.Multi.Tasks, len(m.Cfg.LargeScales))
			}
			if cm.Single != nil && len(cm.Single) != len(m.Cfg.LargeScales) {
				return fmt.Errorf("core: anchored cluster %d has %d single-task models for %d large scales",
					i, len(cm.Single), len(m.Cfg.LargeScales))
			}
		case ModeBasis:
			for _, j := range cm.Support {
				if j < 0 || j >= len(m.Cfg.Basis) {
					return fmt.Errorf("core: cluster %d support index %d outside basis of %d terms",
						i, j, len(m.Cfg.Basis))
				}
			}
			if !m.Cfg.SingleTask && cm.Support == nil {
				return fmt.Errorf("core: basis cluster %d has no support but model is not single-task", i)
			}
		default:
			return fmt.Errorf("core: loaded model has unresolved mode %q", m.Cfg.Mode)
		}
	}
	if m.Centroids != nil && m.Centroids.Rows != len(m.ClusterModels) {
		return fmt.Errorf("core: %d centroids for %d cluster models", m.Centroids.Rows, len(m.ClusterModels))
	}
	if m.Centroids == nil && len(m.ClusterModels) != 1 {
		return fmt.Errorf("core: multiple cluster models without centroids")
	}
	return nil
}
