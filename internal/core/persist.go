package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// modelFileVersion guards against loading files written by incompatible
// releases.
const modelFileVersion = 1

// modelFile is the on-disk envelope.
type modelFile struct {
	Version int            `json:"version"`
	Model   *TwoLevelModel `json:"model"`
}

// Write serializes the model as JSON.
func (m *TwoLevelModel) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelFile{Version: modelFileVersion, Model: m})
}

// Read deserializes a model previously written with Write.
func Read(r io.Reader) (*TwoLevelModel, error) {
	var f modelFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if f.Version != modelFileVersion {
		return nil, fmt.Errorf("core: model file version %d, this build reads %d", f.Version, modelFileVersion)
	}
	if f.Model == nil {
		return nil, fmt.Errorf("core: model file has no model")
	}
	if err := f.Model.validateLoaded(); err != nil {
		return nil, err
	}
	return f.Model, nil
}

// Save writes the model to a file path atomically: the JSON is written
// to a temporary file in the same directory, synced, and renamed over
// the destination, so a concurrent reader (e.g. a serving process
// hot-reloading on SIGHUP) can never observe a torn or partial file.
func (m *TwoLevelModel) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if err := m.Write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp uses 0600; match the permissions os.Create would give.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // the deferred cleanup no longer owns the file
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return err
	}
	return nil
}

// Load reads a model from a file path.
func Load(path string) (*TwoLevelModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// validateLoaded sanity-checks structural invariants after deserialization
// so a corrupt file fails at load time, not at first prediction.
func (m *TwoLevelModel) validateLoaded() error {
	if len(m.Interp) != len(m.Cfg.SmallScales) {
		return fmt.Errorf("core: %d interpolation models for %d small scales", len(m.Interp), len(m.Cfg.SmallScales))
	}
	for i, f := range m.Interp {
		if f == nil || len(f.Trees) == 0 {
			return fmt.Errorf("core: interpolation model %d is empty", i)
		}
		if f.Features != len(m.ParamNames) {
			return fmt.Errorf("core: interpolation model %d expects %d features, model has %d params",
				i, f.Features, len(m.ParamNames))
		}
	}
	if len(m.ClusterModels) == 0 {
		return fmt.Errorf("core: no cluster models")
	}
	for i, cm := range m.ClusterModels {
		switch m.Cfg.Mode {
		case ModeAnchored:
			if cm.Multi == nil && len(cm.Single) == 0 {
				return fmt.Errorf("core: anchored cluster %d has no model", i)
			}
			if cm.Multi != nil && cm.Multi.Tasks != len(m.Cfg.LargeScales) {
				return fmt.Errorf("core: anchored cluster %d has %d tasks for %d large scales",
					i, cm.Multi.Tasks, len(m.Cfg.LargeScales))
			}
			if cm.Single != nil && len(cm.Single) != len(m.Cfg.LargeScales) {
				return fmt.Errorf("core: anchored cluster %d has %d single-task models for %d large scales",
					i, len(cm.Single), len(m.Cfg.LargeScales))
			}
		case ModeBasis:
			for _, j := range cm.Support {
				if j < 0 || j >= len(m.Cfg.Basis) {
					return fmt.Errorf("core: cluster %d support index %d outside basis of %d terms",
						i, j, len(m.Cfg.Basis))
				}
			}
			if !m.Cfg.SingleTask && cm.Support == nil {
				return fmt.Errorf("core: basis cluster %d has no support but model is not single-task", i)
			}
		default:
			return fmt.Errorf("core: loaded model has unresolved mode %q", m.Cfg.Mode)
		}
	}
	if m.Centroids != nil && m.Centroids.Rows != len(m.ClusterModels) {
		return fmt.Errorf("core: %d centroids for %d cluster models", m.Centroids.Rows, len(m.ClusterModels))
	}
	if m.Centroids == nil && len(m.ClusterModels) != 1 {
		return fmt.Errorf("core: multiple cluster models without centroids")
	}
	if err := m.Meta.Calibration.Validate(); err != nil {
		return err
	}
	return nil
}
