package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestConcurrentPredictors asserts the invariant the serving layer
// (internal/serving) depends on: every prediction method of a fitted
// TwoLevelModel is a pure read, safe for unlimited parallel callers on
// one shared model. Run under -race this catches any scratch state that
// leaks into the model; the equality checks catch nondeterminism.
func TestConcurrentPredictors(t *testing.T) {
	cfg := smallCfg()
	cfg.Forest.Trees = 20
	train, test := simTables(t, 21, 40, 20, 4, cfg)
	m, err := Fit(rng.New(5), train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var params [][]float64
	for _, c := range test.GroupByConfig() {
		params = append(params, c.Params)
	}
	if len(params) == 0 {
		t.Fatal("no test configurations")
	}

	type baseline struct {
		pred    []float64
		small   []float64
		at      float64
		ivs     []Interval
		cluster int
	}
	base := make([]baseline, len(params))
	atScale := cfg.LargeScales[0]
	for i, p := range params {
		at, err := m.PredictAt(p, atScale)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = baseline{
			pred:    m.Predict(p),
			small:   m.PredictSmall(p),
			at:      at,
			ivs:     m.PredictInterval(p, 0.1),
			cluster: m.AssignCluster(p),
		}
	}

	const goroutines, iters = 8, 25
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(params)
				p := params[i]
				if got := m.Predict(p); !reflect.DeepEqual(got, base[i].pred) {
					t.Errorf("goroutine %d: Predict diverged: %v != %v", g, got, base[i].pred)
					return
				}
				if got := m.PredictSmall(p); !reflect.DeepEqual(got, base[i].small) {
					t.Errorf("goroutine %d: PredictSmall diverged", g)
					return
				}
				got, err := m.PredictAt(p, atScale)
				if err != nil {
					errCh <- err
					return
				}
				if got != base[i].at {
					t.Errorf("goroutine %d: PredictAt diverged: %v != %v", g, got, base[i].at)
					return
				}
				if got := m.PredictInterval(p, 0.1); !reflect.DeepEqual(got, base[i].ivs) {
					t.Errorf("goroutine %d: PredictInterval diverged", g)
					return
				}
				if got := m.AssignCluster(p); got != base[i].cluster {
					t.Errorf("goroutine %d: AssignCluster diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentPredictorsBasis repeats the race check on the basis
// backend, whose prediction path refits the curve per call.
func TestConcurrentPredictorsBasis(t *testing.T) {
	cfg := smallCfg()
	cfg.Forest.Trees = 15
	cfg.Mode = ModeBasis
	train, test := simTables(t, 22, 36, 0, 3, cfg)
	m, err := Fit(rng.New(6), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var params [][]float64
	for _, c := range test.GroupByConfig() {
		params = append(params, c.Params)
	}
	base := make([][]float64, len(params))
	for i, p := range params {
		base[i] = m.Predict(p)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 15; it++ {
				i := (g + it) % len(params)
				if got := m.Predict(params[i]); !reflect.DeepEqual(got, base[i]) {
					t.Errorf("goroutine %d: basis Predict diverged", g)
					return
				}
				if _, err := m.PredictAt(params[i], 2048); err != nil {
					t.Errorf("goroutine %d: PredictAt(2048): %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
