package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linmod"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/scalefit"
)

// fitBasis trains the basis extrapolation backend: per cluster, a
// multitask lasso whose tasks are the cluster's configurations and whose
// design matrix is the scalability basis evaluated at the small scales;
// its L2,1 penalty selects one shared set of basis terms per cluster.
// Needs no large-scale history at all.
func (m *TwoLevelModel) fitBasis(r *rng.Source, td trainData) error {
	cfg := m.Cfg
	n := len(td.params)
	k := len(cfg.SmallScales)

	curves := mat.NewDense(n, k)
	for i := range td.params {
		copy(curves.Row(i), m.extrapCurve(td, i))
	}
	labels, nClusters := m.clusterCurves(r, curves)

	phi := designMatrix(cfg.Basis, cfg.SmallScales)
	m.ClusterModels = make([]ClusterModel, nClusters)
	for c := 0; c < nClusters; c++ {
		var member []int
		for i, l := range labels {
			if l == c {
				member = append(member, i)
			}
		}
		if len(member) == 0 {
			return fmt.Errorf("core: internal error: empty cluster %d after merging", c)
		}
		cm := fitBasisCluster(phi, curves, member, cfg)
		m.ClusterModels[c] = cm
	}
	return nil
}

// designMatrix evaluates the basis at each scale: rows = scales, cols = terms.
func designMatrix(basis []scalefit.Term, scales []int) *mat.Dense {
	phi := mat.NewDense(len(scales), len(basis))
	for i, s := range scales {
		row := phi.Row(i)
		for j, t := range basis {
			row[j] = t.Eval(float64(s))
		}
	}
	return phi
}

// fitBasisCluster runs the multitask lasso over one cluster's curves
// (tasks = configurations, samples = small scales) and extracts the shared
// basis support. Curves are shape-normalized (divided by their first
// point) so selection is not dominated by long-running configurations.
func fitBasisCluster(phi *mat.Dense, curves *mat.Dense, member []int, cfg Config) ClusterModel {
	k := phi.Rows
	tasks := len(member)
	y := mat.NewDense(k, tasks)
	for t, idx := range member {
		row := curves.Row(idx)
		base := row[0]
		if base <= 0 {
			base = 1e-12
		}
		for si := 0; si < k; si++ {
			y.Set(si, t, row[si]/base)
		}
	}
	if cfg.SingleTask {
		// Ablation: no shared selection — nil Support marks "select per
		// curve at prediction time".
		return ClusterModel{Support: nil, Lambda: cfg.Lambda, Size: tasks}
	}

	lambda := cfg.Lambda
	if lambda <= 0 {
		lambda = selectBasisLambda(phi, y, cfg)
	}
	mt := linmod.MultiTaskLasso(phi, y, lambda, cfg.Lasso)
	support := mt.ActiveFeatures()
	if len(support) == 0 {
		support = []int{amdahlIndex(cfg.Basis)}
	}
	if len(support) > cfg.MaxTerms {
		support = topTermsByNorm(mt, support, cfg.MaxTerms)
	}
	sort.Ints(support)
	return ClusterModel{Support: support, Lambda: lambda, Size: tasks}
}

// selectBasisLambda picks the multitask-lasso strength by leave-the-
// largest-small-scale-out validation: fit on the first k-1 scales, score
// the relative error predicting the held-out largest scale across all
// tasks — the closest available proxy to the extrapolation the model
// will do.
func selectBasisLambda(phi, y *mat.Dense, cfg Config) float64 {
	k := phi.Rows
	phiTrain := gatherRows(phi, seq(k-1))
	yTrain := gatherRows(y, seq(k-1))
	top := linmod.MultiTaskLambdaMax(phiTrain, yTrain)
	if top <= 0 {
		top = 1e-6
	}
	bestLam, bestErr := top, math.Inf(1)
	heldout := phi.Row(k - 1)
	for g := 0; g < cfg.CVLambdas; g++ {
		f := float64(g) / float64(cfg.CVLambdas-1)
		lam := top * math.Pow(1e-3, f)
		mt := linmod.MultiTaskLasso(phiTrain, yTrain, lam, cfg.Lasso)
		var errSum float64
		for t := 0; t < y.Cols; t++ {
			pred := mt.PredictTask(heldout, t)
			truth := y.At(k-1, t)
			if truth == 0 {
				truth = 1e-12
			}
			rel := (pred - truth) / truth
			errSum += rel * rel
		}
		if errSum < bestErr {
			bestErr, bestLam = errSum, lam
		}
	}
	return bestLam
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// topTermsByNorm keeps the maxTerms support entries with the largest
// coefficient-row L2 norms.
func topTermsByNorm(mt *linmod.MultiTaskModel, support []int, maxTerms int) []int {
	type scored struct {
		idx  int
		norm float64
	}
	sc := make([]scored, len(support))
	for i, j := range support {
		sc[i] = scored{idx: j, norm: mat.Norm2(mt.Coef.Row(j))}
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].norm > sc[b].norm })
	out := make([]int, maxTerms)
	for i := 0; i < maxTerms; i++ {
		out[i] = sc[i].idx
	}
	return out
}

// amdahlIndex locates the 1/p term in the basis (index 0 if absent).
func amdahlIndex(basis []scalefit.Term) int {
	for i, t := range basis {
		if t.A == -1 && t.B == 0 {
			return i
		}
	}
	return 0
}

// predictBasisAt extrapolates a small-scale curve to one scale using
// cluster c's shared basis support: the curve's shape is refitted
// non-negatively on [1, selected terms] and the fit evaluated at scale.
func (m *TwoLevelModel) predictBasisAt(c int, curve []float64, scale int) float64 {
	if scale < 1 {
		panic(fmt.Sprintf("core: scale %d < 1", scale))
	}
	k := len(m.Cfg.SmallScales)
	base := curve[0]
	if base <= 0 {
		base = 1e-12
	}
	shape := make([]float64, k)
	for i, v := range curve {
		shape[i] = v / base
	}
	support := m.ClusterModels[c].Support
	if support == nil { // single-task ablation
		support = m.selectSupportForCurve(shape)
	}
	coef := fitRestricted(m.Cfg.Basis, m.Cfg.SmallScales, support, shape)
	pred := coef[0]
	for i, j := range support {
		pred += coef[i+1] * m.Cfg.Basis[j].Eval(float64(scale))
	}
	v := pred * base
	if floor := base * 1e-6; v < floor {
		// A scalability model extrapolating to ~zero is a fit artifact;
		// clamp to a vanishing fraction of the base runtime.
		v = floor
	}
	return v
}

// fitRestricted solves the NON-NEGATIVE least-squares fit of [1, basis
// terms in support] to the shape curve. Non-negativity encodes the
// physical decomposition — serial fraction, parallel work, communication
// growth all contribute cost, never negative cost — and keeps the fitted
// model from diverging when evaluated far beyond the small scales.
func fitRestricted(basis []scalefit.Term, scales, support []int, shape []float64) []float64 {
	k := len(scales)
	a := mat.NewDense(k, len(support)+1)
	for i, s := range scales {
		row := a.Row(i)
		row[0] = 1
		for jj, j := range support {
			row[jj+1] = basis[j].Eval(float64(s))
		}
	}
	return mat.NNLS(a, shape)
}

// selectSupportForCurve runs a per-curve lasso over the full basis (the
// single-task ablation's selection), using a fixed or quickly validated
// lambda.
func (m *TwoLevelModel) selectSupportForCurve(shape []float64) []int {
	phi := designMatrix(m.Cfg.Basis, m.Cfg.SmallScales)
	lambda := m.Cfg.Lambda
	if lambda <= 0 {
		k := phi.Rows
		phiTrain := gatherRows(phi, seq(k-1))
		top := linmod.LambdaMax(phiTrain, shape[:k-1])
		if top <= 0 {
			top = 1e-6
		}
		best, bestErr := top, math.Inf(1)
		for g := 0; g < m.Cfg.CVLambdas; g++ {
			f := float64(g) / float64(m.Cfg.CVLambdas-1)
			lam := top * math.Pow(1e-3, f)
			mdl := linmod.Lasso(phiTrain, shape[:k-1], lam, m.Cfg.Lasso)
			rel := (mdl.Predict(phi.Row(k-1)) - shape[k-1]) / shape[k-1]
			if e := rel * rel; e < bestErr {
				bestErr, best = e, lam
			}
		}
		lambda = best
	}
	mdl := linmod.Lasso(phi, shape, lambda, m.Cfg.Lasso)
	var support []int
	for j, c := range mdl.Coef {
		if c != 0 {
			support = append(support, j)
		}
	}
	if len(support) == 0 {
		support = []int{amdahlIndex(m.Cfg.Basis)}
	}
	if len(support) > m.Cfg.MaxTerms {
		sort.Slice(support, func(a, b int) bool {
			return math.Abs(mdl.Coef[support[a]]) > math.Abs(mdl.Coef[support[b]])
		})
		support = support[:m.Cfg.MaxTerms]
		sort.Ints(support)
	}
	return support
}

// SupportTerms renders a cluster's selected basis terms for reports
// (basis mode only; anchored clusters return nil).
func (m *TwoLevelModel) SupportTerms(c int) []string {
	cm := m.ClusterModels[c]
	if cm.Support == nil {
		return nil
	}
	out := make([]string, 0, len(cm.Support)+1)
	out = append(out, "1")
	for _, j := range cm.Support {
		out = append(out, m.Cfg.Basis[j].String())
	}
	return out
}
