package core

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// TestFitInterpParallelByteIdentical proves the parallel per-scale
// interpolation fit is invisible in the artifact: fitting the same data
// with the goroutine fan-out and with the sequential loop must produce
// byte-identical serialized models. The pre-split RNG streams (one per
// scale, drawn in scale order before any goroutine starts) are what
// makes this hold regardless of scheduling.
func TestFitInterpParallelByteIdentical(t *testing.T) {
	cfg := smallCfg()
	cfg.Forest.Trees = 12
	train, _ := simTables(t, 31, 30, 15, 1, cfg)

	fit := func() []byte {
		m, err := Fit(rng.New(11), train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	par := fit()
	interpFitParallel = false
	defer func() { interpFitParallel = true }()
	seq := fit()
	if !bytes.Equal(par, seq) {
		t.Fatalf("parallel fit artifact differs from sequential fit: %d vs %d bytes", len(par), len(seq))
	}
}

// TestCompiledModelPredictionsIdentical asserts every prediction surface
// of a compiled model is bit-identical to the pointer form: Compile must
// change latency only, never a single output bit.
func TestCompiledModelPredictionsIdentical(t *testing.T) {
	m, p := fitTiny(t)
	if m.Compiled() {
		t.Fatal("freshly fitted model reports compiled before Compile")
	}

	small := m.PredictSmall(p)
	pred := m.Predict(p)
	ivs := m.PredictInterval(p, 0.1)
	cov := m.PredictIntervalCov(p, 0.9)
	cl := m.AssignCluster(p)

	m.Compile()
	if !m.Compiled() {
		t.Fatal("model does not report compiled after Compile")
	}

	for i, v := range m.PredictSmall(p) {
		if v != small[i] {
			t.Fatalf("PredictSmall[%d]: compiled %v != pointer %v", i, v, small[i])
		}
	}
	for i, v := range m.Predict(p) {
		if v != pred[i] {
			t.Fatalf("Predict[%d]: compiled %v != pointer %v", i, v, pred[i])
		}
	}
	for i, iv := range m.PredictInterval(p, 0.1) {
		if iv != ivs[i] {
			t.Fatalf("PredictInterval[%d]: compiled %+v != pointer %+v", i, iv, ivs[i])
		}
	}
	for i, iv := range m.PredictIntervalCov(p, 0.9) {
		if iv != cov[i] {
			t.Fatalf("PredictIntervalCov[%d]: compiled %+v != pointer %+v", i, iv, cov[i])
		}
	}
	if got := m.AssignCluster(p); got != cl {
		t.Fatalf("AssignCluster: compiled %d != pointer %d", got, cl)
	}
}

// TestCompileSurvivesRoundtrip: the compiled form is derived state and
// must not leak into the artifact; a loaded model starts uncompiled and
// compiles to identical predictions.
func TestCompileSurvivesRoundtrip(t *testing.T) {
	m, p := fitTiny(t)
	m.Compile()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Compiled() {
		t.Fatal("loaded model reports compiled; compiled form must not serialize")
	}
	loaded.Compile()
	want, got := m.Predict(p), loaded.Predict(p)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction changed across save/load/compile: %v != %v", got, want)
		}
	}
}
