package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/linmod"
	"repro/internal/mat"
	"repro/internal/rng"
)

// TwoLevelModel is a fitted two-level performance model.
type TwoLevelModel struct {
	Cfg        Config
	ParamNames []string

	// Meta carries training provenance (pipeline generation, training-set
	// hash); see ModelMeta. Zero for models trained outside the pipeline.
	Meta ModelMeta `json:"meta"`

	// Interp holds one interpolation forest per small scale, aligned with
	// Cfg.SmallScales.
	Interp []*forest.Forest

	// Centroids are the k-means centroids over normalized predicted
	// small-scale curve shapes (k × len(SmallScales)); nil when the model
	// has a single cluster.
	Centroids *mat.Dense

	// ClusterModels holds one extrapolation model per cluster.
	ClusterModels []ClusterModel

	// TrainConfigs is the number of configurations with complete
	// small-scale curves; Anchors the subset that additionally had
	// complete large-scale curves. Informational.
	TrainConfigs int
	Anchors      int

	// compiled holds the flattened form of Interp built by Compile; nil
	// until compiled. Unexported (excluded from the JSON artifact) and
	// atomic so hot-path readers race-freely observe a Compile issued
	// after load. The pointer makes TwoLevelModel no-copy; all methods
	// already use pointer receivers.
	compiled atomic.Pointer[compiledInterp]
}

// ClusterModel is one cluster's extrapolation model. Exactly one backend's
// fields are populated, matching Cfg.Mode after resolution.
type ClusterModel struct {
	// Anchored backend: multitask lasso (tasks = large scales) or one
	// lasso per scale under the single-task ablation.
	Multi  *linmod.MultiTaskModel `json:"multi,omitempty"`
	Single []*linmod.Model        `json:"single,omitempty"`

	// Basis backend: indices of the selected scalability terms (into
	// Cfg.Basis); nil Support with Cfg.SingleTask means per-curve
	// selection at prediction time.
	Support []int `json:"support,omitempty"`

	Lambda float64 `json:"lambda"` // regularization actually used
	Size   int     `json:"size"`   // members at fit time
}

// trainData is the grouped view of the history Fit consumes.
type trainData struct {
	params [][]float64 // all usable configs
	small  [][]float64 // measured small-scale curves, aligned with params
	// anchorIdx lists indices into params of anchor configs; large is
	// aligned with anchorIdx.
	anchorIdx []int
	large     [][]float64
}

// Fit trains a two-level model from an execution-history table. Every
// usable training configuration must have runs at every small scale;
// configurations whose history additionally covers every large scale are
// anchors (required by ModeAnchored, ignored by ModeBasis). Repeated
// measurements are averaged.
func Fit(r *rng.Source, table *dataset.Table, cfg Config) (*TwoLevelModel, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if table.Len() == 0 {
		return nil, fmt.Errorf("core: empty training table")
	}

	td := trainData{}
	for _, c := range table.GroupByConfig() {
		curve, ok := c.Curve(cfg.SmallScales)
		if !ok {
			continue
		}
		td.params = append(td.params, c.Params)
		td.small = append(td.small, curve)
		if large, ok := c.Curve(cfg.LargeScales); ok {
			td.anchorIdx = append(td.anchorIdx, len(td.params)-1)
			td.large = append(td.large, large)
		}
	}
	if len(td.params) < 3 {
		return nil, fmt.Errorf("core: only %d configurations cover all small scales %v (need >= 3)",
			len(td.params), cfg.SmallScales)
	}

	// resolve the backend
	minAnchored := cfg.CVFolds
	if minAnchored < 4 {
		minAnchored = 4
	}
	switch cfg.Mode {
	case ModeAuto:
		if len(td.anchorIdx) >= cfg.MinAnchors {
			cfg.Mode = ModeAnchored
		} else {
			cfg.Mode = ModeBasis
		}
	case ModeAnchored:
		if len(td.anchorIdx) < minAnchored {
			return nil, fmt.Errorf("core: ModeAnchored needs >= %d anchor configurations with runs at all large scales %v, found %d",
				minAnchored, cfg.LargeScales, len(td.anchorIdx))
		}
	}

	m := &TwoLevelModel{
		Cfg:          cfg,
		ParamNames:   append([]string(nil), table.ParamNames...),
		TrainConfigs: len(td.params),
		Anchors:      len(td.anchorIdx),
	}

	// ---- level 1: per-scale interpolation forests ----
	if err := m.fitInterp(r, table); err != nil {
		return nil, err
	}

	// ---- level 2 ----
	if cfg.Mode == ModeAnchored {
		err = m.fitAnchored(r, td)
	} else {
		err = m.fitBasis(r, td)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// interpFitParallel gates the goroutine fan-out in fitInterp. It exists
// for TestFitInterpParallelByteIdentical, which flips it to prove the
// fan-out changes nothing about the fitted artifact.
var interpFitParallel = true

// fitInterp fits one interpolation forest per small scale, in parallel
// across scales. The RNG streams are split from r up front, one per
// scale in scale order — exactly the draw sequence of a sequential
// `r.Split()` per iteration, and forest.Fit never touches the parent r
// — so scheduling order cannot reach the fitted trees and the resulting
// model artifact is byte-identical to a sequential fit.
func (m *TwoLevelModel) fitInterp(r *rng.Source, table *dataset.Table) error {
	scales := m.Cfg.SmallScales
	m.Interp = make([]*forest.Forest, len(scales))
	srcs := make([]*rng.Source, len(scales))
	for i := range srcs {
		srcs[i] = r.Split()
	}
	errs := make([]error, len(scales))
	fitOne := func(si, s int) {
		sub := table.FilterScale(s)
		if sub.Len() == 0 {
			errs[si] = fmt.Errorf("core: no runs at small scale %d", s)
			return
		}
		x, y := sub.XY()
		if m.Cfg.LogInterpolation {
			y = logVec(y)
		}
		m.Interp[si] = forest.Fit(x, y, m.Cfg.Forest, srcs[si])
	}
	if interpFitParallel && len(scales) > 1 {
		var wg sync.WaitGroup
		for si, s := range scales {
			wg.Add(1)
			go func(si, s int) {
				defer wg.Done()
				fitOne(si, s)
			}(si, s)
		}
		wg.Wait()
	} else {
		for si, s := range scales {
			fitOne(si, s)
		}
	}
	// Report the first failing scale in scale order, independent of
	// goroutine scheduling.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// extrapCurve returns the extrapolation-level feature curve for training
// config i: the interpolation level's predictions (deployment-consistent)
// or the measured curve under the ablation.
func (m *TwoLevelModel) extrapCurve(td trainData, i int) []float64 {
	if m.Cfg.FeaturesFromMeasurements {
		return td.small[i]
	}
	return m.PredictSmall(td.params[i])
}

// clusterCurves runs shape k-means over the given curves, merges tiny
// clusters, stores centroids, and returns per-curve labels and the
// cluster count.
func (m *TwoLevelModel) clusterCurves(r *rng.Source, curves *mat.Dense) ([]int, int) {
	labels := make([]int, curves.Rows)
	k := m.Cfg.Clusters
	if k > curves.Rows/m.Cfg.MinClusterSize {
		k = curves.Rows / m.Cfg.MinClusterSize
	}
	if k < 1 {
		k = 1
	}
	if k == 1 {
		return labels, 1
	}
	shapes := cluster.NormalizeCurves(clampPositive(curves))
	res := cluster.KMeans(r.Split(), shapes, k, cluster.Options{})
	copy(labels, res.Labels)
	labels, res = mergeSmallClusters(labels, res, shapes, m.Cfg.MinClusterSize)
	m.Centroids = res.Centroids
	return labels, res.K()
}

// mergeSmallClusters reassigns members of clusters smaller than minSize to
// their nearest surviving centroid and compacts the result.
func mergeSmallClusters(labels []int, res *cluster.Result, shapes *mat.Dense, minSize int) ([]int, *cluster.Result) {
	sizes := make([]int, res.K())
	for _, l := range labels {
		sizes[l]++
	}
	keep := []int{}
	for c, n := range sizes {
		if n >= minSize {
			keep = append(keep, c)
		}
	}
	if len(keep) == res.K() {
		return labels, res
	}
	if len(keep) == 0 {
		// everything is tiny: collapse to a single cluster at the mean
		cent := mat.NewDense(1, shapes.Cols)
		for i := 0; i < shapes.Rows; i++ {
			mat.Axpy(1, shapes.Row(i), cent.Row(0))
		}
		mat.Scale(1/float64(shapes.Rows), cent.Row(0))
		for i := range labels {
			labels[i] = 0
		}
		return labels, &cluster.Result{Centroids: cent, Labels: labels}
	}
	cent := mat.NewDense(len(keep), shapes.Cols)
	remap := map[int]int{}
	for newID, oldID := range keep {
		copy(cent.Row(newID), res.Centroids.Row(oldID))
		remap[oldID] = newID
	}
	merged := &cluster.Result{Centroids: cent, Labels: labels}
	for i := range labels {
		if newID, ok := remap[labels[i]]; ok {
			labels[i] = newID
		} else {
			labels[i] = merged.Assign(shapes.Row(i))
		}
	}
	return labels, merged
}

// clampPositive returns a copy of x with non-positive entries clamped,
// so the log-shape normalization is defined.
func clampPositive(x *mat.Dense) *mat.Dense {
	out := x.Clone()
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 1e-12
		}
	}
	return out
}

// logVec returns the elementwise natural log of y, clamping non-positive
// values (runtimes are positive by construction).
func logVec(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		if v <= 0 {
			v = 1e-12
		}
		out[i] = math.Log(v)
	}
	return out
}

// gatherRows copies the selected rows of x into a new matrix.
func gatherRows(x *mat.Dense, idx []int) *mat.Dense {
	out := mat.NewDense(len(idx), x.Cols)
	for i, j := range idx {
		copy(out.Row(i), x.Row(j))
	}
	return out
}

// ---- prediction ----

// curveBufSize is the stack-buffer size for per-prediction scale curves.
// Scale lists in every experiment and deployment are a handful of
// entries; curves at most this long never touch the heap on the serving
// hot path.
const curveBufSize = 16

// PredictSmall returns the interpolation level's runtime predictions at
// every small scale for a configuration.
func (m *TwoLevelModel) PredictSmall(params []float64) []float64 {
	return m.PredictSmallInto(params, make([]float64, len(m.Interp)))
}

// PredictSmallInto writes the interpolation level's runtime predictions
// at every small scale into dst (length len(Cfg.SmallScales)) and
// returns it. The call performs no allocations.
func (m *TwoLevelModel) PredictSmallInto(params, dst []float64) []float64 {
	if len(dst) != len(m.Interp) {
		panic(fmt.Sprintf("core: PredictSmallInto dst has %d entries, model has %d small scales", len(dst), len(m.Interp)))
	}
	if ci := m.compiled.Load(); ci != nil {
		for i, f := range ci.forests {
			v := f.Predict(params)
			if m.Cfg.LogInterpolation {
				v = math.Exp(v)
			}
			dst[i] = v
		}
		return dst
	}
	for i, f := range m.Interp {
		v := f.Predict(params)
		if m.Cfg.LogInterpolation {
			v = math.Exp(v)
		}
		dst[i] = v
	}
	return dst
}

// Predict returns predicted runtimes at every target scale (aligned with
// Cfg.LargeScales) for a configuration never executed at any scale.
func (m *TwoLevelModel) Predict(params []float64) []float64 {
	return m.PredictInto(params, make([]float64, len(m.Cfg.LargeScales)))
}

// PredictInto is Predict writing into dst (length len(Cfg.LargeScales)).
// In ModeAnchored with scale lists of at most curveBufSize entries the
// call performs no allocations.
func (m *TwoLevelModel) PredictInto(params, dst []float64) []float64 {
	var buf [curveBufSize]float64
	curve := buf[:]
	if len(m.Interp) <= curveBufSize {
		curve = buf[:len(m.Interp)]
	} else {
		curve = make([]float64, len(m.Interp))
	}
	m.PredictSmallInto(params, curve)
	return m.PredictFromCurveInto(curve, dst)
}

// PredictFromCurve extrapolates from an explicit small-scale runtime
// curve (e.g. actual measurements, for the oracle-input ablation or for
// users who have already run the small scales) to every target scale.
func (m *TwoLevelModel) PredictFromCurve(curve []float64) []float64 {
	return m.PredictFromCurveInto(curve, make([]float64, len(m.Cfg.LargeScales)))
}

// PredictFromCurveInto is PredictFromCurve writing into dst (length
// len(Cfg.LargeScales)). ModeAnchored predictions are allocation-free;
// ModeBasis refits a small scalability model per call and allocates.
func (m *TwoLevelModel) PredictFromCurveInto(curve, dst []float64) []float64 {
	k := len(m.Cfg.SmallScales)
	if len(curve) != k {
		panic(fmt.Sprintf("core: curve has %d points, model expects %d", len(curve), k))
	}
	if len(dst) != len(m.Cfg.LargeScales) {
		panic(fmt.Sprintf("core: PredictFromCurveInto dst has %d entries, model has %d target scales", len(dst), len(m.Cfg.LargeScales)))
	}
	c := m.assign(curve)
	if m.Cfg.Mode == ModeAnchored {
		return m.predictAnchoredInto(c, curve, dst)
	}
	for i, s := range m.Cfg.LargeScales {
		dst[i] = m.predictBasisAt(c, curve, s)
	}
	return dst
}

// PredictAt predicts the runtime at one scale. In ModeAnchored the scale
// must be one of Cfg.LargeScales; ModeBasis accepts any scale >= 1.
func (m *TwoLevelModel) PredictAt(params []float64, scale int) (float64, error) {
	curve := m.PredictSmall(params)
	for i, s := range m.Cfg.LargeScales {
		if s == scale {
			return m.PredictFromCurve(curve)[i], nil
		}
	}
	if m.Cfg.Mode == ModeAnchored {
		return 0, fmt.Errorf("core: scale %d is not an anchored-model target %v", scale, m.Cfg.LargeScales)
	}
	if scale < 1 {
		return 0, fmt.Errorf("core: scale %d < 1", scale)
	}
	return m.predictBasisAt(m.assign(curve), curve, scale), nil
}

// AssignCluster returns the scaling-behaviour cluster a configuration's
// predicted curve falls into.
func (m *TwoLevelModel) AssignCluster(params []float64) int {
	return m.assign(m.PredictSmall(params))
}

func (m *TwoLevelModel) assign(curve []float64) int {
	if m.Centroids == nil || m.Centroids.Rows == 1 {
		return 0
	}
	// Clamp non-positive entries so shape normalization is defined, then
	// normalize in place — a stack buffer keeps the hot path
	// allocation-free for realistic curve lengths.
	var buf [curveBufSize]float64
	shape := buf[:]
	if len(curve) <= curveBufSize {
		shape = buf[:len(curve)]
	} else {
		shape = make([]float64, len(curve))
	}
	for i, v := range curve {
		if v <= 0 {
			v = 1e-12
		}
		shape[i] = v
	}
	cluster.NormalizeCurveInto(shape, shape)
	res := cluster.Result{Centroids: m.Centroids}
	return res.Assign(shape)
}

// Clusters returns the number of scaling-behaviour clusters in the model.
func (m *TwoLevelModel) Clusters() int { return len(m.ClusterModels) }

// Mode returns the resolved extrapolation backend.
func (m *TwoLevelModel) Mode() Mode { return m.Cfg.Mode }
