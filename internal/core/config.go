// Package core implements the paper's contribution: the two-level model
// for predicting large-scale HPC application performance from small-scale
// execution history.
//
// Level 1 (interpolation): one random-forest regressor per small scale
// maps application input parameters to runtime at that scale. This is a
// within-distribution problem, where the i.i.d. hypothesis holds and
// forests excel.
//
// Level 2 (extrapolation) clusters configurations by the *shape* of their
// predicted small-scale scaling curves and fits, per cluster, a
// scalability model. Two backends are provided, corresponding to the two
// defensible readings of the paper's abstract (see DESIGN.md):
//
//   - Anchored (primary): a multitask lasso whose tasks are the large
//     target scales, trained on the cluster's "anchor" configurations —
//     those whose history happens to include large-scale runs. Features
//     are the interpolation level's small-scale predictions, so the
//     extrapolation level is trained on exactly the input distribution it
//     sees at deployment; the L2,1 penalty couples the target scales so
//     they select the same stable subset of small scales, damping
//     interpolation noise. This converts one non-i.i.d. extrapolation
//     problem into two i.i.d. interpolation problems.
//
//   - Basis: when the history contains NO large-scale run at all, a
//     multitask lasso whose tasks are the cluster's configurations
//     selects, via the same L2,1 coupling, one shared set of analytic
//     scalability terms (p^a·log^b p); a new configuration's predicted
//     curve is refitted on those terms (non-negatively, so the model
//     cannot diverge) and evaluated at the target scale.
//
// Predicting a brand-new configuration never requires executing it:
// parameters → per-scale forests → predicted curve → cluster → backend.
package core

import (
	"fmt"

	"repro/internal/forest"
	"repro/internal/linmod"
	"repro/internal/scalefit"
)

// Mode selects the extrapolation-level backend.
type Mode string

// Extrapolation-level backends.
const (
	// ModeAuto uses ModeAnchored when the history has at least MinAnchors
	// anchor configurations, ModeBasis otherwise.
	ModeAuto Mode = ""
	// ModeAnchored trains the multitask lasso (tasks = large scales) on
	// anchor configurations.
	ModeAnchored Mode = "anchored"
	// ModeBasis fits cluster-shared scalability basis terms; needs no
	// large-scale history.
	ModeBasis Mode = "basis"
)

// Config controls the two-level model. Zero values select the defaults
// noted per field (see DefaultConfig).
type Config struct {
	// SmallScales are the scales with abundant history; every training
	// configuration must have runs at every small scale. Ascending.
	SmallScales []int
	// LargeScales are the prediction targets. Ascending, above SmallScales.
	// In ModeAnchored these are exactly the multitask lasso's tasks; in
	// ModeBasis they are the default targets (PredictScale accepts any).
	LargeScales []int

	// Mode selects the extrapolation backend (see Mode constants).
	Mode Mode
	// MinAnchors is the anchor count below which ModeAuto falls back to
	// ModeBasis.
	MinAnchors int

	// Clusters is the k for scaling-curve k-means; 1 disables clustering
	// (the paper's method uses a small k > 1, the ablation uses 1).
	Clusters int
	// MinClusterSize guards against clusters too small to fit a stable
	// model; clusters below it are merged into the nearest one.
	MinClusterSize int

	// Lambda is the multitask-lasso regularization strength; <= 0 selects
	// it per cluster (cross-validation over anchors in ModeAnchored,
	// leave-the-largest-small-scale-out in ModeBasis).
	Lambda float64
	// CVFolds configures the anchored-mode cross-validation.
	CVFolds int
	// CVLambdas is the size of the selection grid.
	CVLambdas int

	// LogTransform fits the anchored extrapolation level on log-runtimes
	// (features and targets), so the linear model captures products of
	// power laws. Default on; NoLogTransform disables.
	LogTransform   bool
	NoLogTransform bool

	// LogInterpolation trains the interpolation forests on log-runtimes
	// (predictions are exponentiated). Runtimes span orders of magnitude
	// across a parameter space, and a forest averaging raw values inside a
	// leaf is dominated by its largest member; averaging logs makes leaf
	// aggregation geometric and errors relative. Default on.
	LogInterpolation   bool
	NoLogInterpolation bool

	// Basis is the scalability hypothesis set for ModeBasis; empty selects
	// scalefit.ScalabilityBasis(). The constant term is implicit.
	Basis []scalefit.Term
	// MaxTerms caps selected basis terms per cluster in ModeBasis;
	// <= 0 selects len(SmallScales) - 2.
	MaxTerms int

	// SingleTask replaces the multitask lasso with independent lassos
	// (ablation: no cross-task coupling). In ModeAnchored that is one
	// lasso per large scale; in ModeBasis, per-configuration selection.
	SingleTask bool
	// FeaturesFromMeasurements fits the extrapolation level on measured
	// small-scale curves instead of interpolation-level predictions
	// (ablation: breaks train/deploy consistency).
	FeaturesFromMeasurements bool

	// Forest configures the per-scale interpolation forests.
	Forest forest.Params
	// Lasso configures the coordinate-descent solvers.
	Lasso linmod.Options
}

// DefaultConfig returns the configuration used in the paper-shaped
// experiments: small scales 2–64, targets 128–1024, k = 3 clusters,
// CV-selected lambda, auto backend.
func DefaultConfig() Config {
	return Config{
		SmallScales:    []int{2, 4, 8, 16, 32, 64},
		LargeScales:    []int{128, 256, 512, 1024},
		MinAnchors:     8,
		Clusters:       3,
		MinClusterSize: 8,
		CVFolds:        4,
		CVLambdas:      12,
		Forest:         forest.Defaults(),
	}
}

// normalize fills defaults and validates; returns an error a user can act on.
func (c Config) normalize() (Config, error) {
	d := DefaultConfig()
	if len(c.SmallScales) == 0 {
		c.SmallScales = d.SmallScales
	}
	if len(c.LargeScales) == 0 {
		c.LargeScales = d.LargeScales
	}
	switch c.Mode {
	case ModeAuto, ModeAnchored, ModeBasis:
	default:
		return c, fmt.Errorf("core: unknown mode %q", c.Mode)
	}
	if c.MinAnchors <= 0 {
		c.MinAnchors = d.MinAnchors
	}
	if c.Clusters <= 0 {
		c.Clusters = d.Clusters
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = d.MinClusterSize
	}
	if c.CVFolds <= 0 {
		c.CVFolds = d.CVFolds
	}
	if c.CVLambdas <= 0 {
		c.CVLambdas = d.CVLambdas
	}
	if len(c.Basis) == 0 {
		c.Basis = scalefit.ScalabilityBasis()
	}
	if c.MaxTerms <= 0 {
		c.MaxTerms = len(c.SmallScales) - 2
	}
	if c.MaxTerms > len(c.SmallScales)-1 {
		c.MaxTerms = len(c.SmallScales) - 1
	}
	c.LogTransform = !c.NoLogTransform
	c.LogInterpolation = !c.NoLogInterpolation
	if c.Forest.Trees <= 0 {
		c.Forest = d.Forest
	}
	for i := 1; i < len(c.SmallScales); i++ {
		if c.SmallScales[i] <= c.SmallScales[i-1] {
			return c, fmt.Errorf("core: SmallScales not strictly ascending: %v", c.SmallScales)
		}
	}
	if c.SmallScales[0] < 1 {
		return c, fmt.Errorf("core: SmallScales must be >= 1: %v", c.SmallScales)
	}
	for i := 1; i < len(c.LargeScales); i++ {
		if c.LargeScales[i] <= c.LargeScales[i-1] {
			return c, fmt.Errorf("core: LargeScales not strictly ascending: %v", c.LargeScales)
		}
	}
	if c.LargeScales[0] <= c.SmallScales[len(c.SmallScales)-1] {
		return c, fmt.Errorf("core: largest small scale %d not below smallest large scale %d",
			c.SmallScales[len(c.SmallScales)-1], c.LargeScales[0])
	}
	if len(c.SmallScales) < 4 {
		return c, fmt.Errorf("core: need at least four small scales, got %d", len(c.SmallScales))
	}
	return c, nil
}
