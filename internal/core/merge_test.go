package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mat"
	"repro/internal/rng"
)

func TestMergeSmallClustersKeepsLargeOnes(t *testing.T) {
	// two well-separated shape families, sizes 20 and 20: nothing merges
	shapes := mat.NewDense(40, 3)
	for i := 0; i < 20; i++ {
		copy(shapes.Row(i), []float64{0, -1, -2})
	}
	for i := 20; i < 40; i++ {
		copy(shapes.Row(i), []float64{0, 1, 2})
	}
	res := cluster.KMeans(rng.New(1), shapes, 2, cluster.Options{})
	labels := append([]int(nil), res.Labels...)
	labels2, merged := mergeSmallClusters(labels, res, shapes, 8)
	if merged.K() != 2 {
		t.Fatalf("merged to %d clusters", merged.K())
	}
	for i := range labels2 {
		if labels2[i] < 0 || labels2[i] >= 2 {
			t.Fatalf("label %d out of range", labels2[i])
		}
	}
}

func TestMergeSmallClustersReassignsTinyCluster(t *testing.T) {
	// 20 + 20 + 2 points: with minSize 8, the tiny cluster is absorbed
	shapes := mat.NewDense(42, 3)
	for i := 0; i < 20; i++ {
		copy(shapes.Row(i), []float64{0, -1, -2})
	}
	for i := 20; i < 40; i++ {
		copy(shapes.Row(i), []float64{0, 1, 2})
	}
	copy(shapes.Row(40), []float64{0, 10, 20})
	copy(shapes.Row(41), []float64{0, 10, 20})
	res := cluster.KMeans(rng.New(2), shapes, 3, cluster.Options{})
	labels := append([]int(nil), res.Labels...)
	labels2, merged := mergeSmallClusters(labels, res, shapes, 8)
	if merged.K() != 2 {
		t.Fatalf("merged to %d clusters, want 2", merged.K())
	}
	counts := map[int]int{}
	for _, l := range labels2 {
		counts[l]++
	}
	if len(counts) != 2 || counts[0]+counts[1] != 42 {
		t.Fatalf("label distribution %v", counts)
	}
}

func TestMergeSmallClustersCollapseAll(t *testing.T) {
	// every cluster below minSize: collapse to one mean centroid
	shapes := mat.NewDense(6, 2)
	for i := 0; i < 6; i++ {
		shapes.Set(i, 0, float64(i))
		shapes.Set(i, 1, float64(-i))
	}
	res := cluster.KMeans(rng.New(3), shapes, 3, cluster.Options{})
	labels := append([]int(nil), res.Labels...)
	labels2, merged := mergeSmallClusters(labels, res, shapes, 8)
	if merged.K() != 1 {
		t.Fatalf("collapse produced %d clusters", merged.K())
	}
	for _, l := range labels2 {
		if l != 0 {
			t.Fatal("collapse left non-zero label")
		}
	}
	// the single centroid is the mean of the shapes
	if merged.Centroids.At(0, 0) != 2.5 || merged.Centroids.At(0, 1) != -2.5 {
		t.Fatalf("collapsed centroid %v", merged.Centroids.Row(0))
	}
}
