package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/hpcsim"
	"repro/internal/rng"
	"repro/internal/scalefit"
	"repro/internal/stats"
)

// simTables builds a training table (small-scale runs for every config,
// large-scale runs for the first nAnchor configs) and a test table with
// both small and large scales for held-out configs.
func simTables(t *testing.T, seed uint64, nTrain, nAnchor, nTest int, cfg Config) (train, test *dataset.Table) {
	t.Helper()
	app := hpcsim.NewSMG()
	eng := hpcsim.NewEngine(nil, seed)
	r := rng.New(seed + 1)
	sp := app.Space()

	trainCfgs := sp.SampleLatinHypercube(r, nTrain)
	testCfgs := sp.SampleLatinHypercube(r, nTest)

	train, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs, Scales: cfg.SmallScales, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if nAnchor > 0 {
		anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs[:nAnchor], Scales: cfg.LargeScales, Reps: 1})
		if err != nil {
			t.Fatal(err)
		}
		train.Merge(anchors)
	}
	all := append(append([]int{}, cfg.SmallScales...), cfg.LargeScales...)
	test, err = eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: testCfgs, Scales: all, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func smallCfg() Config {
	c := DefaultConfig()
	c.SmallScales = []int{2, 4, 8, 16, 32, 64}
	c.LargeScales = []int{128, 256, 512}
	c.Forest.Trees = 40
	c.CVLambdas = 8
	return c
}

// evalMAPE computes per-large-scale MAPE of the model on a test table.
func evalMAPE(t *testing.T, m *TwoLevelModel, test *dataset.Table) map[int]float64 {
	t.Helper()
	out := map[int]float64{}
	for si, s := range m.Cfg.LargeScales {
		var yTrue, yPred []float64
		for _, c := range test.GroupByConfig() {
			rt, ok := c.Runtimes[s]
			if !ok {
				continue
			}
			yTrue = append(yTrue, rt)
			yPred = append(yPred, m.Predict(c.Params)[si])
		}
		if len(yTrue) == 0 {
			t.Fatalf("no test points at scale %d", s)
		}
		out[s] = stats.MAPE(yTrue, yPred)
	}
	return out
}

func TestAnchoredEndToEnd(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 1, 150, 30, 40, cfg)
	m, err := Fit(rng.New(7), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode() != ModeAnchored {
		t.Fatalf("auto mode resolved to %q with 30 anchors", m.Mode())
	}
	if m.TrainConfigs != 150 || m.Anchors != 30 {
		t.Fatalf("TrainConfigs=%d Anchors=%d", m.TrainConfigs, m.Anchors)
	}
	mape := evalMAPE(t, m, test)
	for s, e := range mape {
		if e > 0.30 {
			t.Fatalf("anchored MAPE at scale %d = %.3f, want <= 0.30 (all: %v)", s, e, mape)
		}
	}
}

func TestBasisEndToEnd(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 2, 150, 0, 40, cfg) // zero large-scale history
	m, err := Fit(rng.New(7), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode() != ModeBasis {
		t.Fatalf("auto mode resolved to %q without anchors", m.Mode())
	}
	// The basis backend has no large-scale information at all; it gets the
	// decaying part of the curve right but must guess the magnitude of the
	// communication up-turn beyond the observed scales, so its tail error
	// is substantially higher than the anchored backend's. Guard against
	// divergence, not against that documented weakness.
	mape := evalMAPE(t, m, test)
	for s, e := range mape {
		if math.IsNaN(e) || e > 1.5 {
			t.Fatalf("basis MAPE at scale %d = %.3f (all: %v)", s, e, mape)
		}
	}
}

func TestModeAutoPrefersAnchorsWhenAvailable(t *testing.T) {
	cfg := smallCfg()
	cfg.MinAnchors = 12
	train, _ := simTables(t, 3, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode() != ModeAnchored {
		t.Fatalf("mode = %q", m.Mode())
	}
	// below the threshold, auto falls back
	train2, _ := simTables(t, 3, 60, 5, 5, cfg)
	m2, err := Fit(rng.New(1), train2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Mode() != ModeBasis {
		t.Fatalf("mode = %q with 5 anchors and MinAnchors 12", m2.Mode())
	}
}

func TestExplicitAnchoredErrorsWithoutAnchors(t *testing.T) {
	cfg := smallCfg()
	cfg.Mode = ModeAnchored
	train, _ := simTables(t, 4, 40, 0, 5, cfg)
	if _, err := Fit(rng.New(1), train, cfg); err == nil {
		t.Fatal("anchored mode accepted history without anchors")
	}
}

func TestExplicitBasisIgnoresAnchors(t *testing.T) {
	cfg := smallCfg()
	cfg.Mode = ModeBasis
	train, _ := simTables(t, 5, 60, 30, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode() != ModeBasis {
		t.Fatalf("mode = %q", m.Mode())
	}
	for _, cm := range m.ClusterModels {
		if cm.Multi != nil || cm.Single != nil {
			t.Fatal("basis mode built anchored models")
		}
	}
}

func TestBeatsDirectForestAtScale(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 6, 150, 30, 40, cfg)
	m, err := Fit(rng.New(9), train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// direct baseline: forest over (params, scale) on the SAME history
	x, y := train.XYWithScale()
	fp := forest.Defaults()
	fp.Trees = 60
	direct := forest.Fit(x, y, fp, rng.New(9))

	sBig := cfg.LargeScales[len(cfg.LargeScales)-1]
	var yTrue, yTwo, yDirect []float64
	for _, c := range test.GroupByConfig() {
		rt, ok := c.Runtimes[sBig]
		if !ok {
			continue
		}
		yTrue = append(yTrue, rt)
		pred := m.Predict(c.Params)
		yTwo = append(yTwo, pred[len(pred)-1])
		yDirect = append(yDirect, direct.Predict(append(append([]float64{}, c.Params...), float64(sBig))))
	}
	mTwo := stats.MAPE(yTrue, yTwo)
	mDirect := stats.MAPE(yTrue, yDirect)
	if mTwo >= mDirect {
		t.Fatalf("two-level MAPE %.3f not better than direct forest %.3f at scale %d", mTwo, mDirect, sBig)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 7, 60, 20, 5, cfg)
	m1, err := Fit(rng.New(5), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(rng.New(5), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := test.GroupByConfig()[0].Params
	p1 := m1.Predict(probe)
	p2 := m2.Predict(probe)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("fit not deterministic for fixed seed")
		}
	}
}

func TestAblationsRun(t *testing.T) {
	base := smallCfg()
	train, test := simTables(t, 8, 100, 30, 20, base)

	variants := map[string]func(Config) Config{
		"no-clustering": func(c Config) Config { c.Clusters = 1; return c },
		"single-task":   func(c Config) Config { c.SingleTask = true; return c },
		"measured-features": func(c Config) Config {
			c.FeaturesFromMeasurements = true
			return c
		},
		"no-log-interp":    func(c Config) Config { c.NoLogInterpolation = true; return c },
		"no-log-transform": func(c Config) Config { c.NoLogTransform = true; return c },
		"fixed-lambda":     func(c Config) Config { c.Lambda = 0.01; return c },
		"basis-mode":       func(c Config) Config { c.Mode = ModeBasis; return c },
		"basis-single-task": func(c Config) Config {
			c.Mode = ModeBasis
			c.SingleTask = true
			return c
		},
		"basis-amdahl": func(c Config) Config {
			c.Mode = ModeBasis
			c.Basis = []scalefit.Term{{A: -1, B: 0}}
			return c
		},
	}
	for name, f := range variants {
		cfg := f(base)
		m, err := Fit(rng.New(11), train, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		limit := 3.0
		if name == "basis-amdahl" {
			// Amdahl's law systematically overestimates the tail (its
			// constant absorbs every non-1/p effect); the ablation exists
			// to show exactly that, so only guard against divergence.
			limit = 10.0
		}
		mape := evalMAPE(t, m, test)
		for s, e := range mape {
			if math.IsNaN(e) || e > limit {
				t.Fatalf("%s: MAPE at %d = %v", name, s, e)
			}
		}
	}
}

func TestNoClusteringHasSingleModel(t *testing.T) {
	cfg := smallCfg()
	cfg.Clusters = 1
	train, _ := simTables(t, 9, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Clusters() != 1 || m.Centroids != nil {
		t.Fatalf("expected single cluster model, got %d (centroids %v)", m.Clusters(), m.Centroids)
	}
}

func TestClusterSizesRespectMinimum(t *testing.T) {
	cfg := smallCfg()
	cfg.Clusters = 50 // absurd
	cfg.MinClusterSize = 8
	train, _ := simTables(t, 10, 60, 40, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Clusters() > 40/8 {
		t.Fatalf("clusters = %d with 40 anchors and min size 8", m.Clusters())
	}
	for _, cm := range m.ClusterModels {
		if cm.Size < cfg.MinClusterSize {
			t.Fatalf("cluster of size %d below minimum %d", cm.Size, cfg.MinClusterSize)
		}
	}
}

func TestBasisSupportProperties(t *testing.T) {
	cfg := smallCfg()
	cfg.Mode = ModeBasis
	train, _ := simTables(t, 11, 100, 0, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.Clusters(); c++ {
		cm := m.ClusterModels[c]
		if len(cm.Support) == 0 {
			t.Fatalf("cluster %d has empty support", c)
		}
		if len(cm.Support) > len(cfg.SmallScales)-1 {
			t.Fatalf("cluster %d support larger than fit points allow", c)
		}
		terms := m.SupportTerms(c)
		if len(terms) != len(cm.Support)+1 || terms[0] != "1" {
			t.Fatalf("SupportTerms = %v", terms)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SmallScales: []int{8, 4, 16, 32}, LargeScales: []int{128}},     // not ascending
		{SmallScales: []int{2, 4, 8, 16}, LargeScales: []int{256, 128}}, // descending large
		{SmallScales: []int{2, 4, 8, 64}, LargeScales: []int{32}},       // overlap
		{SmallScales: []int{4, 8}, LargeScales: []int{128}},             // too few small scales
		{SmallScales: []int{0, 2, 4, 8}, LargeScales: []int{128}},       // scale < 1
		{Mode: "bogus"}, // unknown mode
	}
	tbl := dataset.NewTable("x", []string{"a"})
	tbl.Add(dataset.Run{Params: []float64{1}, Scale: 4, Runtime: 1})
	for i, c := range bad {
		if _, err := Fit(rng.New(1), tbl, c); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
}

func TestFitErrorsOnInsufficientData(t *testing.T) {
	cfg := smallCfg()
	tbl := dataset.NewTable("x", []string{"a"})
	for i := 0; i < 10; i++ {
		tbl.Add(dataset.Run{Params: []float64{float64(i)}, Scale: 2, Runtime: 1})
	}
	if _, err := Fit(rng.New(1), tbl, cfg); err == nil {
		t.Fatal("fit succeeded without complete small-scale curves")
	}
	if _, err := Fit(rng.New(1), dataset.NewTable("x", []string{"a"}), cfg); err == nil {
		t.Fatal("fit succeeded on empty table")
	}
}

func TestPredictFromCurveOracle(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 12, 150, 30, 30, cfg)
	m, err := Fit(rng.New(3), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sBig := cfg.LargeScales[len(cfg.LargeScales)-1]
	var yTrue, yOracle []float64
	for _, c := range test.GroupByConfig() {
		rt, ok := c.Runtimes[sBig]
		if !ok {
			continue
		}
		curve, ok := c.Curve(cfg.SmallScales)
		if !ok {
			continue
		}
		yTrue = append(yTrue, rt)
		po := m.PredictFromCurve(curve)
		yOracle = append(yOracle, po[len(po)-1])
	}
	if mo := stats.MAPE(yTrue, yOracle); mo > 0.3 {
		t.Fatalf("oracle-curve MAPE = %.3f", mo)
	}
}

func TestPredictAt(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 13, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := test.GroupByConfig()[0].Params
	all := m.Predict(probe)
	for i, s := range cfg.LargeScales {
		v, err := m.PredictAt(probe, s)
		if err != nil {
			t.Fatal(err)
		}
		if v != all[i] {
			t.Fatalf("PredictAt(%d) = %v, Predict[%d] = %v", s, v, i, all[i])
		}
	}
	// anchored mode rejects non-target scales
	if _, err := m.PredictAt(probe, 777); err == nil {
		t.Fatal("anchored PredictAt accepted arbitrary scale")
	}
}

func TestBasisPredictAtArbitraryScale(t *testing.T) {
	cfg := smallCfg()
	cfg.Mode = ModeBasis
	train, test := simTables(t, 14, 80, 0, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := test.GroupByConfig()[0].Params
	v, err := m.PredictAt(probe, 777)
	if err != nil || v <= 0 {
		t.Fatalf("basis PredictAt(777) = %v, %v", v, err)
	}
	if _, err := m.PredictAt(probe, 0); err == nil {
		t.Fatal("accepted scale 0")
	}
}

func TestPredictionsPositiveAndFinite(t *testing.T) {
	for _, mode := range []Mode{ModeAnchored, ModeBasis} {
		cfg := smallCfg()
		cfg.Mode = mode
		nAnchor := 0
		if mode == ModeAnchored {
			nAnchor = 30
		}
		train, test := simTables(t, 15, 100, nAnchor, 30, cfg)
		m, err := Fit(rng.New(1), train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range test.GroupByConfig() {
			for _, v := range m.Predict(c.Params) {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: non-positive/non-finite prediction %v", mode, v)
				}
			}
		}
	}
}

func TestPredictFromCurvePanicsOnBadLength(t *testing.T) {
	cfg := smallCfg()
	train, _ := simTables(t, 16, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.PredictFromCurve([]float64{1, 2})
}

func TestAssignClusterInRange(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 17, 120, 40, 10, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range test.GroupByConfig() {
		cl := m.AssignCluster(c.Params)
		if cl < 0 || cl >= m.Clusters() {
			t.Fatalf("cluster %d out of range [0, %d)", cl, m.Clusters())
		}
	}
}

func TestSaveLoadRoundTripBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeAnchored, ModeBasis} {
		cfg := smallCfg()
		cfg.Mode = mode
		nAnchor := 0
		if mode == ModeAnchored {
			nAnchor = 20
		}
		train, test := simTables(t, 18, 60, nAnchor, 10, cfg)
		m, err := Fit(rng.New(1), train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		for _, c := range test.GroupByConfig() {
			p1 := m.Predict(c.Params)
			p2 := got.Predict(c.Params)
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("%s: loaded model predicts differently", mode)
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	cfg := smallCfg()
	train, _ := simTables(t, 19, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99, "model": null}`,
		`{"version": 1, "model": null}`,
		`{"version": 1, "model": {"Cfg": {"SmallScales": [2,4,8,16]}, "Interp": []}}`,
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestAnchoredBeatsBasisWhenAnchorsExist(t *testing.T) {
	// the anchored backend has strictly more information; it should win
	cfg := smallCfg()
	train, test := simTables(t, 20, 150, 40, 40, cfg)

	ca := cfg
	ca.Mode = ModeAnchored
	ma, err := Fit(rng.New(2), train, ca)
	if err != nil {
		t.Fatal(err)
	}
	cb := cfg
	cb.Mode = ModeBasis
	mb, err := Fit(rng.New(2), train, cb)
	if err != nil {
		t.Fatal(err)
	}
	sBig := cfg.LargeScales[len(cfg.LargeScales)-1]
	ea := evalMAPE(t, ma, test)[sBig]
	eb := evalMAPE(t, mb, test)[sBig]
	if ea > eb {
		t.Fatalf("anchored (%.3f) worse than basis (%.3f) despite anchors", ea, eb)
	}
}
