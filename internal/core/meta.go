package core

import "repro/internal/uncertainty"

// ModelMeta records the provenance a continuous-training pipeline needs
// to reason about a saved model: which application's history it was
// fitted on, which pipeline generation produced it, and a content hash
// of the exact training set. The fields are informational — prediction
// never reads them — but they round-trip through Write/Read so a model
// file is self-describing and the serving layer can expose them.
//
// Generation 0 (the zero value) marks a model trained outside the
// pipeline, e.g. by cmd/train.
type ModelMeta struct {
	// App is the application whose history trained the model.
	App string `json:"app,omitempty"`
	// Generation is the pipeline's monotonic generation counter at
	// training time; 0 for models trained outside the pipeline.
	Generation int `json:"generation,omitempty"`
	// TrainHash is a SHA-256 over the canonical CSV serialization of the
	// training table, so two models can be compared for "same data".
	TrainHash string `json:"train_hash,omitempty"`
	// Calibration is the split-conformal calibration computed on the
	// pipeline's holdout slice for this generation, or nil when the model
	// was trained without one (cmd/train, or an empty holdout). Persisting
	// it here means intervals and the model that produced them hot-swap
	// as one atomic unit.
	Calibration *uncertainty.Calibration `json:"calibration,omitempty"`
}
