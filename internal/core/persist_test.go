package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

// fitTiny returns a quick model, plus one in-space configuration, for
// persistence tests.
func fitTiny(t *testing.T) (*TwoLevelModel, []float64) {
	t.Helper()
	cfg := smallCfg()
	cfg.Forest.Trees = 10
	train, test := simTables(t, 31, 30, 15, 1, cfg)
	m, err := Fit(rng.New(7), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, test.GroupByConfig()[0].Params
}

func TestSaveLoadRoundtrip(t *testing.T) {
	m, p := fitTiny(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want, got := m.Predict(p), loaded.Predict(p)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction changed across save/load: %v != %v", got, want)
		}
	}
}

// TestSaveAtomicLeavesNoTempFiles asserts Save's temp-file-plus-rename
// protocol cleans up after itself: after overwriting an existing model
// twice, the directory holds exactly the destination file.
func TestSaveAtomicLeavesNoTempFiles(t *testing.T) {
	m, _ := fitTiny(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	for i := 0; i < 2; i++ {
		if err := m.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.json" {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after Save holds %v, want only model.json", names)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("saved model has mode %v, want 0644", fi.Mode().Perm())
	}
}

// TestSaveFailurePreservesExisting asserts a failing Save (unwritable
// directory) does not destroy an existing good file at the destination.
func TestSaveFailurePreservesExisting(t *testing.T) {
	m, _ := fitTiny(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Geteuid() == 0 {
		t.Skip("running as root; read-only directory does not fail writes")
	}
	if err := m.Save(path); err == nil {
		t.Fatal("Save into read-only directory succeeded unexpectedly")
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("existing model corrupted by failed Save: %v", err)
	}
}

// TestMetaRoundtrip asserts training provenance survives save/load, so
// the pipeline and the serving layer agree on a file's generation.
func TestMetaRoundtrip(t *testing.T) {
	m, _ := fitTiny(t)
	m.Meta = ModelMeta{App: "smg2000", Generation: 7, TrainHash: "abc123"}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Meta != m.Meta {
		t.Fatalf("Meta round-trip: got %+v, want %+v", loaded.Meta, m.Meta)
	}
}

func TestSaveIntoMissingDirFails(t *testing.T) {
	m, _ := fitTiny(t)
	if err := m.Save(filepath.Join(t.TempDir(), "nope", "model.json")); err == nil {
		t.Fatal("Save into missing directory succeeded unexpectedly")
	}
}
