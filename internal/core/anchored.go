package core

import (
	"fmt"
	"math"

	"repro/internal/linmod"
	"repro/internal/mat"
	"repro/internal/rng"
)

// fitAnchored trains the anchored extrapolation backend: per cluster, a
// multitask lasso mapping (log) small-scale prediction vectors to (log)
// large-scale runtimes, tasks = target scales, training rows = anchor
// configurations assigned to the cluster.
func (m *TwoLevelModel) fitAnchored(r *rng.Source, td trainData) error {
	cfg := m.Cfg
	nA := len(td.anchorIdx)
	k := len(cfg.SmallScales)

	feat := mat.NewDense(nA, k)
	for a, i := range td.anchorIdx {
		copy(feat.Row(a), m.extrapCurve(td, i))
	}
	targets := mat.NewDense(nA, len(cfg.LargeScales))
	for a := range td.anchorIdx {
		copy(targets.Row(a), td.large[a])
	}

	labels, nClusters := m.clusterCurves(r, feat)

	m.ClusterModels = make([]ClusterModel, nClusters)
	for c := 0; c < nClusters; c++ {
		var idx []int
		for i, l := range labels {
			if l == c {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			return fmt.Errorf("core: internal error: empty cluster %d after merging", c)
		}
		fx := gatherRows(feat, idx)
		fy := gatherRows(targets, idx)
		if cfg.LogTransform {
			logInPlace(fx)
			logInPlace(fy)
		}
		cm, err := fitAnchoredCluster(r, fx, fy, cfg)
		if err != nil {
			return fmt.Errorf("core: cluster %d: %w", c, err)
		}
		cm.Size = len(idx)
		m.ClusterModels[c] = cm
	}
	return nil
}

// fitAnchoredCluster fits one cluster's (already transformed) features
// and targets.
func fitAnchoredCluster(r *rng.Source, fx, fy *mat.Dense, cfg Config) (ClusterModel, error) {
	folds := cfg.CVFolds
	if folds > fx.Rows {
		folds = fx.Rows
	}
	if cfg.SingleTask {
		models := make([]*linmod.Model, fy.Cols)
		var lam float64
		for t := 0; t < fy.Cols; t++ {
			y := fy.Col(t)
			if cfg.Lambda > 0 {
				models[t] = linmod.Lasso(fx, y, cfg.Lambda, cfg.Lasso)
				lam = cfg.Lambda
			} else {
				mdl, l := linmod.CVLasso(r.Split(), fx, y, folds, cfg.CVLambdas, cfg.Lasso)
				models[t] = mdl
				lam = l
			}
		}
		return ClusterModel{Single: models, Lambda: lam}, nil
	}
	if cfg.Lambda > 0 {
		return ClusterModel{
			Multi:  linmod.MultiTaskLasso(fx, fy, cfg.Lambda, cfg.Lasso),
			Lambda: cfg.Lambda,
		}, nil
	}
	mdl, lam := linmod.CVMultiTaskLasso(r.Split(), fx, fy, folds, cfg.CVLambdas, cfg.Lasso)
	return ClusterModel{Multi: mdl, Lambda: lam}, nil
}

// predictAnchored evaluates cluster c's anchored model on a small-scale
// curve, returning runtimes at every target scale.
func (m *TwoLevelModel) predictAnchoredInto(c int, curve, dst []float64) []float64 {
	features := curve
	if m.Cfg.LogTransform {
		var buf [curveBufSize]float64
		f := buf[:]
		if len(curve) <= curveBufSize {
			f = buf[:len(curve)]
		} else {
			f = make([]float64, len(curve))
		}
		for i, v := range curve {
			if v <= 0 {
				v = 1e-12
			}
			f[i] = math.Log(v)
		}
		features = f
	}
	cm := &m.ClusterModels[c]
	if cm.Multi != nil {
		cm.Multi.PredictInto(features, dst)
	} else {
		for i, mdl := range cm.Single {
			dst[i] = mdl.Predict(features)
		}
	}
	if m.Cfg.LogTransform {
		for i, v := range dst {
			dst[i] = math.Exp(v)
		}
	}
	return dst
}

// logInPlace replaces every entry of x with its natural log, clamping
// non-positive values.
func logInPlace(x *mat.Dense) {
	for i, v := range x.Data {
		if v <= 0 {
			v = 1e-12
		}
		x.Data[i] = math.Log(v)
	}
}
