package core

import (
	"repro/internal/treec"
)

// compiledInterp is the flattened (struct-of-arrays) form of every
// interpolation forest, aligned with TwoLevelModel.Interp. It is built
// once by Compile and immutable afterwards, so any number of goroutines
// may predict through it concurrently.
type compiledInterp struct {
	forests []*treec.Forest
}

// Compile flattens the model's interpolation forests into the treec
// struct-of-arrays layout so the serving hot paths (PredictSmallInto,
// PredictInterval, and everything built on them) traverse contiguous
// node tables instead of chasing per-node heap pointers. Predictions
// are bit-identical to the pointer form. Compile is idempotent and safe
// to call concurrently with predictions; the pipeline compiles at
// promotion and the serving registry compiles on load/hot-swap, so
// served models always run compiled.
func (m *TwoLevelModel) Compile() {
	ci := &compiledInterp{forests: make([]*treec.Forest, len(m.Interp))}
	for i, f := range m.Interp {
		ci.forests[i] = treec.CompileForest(f)
	}
	m.compiled.Store(ci)
}

// Compiled reports whether the model currently carries a compiled
// interpolation form (see Compile).
func (m *TwoLevelModel) Compiled() bool { return m.compiled.Load() != nil }

// Clone returns a shallow copy sharing all fitted state (forests,
// centroids, cluster models) and the current compiled form.
// TwoLevelModel is a no-copy type — the compiled pointer is atomic —
// so callers that want an independent Meta (e.g. to attach a different
// calibration) clone instead of copying the struct.
func (m *TwoLevelModel) Clone() *TwoLevelModel {
	c := &TwoLevelModel{
		Cfg:           m.Cfg,
		ParamNames:    m.ParamNames,
		Meta:          m.Meta,
		Interp:        m.Interp,
		Centroids:     m.Centroids,
		ClusterModels: m.ClusterModels,
		TrainConfigs:  m.TrainConfigs,
		Anchors:       m.Anchors,
	}
	c.compiled.Store(m.compiled.Load())
	return c
}
