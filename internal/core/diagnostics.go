package core

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Diagnostics summarizes a fitted model's internals: what the
// interpolation level thinks of its own fit (OOB error per scale), how
// the configurations clustered, and what each cluster's extrapolation
// model looks like. Intended for humans deciding whether to trust a model
// before acting on its predictions.
type Diagnostics struct {
	Mode         Mode
	TrainConfigs int
	Anchors      int

	// PerScale holds interpolation-level diagnostics per small scale.
	PerScale []ScaleDiag
	// PerCluster holds extrapolation-level diagnostics per cluster.
	PerCluster []ClusterDiag
}

// ScaleDiag is the interpolation level's self-assessment at one scale.
type ScaleDiag struct {
	Scale int
	// OOBRelErr is sqrt(OOB MSE) of the forest divided by the mean
	// (log-space when LogInterpolation, where it approximates relative
	// error directly).
	OOBRelErr float64
	Trees     int
}

// ClusterDiag describes one scaling-behaviour cluster.
type ClusterDiag struct {
	Cluster int
	Size    int
	Lambda  float64
	// Terms renders the scalability terms (basis mode) or the active
	// small-scale features (anchored mode).
	Terms []string
}

// Diagnose computes diagnostics against the model's training table (the
// same one passed to Fit; the forests' OOB bookkeeping refers to it).
func (m *TwoLevelModel) Diagnose(table *dataset.Table) Diagnostics {
	d := Diagnostics{
		Mode:         m.Cfg.Mode,
		TrainConfigs: m.TrainConfigs,
		Anchors:      m.Anchors,
	}
	for si, s := range m.Cfg.SmallScales {
		sub := table.FilterScale(s)
		x, y := sub.XY()
		if m.Cfg.LogInterpolation {
			y = logVec(y)
		}
		var rel float64 = math.NaN()
		if x.Rows > 0 {
			mse := m.Interp[si].OOBError(x, y)
			if !math.IsNaN(mse) {
				if m.Cfg.LogInterpolation {
					// sigma of log-residuals ~ relative error
					rel = math.Sqrt(mse)
				} else if mean := stats.Mean(y); mean != 0 {
					rel = math.Sqrt(mse) / math.Abs(mean)
				}
			}
		}
		d.PerScale = append(d.PerScale, ScaleDiag{
			Scale:     s,
			OOBRelErr: rel,
			Trees:     len(m.Interp[si].Trees),
		})
	}
	for c := range m.ClusterModels {
		cm := m.ClusterModels[c]
		cd := ClusterDiag{Cluster: c, Size: cm.Size, Lambda: cm.Lambda}
		if m.Cfg.Mode == ModeBasis {
			cd.Terms = m.SupportTerms(c)
		} else {
			cd.Terms = m.anchoredActiveScales(c)
		}
		d.PerCluster = append(d.PerCluster, cd)
	}
	return d
}

// anchoredActiveScales lists the small scales with non-zero coefficients
// in cluster c's anchored model (union over tasks for the single-task
// ablation).
func (m *TwoLevelModel) anchoredActiveScales(c int) []string {
	cm := m.ClusterModels[c]
	active := map[int]bool{}
	if cm.Multi != nil {
		for _, j := range cm.Multi.ActiveFeatures() {
			active[j] = true
		}
	}
	for _, mdl := range cm.Single {
		for j, v := range mdl.Coef {
			if v != 0 {
				active[j] = true
			}
		}
	}
	idx := make([]int, 0, len(active))
	for j := range active {
		idx = append(idx, j)
	}
	sort.Ints(idx)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = fmt.Sprintf("T(p=%d)", m.Cfg.SmallScales[j])
	}
	return out
}

// Fprint renders the diagnostics as a human-readable report.
func (d Diagnostics) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "two-level model (%s mode): %d configurations, %d anchors\n",
		d.Mode, d.TrainConfigs, d.Anchors); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "interpolation level (per-scale forests):"); err != nil {
		return err
	}
	for _, s := range d.PerScale {
		if _, err := fmt.Fprintf(w, "  p=%-6d %3d trees, OOB relative error ~%.1f%%\n",
			s.Scale, s.Trees, 100*s.OOBRelErr); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "extrapolation level (per-cluster models):"); err != nil {
		return err
	}
	for _, c := range d.PerCluster {
		if _, err := fmt.Fprintf(w, "  cluster %d: %3d members, lambda %.4g, terms %v\n",
			c.Cluster, c.Size, c.Lambda, c.Terms); err != nil {
			return err
		}
	}
	return nil
}
