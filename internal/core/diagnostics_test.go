package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestDiagnoseAnchored(t *testing.T) {
	cfg := smallCfg()
	train, _ := simTables(t, 30, 80, 25, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Diagnose(train)
	if d.Mode != ModeAnchored {
		t.Fatalf("mode %q", d.Mode)
	}
	if len(d.PerScale) != len(cfg.SmallScales) {
		t.Fatalf("%d scale diags", len(d.PerScale))
	}
	for _, s := range d.PerScale {
		if math.IsNaN(s.OOBRelErr) || s.OOBRelErr <= 0 || s.OOBRelErr > 1 {
			t.Fatalf("scale %d OOB rel err = %v", s.Scale, s.OOBRelErr)
		}
		if s.Trees != cfg.Forest.Trees {
			t.Fatalf("scale %d has %d trees", s.Scale, s.Trees)
		}
	}
	if len(d.PerCluster) != m.Clusters() {
		t.Fatalf("%d cluster diags for %d clusters", len(d.PerCluster), m.Clusters())
	}
	for _, c := range d.PerCluster {
		if c.Size <= 0 || len(c.Terms) == 0 {
			t.Fatalf("cluster diag %+v", c)
		}
		for _, term := range c.Terms {
			if !strings.HasPrefix(term, "T(p=") {
				t.Fatalf("anchored term %q", term)
			}
		}
	}
}

func TestDiagnoseBasis(t *testing.T) {
	cfg := smallCfg()
	cfg.Mode = ModeBasis
	train, _ := simTables(t, 31, 80, 0, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Diagnose(train)
	for _, c := range d.PerCluster {
		if len(c.Terms) == 0 || c.Terms[0] != "1" {
			t.Fatalf("basis cluster terms %v", c.Terms)
		}
	}
}

func TestDiagnosticsRender(t *testing.T) {
	cfg := smallCfg()
	train, _ := simTables(t, 32, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Diagnose(train).Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"anchored mode", "interpolation level", "extrapolation level", "cluster 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
