package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/uncertainty"
)

func TestPredictIntervalOrderingAndCoverage(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 40, 120, 30, 30, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	covered, total := 0, 0
	for _, c := range test.GroupByConfig() {
		ivs := m.PredictInterval(c.Params, 0.1)
		if len(ivs) != len(cfg.LargeScales) {
			t.Fatalf("%d intervals", len(ivs))
		}
		for _, iv := range ivs {
			if !(iv.Lo <= iv.Mid && iv.Mid <= iv.Hi) {
				t.Fatalf("interval not ordered: %+v", iv)
			}
			if iv.Lo <= 0 {
				t.Fatalf("non-positive interval bound: %+v", iv)
			}
			if iv.Width() < 0 {
				t.Fatalf("negative width: %+v", iv)
			}
			truth, ok := c.Runtimes[iv.Scale]
			if !ok {
				continue
			}
			total++
			// generous band: within the interval stretched by 2x on each side
			span := iv.Hi - iv.Lo
			if truth >= iv.Lo-span && truth <= iv.Hi+span {
				covered++
			}
		}
	}
	// the band is heuristic; require it to be at least loosely calibrated
	if frac := float64(covered) / float64(total); frac < 0.5 {
		t.Fatalf("stretched-interval coverage %.2f too low", frac)
	}
}

func TestPredictIntervalMidMatchesPredict(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 41, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := test.GroupByConfig()[0].Params
	ivs := m.PredictInterval(probe, 0.2)
	pred := m.Predict(probe)
	for i, iv := range ivs {
		// Mid is the point prediction clamped into the band
		if iv.Mid != pred[i] && (pred[i] >= iv.Lo && pred[i] <= iv.Hi) {
			t.Fatalf("mid %v != prediction %v despite being inside band", iv.Mid, pred[i])
		}
	}
}

func TestPredictIntervalQuantilePanics(t *testing.T) {
	cfg := smallCfg()
	train, _ := simTables(t, 42, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.5, -0.1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("q=%v did not panic", q)
				}
			}()
			m.PredictInterval([]float64{64, 64, 64, 6}, q)
		}()
	}
}

func TestNarrowerQuantileWidensInterval(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 43, 80, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := test.GroupByConfig()[0].Params
	tight := m.PredictInterval(probe, 0.25)
	wide := m.PredictInterval(probe, 0.05)
	for i := range tight {
		if wide[i].Hi-wide[i].Lo < tight[i].Hi-tight[i].Lo-1e-12 {
			t.Fatalf("q=0.05 band narrower than q=0.25 at scale %d", tight[i].Scale)
		}
	}
}

func TestNormalizeCoverage(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0.1, 0.8},  // legacy tail quantile
		{0.05, 0.9}, // legacy tail quantile
		{0.5, 0.5},  // coverage directly
		{0.9, 0.9},
		{0.8, 0.8},
	}
	for _, c := range cases {
		got, err := NormalizeCoverage(c.in)
		if err != nil {
			t.Fatalf("NormalizeCoverage(%v): %v", c.in, err)
		}
		if diff := got - c.want; diff > 1e-15 || diff < -1e-15 {
			t.Fatalf("NormalizeCoverage(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []float64{0, 1, -0.2, 1.5} {
		if _, err := NormalizeCoverage(bad); err == nil {
			t.Fatalf("NormalizeCoverage(%v) accepted", bad)
		}
	}
}

func TestPredictIntervalCovFallsBackWithoutCalibration(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 44, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := test.GroupByConfig()[0].Params
	got := m.PredictIntervalCov(probe, 0.8)
	want := m.PredictInterval(probe, 0.1) // same tail mass
	if len(got) != len(want) {
		t.Fatalf("%d vs %d intervals", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("uncalibrated PredictIntervalCov diverges from ensemble band: %+v vs %+v", got[i], want[i])
		}
		if got[i].Source != IntervalEnsemble {
			t.Fatalf("source = %q, want ensemble", got[i].Source)
		}
	}
}

func TestPredictIntervalCovUsesCalibration(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 45, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built calibration: every holdout residual was a factor of
	// exp(0.2+i*0.001) at the first large scale; second scale left
	// uncalibrated to exercise the per-scale fallback.
	scores := make([]float64, 30)
	for i := range scores {
		scores[i] = 0.2 + float64(i)*0.001
	}
	m.Meta.Calibration = &uncertainty.Calibration{
		Pooled: []uncertainty.ScaleCalib{{Scale: cfg.LargeScales[0], Scores: scores}},
	}
	defer func() { m.Meta.Calibration = nil }()

	probe := test.GroupByConfig()[0].Params
	ivs := m.PredictIntervalCov(probe, 0.8)
	pred := m.Predict(probe)

	iv := ivs[0]
	if iv.Source != IntervalConformal {
		t.Fatalf("calibrated scale source = %q", iv.Source)
	}
	// k = ceil(31*0.8) = 25 -> scores[24] = 0.224
	f := math.Exp(0.224)
	if math.Abs(iv.Lo-pred[0]/f) > 1e-9*pred[0] || math.Abs(iv.Hi-pred[0]*f) > 1e-9*pred[0] {
		t.Fatalf("conformal band [%v, %v], want [%v, %v]", iv.Lo, iv.Hi, pred[0]/f, pred[0]*f)
	}
	if iv.Mid != pred[0] {
		t.Fatalf("mid %v != prediction %v", iv.Mid, pred[0])
	}
	for _, iv := range ivs[1:] {
		if iv.Source != IntervalEnsemble {
			t.Fatalf("uncalibrated scale %d source = %q, want ensemble fallback", iv.Scale, iv.Source)
		}
	}
	// Higher coverage than 30 samples can certify -> whole thing falls back.
	for _, iv := range m.PredictIntervalCov(probe, 0.99) {
		if iv.Source != IntervalEnsemble {
			t.Fatalf("uncertifiable coverage served %q at scale %d", iv.Source, iv.Scale)
		}
	}
}

func TestCalibrationRoundTripsThroughPersist(t *testing.T) {
	cfg := smallCfg()
	train, _ := simTables(t, 46, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Meta.Calibration = &uncertainty.Calibration{
		Pooled: []uncertainty.ScaleCalib{{Scale: cfg.LargeScales[0], Scores: []float64{0.1, 0.2, 0.3}}},
	}
	defer func() { m.Meta.Calibration = nil }()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2.Meta.Calibration, m.Meta.Calibration) {
		t.Fatalf("calibration did not round-trip: %+v vs %+v", m2.Meta.Calibration, m.Meta.Calibration)
	}

	// A corrupt calibration must be rejected at load time.
	m.Meta.Calibration.Pooled[0].Scores = []float64{0.3, 0.1}
	buf.Reset()
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("corrupt calibration loaded without error")
	}
}
