package core

import (
	"testing"

	"repro/internal/rng"
)

func TestPredictIntervalOrderingAndCoverage(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 40, 120, 30, 30, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	covered, total := 0, 0
	for _, c := range test.GroupByConfig() {
		ivs := m.PredictInterval(c.Params, 0.1)
		if len(ivs) != len(cfg.LargeScales) {
			t.Fatalf("%d intervals", len(ivs))
		}
		for _, iv := range ivs {
			if !(iv.Lo <= iv.Mid && iv.Mid <= iv.Hi) {
				t.Fatalf("interval not ordered: %+v", iv)
			}
			if iv.Lo <= 0 {
				t.Fatalf("non-positive interval bound: %+v", iv)
			}
			if iv.Width() < 0 {
				t.Fatalf("negative width: %+v", iv)
			}
			truth, ok := c.Runtimes[iv.Scale]
			if !ok {
				continue
			}
			total++
			// generous band: within the interval stretched by 2x on each side
			span := iv.Hi - iv.Lo
			if truth >= iv.Lo-span && truth <= iv.Hi+span {
				covered++
			}
		}
	}
	// the band is heuristic; require it to be at least loosely calibrated
	if frac := float64(covered) / float64(total); frac < 0.5 {
		t.Fatalf("stretched-interval coverage %.2f too low", frac)
	}
}

func TestPredictIntervalMidMatchesPredict(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 41, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := test.GroupByConfig()[0].Params
	ivs := m.PredictInterval(probe, 0.2)
	pred := m.Predict(probe)
	for i, iv := range ivs {
		// Mid is the point prediction clamped into the band
		if iv.Mid != pred[i] && (pred[i] >= iv.Lo && pred[i] <= iv.Hi) {
			t.Fatalf("mid %v != prediction %v despite being inside band", iv.Mid, pred[i])
		}
	}
}

func TestPredictIntervalQuantilePanics(t *testing.T) {
	cfg := smallCfg()
	train, _ := simTables(t, 42, 60, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.5, -0.1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("q=%v did not panic", q)
				}
			}()
			m.PredictInterval([]float64{64, 64, 64, 6}, q)
		}()
	}
}

func TestNarrowerQuantileWidensInterval(t *testing.T) {
	cfg := smallCfg()
	train, test := simTables(t, 43, 80, 20, 5, cfg)
	m, err := Fit(rng.New(1), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := test.GroupByConfig()[0].Params
	tight := m.PredictInterval(probe, 0.25)
	wide := m.PredictInterval(probe, 0.05)
	for i := range tight {
		if wide[i].Hi-wide[i].Lo < tight[i].Hi-tight[i].Lo-1e-12 {
			t.Fatalf("q=0.05 band narrower than q=0.25 at scale %d", tight[i].Scale)
		}
	}
}
