package mat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNNLSExactNonNegativeSolution(t *testing.T) {
	// When the unconstrained LS solution is already non-negative, NNLS
	// must reproduce it.
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	xTrue := []float64{2, 3}
	b := a.MulVec(nil, xTrue)
	x := NNLS(a, b)
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("NNLS = %v, want %v", x, xTrue)
		}
	}
}

func TestNNLSClampsNegativeComponent(t *testing.T) {
	// b is chosen so the unconstrained solution has a negative entry; NNLS
	// must return a feasible solution with the offending variable at 0.
	a := FromRows([][]float64{{1, 1}, {1, 1.0001}, {1, 2}})
	b := []float64{1, 1, 0} // wants a negative slope on column 2
	x := NNLS(a, b)
	for j, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v < 0", j, v)
		}
	}
	// residual must be no worse than the best single-column nonneg fit
	resid := make([]float64, 3)
	SubTo(resid, b, a.MulVec(nil, x))
	if Norm2(resid) > Norm2(b)+1e-12 {
		t.Fatalf("NNLS residual %v worse than zero solution", Norm2(resid))
	}
}

func TestNNLSAllZeroWhenBNegativelyCorrelated(t *testing.T) {
	// every column positively oriented, b negative => x = 0 is optimal
	a := FromRows([][]float64{{1}, {1}, {1}})
	b := []float64{-1, -2, -3}
	x := NNLS(a, b)
	if x[0] != 0 {
		t.Fatalf("x = %v, want 0", x)
	}
}

func TestNNLSKKTConditions(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		a := randomDense(r, 12, 5)
		// make columns positive-ish so the problem is interesting
		for i := range a.Data {
			a.Data[i] = math.Abs(a.Data[i])
		}
		b := make([]float64, 12)
		for i := range b {
			b[i] = r.Uniform(-1, 3)
		}
		x := NNLS(a, b)
		resid := make([]float64, 12)
		SubTo(resid, b, a.MulVec(nil, x))
		grad := a.MulVecT(nil, resid) // = -∇(1/2||ax-b||²)
		for j := 0; j < 5; j++ {
			if x[j] < 0 {
				t.Fatalf("trial %d: negative x[%d] = %v", trial, j, x[j])
			}
			if x[j] > 1e-10 {
				// interior variable: gradient ~ 0
				if math.Abs(grad[j]) > 1e-6*(1+Norm2(b)) {
					t.Fatalf("trial %d: interior var %d gradient %v", trial, j, grad[j])
				}
			} else if grad[j] > 1e-6*(1+Norm2(b)) {
				// boundary variable: gradient must not be ascent-positive
				t.Fatalf("trial %d: boundary var %d gradient %v > 0", trial, j, grad[j])
			}
		}
	}
}

func TestNNLSMatchesLSOnSimpleDecay(t *testing.T) {
	// shape(p) = 0.2 + 1.6/p at p = 2,4,8,16,32 — the scalability refit's
	// typical problem; NNLS must recover the positive coefficients.
	ps := []float64{2, 4, 8, 16, 32}
	a := NewDense(len(ps), 2)
	b := make([]float64, len(ps))
	for i, p := range ps {
		a.Set(i, 0, 1)
		a.Set(i, 1, 1/p)
		b[i] = 0.2 + 1.6/p
	}
	x := NNLS(a, b)
	if math.Abs(x[0]-0.2) > 1e-8 || math.Abs(x[1]-1.6) > 1e-8 {
		t.Fatalf("NNLS = %v, want [0.2, 1.6]", x)
	}
}

func TestNNLSDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NNLS(NewDense(3, 2), []float64{1, 2})
}

func TestNNLSCollinearColumns(t *testing.T) {
	// duplicated columns: must terminate and stay feasible
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{1, 2, 3}
	x := NNLS(a, b)
	pred := a.MulVec(nil, x)
	for i := range b {
		if math.Abs(pred[i]-b[i]) > 1e-6 {
			t.Fatalf("collinear NNLS fit = %v", pred)
		}
	}
	if x[0] < 0 || x[1] < 0 {
		t.Fatalf("infeasible x = %v", x)
	}
}
