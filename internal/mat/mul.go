package mat

import (
	"runtime"
	"sync"
)

// matmul tuning knobs. blockSize trades cache reuse against scheduling
// granularity; parallelThreshold is the flop count below which the serial
// kernel wins (goroutine fan-out costs more than it saves on tiny products).
const (
	blockSize         = 64
	parallelThreshold = 1 << 18
)

// Mul returns a*b using a cache-blocked kernel, parallelized across row
// blocks when the product is large enough to amortize goroutine startup.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("mat: Mul dimension mismatch")
	}
	out := NewDense(a.Rows, b.Cols)
	flops := a.Rows * a.Cols * b.Cols
	if flops < parallelThreshold {
		mulRange(out, a, b, 0, a.Rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// mulRange computes rows [rlo, rhi) of out = a*b with i-k-j loop order and
// k-blocking so the streamed row of b stays in cache.
func mulRange(out, a, b *Dense, rlo, rhi int) {
	n, p := a.Cols, b.Cols
	for kb := 0; kb < n; kb += blockSize {
		kend := kb + blockSize
		if kend > n {
			kend = n
		}
		for i := rlo; i < rhi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k := kb; k < kend; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.Data[k*p : (k+1)*p]
				for j, bv := range brow {
					orow[j] += aik * bv
				}
			}
		}
	}
}

// MulATA returns aᵀ*a, exploiting symmetry: only the upper triangle is
// computed, then mirrored. This is the Gram matrix used by the linear models.
func MulATA(a *Dense) *Dense {
	n := a.Cols
	out := NewDense(n, n)
	for r := 0; r < a.Rows; r++ {
		row := a.Row(r)
		for i := 0; i < n; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				orow[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.Data[j*n+i] = out.Data[i*n+j]
		}
	}
	return out
}
