package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization encounters a matrix that is
// singular (or numerically indistinguishable from singular).
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with a = L*Lᵀ.
// a must be symmetric positive definite; only its lower triangle is read.
func Cholesky(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		panic("mat: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		djj := math.Sqrt(d)
		lrowj[j] = djj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s / djj
		}
	}
	return l, nil
}

// SolveCholesky solves a*x = b given the Cholesky factor L of a,
// via forward then backward substitution. b is not modified.
func SolveCholesky(l *Dense, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("mat: SolveCholesky dimension mismatch")
	}
	y := make([]float64, n)
	// L y = b
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Lᵀ x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves a*x = b for symmetric positive definite a.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b), nil
}

// QR holds a thin Householder QR factorization of an m×n matrix, m >= n.
type QR struct {
	qr   *Dense    // packed Householder vectors + R
	rd   []float64 // diagonal of R
	m, n int
}

// NewQR factors a (which is not modified).
func NewQR(a *Dense) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("mat: QR requires rows >= cols")
	}
	qr := a.Clone()
	rd := make([]float64, n)
	// Relative singularity threshold: a pivot smaller than eps times the
	// largest entry magnitude indicates a (numerically) dependent column.
	tol := NormInf(a.Data) * float64(m) * 1e-14
	for k := 0; k < n; k++ {
		// norm of column k below the diagonal
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm <= tol {
			return nil, ErrSingular
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rd[k] = -nrm
	}
	return &QR{qr: qr, rd: rd, m: m, n: n}, nil
}

// Solve returns the least-squares solution x minimizing ||a*x - b||₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		panic("mat: QR.Solve dimension mismatch")
	}
	y := make([]float64, f.m)
	copy(y, b)
	// apply Householder reflections: y = Qᵀ b
	for k := 0; k < f.n; k++ {
		var s float64
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// back substitution against R
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		if f.rd[i] == 0 {
			return nil, ErrSingular
		}
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rd[i]
	}
	return x, nil
}

// LeastSquares solves min ||a*x - b||₂ by QR. For rank-deficient a it
// returns ErrSingular; callers that need regularization should use the
// ridge path in internal/linmod instead.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
