// Package mat implements the dense linear algebra needed by the learning
// components: vectors and row-major matrices, level-1/2/3 kernels (with a
// goroutine-parallel blocked matmul), and the Cholesky and QR
// factorizations used to solve least-squares problems.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS: shapes are checked eagerly (mismatches panic, since they
// are programming errors, not data errors), and all hot loops operate on
// raw float64 slices.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense returns a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a Dense from a slice of equal-length rows, copying them.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged input, row %d has %d cols want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Equalish reports whether a and b have the same shape and elements within tol.
func Equalish(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// ---- level-1 vector kernels ----

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the sum of absolute values of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the maximum absolute value of x (0 for empty x).
func NormInf(x []float64) float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// AddTo computes dst = a + b elementwise. dst may alias a or b.
func AddTo(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// SubTo computes dst = a - b elementwise. dst may alias a or b.
func SubTo(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: SubTo length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// ---- level-2 ----

// MulVec computes dst = m * x. dst must have length m.Rows and must not
// alias x. A nil dst is allocated.
func (m *Dense) MulVec(dst, x []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: MulVec dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	if len(dst) != m.Rows {
		panic("mat: MulVec dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return dst
}

// MulVecT computes dst = mᵀ * x without forming the transpose.
func (m *Dense) MulVecT(dst, x []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: MulVecT dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, m.Cols)
	}
	if len(dst) != m.Cols {
		panic("mat: MulVecT dst length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
	return dst
}
