package mat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomDense(r *rng.Source, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Uniform(-2, 2)
	}
	return m
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("bad elements: %v", m.Data)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows shape %dx%d", m.Rows, m.Cols)
	}
}

func TestSetRowCol(t *testing.T) {
	m := NewDense(3, 2)
	m.Set(2, 1, 7)
	if m.At(2, 1) != 7 {
		t.Fatal("Set/At mismatch")
	}
	if got := m.Col(1); got[2] != 7 || got[0] != 0 {
		t.Fatalf("Col = %v", got)
	}
	row := m.Row(2)
	row[0] = 9 // aliasing contract
	if m.At(2, 0) != 9 {
		t.Fatal("Row must alias storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(1)
	m := randomDense(r, 7, 4)
	if !Equalish(m, m.T().T(), 0) {
		t.Fatal("T(T(m)) != m")
	}
}

func TestDotAxpyScale(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Axpy(2, x, y)
	want := []float64{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v", y)
		}
	}
	Scale(0.5, y)
	if y[0] != 3 || y[2] != 6 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if Norm1(x) != 7 {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if NormInf(x) != 4 {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
	if Norm2(nil) != 0 || Norm1(nil) != 0 || NormInf(nil) != 0 {
		t.Fatal("empty norms should be 0")
	}
}

func TestNorm2Overflow(t *testing.T) {
	x := []float64{1e300, 1e300}
	got := Norm2(x)
	want := 1e300 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 overflow-guard failed: %v", got)
	}
}

func TestAddSubTo(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	dst := make([]float64, 2)
	AddTo(dst, a, b)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("AddTo = %v", dst)
	}
	SubTo(dst, b, a)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("SubTo = %v", dst)
	}
	// aliasing
	AddTo(a, a, b)
	if a[0] != 4 {
		t.Fatal("AddTo aliasing broken")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec(nil, []float64{1, 1})
	want := []float64{3, 7, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v", got)
		}
	}
}

func TestMulVecT(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVecT(nil, []float64{1, 1, 1})
	want := []float64{9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecT = %v", got)
		}
	}
	// must agree with explicit transpose multiply
	r := rng.New(5)
	a := randomDense(r, 9, 5)
	x := make([]float64, 9)
	for i := range x {
		x[i] = r.Norm()
	}
	v1 := a.MulVecT(nil, x)
	v2 := a.T().MulVec(nil, x)
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > 1e-12 {
			t.Fatalf("MulVecT disagrees with T().MulVec at %d", i)
		}
	}
}

func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulAgainstNaive(t *testing.T) {
	r := rng.New(2)
	for _, shape := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {17, 31, 13}, {64, 64, 64}, {70, 129, 65}} {
		a := randomDense(r, shape[0], shape[1])
		b := randomDense(r, shape[1], shape[2])
		got := Mul(a, b)
		want := naiveMul(a, b)
		if !Equalish(got, want, 1e-9) {
			t.Fatalf("Mul mismatch for shape %v", shape)
		}
	}
}

func TestMulParallelPath(t *testing.T) {
	// Large enough to exceed parallelThreshold.
	r := rng.New(3)
	a := randomDense(r, 80, 80)
	b := randomDense(r, 80, 80)
	got := Mul(a, b)
	want := naiveMul(a, b)
	if !Equalish(got, want, 1e-8) {
		t.Fatal("parallel Mul mismatch")
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulATA(t *testing.T) {
	r := rng.New(4)
	a := randomDense(r, 12, 7)
	got := MulATA(a)
	want := Mul(a.T(), a)
	if !Equalish(got, want, 1e-9) {
		t.Fatal("MulATA mismatch")
	}
	// symmetry
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			if got.At(i, j) != got.At(j, i) {
				t.Fatal("MulATA not symmetric")
			}
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// (A*B)*x == A*(B*x) for random small matrices.
	r := rng.New(6)
	f := func(seed uint8) bool {
		rr := rng.New(uint64(seed) + 100)
		a := randomDense(rr, 4, 3)
		b := randomDense(rr, 3, 5)
		x := make([]float64, 5)
		for i := range x {
			x[i] = rr.Norm()
		}
		left := Mul(a, b).MulVec(nil, x)
		right := a.MulVec(nil, b.MulVec(nil, x))
		for i := range left {
			if math.Abs(left[i]-right[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestCholeskySolve(t *testing.T) {
	// Build SPD matrix A = MᵀM + I.
	r := rng.New(7)
	m := randomDense(r, 10, 6)
	a := MulATA(m)
	for i := 0; i < a.Rows; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	xTrue := []float64{1, -2, 3, 0.5, -1, 2}
	b := a.MulVec(nil, xTrue)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("SolveSPD x = %v", x)
		}
	}
}

func TestCholeskyFactorProperty(t *testing.T) {
	r := rng.New(8)
	m := randomDense(r, 8, 5)
	a := MulATA(m)
	for i := 0; i < a.Rows; i++ {
		a.Set(i, i, a.At(i, i)+0.5)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equalish(Mul(l, l.T()), a, 1e-9) {
		t.Fatal("L*Lᵀ != A")
	}
	// strictly upper part of L must be zero
	for i := 0; i < l.Rows; i++ {
		for j := i + 1; j < l.Cols; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("L has non-zero above diagonal")
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{0, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted indefinite matrix")
	}
}

func TestQRSolveExact(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}, {0, 0}})
	b := []float64{4, 9, 0}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space of A.
	r := rng.New(9)
	a := randomDense(r, 20, 5)
	b := make([]float64, 20)
	for i := range b {
		b[i] = r.Norm()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax := a.MulVec(nil, x)
	res := make([]float64, len(b))
	SubTo(res, b, ax)
	proj := a.MulVecT(nil, res)
	if NormInf(proj) > 1e-9 {
		t.Fatalf("Aᵀr = %v not ~0", proj)
	}
}

func TestQRMatchesNormalEquations(t *testing.T) {
	r := rng.New(10)
	a := randomDense(r, 30, 6)
	b := make([]float64, 30)
	for i := range b {
		b[i] = r.Norm()
	}
	xQR, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gram := MulATA(a)
	atb := a.MulVecT(nil, b)
	xNE, err := SolveSPD(gram, atb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xQR {
		if math.Abs(xQR[i]-xNE[i]) > 1e-7 {
			t.Fatalf("QR %v vs normal equations %v", xQR, xNE)
		}
	}
}

func TestQRSingularDetection(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient LS did not error")
	}
}

func TestEqualishShapes(t *testing.T) {
	if Equalish(NewDense(2, 2), NewDense(2, 3), 1) {
		t.Fatal("Equalish ignored shape mismatch")
	}
}

func BenchmarkMul128(b *testing.B) {
	r := rng.New(1)
	x := randomDense(r, 128, 128)
	y := randomDense(r, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulATA(b *testing.B) {
	r := rng.New(1)
	x := randomDense(r, 512, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulATA(x)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	r := rng.New(1)
	m := randomDense(r, 128, 64)
	a := MulATA(m)
	for i := 0; i < a.Rows; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
