package mat

import "math"

// NNLS solves min ||a*x - b||₂ subject to x >= 0 using the Lawson-Hanson
// active-set algorithm. It is used for the per-configuration scalability
// refit, where every cost term (serial fraction, parallel work,
// communication growth) must contribute non-negatively — which is what
// keeps extrapolation beyond the fitted range from diverging to
// non-physical negative runtimes.
//
// The problem sizes here are tiny (a handful of columns), so the simple
// dense implementation is entirely adequate.
func NNLS(a *Dense, b []float64) []float64 {
	m, n := a.Rows, a.Cols
	if m != len(b) {
		panic("mat: NNLS dimension mismatch")
	}
	x := make([]float64, n)
	passive := make([]bool, n) // the "P" set
	w := make([]float64, n)    // gradient aᵀ(b - a·x)
	resid := append([]float64(nil), b...)

	const maxOuter = 200
	tol := 1e-12 * (1 + NormInf(a.Data)) * float64(m)

	for outer := 0; outer < maxOuter; outer++ {
		// gradient on the active (zero) set
		for j := 0; j < n; j++ {
			w[j] = 0
			for i := 0; i < m; i++ {
				w[j] += a.At(i, j) * resid[i]
			}
		}
		// pick the most violating active variable
		best, bestW := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best < 0 {
			break // KKT satisfied
		}
		passive[best] = true

		// inner loop: solve the passive-set LS, stepping back when any
		// passive variable would go negative
		for {
			z := solvePassive(a, b, passive)
			// check feasibility of z on the passive set
			alpha := 1.0
			blocking := -1
			for j := 0; j < n; j++ {
				if !passive[j] || z[j] > 0 {
					continue
				}
				denom := x[j] - z[j]
				if denom <= 0 {
					continue
				}
				if t := x[j] / denom; t < alpha {
					alpha = t
					blocking = j
				}
			}
			if blocking < 0 {
				copy(x, z)
				break
			}
			for j := 0; j < n; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
					if x[j] <= 1e-14 {
						x[j] = 0
					}
				}
			}
			for j := 0; j < n; j++ {
				if passive[j] && x[j] == 0 {
					passive[j] = false
				}
			}
			if !anyPassive(passive) {
				break
			}
		}
		// refresh the residual
		copy(resid, b)
		for i := 0; i < m; i++ {
			row := a.Row(i)
			for j := 0; j < n; j++ {
				if x[j] != 0 {
					resid[i] -= row[j] * x[j]
				}
			}
		}
	}
	return x
}

func anyPassive(p []bool) bool {
	for _, v := range p {
		if v {
			return true
		}
	}
	return false
}

// solvePassive solves the unconstrained LS restricted to passive columns,
// returning a full-width vector (zeros elsewhere). Singular sub-problems
// fall back to a ridge-regularized solve.
func solvePassive(a *Dense, b []float64, passive []bool) []float64 {
	n := a.Cols
	cols := []int{}
	for j := 0; j < n; j++ {
		if passive[j] {
			cols = append(cols, j)
		}
	}
	out := make([]float64, n)
	if len(cols) == 0 {
		return out
	}
	sub := NewDense(a.Rows, len(cols))
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		srow := sub.Row(i)
		for jj, j := range cols {
			srow[jj] = row[j]
		}
	}
	coef, err := LeastSquares(sub, b)
	if err != nil {
		gram := MulATA(sub)
		scale := NormInf(gram.Data)
		if scale == 0 || math.IsNaN(scale) {
			return out
		}
		for i := 0; i < gram.Rows; i++ {
			gram.Set(i, i, gram.At(i, i)+1e-10*scale)
		}
		atb := sub.MulVecT(nil, b)
		coef, err = SolveSPD(gram, atb)
		if err != nil {
			return out
		}
	}
	for jj, j := range cols {
		out[j] = coef[jj]
	}
	return out
}
