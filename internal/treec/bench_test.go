package treec

import (
	"testing"

	"repro/internal/forest"
	"repro/internal/gbrt"
	"repro/internal/rng"
)

// The compiled benchmarks deliberately mirror their pointer twins —
// BenchmarkForestPredictBatch (internal/forest) and
// BenchmarkGBRTPredictBatch (internal/gbrt) — same generator, seed,
// shapes, and ensemble sizes, so the pair's ns/op ratio is the compiled
// layout's speedup and `make bench-check` publishes it in the CI log.

func BenchmarkForestPredictBatchCompiled(b *testing.B) {
	r := rng.New(1)
	x, y := friedman(r, 2000)
	p := forest.Defaults()
	p.Trees = 100
	cf := CompileForest(forest.Fit(x, y, p, r))
	dst := make([]float64, x.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.PredictBatch(x, dst)
	}
}

func BenchmarkGBRTPredictBatchCompiled(b *testing.B) {
	r := rng.New(1)
	x, y := friedman(r, 2000)
	cm := CompileGBRT(gbrt.Fit(x, y, gbrt.Defaults(), r))
	dst := make([]float64, x.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.PredictBatch(x, dst)
	}
}

func BenchmarkCompileForest(b *testing.B) {
	r := rng.New(1)
	x, y := friedman(r, 2000)
	p := forest.Defaults()
	p.Trees = 100
	f := forest.Fit(x, y, p, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompileForest(f)
	}
}
