package treec

import (
	"math"
	"testing"

	"repro/internal/forest"
	"repro/internal/gbrt"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tree"
)

// friedman1-style data, matching the generators in the forest and gbrt
// test suites so benchmarks are comparable across packages.
func friedman(r *rng.Source, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 6)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 6; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = 10*math.Sin(math.Pi*x.At(i, 0)*x.At(i, 1)) +
			20*math.Pow(x.At(i, 2)-0.5, 2) +
			10*x.At(i, 3) + 5*x.At(i, 4) + 0.1*r.Norm()
	}
	return x, y
}

func TestCompileForestLayout(t *testing.T) {
	r := rng.New(1)
	x, y := friedman(r, 200)
	p := forest.Defaults()
	p.Trees = 7
	f := forest.Fit(x, y, p, r)
	cf := CompileForest(f)

	if got, want := cf.E.NumTrees(), len(f.Trees); got != want {
		t.Fatalf("compiled %d trees, want %d", got, want)
	}
	total := 0
	for _, tr := range f.Trees {
		total += len(tr.Nodes)
	}
	if got := cf.E.NumNodes(); got != total {
		t.Fatalf("compiled %d nodes, want %d", got, total)
	}
	if len(cf.E.Feature) != total || len(cf.E.Child) != total || len(cf.E.Thresh) != total {
		t.Fatal("SoA arrays not aligned to node count")
	}
	// Roots are increasing offsets; every internal node's children are
	// adjacent and inside the tree's node range.
	for ti, root := range cf.E.Roots {
		end := cf.E.NumNodes()
		if ti+1 < len(cf.E.Roots) {
			end = int(cf.E.Roots[ti+1])
		}
		if int(root) >= end {
			t.Fatalf("tree %d root %d >= end %d", ti, root, end)
		}
		for j := int(root); j < end; j++ {
			if cf.E.Feature[j] < 0 {
				continue
			}
			l := int(cf.E.Child[j])
			if l <= j || l+1 >= end+1 || l < int(root) || l+1 > end {
				t.Fatalf("tree %d node %d has children %d,%d outside (%d,%d]", ti, j, l, l+1, root, end)
			}
		}
	}
}

func TestCompiledForestMatchesPointer(t *testing.T) {
	r := rng.New(2)
	x, y := friedman(r, 300)
	p := forest.Defaults()
	p.Trees = 40
	f := forest.Fit(x, y, p, r)
	cf := CompileForest(f)

	want := f.PredictBatch(x, nil)
	got := cf.PredictBatch(x, make([]float64, x.Rows))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: compiled %v != pointer %v", i, got[i], want[i])
		}
	}
	for i := 0; i < 20; i++ {
		v := x.Row(i)
		if cf.Predict(v) != f.Predict(v) {
			t.Fatalf("single row %d diverges", i)
		}
	}
}

func TestCompiledGBRTMatchesPointer(t *testing.T) {
	r := rng.New(3)
	x, y := friedman(r, 250)
	p := gbrt.Defaults()
	p.Rounds = 60
	p.Subsample = 0.8
	m := gbrt.Fit(x, y, p, r)
	cm := CompileGBRT(m)

	want := m.PredictBatch(x, nil)
	got := cm.PredictBatch(x, make([]float64, x.Rows))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: compiled %v != pointer %v", i, got[i], want[i])
		}
	}
	for i := 0; i < 20; i++ {
		v := x.Row(i)
		if cm.Predict(v) != m.Predict(v) {
			t.Fatalf("single row %d diverges", i)
		}
	}
}

func TestCompiledTreeMatchesPointer(t *testing.T) {
	r := rng.New(4)
	x, y := friedman(r, 200)
	tr := tree.NewFitter().Fit(x, y, tree.Defaults(), nil)
	ct := CompileTree(tr)
	want := tr.PredictBatch(x, nil)
	got := ct.PredictBatch(x, make([]float64, x.Rows))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: compiled %v != pointer %v", i, got[i], want[i])
		}
	}
	if ct.Predict(x.Row(3)) != tr.Predict(x.Row(3)) {
		t.Fatal("single-row tree predict diverges")
	}
}

func TestCompiledQuantilesMatchPointer(t *testing.T) {
	r := rng.New(5)
	x, y := friedman(r, 200)
	p := forest.Defaults()
	p.Trees = 31
	f := forest.Fit(x, y, p, r)
	cf := CompileForest(f)

	qs := []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1}
	want := make([]float64, len(qs))
	got := make([]float64, len(qs))
	scratch := make([]float64, len(f.Trees))
	for i := 0; i < 20; i++ {
		v := x.Row(i)
		wm := f.PredictQuantilesInto(v, qs, scratch, want)
		gm := cf.PredictQuantilesInto(v, qs, scratch, got)
		if wm != gm {
			t.Fatalf("row %d: mean %v != %v", i, gm, wm)
		}
		for j := range qs {
			if got[j] != want[j] {
				t.Fatalf("row %d q=%v: compiled %v != pointer %v", i, qs[j], got[j], want[j])
			}
		}
	}
}

func TestCompiledZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	r := rng.New(6)
	x, y := friedman(r, 200)
	p := forest.Defaults()
	p.Trees = 10
	f := forest.Fit(x, y, p, r)
	cf := CompileForest(f)
	dst := make([]float64, x.Rows)
	if n := testing.AllocsPerRun(20, func() { cf.PredictBatch(x, dst) }); n != 0 {
		t.Fatalf("compiled forest PredictBatch allocates %v per call, want 0", n)
	}
	probe := x.Row(0)
	if n := testing.AllocsPerRun(50, func() { cf.Predict(probe) }); n != 0 {
		t.Fatalf("compiled forest Predict allocates %v per call, want 0", n)
	}
	qs := []float64{0.1, 0.9}
	qdst := make([]float64, 2)
	scratch := make([]float64, cf.E.NumTrees())
	if n := testing.AllocsPerRun(50, func() { cf.PredictQuantilesInto(probe, qs, scratch, qdst) }); n != 0 {
		t.Fatalf("compiled PredictQuantilesInto allocates %v per call, want 0", n)
	}

	gp := gbrt.Defaults()
	gp.Rounds = 20
	gm := gbrt.Fit(x, y, gp, r)
	cgm := CompileGBRT(gm)
	if n := testing.AllocsPerRun(20, func() { cgm.PredictBatch(x, dst) }); n != 0 {
		t.Fatalf("compiled gbrt PredictBatch allocates %v per call, want 0", n)
	}
}

func TestCompiledPanics(t *testing.T) {
	r := rng.New(7)
	x, y := friedman(r, 60)
	p := forest.Defaults()
	p.Trees = 3
	cf := CompileForest(forest.Fit(x, y, p, r))
	for name, fn := range map[string]func(){
		"wrong features": func() { cf.Predict([]float64{1}) },
		"short dst":      func() { cf.PredictBatch(x, make([]float64, 3)) },
		"bad quantile":   func() { cf.PredictQuantilesInto(x.Row(0), []float64{1.5}, nil, make([]float64, 1)) },
		"short qdst":     func() { cf.PredictQuantilesInto(x.Row(0), []float64{0.1, 0.9}, nil, make([]float64, 1)) },
		"short scratch":  func() { cf.PredictQuantilesInto(x.Row(0), []float64{0.1}, make([]float64, 1), make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
