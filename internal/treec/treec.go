// Package treec compiles pointer-based tree ensembles (tree.Tree,
// forest.Forest, gbrt.Model) into a flattened struct-of-arrays layout and
// provides batch-blocked traversal kernels over it. Predictions are
// bit-identical to the pointer implementations — the compiled form reaches
// the same leaves via the same float comparisons and accumulates in the
// same order — which a differential fuzz suite enforces (see
// differential_test.go).
//
// Why compile: the pointer layout pays a 40-byte Node struct per hop plus
// a data-dependent branch per split, and every tree's node slice is a
// separate heap object. The compiled Ensemble packs all trees of a model
// into three contiguous parallel arrays — split feature (int32), left
// child offset (int32), threshold (float64, doubling as the leaf value at
// leaf nodes) — renumbered in breadth-first order so a node's two children
// are always adjacent (right = left+1). Traversal then needs 16 bytes per
// node across dense streams, no pointer dereferences, and the left/right
// choice becomes a conditional increment the compiler lowers to a
// branchless flag-materializing SETcc + add, removing the
// ~50%-mispredicted branch that dominates random-forest inference.
package treec

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/forest"
	"repro/internal/gbrt"
	"repro/internal/mat"
	"repro/internal/tree"
)

// Ensemble is the flattened form of one or more trees: parallel
// struct-of-arrays node tables plus per-tree root offsets. All slices
// except Roots share one length (the total node count); entry j of each
// describes node j. Nodes of a tree are laid out breadth-first, so the
// top levels every row visits share cache lines, and an internal node's
// children occupy consecutive slots.
type Ensemble struct {
	// Feature is the split feature per node, -1 for leaves.
	Feature []int32
	// Child is the left-child offset per node; the right child is
	// Child[j]+1 by construction. Zero (unused) for leaves.
	Child []int32
	// Thresh is the split threshold per internal node; for leaves the
	// slot is reused for the leaf value, so traversal touches no fourth
	// array.
	Thresh []float64
	// Roots is the first node offset of each tree, in ensemble order.
	Roots []int32
	// Features is the input dimensionality, for validation.
	Features int
}

// NumTrees returns the number of compiled trees.
func (e *Ensemble) NumTrees() int { return len(e.Roots) }

// NumNodes returns the total node count across trees.
func (e *Ensemble) NumNodes() int { return len(e.Feature) }

// appendTree renumbers one pointer tree breadth-first into the ensemble
// arrays. order is scratch reused across trees (may be nil).
func (e *Ensemble) appendTree(t *tree.Tree, order []int32) []int32 {
	base := int32(len(e.Feature))
	e.Roots = append(e.Roots, base)
	order = append(order[:0], 0)
	// Children are enqueued in pairs, so they receive consecutive new
	// offsets — the invariant the traversal kernels rely on.
	for k := 0; k < len(order); k++ {
		n := &t.Nodes[order[k]]
		if n.Feature < 0 {
			e.Feature = append(e.Feature, -1)
			e.Child = append(e.Child, 0)
			e.Thresh = append(e.Thresh, n.Value)
			continue
		}
		e.Feature = append(e.Feature, int32(n.Feature))
		e.Child = append(e.Child, base+int32(len(order)))
		e.Thresh = append(e.Thresh, n.Threshold)
		order = append(order, n.Left, n.Right)
	}
	return order
}

// compileTrees flattens trees (all with the given feature count) into a
// fresh Ensemble, preallocating the node tables exactly.
func compileTrees(trees []*tree.Tree, features int) Ensemble {
	total := 0
	for _, t := range trees {
		total += len(t.Nodes)
	}
	e := Ensemble{
		Feature:  make([]int32, 0, total),
		Child:    make([]int32, 0, total),
		Thresh:   make([]float64, 0, total),
		Roots:    make([]int32, 0, len(trees)),
		Features: features,
	}
	var order []int32
	for _, t := range trees {
		order = e.appendTree(t, order)
	}
	return e
}

// predictRow walks one row from root to its leaf and returns the leaf
// value. The left/right choice compiles to a branchless conditional
// increment (SETcc). The condition is the negation of the pointer
// implementation's `v <= threshold`, NOT `v > threshold`: the two differ
// on NaN inputs, and bit-identity must hold for every float.
func (e *Ensemble) predictRow(row []float64, root int32) float64 {
	feat, child, th := e.Feature, e.Child, e.Thresh
	j := root
	for {
		f := feat[j]
		t := th[j]
		if f < 0 {
			return t
		}
		var bump int32
		if !(row[f] <= t) {
			bump = 1
		}
		j = child[j] + bump
	}
}

// blockRows is the row-block size for batch traversal: a block of rows
// stays hot in L1 while each tree's node table streams through once per
// block instead of once per row, and the node tables of consecutive
// trees are contiguous so the stream never seeks. 128 rows × 8 bytes of
// accumulator plus a ~6-feature row fits comfortably in a 32 KiB L1
// alongside the upper tree levels.
const blockRows = 128

// accumulate adds mul·leaf(row i) to dst[i] for every tree and every row
// of x, walking trees over row blocks. Accumulation order per row is
// tree order, identical to the pointer implementations. mul = 1 for
// forests (an exact float64 identity) and shrinkage for GBRT.
//
// Within a block, four rows traverse each tree in lockstep: a single
// traversal is a serial chain (load node, compare, load child, …) that
// leaves the core idle between dependent loads and mispredicted splits,
// while four independent chains overlap those stalls. Rows that reach
// their leaf early park (guarded by the lane's `f < 0` check) until the
// deepest lane finishes; the wasted iterations are bounded by the depth
// spread between four adjacent rows, which is small in practice.
func (e *Ensemble) accumulate(x *mat.Dense, dst []float64, mul float64) {
	data := x.Data
	cols := x.Cols
	feat, child, th := e.Feature, e.Child, e.Thresh
	for b := 0; b < x.Rows; b += blockRows {
		be := b + blockRows
		if be > x.Rows {
			be = x.Rows
		}
		for _, root := range e.Roots {
			i := b
			for ; i+4 <= be; i += 4 {
				r0 := data[(i+0)*cols : (i+0)*cols+cols : (i+0)*cols+cols]
				r1 := data[(i+1)*cols : (i+1)*cols+cols : (i+1)*cols+cols]
				r2 := data[(i+2)*cols : (i+2)*cols+cols : (i+2)*cols+cols]
				r3 := data[(i+3)*cols : (i+3)*cols+cols : (i+3)*cols+cols]
				j0, j1, j2, j3 := root, root, root, root
				f0, f1, f2, f3 := feat[j0], feat[j1], feat[j2], feat[j3]
				for f0 >= 0 || f1 >= 0 || f2 >= 0 || f3 >= 0 {
					if f0 >= 0 {
						var bump0 int32
						if !(r0[f0] <= th[j0]) {
							bump0 = 1
						}
						j0 = child[j0] + bump0
						f0 = feat[j0]
					}
					if f1 >= 0 {
						var bump1 int32
						if !(r1[f1] <= th[j1]) {
							bump1 = 1
						}
						j1 = child[j1] + bump1
						f1 = feat[j1]
					}
					if f2 >= 0 {
						var bump2 int32
						if !(r2[f2] <= th[j2]) {
							bump2 = 1
						}
						j2 = child[j2] + bump2
						f2 = feat[j2]
					}
					if f3 >= 0 {
						var bump3 int32
						if !(r3[f3] <= th[j3]) {
							bump3 = 1
						}
						j3 = child[j3] + bump3
						f3 = feat[j3]
					}
				}
				dst[i+0] += mul * th[j0]
				dst[i+1] += mul * th[j1]
				dst[i+2] += mul * th[j2]
				dst[i+3] += mul * th[j3]
			}
			for ; i < be; i++ {
				row := data[i*cols : i*cols+cols : i*cols+cols]
				dst[i] += mul * e.predictRow(row, root)
			}
		}
	}
}

// ---- compiled model wrappers ----

// Tree is a compiled single regression tree.
type Tree struct {
	E Ensemble
}

// CompileTree flattens a fitted tree.
func CompileTree(t *tree.Tree) *Tree {
	return &Tree{E: compileTrees([]*tree.Tree{t}, t.Features)}
}

// Predict returns the tree's prediction for v, bit-identical to
// tree.Tree.Predict.
func (t *Tree) Predict(v []float64) float64 {
	if len(v) != t.E.Features {
		panic(fmt.Sprintf("treec: predict with %d features, tree has %d", len(v), t.E.Features))
	}
	return t.E.predictRow(v, 0)
}

// PredictBatch fills dst with predictions for every row of x; a nil dst
// is allocated. With a non-nil dst the call performs no allocations.
func (t *Tree) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	dst = checkBatch(&t.E, x, dst, "tree")
	for i := range dst {
		dst[i] = 0
	}
	t.E.accumulate(x, dst, 1)
	return dst
}

// Forest is a compiled random forest: the prediction is the mean of the
// per-tree leaf values, accumulated in tree order exactly like
// forest.Forest.
type Forest struct {
	E Ensemble
}

// CompileForest flattens a fitted forest.
func CompileForest(f *forest.Forest) *Forest {
	return &Forest{E: compileTrees(f.Trees, f.Features)}
}

// Predict returns the forest prediction for v, bit-identical to
// forest.Forest.Predict.
func (f *Forest) Predict(v []float64) float64 {
	if len(v) != f.E.Features {
		panic(fmt.Sprintf("treec: predict with %d features, forest has %d", len(v), f.E.Features))
	}
	var s float64
	for _, root := range f.E.Roots {
		s += f.E.predictRow(v, root)
	}
	return s / float64(len(f.E.Roots))
}

// PredictBatch fills dst with forest predictions for every row of x; a
// nil dst is allocated. With a non-nil dst the call performs no
// allocations, and results are bit-identical to forest.Forest.PredictBatch.
func (f *Forest) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	dst = checkBatch(&f.E, x, dst, "forest")
	for i := range dst {
		dst[i] = 0
	}
	f.E.accumulate(x, dst, 1)
	m := float64(len(f.E.Roots))
	for i := range dst {
		dst[i] /= m
	}
	return dst
}

// PredictQuantilesInto walks the compiled ensemble once, fills dst[i]
// with the qs[i]-quantile of per-tree predictions for v, and returns the
// ensemble mean — the same contract, accumulation order, and
// interpolation arithmetic as forest.Forest.PredictQuantilesInto, so
// conformal interval serving can run on the flat layout with zero
// allocations (given non-nil scratch).
func (f *Forest) PredictQuantilesInto(v, qs, preds, dst []float64) float64 {
	if len(v) != f.E.Features {
		panic(fmt.Sprintf("treec: predict with %d features, forest has %d", len(v), f.E.Features))
	}
	if len(dst) < len(qs) {
		panic("treec: quantile dst shorter than qs")
	}
	for _, q := range qs {
		if q < 0 || q > 1 {
			panic("treec: quantile outside [0,1]")
		}
	}
	n := len(f.E.Roots)
	if preds == nil {
		preds = make([]float64, n)
	} else if len(preds) < n {
		panic("treec: quantile scratch shorter than tree count")
	}
	preds = preds[:n]
	var s float64
	for i, root := range f.E.Roots {
		p := f.E.predictRow(v, root)
		preds[i] = p
		s += p
	}
	mean := s / float64(n)
	// The mean is accumulated before the sort, and the interpolation below
	// is operation-for-operation the arithmetic in forest.PredictQuantilesInto,
	// keeping both bit-identical to the pointer path.
	sort.Float64s(preds)
	for i, q := range qs {
		pos := q * float64(len(preds)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			dst[i] = preds[lo]
			continue
		}
		frac := pos - float64(lo)
		dst[i] = preds[lo]*(1-frac) + preds[hi]*frac
	}
	return mean
}

// GBRT is a compiled gradient-boosted ensemble.
type GBRT struct {
	E         Ensemble
	Base      float64
	Shrinkage float64
}

// CompileGBRT flattens a fitted boosted model.
func CompileGBRT(m *gbrt.Model) *GBRT {
	return &GBRT{
		E:         compileTrees(m.Trees, m.Features),
		Base:      m.Base,
		Shrinkage: m.Shrinkage,
	}
}

// Predict evaluates the compiled ensemble on v, bit-identical to
// gbrt.Model.Predict.
func (m *GBRT) Predict(v []float64) float64 {
	if len(v) != m.E.Features {
		panic(fmt.Sprintf("treec: predict with %d features, model has %d", len(v), m.E.Features))
	}
	s := m.Base
	for _, root := range m.E.Roots {
		s += m.Shrinkage * m.E.predictRow(v, root)
	}
	return s
}

// PredictBatch fills dst with predictions for every row of x; a nil dst
// is allocated. With a non-nil dst the call performs no allocations, and
// results are bit-identical to gbrt.Model.PredictBatch.
func (m *GBRT) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	dst = checkBatch(&m.E, x, dst, "gbrt")
	for i := range dst {
		dst[i] = m.Base
	}
	m.E.accumulate(x, dst, m.Shrinkage)
	return dst
}

// checkBatch validates batch-prediction arguments and allocates dst when
// nil, mirroring the pointer implementations' contracts.
func checkBatch(e *Ensemble, x *mat.Dense, dst []float64, kind string) []float64 {
	if x.Cols != e.Features {
		panic(fmt.Sprintf("treec: predict with %d features, %s has %d", x.Cols, kind, e.Features))
	}
	if dst == nil {
		dst = make([]float64, x.Rows)
	}
	if len(dst) != x.Rows {
		panic("treec: PredictBatch dst length mismatch")
	}
	return dst
}
