package treec

import (
	"math"
	"testing"

	"repro/internal/forest"
	"repro/internal/gbrt"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tree"
)

// randomDataset draws a dataset with randomized shape and pathologies:
// duplicate values (coarse rounding), constant columns, and negative
// targets, so ties and degenerate splits are exercised.
func randomDataset(r *rng.Source) (*mat.Dense, []float64) {
	rows := 20 + r.Intn(180)
	cols := 1 + r.Intn(8)
	x := mat.NewDense(rows, cols)
	y := make([]float64, rows)
	constCol := -1
	if cols > 1 && r.Float64() < 0.3 {
		constCol = r.Intn(cols)
	}
	coarse := r.Float64() < 0.5 // heavy duplicate feature values
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := r.Uniform(-5, 5)
			if j == constCol {
				v = 1.25
			} else if coarse {
				v = float64(int(v*2)) / 2
			}
			x.Set(i, j, v)
		}
		y[i] = x.At(i, 0)*3 + r.Norm()
	}
	return x, y
}

// TestCompiledDifferentialFuzz is the compiled-vs-pointer differential
// fuzz: across >= 100 seeded random forests and datasets (randomized
// shapes, tree counts, depths, feature subsampling) every prediction
// surface — single row, batch, quantiles with per-tree outputs — must be
// bit-identical between the pointer and the compiled implementations.
func TestCompiledDifferentialFuzz(t *testing.T) {
	const seeds = 110
	for seed := uint64(1); seed <= seeds; seed++ {
		r := rng.New(seed)
		x, y := randomDataset(r)
		p := forest.Defaults()
		p.Trees = 1 + r.Intn(30)
		p.Tree.MaxDepth = 1 + r.Intn(12)
		p.Tree.MinLeafSamples = 1 + r.Intn(4)
		f := forest.Fit(x, y, p, r)
		cf := CompileForest(f)

		want := f.PredictBatch(x, nil)
		got := cf.PredictBatch(x, make([]float64, x.Rows))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d row %d: batch compiled %v != pointer %v", seed, i, got[i], want[i])
			}
		}

		qs := []float64{0, 0.1, 0.5, 0.9, 1}
		wq := make([]float64, len(qs))
		gq := make([]float64, len(qs))
		wScratch := make([]float64, len(f.Trees))
		gScratch := make([]float64, len(f.Trees))
		for i := 0; i < x.Rows; i += 1 + x.Rows/16 {
			v := x.Row(i)
			if cf.Predict(v) != f.Predict(v) {
				t.Fatalf("seed %d row %d: single-row predict diverges", seed, i)
			}
			wm := f.PredictQuantilesInto(v, qs, wScratch, wq)
			gm := cf.PredictQuantilesInto(v, qs, gScratch, gq)
			if wm != gm {
				t.Fatalf("seed %d row %d: quantile mean %v != %v", seed, i, gm, wm)
			}
			// Per-tree outputs feed conformal bands; the scratch must hold
			// identical (sorted) per-tree predictions, not just quantiles.
			for ti := range wScratch {
				if gScratch[ti] != wScratch[ti] {
					t.Fatalf("seed %d row %d tree %d: per-tree output %v != %v", seed, i, ti, gScratch[ti], wScratch[ti])
				}
			}
			for j := range qs {
				if gq[j] != wq[j] {
					t.Fatalf("seed %d row %d q=%v: %v != %v", seed, i, qs[j], gq[j], wq[j])
				}
			}
		}
	}
}

// TestCompiledGBRTDifferentialFuzz mirrors the forest differential for
// boosted ensembles across 100 seeded models.
func TestCompiledGBRTDifferentialFuzz(t *testing.T) {
	const seeds = 100
	for seed := uint64(1); seed <= seeds; seed++ {
		r := rng.New(1000 + seed)
		x, y := randomDataset(r)
		p := gbrt.Defaults()
		p.Rounds = 1 + r.Intn(25)
		p.MaxDepth = 1 + r.Intn(5)
		p.Subsample = 0.5 + r.Float64()/2
		m := gbrt.Fit(x, y, p, r)
		cm := CompileGBRT(m)

		want := m.PredictBatch(x, nil)
		got := cm.PredictBatch(x, make([]float64, x.Rows))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d row %d: batch compiled %v != pointer %v", seed, i, got[i], want[i])
			}
		}
		for i := 0; i < x.Rows; i += 1 + x.Rows/16 {
			if cm.Predict(x.Row(i)) != m.Predict(x.Row(i)) {
				t.Fatalf("seed %d row %d: single-row predict diverges", seed, i)
			}
		}
	}
}

// TestCompiledSingleTreeDifferentialFuzz covers the bare tree wrapper.
func TestCompiledSingleTreeDifferentialFuzz(t *testing.T) {
	ft := tree.NewFitter()
	for seed := uint64(1); seed <= 100; seed++ {
		r := rng.New(2000 + seed)
		x, y := randomDataset(r)
		p := tree.Defaults()
		p.MaxDepth = 1 + r.Intn(15)
		tr := ft.Fit(x, y, p, nil)
		ct := CompileTree(tr)
		want := tr.PredictBatch(x, nil)
		got := ct.PredictBatch(x, make([]float64, x.Rows))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d row %d: compiled %v != pointer %v", seed, i, got[i], want[i])
			}
		}
	}
}

// FuzzCompiledForestPredict is a native fuzz target over probe rows: the
// fuzzer mutates the probe's feature values (decoded from raw bytes, so
// NaN/Inf/subnormal patterns are reachable) against a fixed seeded
// forest, asserting the compiled traversal reaches exactly the pointer
// traversal's leaf. `go test` runs the seed corpus; `go test -fuzz` digs.
func FuzzCompiledForestPredict(f *testing.F) {
	r := rng.New(99)
	x, y := friedman(r, 150)
	p := forest.Defaults()
	p.Trees = 15
	pf := forest.Fit(x, y, p, r)
	cf := CompileForest(pf)

	f.Add(uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), uint64(6))
	f.Add(^uint64(0), uint64(0), uint64(1)<<63, uint64(0x7ff0000000000000), uint64(1), uint64(42))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g uint64) {
		probe := make([]float64, 6)
		for i, w := range [...]uint64{a, b, c, d, e, g} {
			probe[i] = math.Float64frombits(w)
		}
		want := pf.Predict(probe)
		got := cf.Predict(probe)
		// NaN != NaN, so compare bit patterns.
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("compiled %v != pointer %v for probe %v", got, want, probe)
		}
	})
}
