//go:build !race

package treec

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because instrumentation allocates.
const raceEnabled = false
