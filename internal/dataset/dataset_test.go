package dataset

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func sampleTable() *Table {
	t := NewTable("toy", []string{"a", "b"})
	t.Add(Run{Params: []float64{1, 2}, Scale: 4, Runtime: 10})
	t.Add(Run{Params: []float64{1, 2}, Scale: 8, Runtime: 6})
	t.Add(Run{Params: []float64{3, 4}, Scale: 4, Runtime: 20})
	t.Add(Run{Params: []float64{3, 4}, Scale: 8, Runtime: 12})
	t.Add(Run{Params: []float64{3, 4}, Scale: 8, Runtime: 14}) // repeat
	return t
}

func TestAddValidatesWidth(t *testing.T) {
	tb := NewTable("x", []string{"a"})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong width")
		}
	}()
	tb.Add(Run{Params: []float64{1, 2}})
}

func TestScales(t *testing.T) {
	got := sampleTable().Scales()
	if !reflect.DeepEqual(got, []int{4, 8}) {
		t.Fatalf("Scales = %v", got)
	}
}

func TestFilterScale(t *testing.T) {
	f := sampleTable().FilterScale(4)
	if f.Len() != 2 {
		t.Fatalf("FilterScale(4) has %d runs", f.Len())
	}
	for _, r := range f.Runs {
		if r.Scale != 4 {
			t.Fatal("wrong scale survived filter")
		}
	}
}

func TestFilterScales(t *testing.T) {
	f := sampleTable().FilterScales([]int{8})
	if f.Len() != 3 {
		t.Fatalf("FilterScales([8]) has %d runs", f.Len())
	}
}

func TestXY(t *testing.T) {
	x, y := sampleTable().XY()
	if x.Rows != 5 || x.Cols != 2 {
		t.Fatalf("XY shape %dx%d", x.Rows, x.Cols)
	}
	if x.At(2, 0) != 3 || y[2] != 20 {
		t.Fatal("XY content wrong")
	}
}

func TestXYWithScale(t *testing.T) {
	x, y := sampleTable().XYWithScale()
	if x.Cols != 3 {
		t.Fatalf("XYWithScale cols = %d", x.Cols)
	}
	if x.At(1, 2) != 8 || y[1] != 6 {
		t.Fatal("scale column wrong")
	}
}

func TestGroupByConfig(t *testing.T) {
	cfgs := sampleTable().GroupByConfig()
	if len(cfgs) != 2 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	// repeated (3,4)@8 should average to 13
	var c34 *Config
	for i := range cfgs {
		if cfgs[i].Params[0] == 3 {
			c34 = &cfgs[i]
		}
	}
	if c34 == nil {
		t.Fatal("config (3,4) missing")
	}
	if c34.Runtimes[8] != 13 {
		t.Fatalf("averaged runtime = %v", c34.Runtimes[8])
	}
}

func TestConfigCurve(t *testing.T) {
	cfgs := sampleTable().GroupByConfig()
	curve, ok := cfgs[0].Curve([]int{4, 8})
	if !ok || len(curve) != 2 {
		t.Fatalf("Curve = %v ok=%v", curve, ok)
	}
	if _, ok := cfgs[0].Curve([]int{4, 16}); ok {
		t.Fatal("Curve found missing scale")
	}
}

func TestSplitConfigsKeepsConfigsTogether(t *testing.T) {
	r := rng.New(1)
	tb := NewTable("x", []string{"p"})
	for c := 0; c < 40; c++ {
		for _, s := range []int{2, 4, 8} {
			tb.Add(Run{Params: []float64{float64(c)}, Scale: s, Runtime: float64(s)})
		}
	}
	train, test := tb.SplitConfigs(r, 0.25)
	if train.Len()+test.Len() != tb.Len() {
		t.Fatal("split lost runs")
	}
	if test.Len() != 30 { // 10 configs * 3 scales
		t.Fatalf("test has %d runs, want 30", test.Len())
	}
	trainKeys := map[string]bool{}
	for _, r := range train.Runs {
		trainKeys[ParamKey(r.Params)] = true
	}
	for _, r := range test.Runs {
		if trainKeys[ParamKey(r.Params)] {
			t.Fatal("config leaked across split")
		}
	}
}

func TestSplitConfigsBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sampleTable().SplitConfigs(rng.New(1), 1.0)
}

func TestKFoldPartition(t *testing.T) {
	r := rng.New(2)
	folds := KFold(r, 10, 3)
	if len(folds) != 3 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f.Train)+len(f.Test) != 10 {
			t.Fatal("fold does not cover all rows")
		}
		inTest := map[int]bool{}
		for _, i := range f.Test {
			seen[i]++
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatal("row in both train and test")
			}
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("row %d appears in %d test folds", i, seen[i])
		}
	}
}

func TestKFoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KFold(rng.New(1), 3, 5)
}

func TestSubset(t *testing.T) {
	tb := sampleTable()
	sub := tb.Subset([]int{0, 3})
	if sub.Len() != 2 || sub.Runs[1].Runtime != 12 {
		t.Fatalf("Subset = %+v", sub.Runs)
	}
}

func TestMerge(t *testing.T) {
	a := sampleTable()
	b := sampleTable()
	n := a.Len()
	a.Merge(b)
	if a.Len() != 2*n {
		t.Fatal("Merge lost runs")
	}
}

func TestMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sampleTable().Merge(NewTable("x", []string{"other"}))
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sampleTable()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "toy" || !reflect.DeepEqual(got.ParamNames, tb.ParamNames) {
		t.Fatalf("metadata mismatch: %q %v", got.App, got.ParamNames)
	}
	if !reflect.DeepEqual(got.Runs, tb.Runs) {
		t.Fatalf("runs mismatch:\n%v\n%v", got.Runs, tb.Runs)
	}
}

func TestCSVRoundTripPrecision(t *testing.T) {
	tb := NewTable("p", []string{"x"})
	tb.Add(Run{Params: []float64{math.Pi}, Scale: 1024, Runtime: 1e-9})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs[0].Params[0] != math.Pi || got.Runs[0].Runtime != 1e-9 {
		t.Fatal("float precision lost in round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                   // empty
		"a,b\n1,2\n",                         // header missing scale,runtime
		"#app,x\na,scale,runtime\nbad,2,3\n", // bad float
		"#app,x\na,scale,runtime\n1,2.5,3\n", // bad scale int
		"#app,x\na,scale,runtime\n1,2\n",     // short record
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d: no error for %q", i, c)
		}
	}
}

func TestReadCSVWithoutAppRecord(t *testing.T) {
	in := "a,scale,runtime\n1,2,3.5\n"
	tb, err := ReadCSV(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.App != "" || tb.Len() != 1 || tb.Runs[0].Runtime != 3.5 {
		t.Fatalf("parsed %+v", tb)
	}
}

func TestSaveLoadCSV(t *testing.T) {
	tb := sampleTable()
	path := t.TempDir() + "/runs.csv"
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() {
		t.Fatal("file round trip lost runs")
	}
}
