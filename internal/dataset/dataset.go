// Package dataset defines the execution-history data model shared by the
// simulator, the learning algorithms, and the experiment harness.
//
// A Run is one observed execution: an application input-parameter vector,
// the scale it ran at (number of processes), and the measured runtime.
// A Table is an ordered collection of Runs with named parameter columns;
// it converts to the feature matrices consumed by the regressors, splits
// into train/test partitions and cross-validation folds, and round-trips
// through CSV.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Run is a single observed (or simulated) application execution.
type Run struct {
	Params  []float64 // application input parameters, order fixed by Table.ParamNames
	Scale   int       // number of processes
	Runtime float64   // wall-clock seconds
}

// Table is an execution-history dataset.
type Table struct {
	App        string   // application name, informational
	ParamNames []string // names of the parameter columns
	Runs       []Run
}

// NewTable returns an empty table for the named application and parameters.
func NewTable(app string, paramNames []string) *Table {
	return &Table{App: app, ParamNames: append([]string(nil), paramNames...)}
}

// Add appends a run after validating its parameter-vector width.
func (t *Table) Add(r Run) {
	if len(r.Params) != len(t.ParamNames) {
		panic(fmt.Sprintf("dataset: run has %d params, table has %d columns", len(r.Params), len(t.ParamNames)))
	}
	t.Runs = append(t.Runs, r)
}

// Len returns the number of runs.
func (t *Table) Len() int { return len(t.Runs) }

// Scales returns the distinct scales present, ascending.
func (t *Table) Scales() []int {
	seen := map[int]bool{}
	for _, r := range t.Runs {
		seen[r.Scale] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// FilterScale returns a new table containing only runs at scale s.
// The runs slice is fresh but Params slices are shared.
func (t *Table) FilterScale(s int) *Table {
	out := NewTable(t.App, t.ParamNames)
	for _, r := range t.Runs {
		if r.Scale == s {
			out.Runs = append(out.Runs, r)
		}
	}
	return out
}

// FilterScales returns a new table containing only runs whose scale is in keep.
func (t *Table) FilterScales(keep []int) *Table {
	set := map[int]bool{}
	for _, s := range keep {
		set[s] = true
	}
	out := NewTable(t.App, t.ParamNames)
	for _, r := range t.Runs {
		if set[r.Scale] {
			out.Runs = append(out.Runs, r)
		}
	}
	return out
}

// XY extracts the feature matrix (parameters only) and runtime targets.
func (t *Table) XY() (*mat.Dense, []float64) {
	x := mat.NewDense(len(t.Runs), len(t.ParamNames))
	y := make([]float64, len(t.Runs))
	for i, r := range t.Runs {
		copy(x.Row(i), r.Params)
		y[i] = r.Runtime
	}
	return x, y
}

// XYWithScale extracts features with the scale appended as the last column.
// This is the representation direct-ML baselines train on: they see scale
// as just another feature and must extrapolate along it.
func (t *Table) XYWithScale() (*mat.Dense, []float64) {
	p := len(t.ParamNames)
	x := mat.NewDense(len(t.Runs), p+1)
	y := make([]float64, len(t.Runs))
	for i, r := range t.Runs {
		row := x.Row(i)
		copy(row, r.Params)
		row[p] = float64(r.Scale)
		y[i] = r.Runtime
	}
	return x, y
}

// ParamKey returns a canonical string key for a parameter vector, used to
// group runs of the same configuration across scales.
func ParamKey(params []float64) string {
	return fmt.Sprintf("%v", params)
}

// Config groups the runs of one input configuration across scales.
type Config struct {
	Params   []float64
	Runtimes map[int]float64 // scale -> runtime (mean if repeated)
}

// GroupByConfig collapses the table into per-configuration scaling curves.
// Repeated (config, scale) measurements are averaged. Order of the result
// is deterministic (sorted by parameter key).
func (t *Table) GroupByConfig() []Config {
	type acc struct {
		params []float64
		sum    map[int]float64
		n      map[int]int
	}
	m := map[string]*acc{}
	keys := []string{}
	for _, r := range t.Runs {
		k := ParamKey(r.Params)
		a, ok := m[k]
		if !ok {
			a = &acc{params: r.Params, sum: map[int]float64{}, n: map[int]int{}}
			m[k] = a
			keys = append(keys, k)
		}
		a.sum[r.Scale] += r.Runtime
		a.n[r.Scale]++
	}
	sort.Strings(keys)
	out := make([]Config, 0, len(keys))
	for _, k := range keys {
		a := m[k]
		rt := make(map[int]float64, len(a.sum))
		for s, v := range a.sum {
			rt[s] = v / float64(a.n[s])
		}
		out = append(out, Config{Params: a.params, Runtimes: rt})
	}
	return out
}

// Curve returns the runtimes of c at the given scales; ok is false if any
// scale is missing.
func (c Config) Curve(scales []int) (curve []float64, ok bool) {
	curve = make([]float64, len(scales))
	for i, s := range scales {
		v, present := c.Runtimes[s]
		if !present {
			return nil, false
		}
		curve[i] = v
	}
	return curve, true
}

// SplitConfigs partitions the distinct configurations of t into train and
// test tables with the given test fraction, keeping all scales of a
// configuration on the same side (the unit of generalization in the paper
// is a configuration, not a single run).
func (t *Table) SplitConfigs(r *rng.Source, testFrac float64) (train, test *Table) {
	if testFrac < 0 || testFrac >= 1 {
		panic(fmt.Sprintf("dataset: bad test fraction %v", testFrac))
	}
	keys := []string{}
	seen := map[string]bool{}
	for _, run := range t.Runs {
		k := ParamKey(run.Params)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	perm := r.Perm(len(keys))
	nTest := int(float64(len(keys)) * testFrac)
	testSet := map[string]bool{}
	for _, i := range perm[:nTest] {
		testSet[keys[i]] = true
	}
	train = NewTable(t.App, t.ParamNames)
	test = NewTable(t.App, t.ParamNames)
	for _, run := range t.Runs {
		if testSet[ParamKey(run.Params)] {
			test.Runs = append(test.Runs, run)
		} else {
			train.Runs = append(train.Runs, run)
		}
	}
	return train, test
}

// Fold is one cross-validation fold given as row indices into a table.
type Fold struct {
	Train, Test []int
}

// KFold returns k cross-validation folds over row indices [0, n), shuffled
// by r. Folds differ in size by at most one. It panics if k < 2 or k > n.
func KFold(r *rng.Source, n, k int) []Fold {
	if k < 2 || k > n {
		panic(fmt.Sprintf("dataset: KFold k=%d n=%d", k, n))
	}
	perm := r.Perm(n)
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds
}

// Subset returns a new table containing the runs at the given indices.
func (t *Table) Subset(idx []int) *Table {
	out := NewTable(t.App, t.ParamNames)
	out.Runs = make([]Run, len(idx))
	for i, j := range idx {
		out.Runs[i] = t.Runs[j]
	}
	return out
}

// Merge appends all runs of other (which must have the same columns).
func (t *Table) Merge(other *Table) {
	if len(other.ParamNames) != len(t.ParamNames) {
		panic("dataset: Merge column mismatch")
	}
	for i, n := range t.ParamNames {
		if other.ParamNames[i] != n {
			panic("dataset: Merge column name mismatch")
		}
	}
	t.Runs = append(t.Runs, other.Runs...)
}
