package dataset

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Scaler is a fitted, invertible per-column feature transform.
type Scaler interface {
	// Transform maps x (rows are samples) to the scaled space, in place.
	Transform(x *mat.Dense)
	// TransformVec maps a single feature vector in place.
	TransformVec(v []float64)
	// Inverse undoes TransformVec in place.
	Inverse(v []float64)
}

// StandardScaler centers each column to mean 0 and scales to unit variance.
// Constant columns are centered but left unscaled.
type StandardScaler struct {
	Mean, Std []float64
}

// FitStandard learns column means and standard deviations from x.
func FitStandard(x *mat.Dense) *StandardScaler {
	if x.Rows == 0 {
		panic("dataset: FitStandard on empty matrix")
	}
	s := &StandardScaler{
		Mean: make([]float64, x.Cols),
		Std:  make([]float64, x.Cols),
	}
	for j := 0; j < x.Cols; j++ {
		var sum float64
		for i := 0; i < x.Rows; i++ {
			sum += x.At(i, j)
		}
		m := sum / float64(x.Rows)
		var ss float64
		for i := 0; i < x.Rows; i++ {
			d := x.At(i, j) - m
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(x.Rows))
		if sd == 0 {
			sd = 1
		}
		s.Mean[j], s.Std[j] = m, sd
	}
	return s
}

func (s *StandardScaler) check(cols int) {
	if cols != len(s.Mean) {
		panic(fmt.Sprintf("dataset: scaler fitted on %d cols, got %d", len(s.Mean), cols))
	}
}

// Transform standardizes x in place.
func (s *StandardScaler) Transform(x *mat.Dense) {
	s.check(x.Cols)
	for i := 0; i < x.Rows; i++ {
		s.TransformVec(x.Row(i))
	}
}

// TransformVec standardizes one vector in place.
func (s *StandardScaler) TransformVec(v []float64) {
	s.check(len(v))
	for j := range v {
		v[j] = (v[j] - s.Mean[j]) / s.Std[j]
	}
}

// Inverse maps a standardized vector back to the original space in place.
func (s *StandardScaler) Inverse(v []float64) {
	s.check(len(v))
	for j := range v {
		v[j] = v[j]*s.Std[j] + s.Mean[j]
	}
}

// MinMaxScaler maps each column to [0, 1]. Constant columns map to 0.
type MinMaxScaler struct {
	Lo, Hi []float64
}

// FitMinMax learns per-column ranges from x.
func FitMinMax(x *mat.Dense) *MinMaxScaler {
	if x.Rows == 0 {
		panic("dataset: FitMinMax on empty matrix")
	}
	s := &MinMaxScaler{
		Lo: make([]float64, x.Cols),
		Hi: make([]float64, x.Cols),
	}
	for j := 0; j < x.Cols; j++ {
		lo, hi := x.At(0, j), x.At(0, j)
		for i := 1; i < x.Rows; i++ {
			v := x.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		s.Lo[j], s.Hi[j] = lo, hi
	}
	return s
}

func (s *MinMaxScaler) check(cols int) {
	if cols != len(s.Lo) {
		panic(fmt.Sprintf("dataset: scaler fitted on %d cols, got %d", len(s.Lo), cols))
	}
}

// Transform rescales x into [0,1] per column, in place.
func (s *MinMaxScaler) Transform(x *mat.Dense) {
	s.check(x.Cols)
	for i := 0; i < x.Rows; i++ {
		s.TransformVec(x.Row(i))
	}
}

// TransformVec rescales one vector in place.
func (s *MinMaxScaler) TransformVec(v []float64) {
	s.check(len(v))
	for j := range v {
		span := s.Hi[j] - s.Lo[j]
		if span == 0 {
			v[j] = 0
			continue
		}
		v[j] = (v[j] - s.Lo[j]) / span
	}
}

// Inverse maps a [0,1]-scaled vector back to the original space in place.
func (s *MinMaxScaler) Inverse(v []float64) {
	s.check(len(v))
	for j := range v {
		v[j] = v[j]*(s.Hi[j]-s.Lo[j]) + s.Lo[j]
	}
}

var (
	_ Scaler = (*StandardScaler)(nil)
	_ Scaler = (*MinMaxScaler)(nil)
)
