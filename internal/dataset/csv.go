package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// csv layout: header is app metadata free; columns are
// param1,...,paramN,scale,runtime. The application name travels in a
// leading comment-style record "#app,<name>" so a file is self-contained.

// WriteCSV serializes the table.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#app", t.App}); err != nil {
		return err
	}
	header := append(append([]string{}, t.ParamNames...), "scale", "runtime")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, r := range t.Runs {
		for i, v := range r.Params {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(t.ParamNames)] = strconv.Itoa(r.Scale)
		rec[len(t.ParamNames)+1] = strconv.FormatFloat(r.Runtime, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading app record: %w", err)
	}
	app := ""
	var header []string
	if len(first) >= 1 && first[0] == "#app" {
		if len(first) > 1 {
			app = first[1]
		}
		header, err = cr.Read()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading header: %w", err)
		}
	} else {
		header = first
	}
	if len(header) < 2 || header[len(header)-1] != "runtime" || header[len(header)-2] != "scale" {
		return nil, fmt.Errorf("dataset: header must end with scale,runtime; got %v", header)
	}
	t := NewTable(app, header[:len(header)-2])
	p := len(t.ParamNames)
	line := 2
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		line++
		if len(rec) != p+2 {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), p+2)
		}
		run := Run{Params: make([]float64, p)}
		for i := 0; i < p; i++ {
			run.Params[i], err = strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %q: %w", line, rec[i], err)
			}
		}
		run.Scale, err = strconv.Atoi(rec[p])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d scale %q: %w", line, rec[p], err)
		}
		run.Runtime, err = strconv.ParseFloat(rec[p+1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d runtime %q: %w", line, rec[p+1], err)
		}
		t.Runs = append(t.Runs, run)
	}
	return t, nil
}

// SaveCSV writes the table to a file path.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// LoadCSV reads a table from a file path.
func LoadCSV(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
