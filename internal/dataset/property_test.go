package dataset

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestCSVRoundTripProperty: any randomly generated table survives the CSV
// round trip exactly.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 1)
		nParams := 1 + r.Intn(5)
		names := make([]string, nParams)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		tb := NewTable("prop", names)
		n := r.Intn(30)
		for i := 0; i < n; i++ {
			run := Run{Params: make([]float64, nParams), Scale: 1 + r.Intn(1<<12)}
			for j := range run.Params {
				run.Params[j] = r.Uniform(-1e6, 1e6)
			}
			run.Runtime = r.Uniform(1e-9, 1e6)
			tb.Add(run)
		}
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return got.App == tb.App &&
			reflect.DeepEqual(got.ParamNames, tb.ParamNames) &&
			(len(got.Runs) == 0 && len(tb.Runs) == 0 || reflect.DeepEqual(got.Runs, tb.Runs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitConfigsPartitionProperty: for any table and fraction, the split
// is a partition at configuration granularity.
func TestSplitConfigsPartitionProperty(t *testing.T) {
	f := func(seed uint16, fracRaw uint8) bool {
		r := rng.New(uint64(seed) + 7)
		frac := float64(fracRaw%90) / 100
		tb := NewTable("prop", []string{"p"})
		nCfg := 3 + r.Intn(30)
		for c := 0; c < nCfg; c++ {
			for s := 1; s <= 1+r.Intn(4); s++ {
				tb.Add(Run{Params: []float64{float64(c)}, Scale: s << 1, Runtime: 1})
			}
		}
		train, test := tb.SplitConfigs(r, frac)
		if train.Len()+test.Len() != tb.Len() {
			return false
		}
		inTrain := map[string]bool{}
		for _, run := range train.Runs {
			inTrain[ParamKey(run.Params)] = true
		}
		for _, run := range test.Runs {
			if inTrain[ParamKey(run.Params)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupByConfigCountProperty: grouping never loses or invents
// configurations, and averages preserve the runtime sum per (config,scale).
func TestGroupByConfigCountProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 13)
		tb := NewTable("prop", []string{"p"})
		nCfg := 1 + r.Intn(10)
		for c := 0; c < nCfg; c++ {
			reps := 1 + r.Intn(3)
			for rep := 0; rep < reps; rep++ {
				tb.Add(Run{Params: []float64{float64(c)}, Scale: 2, Runtime: r.Uniform(1, 10)})
			}
		}
		groups := tb.GroupByConfig()
		return len(groups) == nCfg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestLHSBoundsProperty: Latin hypercube samples always respect bounds.
func TestLHSBoundsProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		r := rng.New(uint64(seed) + 17)
		n := 1 + int(nRaw%40)
		sp := Space{Params: []ParamDef{
			{Name: "a", Lo: -5, Hi: 5},
			{Name: "b", Values: []float64{1, 2, 3}},
		}}
		for _, v := range sp.SampleLatinHypercube(r, n) {
			if v[0] < -5 || v[0] >= 5 {
				return false
			}
			if v[1] != 1 && v[1] != 2 && v[1] != 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
