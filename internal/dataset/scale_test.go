package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestStandardScalerMoments(t *testing.T) {
	r := rng.New(1)
	x := mat.NewDense(200, 3)
	for i := range x.Data {
		x.Data[i] = r.Uniform(-5, 20)
	}
	s := FitStandard(x)
	s.Transform(x)
	for j := 0; j < x.Cols; j++ {
		var sum, ss float64
		for i := 0; i < x.Rows; i++ {
			sum += x.At(i, j)
		}
		m := sum / float64(x.Rows)
		for i := 0; i < x.Rows; i++ {
			d := x.At(i, j) - m
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(x.Rows))
		if math.Abs(m) > 1e-10 || math.Abs(sd-1) > 1e-10 {
			t.Fatalf("col %d: mean=%v sd=%v after standardize", j, m, sd)
		}
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	x := mat.FromRows([][]float64{{5, 1}, {5, 2}, {5, 3}})
	s := FitStandard(x)
	s.Transform(x)
	for i := 0; i < 3; i++ {
		if x.At(i, 0) != 0 {
			t.Fatal("constant column should center to 0")
		}
	}
}

func TestStandardScalerInverseProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rng.New(uint64(seed) + 1)
		x := mat.NewDense(30, 4)
		for i := range x.Data {
			x.Data[i] = r.Uniform(-10, 10)
		}
		s := FitStandard(x)
		v := []float64{r.Norm(), r.Norm(), r.Norm(), r.Norm()}
		orig := append([]float64(nil), v...)
		s.TransformVec(v)
		s.Inverse(v)
		for i := range v {
			if math.Abs(v[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardScalerShapeMismatchPanics(t *testing.T) {
	x := mat.NewDense(2, 2)
	x.Data = []float64{1, 2, 3, 4}
	s := FitStandard(x)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.TransformVec([]float64{1, 2, 3})
}

func TestMinMaxScalerRange(t *testing.T) {
	r := rng.New(3)
	x := mat.NewDense(100, 2)
	for i := range x.Data {
		x.Data[i] = r.Uniform(3, 9)
	}
	s := FitMinMax(x)
	s.Transform(x)
	for _, v := range x.Data {
		if v < 0 || v > 1 {
			t.Fatalf("minmax value %v outside [0,1]", v)
		}
	}
}

func TestMinMaxScalerConstant(t *testing.T) {
	x := mat.FromRows([][]float64{{7}, {7}})
	s := FitMinMax(x)
	v := []float64{7}
	s.TransformVec(v)
	if v[0] != 0 {
		t.Fatalf("constant column mapped to %v", v[0])
	}
}

func TestMinMaxInverse(t *testing.T) {
	x := mat.FromRows([][]float64{{0, 10}, {4, 30}})
	s := FitMinMax(x)
	v := []float64{2, 20}
	s.TransformVec(v)
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Fatalf("transform = %v", v)
	}
	s.Inverse(v)
	if v[0] != 2 || v[1] != 20 {
		t.Fatalf("inverse = %v", v)
	}
}

func TestFitOnEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FitStandard(mat.NewDense(0, 2))
}

func TestSampleUniformInBounds(t *testing.T) {
	sp := Space{Params: []ParamDef{
		{Name: "a", Lo: 1, Hi: 3},
		{Name: "b", Values: []float64{10, 20, 30}},
	}}
	r := rng.New(5)
	for _, v := range sp.SampleUniform(r, 500) {
		if v[0] < 1 || v[0] >= 3 {
			t.Fatalf("continuous out of bounds: %v", v[0])
		}
		if v[1] != 10 && v[1] != 20 && v[1] != 30 {
			t.Fatalf("discrete out of set: %v", v[1])
		}
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	sp := Space{Params: []ParamDef{{Name: "a", Lo: 0, Hi: 1}}}
	r := rng.New(7)
	n := 50
	pts := sp.SampleLatinHypercube(r, n)
	// exactly one sample per stratum [i/n, (i+1)/n)
	seen := make([]int, n)
	for _, v := range pts {
		s := int(v[0] * float64(n))
		if s == n {
			s = n - 1
		}
		seen[s]++
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("stratum %d has %d samples", i, c)
		}
	}
}

func TestLatinHypercubeDiscrete(t *testing.T) {
	sp := Space{Params: []ParamDef{{Name: "d", Values: []float64{1, 2}}}}
	r := rng.New(8)
	for _, v := range sp.SampleLatinHypercube(r, 20) {
		if v[0] != 1 && v[0] != 2 {
			t.Fatalf("discrete LHS value %v", v[0])
		}
	}
}

func TestGridEnumeration(t *testing.T) {
	sp := Space{Params: []ParamDef{
		{Name: "a", Lo: 0, Hi: 1},
		{Name: "b", Values: []float64{5, 6, 7}},
	}}
	g := sp.Grid(3)
	if len(g) != 9 {
		t.Fatalf("grid size %d, want 9", len(g))
	}
	// endpoints present
	found := false
	for _, v := range g {
		if v[0] == 1 && v[1] == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("grid missing corner point")
	}
	// deterministic
	g2 := sp.Grid(3)
	for i := range g {
		if g[i][0] != g2[i][0] || g[i][1] != g2[i][1] {
			t.Fatal("grid not deterministic")
		}
	}
}

func TestGridPanics(t *testing.T) {
	sp := Space{Params: []ParamDef{{Name: "a", Lo: 0, Hi: 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sp.Grid(1)
}

func TestSpaceValidate(t *testing.T) {
	sp := Space{Params: []ParamDef{{Name: "a", Lo: 2, Hi: 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Hi < Lo")
		}
	}()
	sp.SampleUniform(rng.New(1), 1)
}
