package dataset

import (
	"fmt"

	"repro/internal/rng"
)

// ParamDef describes one dimension of an application's input-parameter
// space. Continuous dimensions sample uniformly in [Lo, Hi]; discrete
// dimensions sample from Values.
type ParamDef struct {
	Name   string
	Lo, Hi float64   // used when Values is empty
	Values []float64 // if non-empty, the dimension is categorical/discrete
}

// Space is an application's input-parameter space.
type Space struct {
	Params []ParamDef
}

// Names returns the parameter names in order.
func (sp Space) Names() []string {
	out := make([]string, len(sp.Params))
	for i, p := range sp.Params {
		out[i] = p.Name
	}
	return out
}

// validate panics on an ill-formed space; sampling errors here are
// programming errors in workload definitions.
func (sp Space) validate() {
	if len(sp.Params) == 0 {
		panic("dataset: empty parameter space")
	}
	for _, p := range sp.Params {
		if len(p.Values) == 0 && p.Hi < p.Lo {
			panic(fmt.Sprintf("dataset: parameter %q has Hi < Lo", p.Name))
		}
	}
}

// SampleUniform draws n parameter vectors uniformly at random.
func (sp Space) SampleUniform(r *rng.Source, n int) [][]float64 {
	sp.validate()
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, len(sp.Params))
		for j, p := range sp.Params {
			if len(p.Values) > 0 {
				v[j] = p.Values[r.Intn(len(p.Values))]
			} else {
				v[j] = r.Uniform(p.Lo, p.Hi)
			}
		}
		out[i] = v
	}
	return out
}

// SampleLatinHypercube draws n parameter vectors with Latin hypercube
// stratification on the continuous dimensions (each dimension's range is
// cut into n strata, one sample per stratum, independently permuted);
// discrete dimensions sample uniformly.
func (sp Space) SampleLatinHypercube(r *rng.Source, n int) [][]float64 {
	sp.validate()
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, len(sp.Params))
	}
	for j, p := range sp.Params {
		if len(p.Values) > 0 {
			for i := range out {
				out[i][j] = p.Values[r.Intn(len(p.Values))]
			}
			continue
		}
		perm := r.Perm(n)
		span := p.Hi - p.Lo
		for i := range out {
			stratum := float64(perm[i])
			u := (stratum + r.Float64()) / float64(n)
			out[i][j] = p.Lo + u*span
		}
	}
	return out
}

// Grid enumerates the full Cartesian product of discrete dimensions;
// continuous dimensions are discretized into steps points (endpoints
// included). The result order is deterministic. Use with care: the size is
// the product of all dimension cardinalities.
func (sp Space) Grid(steps int) [][]float64 {
	sp.validate()
	if steps < 2 {
		panic("dataset: Grid needs steps >= 2")
	}
	levels := make([][]float64, len(sp.Params))
	for j, p := range sp.Params {
		if len(p.Values) > 0 {
			levels[j] = p.Values
			continue
		}
		vs := make([]float64, steps)
		for s := 0; s < steps; s++ {
			vs[s] = p.Lo + (p.Hi-p.Lo)*float64(s)/float64(steps-1)
		}
		levels[j] = vs
	}
	total := 1
	for _, l := range levels {
		total *= len(l)
	}
	out := make([][]float64, 0, total)
	idx := make([]int, len(levels))
	for {
		v := make([]float64, len(levels))
		for j := range levels {
			v[j] = levels[j][idx[j]]
		}
		out = append(out, v)
		// odometer increment
		j := len(levels) - 1
		for j >= 0 {
			idx[j]++
			if idx[j] < len(levels[j]) {
				break
			}
			idx[j] = 0
			j--
		}
		if j < 0 {
			break
		}
	}
	return out
}
