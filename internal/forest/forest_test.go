package forest

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/stats"
)

// friedman1-style data: y = 10 sin(pi x0 x1) + 20 (x2-.5)^2 + 10 x3 + 5 x4 + noise
func friedman(r *rng.Source, n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 6) // feature 5 is pure noise
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 6; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = 10*math.Sin(math.Pi*x.At(i, 0)*x.At(i, 1)) +
			20*math.Pow(x.At(i, 2)-0.5, 2) +
			10*x.At(i, 3) + 5*x.At(i, 4) + 0.1*r.Norm()
	}
	return x, y
}

func TestFitPredictAccuracy(t *testing.T) {
	r := rng.New(1)
	xTr, yTr := friedman(r, 500)
	xTe, yTe := friedman(r, 200)
	p := Defaults()
	p.Trees = 60
	f := Fit(xTr, yTr, p, r)
	pred := f.PredictBatch(xTe, nil)
	if r2 := stats.R2(yTe, pred); r2 < 0.8 {
		t.Fatalf("forest test R2 = %v, want >= 0.8", r2)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	r1 := rng.New(7)
	x1, y1 := friedman(r1, 200)
	p := Defaults()
	p.Trees = 20
	p.Workers = 1
	f1 := Fit(x1, y1, p, rng.New(42))

	r2 := rng.New(7)
	x2, y2 := friedman(r2, 200)
	p.Workers = 4 // different parallelism must not change the model
	f2 := Fit(x2, y2, p, rng.New(42))

	probe := []float64{0.3, 0.6, 0.2, 0.9, 0.5, 0.1}
	if f1.Predict(probe) != f2.Predict(probe) {
		t.Fatal("forest not deterministic across worker counts")
	}
}

func TestPredictIsTreeMean(t *testing.T) {
	r := rng.New(3)
	x, y := friedman(r, 100)
	p := Defaults()
	p.Trees = 10
	f := Fit(x, y, p, r)
	v := x.Row(0)
	var s float64
	for _, tr := range f.Trees {
		s += tr.Predict(v)
	}
	if math.Abs(f.Predict(v)-s/10) > 1e-12 {
		t.Fatal("Predict != mean of tree predictions")
	}
}

func TestBaggingReducesVariance(t *testing.T) {
	// A 100-tree forest should generalize better than a single deep tree
	// on noisy data.
	r := rng.New(5)
	xTr, yTr := friedman(r, 300)
	xTe, yTe := friedman(r, 300)

	p1 := Defaults()
	p1.Trees = 1
	single := Fit(xTr, yTr, p1, rng.New(1))

	p2 := Defaults()
	p2.Trees = 100
	many := Fit(xTr, yTr, p2, rng.New(1))

	rmse1 := stats.RMSE(yTe, single.PredictBatch(xTe, nil))
	rmse100 := stats.RMSE(yTe, many.PredictBatch(xTe, nil))
	if rmse100 >= rmse1 {
		t.Fatalf("100 trees (%v) not better than 1 tree (%v)", rmse100, rmse1)
	}
}

func TestOOBErrorTracksTestError(t *testing.T) {
	r := rng.New(9)
	xTr, yTr := friedman(r, 400)
	xTe, yTe := friedman(r, 400)
	p := Defaults()
	p.Trees = 80
	f := Fit(xTr, yTr, p, r)
	oobMSE := f.OOBError(xTr, yTr)
	pred := f.PredictBatch(xTe, nil)
	testMSE := stats.RMSE(yTe, pred)
	testMSE *= testMSE
	if math.IsNaN(oobMSE) {
		t.Fatal("OOB error is NaN")
	}
	// OOB should be the right order of magnitude (within 3x of test MSE)
	if oobMSE > 3*testMSE || testMSE > 3*oobMSE {
		t.Fatalf("OOB MSE %v vs test MSE %v diverge", oobMSE, testMSE)
	}
}

func TestOOBIndicesDisjointFromBootstrap(t *testing.T) {
	r := rng.New(11)
	x, y := friedman(r, 50)
	p := Defaults()
	p.Trees = 5
	f := Fit(x, y, p, r)
	for ti, idxs := range f.OOBIndices {
		if len(idxs) == 0 {
			t.Fatalf("tree %d has no OOB rows (unexpected for n=50)", ti)
		}
		for _, i := range idxs {
			if i < 0 || i >= 50 {
				t.Fatalf("OOB index %d out of range", i)
			}
		}
	}
}

func TestPredictQuantileOrdering(t *testing.T) {
	r := rng.New(13)
	x, y := friedman(r, 200)
	p := Defaults()
	p.Trees = 30
	f := Fit(x, y, p, r)
	v := x.Row(5)
	lo := f.PredictQuantile(v, 0.1)
	med := f.PredictQuantile(v, 0.5)
	hi := f.PredictQuantile(v, 0.9)
	if !(lo <= med && med <= hi) {
		t.Fatalf("quantiles not ordered: %v %v %v", lo, med, hi)
	}
	mean := f.Predict(v)
	if mean < lo || mean > hi {
		t.Fatalf("mean %v outside [q10, q90] = [%v, %v]", mean, lo, hi)
	}
}

func TestPredictQuantilePanics(t *testing.T) {
	r := rng.New(14)
	x, y := friedman(r, 30)
	f := Fit(x, y, Params{Trees: 3, Tree: Defaults().Tree}, r)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.PredictQuantile(x.Row(0), 1.5)
}

func TestPermutationImportanceFindsNoiseFeature(t *testing.T) {
	r := rng.New(15)
	x, y := friedman(r, 400)
	p := Defaults()
	p.Trees = 60
	f := Fit(x, y, p, r)
	imp := f.PermutationImportance(x, y, r)
	// feature 5 is pure noise: its importance must be the smallest (or near 0)
	for j := 0; j < 5; j++ {
		if imp[5] > imp[j] {
			t.Fatalf("noise feature importance %v exceeds real feature %d (%v)", imp[5], j, imp[j])
		}
	}
	// feature 3 (strong linear term) should matter
	if imp[3] <= 0 {
		t.Fatalf("importance of informative feature 3 = %v", imp[3])
	}
}

func TestPermutationImportanceRestoresMatrix(t *testing.T) {
	r := rng.New(16)
	x, y := friedman(r, 100)
	orig := x.Clone()
	p := Defaults()
	p.Trees = 10
	f := Fit(x, y, p, r)
	f.PermutationImportance(x, y, r)
	if !mat.Equalish(x, orig, 0) {
		t.Fatal("PermutationImportance corrupted the input matrix")
	}
}

func TestPredictDimensionPanics(t *testing.T) {
	r := rng.New(17)
	x, y := friedman(r, 30)
	f := Fit(x, y, Params{Trees: 2, Tree: Defaults().Tree}, r)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Predict([]float64{1})
}

func TestFitEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fit(mat.NewDense(0, 3), nil, Defaults(), rng.New(1))
}

func TestMaxFeaturesDefaultRule(t *testing.T) {
	// p/3 default must be at least 1 even for 1-2 feature problems.
	r := rng.New(19)
	x := mat.NewDense(50, 1)
	y := make([]float64, 50)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, float64(i))
		y[i] = float64(i)
	}
	p := Defaults()
	p.Trees = 5
	f := Fit(x, y, p, r)
	pred := f.PredictBatch(x, nil)
	if stats.R2(y, pred) < 0.99 {
		t.Fatal("forest failed trivial 1-feature identity fit")
	}
}

func BenchmarkFit500x6x50Trees(b *testing.B) {
	r := rng.New(1)
	x, y := friedman(r, 500)
	p := Defaults()
	p.Trees = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(x, y, p, rng.New(uint64(i)))
	}
}

func BenchmarkPredict(b *testing.B) {
	r := rng.New(1)
	x, y := friedman(r, 500)
	p := Defaults()
	p.Trees = 100
	f := Fit(x, y, p, r)
	v := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(v)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	r := rng.New(11)
	x, y := friedman(r, 300)
	p := Defaults()
	p.Trees = 30
	f := Fit(x, y, p, r)
	got := f.PredictBatch(x, make([]float64, x.Rows))
	for i := 0; i < x.Rows; i++ {
		if got[i] != f.Predict(x.Row(i)) {
			t.Fatalf("row %d: PredictBatch %v != Predict %v", i, got[i], f.Predict(x.Row(i)))
		}
	}
}

func TestPredictBatchParallelMatchesSerial(t *testing.T) {
	r := rng.New(12)
	x, y := friedman(r, 700) // several predictBlock chunks
	p := Defaults()
	p.Trees = 20
	f := Fit(x, y, p, r)
	serial := f.PredictBatch(x, nil)
	for _, workers := range []int{0, 1, 2, 3, 7} {
		par := f.PredictBatchParallel(x, make([]float64, x.Rows), workers)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d row %d: parallel %v != serial %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestPredictBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	r := rng.New(13)
	x, y := friedman(r, 200)
	p := Defaults()
	p.Trees = 10
	f := Fit(x, y, p, r)
	dst := make([]float64, x.Rows)
	if n := testing.AllocsPerRun(20, func() { f.PredictBatch(x, dst) }); n != 0 {
		t.Fatalf("PredictBatch with reused dst allocates %v times per call, want 0", n)
	}
}

func BenchmarkForestPredictBatch(b *testing.B) {
	r := rng.New(1)
	x, y := friedman(r, 2000)
	p := Defaults()
	p.Trees = 100
	f := Fit(x, y, p, r)
	dst := make([]float64, x.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictBatch(x, dst)
	}
}

func TestPredictQuantilesIntoMatchesSingleCalls(t *testing.T) {
	r := rng.New(9)
	x, y := friedman(r, 200)
	p := Defaults()
	p.Trees = 25
	f := Fit(x, y, p, r)
	probe := []float64{0.3, 0.6, 0.2, 0.9, 0.5, 0.1}

	qs := []float64{0.05, 0.25, 0.5, 0.75, 0.95}
	dst := make([]float64, len(qs))
	scratch := make([]float64, len(f.Trees))
	mean := f.PredictQuantilesInto(probe, qs, scratch, dst)

	if mean != f.Predict(probe) {
		t.Fatalf("mean %v != Predict %v (must be bit-identical)", mean, f.Predict(probe))
	}
	for i, q := range qs {
		if want := f.PredictQuantile(probe, q); dst[i] != want {
			t.Fatalf("quantile %v: %v != PredictQuantile %v", q, dst[i], want)
		}
	}
	// Nil scratch allocates internally but gives the same answers.
	dst2 := make([]float64, len(qs))
	f.PredictQuantilesInto(probe, qs, nil, dst2)
	for i := range dst {
		if dst[i] != dst2[i] {
			t.Fatal("nil-scratch path diverges")
		}
	}
}

func TestPredictQuantilesIntoZeroAllocs(t *testing.T) {
	r := rng.New(10)
	x, y := friedman(r, 150)
	p := Defaults()
	p.Trees = 20
	f := Fit(x, y, p, r)
	probe := []float64{0.3, 0.6, 0.2, 0.9, 0.5, 0.1}
	qs := []float64{0.1, 0.9}
	dst := make([]float64, 2)
	scratch := make([]float64, len(f.Trees))
	allocs := testing.AllocsPerRun(50, func() {
		f.PredictQuantilesInto(probe, qs, scratch, dst)
	})
	if allocs != 0 {
		t.Fatalf("PredictQuantilesInto with scratch allocates %v per call", allocs)
	}
}

func TestPredictQuantilesIntoPanics(t *testing.T) {
	r := rng.New(11)
	x, y := friedman(r, 100)
	p := Defaults()
	p.Trees = 10
	f := Fit(x, y, p, r)
	probe := []float64{0.3, 0.6, 0.2, 0.9, 0.5, 0.1}
	for name, fn := range map[string]func(){
		"bad quantile":   func() { f.PredictQuantilesInto(probe, []float64{1.5}, nil, make([]float64, 1)) },
		"short dst":      func() { f.PredictQuantilesInto(probe, []float64{0.1, 0.9}, nil, make([]float64, 1)) },
		"short scratch":  func() { f.PredictQuantilesInto(probe, []float64{0.1}, make([]float64, 2), make([]float64, 1)) },
		"wrong features": func() { f.PredictQuantilesInto([]float64{1}, []float64{0.1}, nil, make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
