// Package forest implements a random-forest regressor over CART trees
// (bootstrap bagging plus per-node feature subsampling). The forest is the
// interpolation-level learner of the paper's two-level model: one forest is
// trained per small scale, mapping application input parameters to runtime
// at that scale.
//
// Training is embarrassingly parallel across trees; Fit fans the work out
// over a bounded worker pool, with deterministic results for a fixed seed
// regardless of GOMAXPROCS (each tree draws from its own pre-split RNG).
package forest

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tree"
)

// Params configures a random forest. The zero value is not valid; use
// Defaults and override.
type Params struct {
	Trees int // number of trees
	// MaxFeatures per split; <= 0 selects max(1, p/2). Runtime surfaces
	// are products of a few strong parameters, so heavier feature
	// sampling (Breiman's p/3) starves splits of signal; p/2 measures
	// best on the workloads here.
	MaxFeatures int
	Tree        tree.Params // per-tree growth controls (MaxFeatures is overridden)
	// Workers bounds fitting parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// Defaults returns the forest configuration used across the experiments.
func Defaults() Params {
	return Params{
		Trees:       100,
		MaxFeatures: 0,
		Tree:        tree.Defaults(),
	}
}

// Forest is a fitted random-forest regressor.
type Forest struct {
	Trees    []*tree.Tree `json:"trees"`
	Features int          `json:"features"`
	// OOBIndices[i] lists, per tree, the rows NOT in its bootstrap sample.
	// Kept for OOB error estimation; may be nil after deserialization.
	OOBIndices [][]int `json:"-"`
	trainRows  int
}

// Fit trains a forest on x, y using randomness from r.
func Fit(x *mat.Dense, y []float64, p Params, r *rng.Source) *Forest {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("forest: %d rows vs %d targets", x.Rows, len(y)))
	}
	if x.Rows == 0 {
		panic("forest: Fit on empty dataset")
	}
	if p.Trees <= 0 {
		p.Trees = Defaults().Trees
	}
	mf := p.MaxFeatures
	if mf <= 0 {
		mf = x.Cols / 2
		if mf < 1 {
			mf = 1
		}
	}
	tp := p.Tree
	tp.MaxFeatures = mf

	f := &Forest{
		Trees:      make([]*tree.Tree, p.Trees),
		Features:   x.Cols,
		OOBIndices: make([][]int, p.Trees),
		trainRows:  x.Rows,
	}

	// Pre-split one RNG per tree so the fit is deterministic under any
	// degree of parallelism.
	sources := make([]*rng.Source, p.Trees)
	for i := range sources {
		sources[i] = r.Split()
	}

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.Trees {
		workers = p.Trees
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one Fitter (workspace arena + presort
			// cache) and one bootstrap buffer for all the trees it grows,
			// so a fit allocates O(trees), not O(nodes·features).
			ft := tree.NewFitter()
			in := make([]bool, x.Rows)
			var boot []int
			for i := range next {
				src := sources[i]
				boot = src.Bootstrap(boot, x.Rows)
				f.Trees[i] = ft.FitIndices(x, y, boot, tp, src)
				f.OOBIndices[i] = oob(boot, in)
			}
		}()
	}
	for i := 0; i < p.Trees; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return f
}

// oob returns the sorted row indices absent from the bootstrap sample.
// The caller provides an all-false mask of len(in) == dataset rows, which
// is reused across calls and returned all-false again.
func oob(boot []int, in []bool) []int {
	distinct := 0
	for _, i := range boot {
		if !in[i] {
			in[i] = true
			distinct++
		}
	}
	out := make([]int, 0, len(in)-distinct)
	for i := range in {
		if !in[i] {
			out = append(out, i)
		}
	}
	for _, i := range boot {
		in[i] = false
	}
	return out
}

// Predict returns the forest prediction (mean over trees) for v.
func (f *Forest) Predict(v []float64) float64 {
	if len(v) != f.Features {
		panic(fmt.Sprintf("forest: predict with %d features, forest has %d", len(v), f.Features))
	}
	var s float64
	for _, t := range f.Trees {
		s += t.Predict(v)
	}
	return s / float64(len(f.Trees))
}

// predictBlock is the row-block size for batch prediction: blocks keep
// the active rows hot in cache while each tree's node array streams
// through once per block instead of once per row.
const predictBlock = 128

// PredictBatch fills dst with forest predictions for each row of x; a
// nil dst is allocated. With a non-nil dst the call performs no
// allocations. Results are bit-identical to calling Predict per row:
// per-tree predictions are accumulated in tree order and divided once.
func (f *Forest) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	if x.Cols != f.Features {
		panic(fmt.Sprintf("forest: predict with %d features, forest has %d", x.Cols, f.Features))
	}
	if dst == nil {
		dst = make([]float64, x.Rows)
	}
	if len(dst) != x.Rows {
		panic("forest: PredictBatch dst length mismatch")
	}
	f.predictRange(x, dst, 0, x.Rows)
	return dst
}

// predictRange computes forest predictions for rows [lo, hi) into dst.
func (f *Forest) predictRange(x *mat.Dense, dst []float64, lo, hi int) {
	data := x.Data
	cols := x.Cols
	m := float64(len(f.Trees))
	for b := lo; b < hi; b += predictBlock {
		be := b + predictBlock
		if be > hi {
			be = hi
		}
		for i := b; i < be; i++ {
			dst[i] = 0
		}
		for _, t := range f.Trees {
			nodes := t.Nodes
			for i := b; i < be; i++ {
				row := data[i*cols : i*cols+cols]
				j := int32(0)
				for {
					n := &nodes[j]
					if n.Feature < 0 {
						dst[i] += n.Value
						break
					}
					if row[n.Feature] <= n.Threshold {
						j = n.Left
					} else {
						j = n.Right
					}
				}
			}
		}
		for i := b; i < be; i++ {
			dst[i] /= m
		}
	}
}

// PredictBatchParallel is PredictBatch fanned out over at most workers
// goroutines (<= 0 means GOMAXPROCS), each owning a contiguous row
// chunk. Every row's accumulation order is unchanged, so the output is
// deterministic and bit-identical to the serial PredictBatch regardless
// of worker count. Small batches run serially.
func (f *Forest) PredictBatchParallel(x *mat.Dense, dst []float64, workers int) []float64 {
	if x.Cols != f.Features {
		panic(fmt.Sprintf("forest: predict with %d features, forest has %d", x.Cols, f.Features))
	}
	if dst == nil {
		dst = make([]float64, x.Rows)
	}
	if len(dst) != x.Rows {
		panic("forest: PredictBatch dst length mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := (x.Rows + workers - 1) / workers
	if chunk < predictBlock {
		chunk = predictBlock // not worth a goroutine per sub-block batch
	}
	if workers == 1 || chunk >= x.Rows {
		f.predictRange(x, dst, 0, x.Rows)
		return dst
	}
	var wg sync.WaitGroup
	for lo := 0; lo < x.Rows; lo += chunk {
		hi := lo + chunk
		if hi > x.Rows {
			hi = x.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f.predictRange(x, dst, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// PredictQuantile returns the q-quantile of per-tree predictions for v,
// a cheap prediction-uncertainty proxy.
func (f *Forest) PredictQuantile(v []float64, q float64) float64 {
	var dst [1]float64
	f.PredictQuantilesInto(v, []float64{q}, nil, dst[:])
	return dst[0]
}

// PredictQuantilesInto walks the ensemble once and fills dst[i] with the
// qs[i]-quantile of per-tree predictions for v, returning the ensemble
// mean. preds is scratch of length >= len(f.Trees); nil allocates. With
// non-nil scratch the call performs no allocations, so interval serving
// pays one tree-walk per forest instead of one per quantile.
//
// The mean is accumulated in tree order before the scratch is sorted,
// keeping it bit-identical to Predict (sorting would change float
// summation order).
func (f *Forest) PredictQuantilesInto(v, qs, preds, dst []float64) float64 {
	if len(v) != f.Features {
		panic(fmt.Sprintf("forest: predict with %d features, forest has %d", len(v), f.Features))
	}
	if len(dst) < len(qs) {
		panic("forest: quantile dst shorter than qs")
	}
	for _, q := range qs {
		if q < 0 || q > 1 {
			panic("forest: quantile outside [0,1]")
		}
	}
	if preds == nil {
		preds = make([]float64, len(f.Trees))
	} else if len(preds) < len(f.Trees) {
		panic("forest: quantile scratch shorter than tree count")
	}
	preds = preds[:len(f.Trees)]
	var s float64
	for i, t := range f.Trees {
		p := t.Predict(v)
		preds[i] = p
		s += p
	}
	mean := s / float64(len(f.Trees))
	sort.Float64s(preds)
	for i, q := range qs {
		pos := q * float64(len(preds)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			dst[i] = preds[lo]
			continue
		}
		frac := pos - float64(lo)
		dst[i] = preds[lo]*(1-frac) + preds[hi]*frac
	}
	return mean
}

// OOBError returns the out-of-bag mean squared error, the forest's internal
// generalization estimate. It returns NaN when no row was ever out of bag
// (only possible for tiny forests) or OOB bookkeeping is unavailable.
func (f *Forest) OOBError(x *mat.Dense, y []float64) float64 {
	if f.OOBIndices == nil {
		return math.NaN()
	}
	sum := make([]float64, x.Rows)
	cnt := make([]int, x.Rows)
	for t, idxs := range f.OOBIndices {
		for _, i := range idxs {
			sum[i] += f.Trees[t].Predict(x.Row(i))
			cnt[i]++
		}
	}
	var mse float64
	n := 0
	for i := 0; i < x.Rows; i++ {
		if cnt[i] == 0 {
			continue
		}
		d := sum[i]/float64(cnt[i]) - y[i]
		mse += d * d
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return mse / float64(n)
}

// PermutationImportance estimates feature importance by the increase in
// prediction MSE on (x, y) when each column is permuted. Larger is more
// important. The same permutation source r is used for all features.
func (f *Forest) PermutationImportance(x *mat.Dense, y []float64, r *rng.Source) []float64 {
	base := mse(f, x, y)
	imp := make([]float64, x.Cols)
	col := make([]float64, x.Rows)
	xp := x.Clone()
	for j := 0; j < x.Cols; j++ {
		for i := 0; i < x.Rows; i++ {
			col[i] = x.At(i, j)
		}
		perm := r.Perm(x.Rows)
		for i := 0; i < x.Rows; i++ {
			xp.Set(i, j, col[perm[i]])
		}
		imp[j] = mse(f, xp, y) - base
		for i := 0; i < x.Rows; i++ { // restore column
			xp.Set(i, j, col[i])
		}
	}
	return imp
}

func mse(f *Forest, x *mat.Dense, y []float64) float64 {
	var s float64
	for i := 0; i < x.Rows; i++ {
		d := f.Predict(x.Row(i)) - y[i]
		s += d * d
	}
	return s / float64(x.Rows)
}
