// Package uncertainty makes the two-level model's error bars honest and
// its serving loop self-correcting. The paper's premise — extrapolating
// from small-scale history to large scale — breaks the i.i.d. assumption
// by design, so a bare point estimate says nothing about how wrong it
// might be at p=1024. This package supplies the two missing pieces:
//
//   - Split-conformal calibration (this file): per-target-scale residual
//     quantiles computed on a held-out slice the model never trained on,
//     in log-runtime space so the resulting intervals are multiplicative
//     ("within a factor of 1.3"), with an optional per-cluster mode keyed
//     to the paper's k-means shape clusters. Under exchangeability of the
//     holdout and future configurations the intervals carry a
//     finite-sample coverage guarantee; under the drift this repository
//     exists to detect, coverage degrades measurably — which is exactly
//     the signal the monitor consumes.
//   - Drift monitoring (drift.go): deterministic rolling windows of
//     empirical interval coverage and MAPE per scale over observed
//     runtimes, with a latched breach signal that kicks retraining.
//
// The package is deliberately model-agnostic: callers hand it
// (predicted, actual) pairs, it hands back quantiles and verdicts. It
// never reads the wall clock and draws no randomness, so everything
// downstream stays byte-reproducible (enforced by repolint's
// nowallclock and nodirectrand analyzers).
package uncertainty

import (
	"fmt"
	"math"
	"slices"
)

// logClamp guards the log transform: runtimes are positive by
// construction, but a degenerate prediction could be zero.
const logClamp = 1e-12

// Score is the conformal nonconformity score of one (predicted, actual)
// runtime pair: the absolute log-space residual |log actual − log pred|.
// A calibrated quantile q̂ of these scores turns a point prediction m
// into the multiplicative interval [m/exp(q̂), m·exp(q̂)].
func Score(predicted, actual float64) float64 {
	if predicted <= 0 {
		predicted = logClamp
	}
	if actual <= 0 {
		actual = logClamp
	}
	return math.Abs(math.Log(actual) - math.Log(predicted))
}

// ScaleCalib is one target scale's calibration: the sorted
// nonconformity scores of every holdout configuration measured there.
// Keeping the full sorted score list (holdout slices are tens of
// configurations, not millions) lets serve time answer any requested
// coverage level exactly instead of fixing levels at calibration time.
type ScaleCalib struct {
	Scale int `json:"scale"`
	// Scores are sorted ascending absolute log-residuals; see Score.
	Scores []float64 `json:"scores"`
}

// Calibration is a model's split-conformal calibration artifact. It is
// persisted inside the model file (core.ModelMeta) so it hot-swaps
// atomically with the generation it was computed for — an interval can
// never be served from one generation's model and another's residuals.
type Calibration struct {
	// Pooled holds one entry per target scale with at least one holdout
	// measurement, ascending by scale.
	Pooled []ScaleCalib `json:"pooled"`
	// PerCluster[c] is cluster c's per-scale calibration, aligned with
	// the model's cluster indices; nil for single-cluster models or when
	// the caller calibrated pooled-only. Clusters too small to calibrate
	// at a scale simply have no entry there and fall back to Pooled.
	PerCluster [][]ScaleCalib `json:"per_cluster,omitempty"`
}

// ConformalQuantile returns the split-conformal quantile of the sorted
// score list at the given coverage: the ⌈(n+1)·coverage⌉-th order
// statistic, whose interval has ≥ coverage probability under
// exchangeability. ok is false when n is too small for the requested
// coverage to be certified (⌈(n+1)·coverage⌉ > n) — the caller should
// fall back to a heuristic width rather than serve a bogus guarantee.
func ConformalQuantile(sorted []float64, coverage float64) (float64, bool) {
	n := len(sorted)
	if n == 0 || coverage <= 0 || coverage >= 1 {
		return 0, false
	}
	k := int(math.Ceil(float64(n+1) * coverage))
	if k > n {
		return 0, false
	}
	return sorted[k-1], true
}

// Factor returns the multiplicative half-width exp(q̂) for a prediction
// at scale made for a configuration assigned to cluster: the interval is
// [m/Factor, m·Factor]. Cluster-specific scores are preferred when the
// cluster was calibrated with enough samples at that scale; otherwise
// the pooled scores answer. ok is false when neither side has enough
// holdout data for the requested coverage.
func (c *Calibration) Factor(cluster, scale int, coverage float64) (float64, bool) {
	if c == nil {
		return 0, false
	}
	if cluster >= 0 && cluster < len(c.PerCluster) {
		if sc := findScale(c.PerCluster[cluster], scale); sc != nil {
			if q, ok := ConformalQuantile(sc.Scores, coverage); ok {
				return math.Exp(q), true
			}
		}
	}
	if sc := findScale(c.Pooled, scale); sc != nil {
		if q, ok := ConformalQuantile(sc.Scores, coverage); ok {
			return math.Exp(q), true
		}
	}
	return 0, false
}

// Samples returns the pooled calibration sample count at the scale with
// the fewest samples (the binding constraint on certifiable coverage),
// and the total across scales. Zeros for an empty calibration.
func (c *Calibration) Samples() (min, total int) {
	if c == nil {
		return 0, 0
	}
	for i, sc := range c.Pooled {
		n := len(sc.Scores)
		total += n
		if i == 0 || n < min {
			min = n
		}
	}
	return min, total
}

// Validate checks structural invariants after deserialization: scales
// strictly ascending, scores sorted and non-negative, per-cluster scale
// sets a subset shape of the pooled ones.
func (c *Calibration) Validate() error {
	if c == nil {
		return nil
	}
	if len(c.Pooled) == 0 {
		return fmt.Errorf("uncertainty: calibration with no pooled scales")
	}
	if err := validateScales("pooled", c.Pooled); err != nil {
		return err
	}
	for ci, scs := range c.PerCluster {
		if err := validateScales(fmt.Sprintf("cluster %d", ci), scs); err != nil {
			return err
		}
	}
	return nil
}

func validateScales(where string, scs []ScaleCalib) error {
	prev := math.MinInt
	for _, sc := range scs {
		if sc.Scale <= prev {
			return fmt.Errorf("uncertainty: %s scales not strictly ascending at %d", where, sc.Scale)
		}
		prev = sc.Scale
		if len(sc.Scores) == 0 {
			return fmt.Errorf("uncertainty: %s scale %d has no scores", where, sc.Scale)
		}
		last := 0.0
		for _, s := range sc.Scores {
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return fmt.Errorf("uncertainty: %s scale %d has invalid score %v", where, sc.Scale, s)
			}
			if s < last {
				return fmt.Errorf("uncertainty: %s scale %d scores not sorted", where, sc.Scale)
			}
			last = s
		}
	}
	return nil
}

// findScale returns the entry for scale, or nil. Linear scan: scale
// lists are a handful of entries.
func findScale(scs []ScaleCalib, scale int) *ScaleCalib {
	for i := range scs {
		if scs[i].Scale == scale {
			return &scs[i]
		}
	}
	return nil
}

// Calibrator accumulates (predicted, actual) holdout pairs and builds a
// Calibration. Not safe for concurrent use; calibration is a
// single-threaded pipeline stage.
type Calibrator struct {
	scales  []int
	pooled  [][]float64   // per scale index
	cluster [][][]float64 // [cluster][scale index]; nil when clusters <= 1
}

// NewCalibrator prepares a calibrator for the given target scales and
// model cluster count. clusters <= 1 disables the per-cluster mode.
func NewCalibrator(scales []int, clusters int) *Calibrator {
	c := &Calibrator{
		scales: slices.Clone(scales),
		pooled: make([][]float64, len(scales)),
	}
	if clusters > 1 {
		c.cluster = make([][][]float64, clusters)
		for i := range c.cluster {
			c.cluster[i] = make([][]float64, len(scales))
		}
	}
	return c
}

// Add records one holdout measurement: the model (assigning the
// configuration to cluster) predicted `predicted` at scales[scaleIdx],
// reality measured `actual`.
func (c *Calibrator) Add(cluster, scaleIdx int, predicted, actual float64) {
	s := Score(predicted, actual)
	c.pooled[scaleIdx] = append(c.pooled[scaleIdx], s)
	if c.cluster != nil && cluster >= 0 && cluster < len(c.cluster) {
		c.cluster[cluster][scaleIdx] = append(c.cluster[cluster][scaleIdx], s)
	}
}

// Finish sorts every score list and assembles the Calibration. It
// returns nil when no sample was added at any scale (an uncalibrated
// model serves ensemble-spread fallbacks instead). The result is a pure
// function of the Add sequence — no clock, no randomness — so reruns
// over the same holdout are byte-identical.
func (c *Calibrator) Finish() *Calibration {
	out := &Calibration{}
	for i, scores := range c.pooled {
		if len(scores) == 0 {
			continue
		}
		slices.Sort(scores)
		out.Pooled = append(out.Pooled, ScaleCalib{Scale: c.scales[i], Scores: scores})
	}
	if len(out.Pooled) == 0 {
		return nil
	}
	for _, per := range c.cluster {
		var scs []ScaleCalib
		for i, scores := range per {
			if len(scores) == 0 {
				continue
			}
			slices.Sort(scores)
			scs = append(scs, ScaleCalib{Scale: c.scales[i], Scores: scores})
		}
		out.PerCluster = append(out.PerCluster, scs)
	}
	return out
}
