package uncertainty

import (
	"testing"

	"repro/internal/rng"
)

// BenchmarkConformalCalibrate measures building a calibration artifact
// from a realistic holdout slice (3 clusters, 2 target scales, ~120
// residual pairs) — the per-generation pipeline cost.
func BenchmarkConformalCalibrate(b *testing.B) {
	r := rng.New(42)
	type sample struct {
		cluster, scaleIdx int
		pred, actual      float64
	}
	samples := make([]sample, 120)
	for i := range samples {
		p, a := syntheticPair(r, 0.3)
		samples[i] = sample{cluster: i % 3, scaleIdx: i % 2, pred: p, actual: a}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cal := NewCalibrator([]int{128, 256}, 3)
		for _, s := range samples {
			cal.Add(s.cluster, s.scaleIdx, s.pred, s.actual)
		}
		if cal.Finish() == nil {
			b.Fatal("nil calibration")
		}
	}
}

// BenchmarkConformalFactor measures the serve-time interval lookup: one
// quantile read per requested (cluster, scale, coverage).
func BenchmarkConformalFactor(b *testing.B) {
	r := rng.New(42)
	cal := NewCalibrator([]int{128, 256, 512}, 3)
	for i := 0; i < 300; i++ {
		p, a := syntheticPair(r, 0.3)
		cal.Add(i%3, i%3, p, a)
	}
	c := cal.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Factor(i%3, 256, 0.9); !ok {
			b.Fatal("no factor")
		}
	}
}

// BenchmarkMonitorObserve measures the /v1/observe hot path: one ring
// push plus the breach re-evaluation.
func BenchmarkMonitorObserve(b *testing.B) {
	m := NewMonitor(DriftConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		actual := 100.0
		if i%10 == 0 {
			actual = 130.0
		}
		m.Observe(128+(i%3)*128, 100, 90, 110, actual)
	}
}
