package uncertainty

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// observeHits feeds n observations at scale, the first `miss` of them
// outside the interval and the rest inside.
func observeMisses(m *Monitor, scale, n, miss int) (last Outcome) {
	for i := 0; i < n; i++ {
		actual := 100.0 // inside [90, 110]
		if i < miss {
			actual = 500.0
		}
		last = m.Observe(scale, 100, 90, 110, actual)
	}
	return last
}

func TestMonitorBreachLatch(t *testing.T) {
	m := NewMonitor(DriftConfig{Window: 10, MinObservations: 10, Coverage: 0.9, Floor: 0.75})

	// 10 observations, 4 misses: coverage 0.6 < 0.75 → breach fires on
	// the observation that completes the window's MinObservations.
	var breachAt = -1
	for i := 0; i < 10; i++ {
		actual := 100.0
		if i < 4 {
			actual = 500.0
		}
		out := m.Observe(128, 100, 90, 110, actual)
		if out.BreachStarted {
			if breachAt >= 0 {
				t.Fatalf("breach started twice (at %d and %d)", breachAt, i)
			}
			breachAt = i
			if !strings.Contains(out.Reason, "scale 128") {
				t.Fatalf("reason %q does not name the scale", out.Reason)
			}
		}
	}
	if breachAt != 9 {
		t.Fatalf("breach started at observation %d, want 9 (window judged at MinObservations)", breachAt)
	}
	s := m.Snapshot()
	if !s.Breached || s.Kicks != 1 {
		t.Fatalf("snapshot %+v, want breached with 1 kick", s)
	}

	// Staying breached must not kick again.
	if out := m.Observe(128, 100, 90, 110, 500); out.BreachStarted {
		t.Fatal("second kick during the same breach episode")
	}

	// Recovery: flood the window with hits until coverage climbs back
	// above the floor, then degrade again → a second kick.
	for i := 0; i < 10; i++ {
		m.Observe(128, 100, 90, 110, 100)
	}
	if s := m.Snapshot(); s.Breached {
		t.Fatalf("monitor still breached after full window of hits: %+v", s)
	}
	observeMisses(m, 128, 10, 4)
	if k := m.Snapshot().Kicks; k != 2 {
		t.Fatalf("kicks = %d after recovery and re-degradation, want 2", k)
	}
}

func TestMonitorMinObservationsGate(t *testing.T) {
	m := NewMonitor(DriftConfig{Window: 100, MinObservations: 50, Coverage: 0.9, Floor: 0.75})
	// 49 straight misses: coverage 0 but the window is not judged yet.
	for i := 0; i < 49; i++ {
		if out := m.Observe(256, 100, 90, 110, 500); out.BreachStarted {
			t.Fatalf("breach before MinObservations at i=%d", i)
		}
	}
	if out := m.Observe(256, 100, 90, 110, 500); !out.BreachStarted {
		t.Fatal("no breach once MinObservations reached")
	}
}

func TestMonitorWindowRolls(t *testing.T) {
	m := NewMonitor(DriftConfig{Window: 4, MinObservations: 2, Coverage: 0.9, Floor: 0.75})
	// Fill with misses, then push hits: old misses must age out.
	observeMisses(m, 128, 4, 4)
	for i := 0; i < 4; i++ {
		m.Observe(128, 100, 90, 110, 100)
	}
	s := m.Snapshot()
	if len(s.Windows) != 1 {
		t.Fatalf("windows = %+v", s.Windows)
	}
	w := s.Windows[0]
	if w.N != 4 || w.Coverage != 1 {
		t.Fatalf("window %+v, want n=4 coverage=1 after rollover", w)
	}
}

func TestMonitorAPE(t *testing.T) {
	m := NewMonitor(DriftConfig{})
	out := m.Observe(128, 100, 90, 110, 80)
	if out.APE != 0.25 {
		t.Fatalf("APE = %v, want 0.25 (|80-100|/80)", out.APE)
	}
	// Non-positive actual: APE defined as 0, no NaN poisoning.
	out = m.Observe(128, 100, 90, 110, 0)
	if out.APE != 0 {
		t.Fatalf("APE for zero actual = %v, want 0", out.APE)
	}
}

func TestMonitorSnapshotSorted(t *testing.T) {
	m := NewMonitor(DriftConfig{})
	for _, sc := range []int{512, 128, 256} {
		m.Observe(sc, 100, 90, 110, 100)
	}
	s := m.Snapshot()
	if len(s.Windows) != 3 {
		t.Fatalf("windows = %+v", s.Windows)
	}
	for i, want := range []int{128, 256, 512} {
		if s.Windows[i].Scale != want {
			t.Fatalf("window %d scale = %d, want %d", i, s.Windows[i].Scale, want)
		}
	}
	if s.Observations != 3 {
		t.Fatalf("observations = %d", s.Observations)
	}
}

func TestMonitorSetCallbackOncePerEpisode(t *testing.T) {
	var mu sync.Mutex
	var calls []string
	ms := NewMonitorSet(DriftConfig{Window: 5, MinObservations: 5, Floor: 0.75}, func(model, reason, origin string) {
		mu.Lock()
		calls = append(calls, model+": "+reason+" ["+origin+"]")
		mu.Unlock()
	})
	for i := 0; i < 20; i++ {
		// Vary the origin per observation: the callback must carry the
		// breaching observation's own origin, not an earlier one.
		ms.Observe("smg", 128, 100, 90, 110, 500, fmt.Sprintf("req-smg-%d", i))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(calls))
	}
	if !strings.HasPrefix(calls[0], "smg: drift:") {
		t.Fatalf("callback payload %q", calls[0])
	}
	// The breach fires on the 5th observation (MinObservations), whose
	// origin is req-smg-4.
	if !strings.HasSuffix(calls[0], "[req-smg-4]") {
		t.Fatalf("callback origin: %q, want suffix [req-smg-4]", calls[0])
	}
	if ms.Kicks() != 1 {
		t.Fatalf("Kicks() = %d, want 1", ms.Kicks())
	}
}

func TestMonitorSetSnapshotSortedByModel(t *testing.T) {
	ms := NewMonitorSet(DriftConfig{}, nil)
	ms.Observe("zeta", 128, 100, 90, 110, 100, "")
	ms.Observe("alpha", 128, 100, 90, 110, 100, "")
	snaps := ms.Snapshot()
	if len(snaps) != 2 || snaps[0].Model != "alpha" || snaps[1].Model != "zeta" {
		t.Fatalf("snapshots = %+v", snaps)
	}
}

func TestMonitorConcurrent(t *testing.T) {
	ms := NewMonitorSet(DriftConfig{Window: 64, MinObservations: 16}, func(string, string, string) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				actual := 100.0
				if (g+i)%3 == 0 {
					actual = 500.0
				}
				ms.Observe("m", 128+(g%2)*128, 100, 90, 110, actual, "")
				if i%50 == 0 {
					ms.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, s := range ms.Snapshot() {
		total += s.Observations
	}
	if total != 8*200 {
		t.Fatalf("observations = %d, want %d", total, 8*200)
	}
}

func TestDriftConfigDefaults(t *testing.T) {
	c := DriftConfig{}.WithDefaults()
	if c.Window != 256 || c.MinObservations != 20 || c.Coverage != 0.9 || c.Floor != 0.75 {
		t.Fatalf("defaults = %+v", c)
	}
	c = DriftConfig{Window: 8, MinObservations: 100}.WithDefaults()
	if c.MinObservations != 8 {
		t.Fatalf("MinObservations not clamped to Window: %+v", c)
	}
}
