package uncertainty

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// DriftConfig parameterizes drift monitoring. The zero value selects the
// defaults via WithDefaults.
type DriftConfig struct {
	// Window is the per-scale rolling window length (observations kept).
	// <= 0 selects 256.
	Window int
	// MinObservations is how many observations a scale's window needs
	// before its coverage is judged at all; prevents a cold window's
	// first miss from reading as 0% coverage. <= 0 selects 20.
	MinObservations int
	// Coverage is the nominal interval coverage the monitor scores
	// against (the interval handed to Observe should target it).
	// Outside (0, 1) selects 0.9.
	Coverage float64
	// Floor is the empirical-coverage floor: a judged scale falling
	// below it raises the drift flag. Outside (0, 1) selects 0.75.
	Floor float64
}

// WithDefaults fills unset fields with the production defaults.
func (c DriftConfig) WithDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 20
	}
	if c.MinObservations > c.Window {
		c.MinObservations = c.Window
	}
	if c.Coverage <= 0 || c.Coverage >= 1 {
		c.Coverage = 0.9
	}
	if c.Floor <= 0 || c.Floor >= 1 {
		c.Floor = 0.75
	}
	return c
}

// window is one scale's rolling record of interval hits and absolute
// percentage errors. Fixed-capacity ring: state is a pure function of
// the observation sequence, never of the clock.
type window struct {
	covered []bool
	ape     []float64
	next    int // ring cursor
	n       int // filled entries, <= len(covered)
}

func (w *window) push(covered bool, ape float64) {
	w.covered[w.next] = covered
	w.ape[w.next] = ape
	w.next = (w.next + 1) % len(w.covered)
	if w.n < len(w.covered) {
		w.n++
	}
}

// coverage returns the window's empirical coverage; NaN when empty.
func (w *window) coverage() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	hits := 0
	for i := 0; i < w.n; i++ {
		if w.covered[i] {
			hits++
		}
	}
	return float64(hits) / float64(w.n)
}

// mape returns the window's mean absolute percentage error; NaN when
// empty.
func (w *window) mape() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	var s float64
	for i := 0; i < w.n; i++ {
		s += w.ape[i]
	}
	return s / float64(w.n)
}

// Outcome reports how one observation landed.
type Outcome struct {
	// Covered is whether the actual runtime fell inside [Lo, Hi].
	Covered bool `json:"covered"`
	// APE is |actual − predicted| / actual.
	APE float64 `json:"ape"`
	// BreachStarted marks the observation that flipped the monitor into
	// the breached state (the drift-kick edge); subsequent observations
	// during the same breach report false, so one breach episode kicks
	// retraining exactly once.
	BreachStarted bool `json:"breach_started,omitempty"`
	// Reason names the breaching scales and their coverages when
	// BreachStarted.
	Reason string `json:"reason,omitempty"`
}

// Monitor tracks empirical interval coverage and MAPE per target scale
// over deterministic rolling windows and raises a latched drift flag
// when any judged scale's coverage falls below the configured floor.
// Safe for concurrent use.
type Monitor struct {
	cfg DriftConfig

	mu       sync.Mutex
	scales   map[int]*window
	total    int64
	breached bool
	kicks    int64
	last     string // reason of the most recent breach
}

// NewMonitor builds a monitor with cfg (defaults applied).
func NewMonitor(cfg DriftConfig) *Monitor {
	return &Monitor{cfg: cfg.WithDefaults(), scales: map[int]*window{}}
}

// Config returns the monitor's resolved configuration.
func (m *Monitor) Config() DriftConfig { return m.cfg }

// Observe records one measured runtime against the interval that was
// predicted for it and re-evaluates the drift condition.
func (m *Monitor) Observe(scale int, predicted, lo, hi, actual float64) Outcome {
	out := Outcome{Covered: actual >= lo && actual <= hi}
	if actual > 0 {
		out.APE = math.Abs(actual-predicted) / actual
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.scales[scale]
	if !ok {
		w = &window{covered: make([]bool, m.cfg.Window), ape: make([]float64, m.cfg.Window)}
		m.scales[scale] = w
	}
	w.push(out.Covered, out.APE)
	m.total++

	reason := m.breachReasonLocked()
	switch {
	case reason != "" && !m.breached:
		m.breached = true
		m.kicks++
		m.last = reason
		out.BreachStarted = true
		out.Reason = reason
	case reason == "" && m.breached:
		// Coverage recovered (e.g. a promoted retrain fixed the model);
		// unlatch so the next degradation kicks again.
		m.breached = false
	}
	return out
}

// breachReasonLocked renders the drift condition: every judged scale
// below the floor, ascending by scale, or "" when none breach.
func (m *Monitor) breachReasonLocked() string {
	var bad []int
	for s, w := range m.scales {
		if w.n >= m.cfg.MinObservations && w.coverage() < m.cfg.Floor {
			bad = append(bad, s)
		}
	}
	if len(bad) == 0 {
		return ""
	}
	sort.Ints(bad)
	reason := fmt.Sprintf("drift: empirical coverage below floor %.2f at nominal %.2f:", m.cfg.Floor, m.cfg.Coverage)
	for _, s := range bad {
		w := m.scales[s]
		reason += fmt.Sprintf(" scale %d %.2f (n=%d)", s, w.coverage(), w.n)
	}
	return reason
}

// WindowSnapshot is one scale's rolling-window state.
type WindowSnapshot struct {
	Scale    int     `json:"scale"`
	N        int     `json:"n"`
	Coverage float64 `json:"coverage"`
	MAPE     float64 `json:"mape"`
}

// MonitorSnapshot is a monitor's exported state (the /metrics view).
type MonitorSnapshot struct {
	Model        string           `json:"model,omitempty"`
	Observations int64            `json:"observations"`
	Breached     bool             `json:"breached"`
	Kicks        int64            `json:"kicks"`
	LastBreach   string           `json:"last_breach,omitempty"`
	Windows      []WindowSnapshot `json:"windows,omitempty"`
}

// Snapshot returns the monitor's current state, windows ascending by
// scale.
func (m *Monitor) Snapshot() MonitorSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MonitorSnapshot{Observations: m.total, Breached: m.breached, Kicks: m.kicks, LastBreach: m.last}
	scales := make([]int, 0, len(m.scales))
	for sc := range m.scales {
		scales = append(scales, sc)
	}
	sort.Ints(scales)
	for _, sc := range scales {
		w := m.scales[sc]
		s.Windows = append(s.Windows, WindowSnapshot{
			Scale: sc, N: w.n,
			Coverage: finite(w.coverage()),
			MAPE:     finite(w.mape()),
		})
	}
	return s
}

// finite maps NaN/Inf to 0 so snapshots stay JSON-serializable.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// MonitorSet manages one Monitor per model name and funnels breach
// edges into a single callback (e.g. the pipeline's drift kick). Safe
// for concurrent use; the callback runs outside all internal locks.
type MonitorSet struct {
	cfg      DriftConfig
	onBreach func(model, reason, origin string)

	mu       sync.Mutex
	monitors map[string]*Monitor
}

// NewMonitorSet builds a set with cfg (defaults applied). onBreach may
// be nil; when set it is invoked once per breach episode per model.
// origin is the opaque identifier the breaching observation arrived
// with (e.g. an HTTP request ID) so retraining provoked by the breach
// can be traced back to the triggering ingest; it may be empty.
func NewMonitorSet(cfg DriftConfig, onBreach func(model, reason, origin string)) *MonitorSet {
	return &MonitorSet{cfg: cfg.WithDefaults(), onBreach: onBreach, monitors: map[string]*Monitor{}}
}

// Config returns the set's resolved configuration.
func (ms *MonitorSet) Config() DriftConfig { return ms.cfg }

// Monitor returns (creating if needed) the named model's monitor.
func (ms *MonitorSet) Monitor(model string) *Monitor {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.monitors[model]
	if !ok {
		m = NewMonitor(ms.cfg)
		ms.monitors[model] = m
	}
	return m
}

// Observe records one measurement for the named model and fires the
// breach callback on a drift edge. origin tags the observation for
// end-to-end traceability (the callback receives it verbatim); pass ""
// when the caller has no identity to propagate.
func (ms *MonitorSet) Observe(model string, scale int, predicted, lo, hi, actual float64, origin string) Outcome {
	out := ms.Monitor(model).Observe(scale, predicted, lo, hi, actual)
	if out.BreachStarted && ms.onBreach != nil {
		ms.onBreach(model, out.Reason, origin)
	}
	return out
}

// Snapshot returns every model's monitor state, ascending by model name.
func (ms *MonitorSet) Snapshot() []MonitorSnapshot {
	ms.mu.Lock()
	names := make([]string, 0, len(ms.monitors))
	mons := make([]*Monitor, 0, len(ms.monitors))
	for name := range ms.monitors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mons = append(mons, ms.monitors[name])
	}
	ms.mu.Unlock()
	out := make([]MonitorSnapshot, len(mons))
	for i, m := range mons {
		out[i] = m.Snapshot()
		out[i].Model = names[i]
	}
	return out
}

// Kicks returns the total drift-kick count across models.
func (ms *MonitorSet) Kicks() int64 {
	ms.mu.Lock()
	names := make([]string, 0, len(ms.monitors))
	for name := range ms.monitors {
		names = append(names, name)
	}
	sort.Strings(names)
	mons := make([]*Monitor, 0, len(names))
	for _, name := range names {
		mons = append(mons, ms.monitors[name])
	}
	ms.mu.Unlock()
	var n int64
	for _, m := range mons {
		m.mu.Lock()
		n += m.kicks
		m.mu.Unlock()
	}
	return n
}
