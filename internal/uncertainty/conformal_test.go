package uncertainty

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/rng"
)

// syntheticPair draws one (predicted, actual) runtime pair: a smooth
// "true" surface evaluated at a random point, with multiplicative
// lognormal measurement noise on the actual. The predictor knows the
// surface but not the noise — exactly the split-conformal setting.
func syntheticPair(r *rng.Source, sigma float64) (predicted, actual float64) {
	x := r.Uniform(1, 10)
	base := 3*x + 0.5*x*x
	return base, base * r.LogNormal(0, sigma)
}

// TestConformalCoverageProperty is the headline guarantee: intervals
// calibrated on a seeded synthetic holdout achieve empirical coverage
// within ±5 points of nominal at 0.8 and 0.9 on fresh draws from the
// same distribution. Fully deterministic (fixed rng stream).
func TestConformalCoverageProperty(t *testing.T) {
	const (
		calN  = 400
		testN = 4000
		sigma = 0.25
	)
	for _, coverage := range []float64{0.8, 0.9} {
		r := rng.New(1234)
		cal := NewCalibrator([]int{1024}, 1)
		for i := 0; i < calN; i++ {
			p, a := syntheticPair(r, sigma)
			cal.Add(0, 0, p, a)
		}
		c := cal.Finish()
		if c == nil {
			t.Fatal("calibration is nil")
		}
		f, ok := c.Factor(0, 1024, coverage)
		if !ok {
			t.Fatalf("coverage %v: no factor from %d samples", coverage, calN)
		}
		if f <= 1 {
			t.Fatalf("coverage %v: factor %v <= 1", coverage, f)
		}
		hits := 0
		for i := 0; i < testN; i++ {
			p, a := syntheticPair(r, sigma)
			if a >= p/f && a <= p*f {
				hits++
			}
		}
		got := float64(hits) / float64(testN)
		if math.Abs(got-coverage) > 0.05 {
			t.Fatalf("nominal %.2f: empirical coverage %.3f off by more than 5 points", coverage, got)
		}
	}
}

// TestConformalQuantile pins the order-statistic rule and its
// too-few-samples refusal.
func TestConformalQuantile(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	// n=9: coverage 0.8 -> k = ceil(10*0.8) = 8 -> scores[7].
	q, ok := ConformalQuantile(scores, 0.8)
	if !ok || q != 0.8 {
		t.Fatalf("q=%v ok=%v, want 0.8 true", q, ok)
	}
	// coverage 0.9 -> k = ceil(10*0.9) = 9 -> scores[8].
	q, ok = ConformalQuantile(scores, 0.9)
	if !ok || q != 0.9 {
		t.Fatalf("q=%v ok=%v, want 0.9 true", q, ok)
	}
	// coverage 0.95 -> k = ceil(10*0.95) = 10 > 9: refused.
	if _, ok := ConformalQuantile(scores, 0.95); ok {
		t.Fatal("9 samples certified coverage 0.95")
	}
	if _, ok := ConformalQuantile(nil, 0.8); ok {
		t.Fatal("empty scores certified coverage")
	}
	if _, ok := ConformalQuantile(scores, 0); ok {
		t.Fatal("coverage 0 accepted")
	}
	if _, ok := ConformalQuantile(scores, 1); ok {
		t.Fatal("coverage 1 accepted")
	}
}

// TestFactorClusterFallback checks the per-cluster preference and the
// pooled fallback when a cluster is thin.
func TestFactorClusterFallback(t *testing.T) {
	cal := NewCalibrator([]int{128, 256}, 2)
	// Cluster 0: plenty of small residuals at scale 128.
	for i := 0; i < 20; i++ {
		cal.Add(0, 0, 100, 100*math.Exp(0.01*float64(i+1)))
	}
	// Cluster 1: two residuals at scale 128 — too thin for 0.8.
	cal.Add(1, 0, 100, 150)
	cal.Add(1, 0, 100, 160)
	// Scale 256: pooled-only data via cluster 0.
	for i := 0; i < 20; i++ {
		cal.Add(0, 1, 100, 100*math.Exp(0.05*float64(i+1)))
	}
	c := cal.Finish()

	f0, ok := c.Factor(0, 128, 0.8)
	if !ok {
		t.Fatal("cluster 0 at 128: no factor")
	}
	// Cluster 1 is too thin: must fall back to pooled (which includes
	// cluster 1's big residuals, so the factor differs from cluster 0's).
	f1, ok := c.Factor(1, 128, 0.8)
	if !ok {
		t.Fatal("cluster 1 at 128: no pooled fallback")
	}
	if f1 <= f0 {
		t.Fatalf("pooled fallback factor %v should exceed tight cluster 0 factor %v", f1, f0)
	}
	// Out-of-range cluster ids fall back to pooled rather than exploding.
	if _, ok := c.Factor(99, 128, 0.8); !ok {
		t.Fatal("out-of-range cluster did not fall back to pooled")
	}
	// Unknown scale: nothing to answer with.
	if _, ok := c.Factor(0, 512, 0.8); ok {
		t.Fatal("uncalibrated scale produced a factor")
	}
}

// TestCalibratorDeterminism: two identical Add sequences marshal to
// byte-identical artifacts (the pipeline's rerun guarantee relies on
// this).
func TestCalibratorDeterminism(t *testing.T) {
	build := func() []byte {
		r := rng.New(7)
		cal := NewCalibrator([]int{128, 256, 512}, 3)
		for i := 0; i < 60; i++ {
			p, a := syntheticPair(r, 0.3)
			cal.Add(i%3, i%3, p, a)
		}
		raw, err := json.Marshal(cal.Finish())
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("identical calibrations marshal differently")
	}
}

func TestCalibratorEmptyFinish(t *testing.T) {
	if c := NewCalibrator([]int{128}, 1).Finish(); c != nil {
		t.Fatalf("empty calibrator produced %+v", c)
	}
}

func TestCalibrationValidate(t *testing.T) {
	good := &Calibration{Pooled: []ScaleCalib{{Scale: 128, Scores: []float64{0.1, 0.2}}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid calibration rejected: %v", err)
	}
	var nilCal *Calibration
	if err := nilCal.Validate(); err != nil {
		t.Fatalf("nil calibration rejected: %v", err)
	}
	bad := []*Calibration{
		{},
		{Pooled: []ScaleCalib{{Scale: 128, Scores: nil}}},
		{Pooled: []ScaleCalib{{Scale: 128, Scores: []float64{0.2, 0.1}}}},
		{Pooled: []ScaleCalib{{Scale: 128, Scores: []float64{-0.1}}}},
		{Pooled: []ScaleCalib{{Scale: 128, Scores: []float64{math.NaN()}}}},
		{Pooled: []ScaleCalib{{Scale: 256, Scores: []float64{0.1}}, {Scale: 128, Scores: []float64{0.1}}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad calibration %d accepted", i)
		}
	}
}

func TestScoreClampsNonPositive(t *testing.T) {
	if s := Score(1, 1); s != 0 {
		t.Fatalf("Score(1,1)=%v", s)
	}
	if s := Score(0, 1); math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("Score(0,1)=%v not finite", s)
	}
	if s := Score(1, -2); math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("Score(1,-2)=%v not finite", s)
	}
}

func TestSamples(t *testing.T) {
	c := &Calibration{Pooled: []ScaleCalib{
		{Scale: 128, Scores: []float64{0.1, 0.2, 0.3}},
		{Scale: 256, Scores: []float64{0.1}},
	}}
	min, total := c.Samples()
	if min != 1 || total != 4 {
		t.Fatalf("Samples = (%d, %d), want (1, 4)", min, total)
	}
	var nilCal *Calibration
	if min, total := nilCal.Samples(); min != 0 || total != 0 {
		t.Fatal("nil calibration has samples")
	}
}
