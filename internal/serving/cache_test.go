package serving

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func constant(v any) func() (any, error) {
	return func() (any, error) { return v, nil }
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	v, hit, err := c.Do(context.Background(), "a", constant(1))
	if err != nil || hit || v != 1 {
		t.Fatalf("first Do = %v, %v, %v", v, hit, err)
	}
	v, hit, err = c.Do(context.Background(), "a", constant(2))
	if err != nil || !hit || v != 1 {
		t.Fatalf("second Do = %v, %v, %v (want cached 1)", v, hit, err)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Do(context.Background(), "a", constant(1))
	c.Do(context.Background(), "b", constant(2))
	c.Do(context.Background(), "a", constant(0)) // touch a; b becomes LRU
	c.Do(context.Background(), "c", constant(3)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	fn := func() (any, error) { calls++; return nil, boom }
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("error was cached: fn ran %d times, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after errors", c.Len())
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(16)
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "hot", func() (any, error) {
				computes.Add(1)
				<-release // hold every concurrent caller in the miss window
				return "value", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the leader is inside fn, then let everyone pile up.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrent identical misses, want 1", n)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
	s := c.Stats()
	if s.Coalesced != waiters-1 {
		t.Fatalf("coalesced = %d, want %d (stats %+v)", s.Coalesced, waiters-1, s)
	}
}

// TestCacheCoalescedWaitAbandonsOnCancel pins the request-cancellation
// contract: a coalesced waiter whose context ends returns promptly with
// ctx.Err() while the owning computation still runs to completion and
// caches its result for everyone else. Run under -race.
func TestCacheCoalescedWaitAbandonsOnCancel(t *testing.T) {
	c := NewCache(4)
	inFn := make(chan struct{})
	release := make(chan struct{})
	ownerDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func() (any, error) {
			close(inFn)
			<-release
			return "v", nil
		})
		ownerDone <- err
	}()
	<-inFn // owner holds the flight

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func() (any, error) {
			t.Error("coalesced waiter recomputed the key")
			return nil, nil
		})
		waiterDone <- err
	}()
	for c.Stats().Coalesced == 0 { // waiter is parked on the flight
		runtime.Gosched()
	}

	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned wait returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced waiter did not abandon on cancellation")
	}

	close(release)
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner: %v", err)
	}
	if v, ok := c.Get("k"); !ok || v != "v" {
		t.Fatalf("owner's result not cached after abandon: %v, %v", v, ok)
	}
	if s := c.Stats(); s.Abandoned != 1 || s.Coalesced != 1 {
		t.Fatalf("stats %+v, want Abandoned=1 Coalesced=1", s)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	calls := 0
	fn := func() (any, error) { calls++; return calls, nil }
	c.Do(context.Background(), "k", fn)
	v, hit, _ := c.Do(context.Background(), "k", fn)
	if hit || v != 2 || calls != 2 {
		t.Fatalf("disabled cache served a hit: v=%v hit=%v calls=%d", v, hit, calls)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 5; i++ {
		c.Do(context.Background(), fmt.Sprint(i), constant(i))
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len() = %d after Purge", c.Len())
	}
	if _, hit, _ := c.Do(context.Background(), "1", constant("fresh")); hit {
		t.Fatal("hit after Purge")
	}
}

func TestCacheConcurrentMixed(t *testing.T) {
	c := NewCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprint(i % 48) // wider than capacity: exercises eviction
				v, _, err := c.Do(context.Background(), key, constant(key))
				if err != nil || v != key {
					t.Errorf("Do(%s) = %v, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}
