package serving

import (
	"sync/atomic"
	"time"

	"repro/internal/loadctl"
	"repro/internal/uncertainty"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the fixed
// latency histogram; an implicit +Inf bucket catches the overflow.
var latencyBucketsMS = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000,
}

// histogram is a fixed-bucket latency histogram updated with atomics.
type histogram struct {
	counts   []atomic.Int64 // len(latencyBucketsMS)+1, last = +Inf
	sumNanos atomic.Int64
	count    atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBucketsMS)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// HistogramBucket is one cumulative histogram bucket in a snapshot.
type HistogramBucket struct {
	LeMS  float64 `json:"le_ms"` // upper bound; 0 marks the +Inf bucket
	Count int64   `json:"count"` // cumulative count <= LeMS
}

// HistogramSnapshot is the JSON view of a latency histogram.
type HistogramSnapshot struct {
	Count      int64             `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	MeanMS     float64           `json:"mean_ms"`
	Buckets    []HistogramBucket `json:"buckets,omitempty"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNanos.Load()) / float64(time.Second),
	}
	if s.Count > 0 {
		s.MeanMS = float64(h.sumNanos.Load()) / float64(time.Millisecond) / float64(s.Count)
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		b := HistogramBucket{Count: cum}
		if i < len(latencyBucketsMS) {
			b.LeMS = latencyBucketsMS[i]
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// endpointStats accumulates one route's counters.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	latency  *histogram
}

// Metrics accumulates server observability counters with atomics; the
// per-endpoint map is built once at construction and only read
// afterwards, so no lock is ever taken on the request path.
type Metrics struct {
	start            time.Time
	endpoints        map[string]*endpointStats
	predictions      atomic.Int64 // configurations predicted (batch-aware)
	panics           atomic.Int64
	intervalRequests atomic.Int64 // /v1/predict requests asking for intervals
	observations     atomic.Int64 // runtimes ingested via /v1/observe (batch-aware)
	driftKicks       atomic.Int64 // coverage-breach episodes that kicked retraining
}

// metricEndpoints are the route labels instrumented by the server.
var metricEndpoints = []string{"predict", "observe", "models", "loadstatus", "reload", "healthz", "metrics", "other"}

// NewMetrics creates a metrics accumulator.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now(), endpoints: make(map[string]*endpointStats, len(metricEndpoints))}
	for _, name := range metricEndpoints {
		m.endpoints[name] = &endpointStats{latency: newHistogram()}
	}
	return m
}

// record accumulates one finished request.
func (m *Metrics) record(endpoint string, status int, d time.Duration) {
	es, ok := m.endpoints[endpoint]
	if !ok {
		es = m.endpoints["other"]
	}
	es.requests.Add(1)
	if status >= 400 {
		es.errors.Add(1)
	}
	es.latency.observe(d)
}

// EndpointSnapshot is the JSON view of one route's counters.
type EndpointSnapshot struct {
	Requests int64             `json:"requests"`
	Errors   int64             `json:"errors"`
	Latency  HistogramSnapshot `json:"latency"`
}

// ModelStatus is one model's identity line in the metrics document:
// enough for an operator to see which pipeline generation is serving.
type ModelStatus struct {
	Name       string `json:"name"`
	Version    int    `json:"version"`
	Generation int    `json:"generation,omitempty"`
}

// PipelineSnapshot summarizes training-pipeline activity as observed
// through the registry's promotion hook and reloads.
type PipelineSnapshot struct {
	Promotions    int64            `json:"promotions"`
	Rejections    int64            `json:"rejections"`
	Rollbacks     int64            `json:"rollbacks"`
	LastPromotion *PromotionStatus `json:"last_promotion,omitempty"`
}

// UncertaintySnapshot summarizes interval serving and drift monitoring:
// how many predictions carried bands, how many measured runtimes came
// back, how often coverage breached, and each model's rolling per-scale
// coverage/MAPE windows.
type UncertaintySnapshot struct {
	IntervalRequests int64                         `json:"interval_requests"`
	Observations     int64                         `json:"observations"`
	DriftKicks       int64                         `json:"drift_kicks"`
	Monitors         []uncertainty.MonitorSnapshot `json:"monitors,omitempty"`
}

// Snapshot is the JSON document served on /metrics.
type Snapshot struct {
	UptimeSeconds    float64                     `json:"uptime_seconds"`
	RequestsTotal    int64                       `json:"requests_total"`
	ErrorsTotal      int64                       `json:"errors_total"`
	PredictionsTotal int64                       `json:"predictions_total"`
	PanicsTotal      int64                       `json:"panics_total"`
	ReloadsTotal     int64                       `json:"reloads_total"`
	Models           int                         `json:"models"`
	ModelStatus      []ModelStatus               `json:"model_status,omitempty"`
	LastReload       *ReloadStatus               `json:"last_reload,omitempty"`
	Pipeline         *PipelineSnapshot           `json:"pipeline,omitempty"`
	Uncertainty      *UncertaintySnapshot        `json:"uncertainty,omitempty"`
	Cache            CacheStats                  `json:"cache"`
	Load             *loadctl.Snapshot           `json:"load,omitempty"`
	Endpoints        map[string]EndpointSnapshot `json:"endpoints"`
}

// Snapshot captures every counter; cache, registry, drift-monitor, and
// admission-controller state are sampled from the collaborators so the
// document is assembled in one place. drift and load may be nil.
func (m *Metrics) Snapshot(cache *Cache, reg *Registry, drift *uncertainty.MonitorSet, load *loadctl.Controller) Snapshot {
	s := Snapshot{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		PredictionsTotal: m.predictions.Load(),
		PanicsTotal:      m.panics.Load(),
		Endpoints:        make(map[string]EndpointSnapshot, len(m.endpoints)),
	}
	for name, es := range m.endpoints {
		req, errs := es.requests.Load(), es.errors.Load()
		if req == 0 {
			continue // keep the document small; absent = zero
		}
		s.RequestsTotal += req
		s.ErrorsTotal += errs
		s.Endpoints[name] = EndpointSnapshot{Requests: req, Errors: errs, Latency: es.latency.snapshot()}
	}
	if cache != nil {
		s.Cache = cache.Stats()
	}
	if reg != nil {
		s.ReloadsTotal = reg.Reloads()
		s.Models = reg.Len()
		s.LastReload = reg.LastReload()
		for _, e := range reg.List() {
			s.ModelStatus = append(s.ModelStatus, ModelStatus{
				Name: e.Name, Version: e.Version, Generation: e.Generation,
			})
		}
		promoted, rejected, rollbacks := reg.PromotionCounts()
		if last := reg.LastPromotion(); last != nil || promoted+rejected+rollbacks > 0 {
			s.Pipeline = &PipelineSnapshot{
				Promotions: promoted, Rejections: rejected, Rollbacks: rollbacks,
				LastPromotion: last,
			}
		}
	}
	u := UncertaintySnapshot{
		IntervalRequests: m.intervalRequests.Load(),
		Observations:     m.observations.Load(),
		DriftKicks:       m.driftKicks.Load(),
	}
	if drift != nil {
		u.Monitors = drift.Snapshot()
	}
	if u.IntervalRequests+u.Observations+u.DriftKicks > 0 || len(u.Monitors) > 0 {
		s.Uncertainty = &u
	}
	if load != nil {
		snap := load.Snapshot()
		s.Load = &snap
	}
	return s
}
