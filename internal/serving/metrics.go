package serving

import (
	"io"
	"time"

	"repro/internal/loadctl"
	"repro/internal/obs"
	"repro/internal/uncertainty"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the fixed
// latency histogram; an implicit +Inf bucket catches the overflow.
var latencyBucketsMS = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000,
}

// latencyBounds converts the bucket bounds to the Durations the obs
// registry works in.
func latencyBounds() []time.Duration {
	out := make([]time.Duration, len(latencyBucketsMS))
	for i, ms := range latencyBucketsMS {
		out[i] = time.Duration(ms * float64(time.Millisecond))
	}
	return out
}

// HistogramBucket and HistogramSnapshot are the obs registry's JSON
// histogram views; the aliases keep the /metrics JSON types where
// consumers of this package have always found them. The +Inf bucket is
// marked by the explicit "+Inf" bound (obs.BucketBound), not the old
// ambiguous 0 sentinel.
type (
	HistogramBucket  = obs.HistogramBucket
	HistogramSnapshot = obs.HistogramSnapshot
)

// endpointStats holds one route's registry handles.
type endpointStats struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// Metrics is the server's view of the central obs registry: counters,
// gauges, and histograms are registered once at construction and the
// returned atomic handles are the only thing the request path touches,
// so recording stays lock-free and zero-alloc. The same registry
// renders the Prometheus exposition, so the JSON document and the
// text exposition always agree.
type Metrics struct {
	start            time.Time
	reg              *obs.Registry
	endpoints        map[string]*endpointStats
	predictions      *obs.Counter // configurations predicted (batch-aware)
	panics           *obs.Counter
	intervalRequests *obs.Counter // /v1/predict requests asking for intervals
	observations     *obs.Counter // runtimes ingested via /v1/observe (batch-aware)
	driftKicks       *obs.Counter // coverage-breach episodes that kicked retraining
}

// metricEndpoints are the route labels instrumented by the server.
var metricEndpoints = []string{"predict", "observe", "models", "loadstatus", "reload", "healthz", "metrics", "other"}

// NewMetrics creates a metrics accumulator on reg; a nil reg gets a
// private registry (the common case — cmd/serve passes a shared one so
// pipeline metrics land in the same exposition).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry("repro")
	}
	m := &Metrics{start: time.Now(), reg: reg, endpoints: make(map[string]*endpointStats, len(metricEndpoints))}
	bounds := latencyBounds()
	for _, name := range metricEndpoints {
		m.endpoints[name] = &endpointStats{
			requests: reg.Counter("http_requests_total", "HTTP requests by endpoint", obs.L("endpoint", name)),
			errors:   reg.Counter("http_request_errors_total", "HTTP responses with status >= 400 by endpoint", obs.L("endpoint", name)),
			latency:  reg.Histogram("http_request_duration_seconds", "HTTP request latency by endpoint", bounds, obs.L("endpoint", name)),
		}
	}
	m.predictions = reg.Counter("predictions_total", "configurations predicted, counting each batch entry")
	m.panics = reg.Counter("panics_total", "handler panics recovered and answered with a 500")
	m.intervalRequests = reg.Counter("interval_requests_total", "predict requests asking for prediction intervals")
	m.observations = reg.Counter("observations_total", "measured runtimes ingested via /v1/observe, counting each batch entry")
	m.driftKicks = reg.Counter("drift_kicks_total", "coverage-breach episodes that kicked retraining")
	reg.GaugeFunc("uptime_seconds", "seconds since server start", func() float64 {
		return time.Since(m.start).Seconds()
	})
	return m
}

// Registry exposes the underlying obs registry (for embedding more
// collectors and for the Prometheus exposition).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// WritePrometheus renders the registry in Prometheus text exposition
// format (served on GET /metrics via content negotiation).
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// record accumulates one finished request.
func (m *Metrics) record(endpoint string, status int, d time.Duration) {
	es, ok := m.endpoints[endpoint]
	if !ok {
		es = m.endpoints["other"]
	}
	es.requests.Inc()
	if status >= 400 {
		es.errors.Inc()
	}
	es.latency.Observe(d)
}

// registerCollaborators bridges collaborator-owned counters (cache,
// registry, admission controller) into the Prometheus exposition as
// sampled-at-scrape functions; the collaborators keep their own
// atomics and the JSON document keeps reading them directly.
func (m *Metrics) registerCollaborators(cache *Cache, reg *Registry, load *loadctl.Controller) {
	r := m.reg
	if cache != nil {
		r.CounterFunc("cache_hits_total", "prediction cache hits", func() float64 { return float64(cache.Stats().Hits) })
		r.CounterFunc("cache_misses_total", "prediction cache misses", func() float64 { return float64(cache.Stats().Misses) })
		r.CounterFunc("cache_coalesced_total", "lookups coalesced into an in-flight computation", func() float64 { return float64(cache.Stats().Coalesced) })
		r.CounterFunc("cache_evictions_total", "LRU evictions", func() float64 { return float64(cache.Stats().Evictions) })
		r.GaugeFunc("cache_entries", "live prediction cache entries", func() float64 { return float64(cache.Stats().Size) })
	}
	if reg != nil {
		r.GaugeFunc("models", "models installed in the registry", func() float64 { return float64(reg.Len()) })
		r.CounterFunc("model_reloads_total", "registry reloads", func() float64 { return float64(reg.Reloads()) })
		r.CounterFunc("pipeline_promotions_total", "model generations promoted into serving", func() float64 {
			p, _, _ := reg.PromotionCounts()
			return float64(p)
		})
		r.CounterFunc("pipeline_rejections_total", "candidate generations rejected by the gate", func() float64 {
			_, rej, _ := reg.PromotionCounts()
			return float64(rej)
		})
		r.CounterFunc("pipeline_rollbacks_total", "generation rollbacks", func() float64 {
			_, _, rb := reg.PromotionCounts()
			return float64(rb)
		})
	}
	if load != nil {
		r.GaugeFunc("load_limit", "admission concurrency limit", func() float64 { return load.Snapshot().Limit })
		r.GaugeFunc("load_in_flight", "requests holding an admission slot", func() float64 { return float64(load.Snapshot().InFlight) })
		r.GaugeFunc("load_queued", "requests waiting in the admission queue", func() float64 { return float64(load.Snapshot().Queued) })
		r.GaugeFunc("load_degraded", "1 while the server is in degraded cache-only mode", func() float64 {
			if load.Snapshot().Degraded {
				return 1
			}
			return 0
		})
		r.CounterFunc("load_admitted_total", "requests granted an admission slot", func() float64 { return float64(load.Snapshot().Admitted.Total()) })
		r.CounterFunc("load_completed_total", "admitted requests completed", func() float64 { return float64(load.Snapshot().Completed) })
		r.CounterFunc("load_shed_total", "requests shed (queue full, budget, degraded, or timeout)", func() float64 { return float64(load.Snapshot().ShedTotal()) })
		r.CounterFunc("load_degraded_served_total", "cache-only responses served while degraded", func() float64 { return float64(load.Snapshot().DegradedServed) })
		r.GaugeFunc("load_ewma_latency_seconds", "EWMA service-latency estimate", func() float64 { return load.Snapshot().EWMALatencyMS / 1e3 })
	}
}

// EndpointSnapshot is the JSON view of one route's counters.
type EndpointSnapshot struct {
	Requests int64             `json:"requests"`
	Errors   int64             `json:"errors"`
	Latency  HistogramSnapshot `json:"latency"`
}

// ModelStatus is one model's identity line in the metrics document:
// enough for an operator to see which pipeline generation is serving.
type ModelStatus struct {
	Name       string `json:"name"`
	Version    int    `json:"version"`
	Generation int    `json:"generation,omitempty"`
}

// PipelineSnapshot summarizes training-pipeline activity as observed
// through the registry's promotion hook and reloads.
type PipelineSnapshot struct {
	Promotions    int64            `json:"promotions"`
	Rejections    int64            `json:"rejections"`
	Rollbacks     int64            `json:"rollbacks"`
	LastPromotion *PromotionStatus `json:"last_promotion,omitempty"`
}

// UncertaintySnapshot summarizes interval serving and drift monitoring:
// how many predictions carried bands, how many measured runtimes came
// back, how often coverage breached, and each model's rolling per-scale
// coverage/MAPE windows.
type UncertaintySnapshot struct {
	IntervalRequests int64                         `json:"interval_requests"`
	Observations     int64                         `json:"observations"`
	DriftKicks       int64                         `json:"drift_kicks"`
	Monitors         []uncertainty.MonitorSnapshot `json:"monitors,omitempty"`
}

// Snapshot is the JSON document served on /metrics.
type Snapshot struct {
	UptimeSeconds    float64                     `json:"uptime_seconds"`
	RequestsTotal    int64                       `json:"requests_total"`
	ErrorsTotal      int64                       `json:"errors_total"`
	PredictionsTotal int64                       `json:"predictions_total"`
	PanicsTotal      int64                       `json:"panics_total"`
	ReloadsTotal     int64                       `json:"reloads_total"`
	Models           int                         `json:"models"`
	ModelStatus      []ModelStatus               `json:"model_status,omitempty"`
	LastReload       *ReloadStatus               `json:"last_reload,omitempty"`
	Pipeline         *PipelineSnapshot           `json:"pipeline,omitempty"`
	Uncertainty      *UncertaintySnapshot        `json:"uncertainty,omitempty"`
	Cache            CacheStats                  `json:"cache"`
	Load             *loadctl.Snapshot           `json:"load,omitempty"`
	Endpoints        map[string]EndpointSnapshot `json:"endpoints"`
}

// Snapshot captures every counter; cache, registry, drift-monitor, and
// admission-controller state are sampled from the collaborators so the
// document is assembled in one place. drift and load may be nil.
func (m *Metrics) Snapshot(cache *Cache, reg *Registry, drift *uncertainty.MonitorSet, load *loadctl.Controller) Snapshot {
	s := Snapshot{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		PredictionsTotal: m.predictions.Load(),
		PanicsTotal:      m.panics.Load(),
		Endpoints:        make(map[string]EndpointSnapshot, len(m.endpoints)),
	}
	for name, es := range m.endpoints {
		req, errs := es.requests.Load(), es.errors.Load()
		if req == 0 {
			continue // keep the document small; absent = zero
		}
		s.RequestsTotal += req
		s.ErrorsTotal += errs
		s.Endpoints[name] = EndpointSnapshot{Requests: req, Errors: errs, Latency: es.latency.Snapshot()}
	}
	if cache != nil {
		s.Cache = cache.Stats()
	}
	if reg != nil {
		s.ReloadsTotal = reg.Reloads()
		s.Models = reg.Len()
		s.LastReload = reg.LastReload()
		for _, e := range reg.List() {
			s.ModelStatus = append(s.ModelStatus, ModelStatus{
				Name: e.Name, Version: e.Version, Generation: e.Generation,
			})
		}
		promoted, rejected, rollbacks := reg.PromotionCounts()
		if last := reg.LastPromotion(); last != nil || promoted+rejected+rollbacks > 0 {
			s.Pipeline = &PipelineSnapshot{
				Promotions: promoted, Rejections: rejected, Rollbacks: rollbacks,
				LastPromotion: last,
			}
		}
	}
	u := UncertaintySnapshot{
		IntervalRequests: m.intervalRequests.Load(),
		Observations:     m.observations.Load(),
		DriftKicks:       m.driftKicks.Load(),
	}
	if drift != nil {
		u.Monitors = drift.Snapshot()
	}
	if u.IntervalRequests+u.Observations+u.DriftKicks > 0 || len(u.Monitors) > 0 {
		s.Uncertainty = &u
	}
	if load != nil {
		snap := load.Snapshot()
		s.Load = &snap
	}
	return s
}
