// Package serving exposes trained two-level models over an HTTP JSON
// API: a versioned model registry with atomic hot-swap, an LRU
// prediction cache with single-flight deduplication, stdlib-only
// handlers, and an atomics-based metrics layer exported as JSON.
//
// The design leans on one invariant of core.TwoLevelModel: every
// prediction method is a pure read (all scratch state is allocated per
// call), so an arbitrary number of request goroutines may share one
// model value. Hot-swapping installs a fresh *Entry behind an
// atomic.Pointer snapshot; in-flight requests keep predicting against
// the entry they resolved at admission and simply finish on the old
// model.
package serving

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"maps"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Source names a model file the registry (re)loads from disk.
type Source struct {
	Name string
	Path string
}

// Entry is one immutable loaded model. Entries are never mutated after
// publication; a reload that changes a model installs a new Entry.
type Entry struct {
	Name     string
	Version  int    // bumped on every content change of this name
	Path     string // "" for models installed in-process
	SHA256   string // content hash of the model file ("" when in-process)
	LoadedAt time.Time
	Model    *core.TwoLevelModel

	// Generation is the training pipeline's generation counter carried in
	// the model's metadata; 0 for models trained outside the pipeline.
	Generation int
}

// snapshot is the immutable view readers dereference with one atomic load.
type snapshot struct {
	entries map[string]*Entry
}

// Registry holds named model versions. Reads (Get, List, Len) are
// lock-free snapshot dereferences; Reload and Install serialize on a
// mutex and publish a fresh snapshot atomically, so readers never block
// on a reload and never observe a half-updated set.
type Registry struct {
	mu      sync.Mutex // serializes writers only
	sources []Source
	snap    atomic.Pointer[snapshot]
	reloads atomic.Int64

	// Pipeline observability: outcome of the latest Reload, the latest
	// promotion-hook event, and lifetime counters per outcome, all
	// exported on /metrics so a stuck pipeline is visible to operators.
	lastReload    atomic.Pointer[ReloadStatus]
	lastPromotion atomic.Pointer[PromotionStatus]
	promotions    atomic.Int64
	rejections    atomic.Int64
	rollbacks     atomic.Int64
}

// ReloadStatus is the outcome of the most recent Reload.
type ReloadStatus struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// Promotion outcomes reported through NotePromotion.
const (
	PromotionPromoted = "promoted"
	PromotionRejected = "rejected"
	PromotionRollback = "rollback"
)

// PromotionStatus is one training-pipeline event as seen by the
// serving layer.
type PromotionStatus struct {
	App        string `json:"app"`
	Generation int    `json:"generation"`
	Outcome    string `json:"outcome"` // promoted | rejected | rollback
	Detail     string `json:"detail,omitempty"`
}

// NewRegistry creates an empty registry over the given disk sources.
// Call Reload to perform the initial load.
func NewRegistry(sources ...Source) *Registry {
	r := &Registry{sources: slices.Clone(sources)}
	r.snap.Store(&snapshot{entries: map[string]*Entry{}})
	return r
}

// Reload (re)loads every source from disk and atomically swaps the
// published snapshot. Per-source failures keep that name's previous
// entry (if any) and are joined into the returned error, so one corrupt
// file cannot take down models that are already serving. A source whose
// bytes are unchanged keeps its current entry and version, making
// repeated reloads cache-friendly. Entries installed with Install (not
// backed by a source) are preserved.
func (r *Registry) Reload() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load().entries
	next := make(map[string]*Entry, len(old))
	sourced := make(map[string]bool, len(r.sources))
	var errs []error
	for _, src := range r.sources {
		sourced[src.Name] = true
		prev := old[src.Name]
		e, err := loadEntry(src, prev)
		if err != nil {
			if prev != nil {
				next[src.Name] = prev
			}
			// Name the model AND the failing path: loadEntry errors from the
			// decoder do not carry the file, and an operator chasing a stuck
			// pipeline needs to know which artifact to inspect.
			errs = append(errs, fmt.Errorf("model %q (%s): %w", src.Name, src.Path, err))
			continue
		}
		next[src.Name] = e
	}
	for name, e := range old {
		if !sourced[name] && e.Path == "" {
			next[name] = e
		}
	}
	r.snap.Store(&snapshot{entries: next})
	r.reloads.Add(1)
	err := errors.Join(errs...)
	st := &ReloadStatus{OK: err == nil}
	if err != nil {
		st.Error = err.Error()
	}
	r.lastReload.Store(st)
	return err
}

// loadEntry reads and validates one source, reusing prev when the file
// content is byte-identical.
func loadEntry(src Source, prev *Entry) (*Entry, error) {
	raw, err := os.ReadFile(src.Path)
	if err != nil {
		return nil, err
	}
	sum := fmt.Sprintf("%x", sha256.Sum256(raw))
	if prev != nil && prev.SHA256 == sum {
		return prev, nil
	}
	m, err := core.Read(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	// Compile before publication so every request this entry ever serves
	// runs the flattened traversal kernels.
	m.Compile()
	version := 1
	if prev != nil {
		version = prev.Version + 1
	}
	return &Entry{
		Name:       src.Name,
		Version:    version,
		Path:       src.Path,
		SHA256:     sum,
		LoadedAt:   time.Now(),
		Model:      m,
		Generation: m.Meta.Generation,
	}, nil
}

// Install publishes an in-memory model under a name, bypassing disk.
// Useful for embedding the server in another process and for tests.
func (r *Registry) Install(name string, m *core.TwoLevelModel) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load().entries
	version := 1
	if prev, ok := old[name]; ok {
		version = prev.Version + 1
	}
	m.Compile()
	e := &Entry{Name: name, Version: version, LoadedAt: time.Now(), Model: m, Generation: m.Meta.Generation}
	next := maps.Clone(old)
	next[name] = e
	r.snap.Store(&snapshot{entries: next})
	return e
}

// Get resolves a model by name. The empty name resolves to the only
// model when exactly one is loaded, and to "default" otherwise.
func (r *Registry) Get(name string) (*Entry, bool) {
	s := r.snap.Load()
	if name == "" {
		if len(s.entries) == 1 {
			for _, e := range s.entries {
				return e, true
			}
		}
		name = "default"
	}
	e, ok := s.entries[name]
	return e, ok
}

// List returns the current entries sorted by name.
func (r *Registry) List() []*Entry {
	s := r.snap.Load()
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	slices.SortFunc(out, func(a, b *Entry) int {
		switch {
		case a.Name < b.Name:
			return -1
		case a.Name > b.Name:
			return 1
		}
		return 0
	})
	return out
}

// Len returns the number of loaded models.
func (r *Registry) Len() int { return len(r.snap.Load().entries) }

// Reloads returns how many times Reload has completed.
func (r *Registry) Reloads() int64 { return r.reloads.Load() }

// LastReload returns the most recent Reload outcome, or nil before the
// first Reload.
func (r *Registry) LastReload() *ReloadStatus { return r.lastReload.Load() }

// NotePromotion records a training-pipeline event (the promotion hook
// called by internal/pipeline) for /metrics.
func (r *Registry) NotePromotion(st PromotionStatus) {
	switch st.Outcome {
	case PromotionPromoted:
		r.promotions.Add(1)
	case PromotionRejected:
		r.rejections.Add(1)
	case PromotionRollback:
		r.rollbacks.Add(1)
	}
	r.lastPromotion.Store(&st)
}

// LastPromotion returns the most recent pipeline event, or nil when the
// promotion hook has never fired.
func (r *Registry) LastPromotion() *PromotionStatus { return r.lastPromotion.Load() }

// PromotionCounts returns lifetime pipeline-event counters.
func (r *Registry) PromotionCounts() (promoted, rejected, rollbacks int64) {
	return r.promotions.Load(), r.rejections.Load(), r.rollbacks.Load()
}
