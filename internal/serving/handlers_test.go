package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
)

// doJSON posts a body (or GETs when body is nil) and decodes the reply.
func doJSON(t *testing.T, h http.Handler, method, path string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code
}

func TestPredictSingleMatchesCore(t *testing.T) {
	s, _, m, params := newTestServer(t, DefaultOptions())
	p := params[0]
	var resp PredictResponse
	code := doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: p}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Model != "default" || resp.Version != 1 || len(resp.Results) != 1 {
		t.Fatalf("response envelope %+v", resp)
	}
	res := resp.Results[0]
	if !reflect.DeepEqual(res.Scales, m.Cfg.LargeScales) {
		t.Fatalf("scales %v, want %v", res.Scales, m.Cfg.LargeScales)
	}
	if want := m.Predict(p); !reflect.DeepEqual(res.Runtimes, want) {
		t.Fatalf("runtimes %v, want %v (served prediction must match direct core call)", res.Runtimes, want)
	}
	if res.Cluster != m.AssignCluster(p) {
		t.Fatalf("cluster %d, want %d", res.Cluster, m.AssignCluster(p))
	}
	if res.Cached {
		t.Fatal("first request reported cached")
	}
}

func TestPredictBatchOptionsAndCaching(t *testing.T) {
	s, _, m, params := newTestServer(t, DefaultOptions())
	req := PredictRequest{Configs: params[:3], At: m.Cfg.LargeScales[1], Small: true}
	var resp PredictResponse
	if code := doJSON(t, s.Handler(), "POST", "/v1/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results", len(resp.Results))
	}
	for i, res := range resp.Results {
		p := params[i]
		want, err := m.PredictAt(p, req.At)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Runtimes) != 1 || res.Runtimes[0] != want {
			t.Fatalf("result %d: runtimes %v, want [%v]", i, res.Runtimes, want)
		}
		if !reflect.DeepEqual(res.Small, m.PredictSmall(p)) {
			t.Fatalf("result %d: small curve mismatch", i)
		}
	}
	// Re-request: every result must now be served from the cache.
	if code := doJSON(t, s.Handler(), "POST", "/v1/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for i, res := range resp.Results {
		if !res.Cached {
			t.Fatalf("result %d not cached on identical re-request", i)
		}
	}
}

func TestPredictIntervals(t *testing.T) {
	s, _, m, params := newTestServer(t, DefaultOptions())
	p := params[1]
	// Legacy tail-quantile form (0.1) and coverage form (0.8) are one
	// request: both normalize to coverage 0.8 and answer identically.
	for _, interval := range []float64{0.1, 0.8} {
		var resp PredictResponse
		code := doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: p, Interval: interval}, &resp)
		if code != http.StatusOK {
			t.Fatalf("interval=%v: status %d", interval, code)
		}
		cov, err := core.NormalizeCoverage(interval)
		if err != nil {
			t.Fatal(err)
		}
		want := m.PredictIntervalCov(p, cov)
		if !reflect.DeepEqual(resp.Results[0].Intervals, want) {
			t.Fatalf("interval=%v: intervals %+v, want %+v", interval, resp.Results[0].Intervals, want)
		}
		for _, iv := range resp.Results[0].Intervals {
			if iv.Source != core.IntervalEnsemble {
				t.Fatalf("uncalibrated fixture served source %q", iv.Source)
			}
		}
	}
}

// TestPredictWithoutIntervalOmitsIntervals pins the backward-compat
// contract: a request without the interval field gets the pre-interval
// point-only response shape.
func TestPredictWithoutIntervalOmitsIntervals(t *testing.T) {
	s, _, _, params := newTestServer(t, DefaultOptions())
	var raw map[string]json.RawMessage
	code := doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: params[0]}, &raw)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var results []map[string]json.RawMessage
	if err := json.Unmarshal(raw["results"], &results); err != nil {
		t.Fatal(err)
	}
	if _, present := results[0]["intervals"]; present {
		t.Fatal("point-only request serialized an intervals field")
	}
	if _, present := results[0]["runtimes"]; !present {
		t.Fatal("response missing runtimes")
	}
}

func TestPredictValidation(t *testing.T) {
	s, _, m, params := newTestServer(t, DefaultOptions())
	p := params[0]
	cases := []struct {
		name string
		body any
		code int
	}{
		{"no configs", PredictRequest{}, http.StatusBadRequest},
		{"wrong arity", PredictRequest{Params: p[:len(p)-1]}, http.StatusBadRequest},
		{"unknown model", PredictRequest{Model: "nope", Params: p}, http.StatusNotFound},
		{"bad interval", PredictRequest{Params: p, Interval: 1.5}, http.StatusBadRequest},
		{"negative interval", PredictRequest{Params: p, Interval: -0.1}, http.StatusBadRequest},
		{"interval with at", PredictRequest{Params: p, At: m.Cfg.LargeScales[0], Interval: 0.1}, http.StatusBadRequest},
		{"negative at", PredictRequest{Params: p, At: -3}, http.StatusBadRequest},
		{"non-target at (anchored)", PredictRequest{Params: p, At: 77}, http.StatusBadRequest},
		{"unknown field", map[string]any{"parms": p}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var errBody map[string]string
		if code := doJSON(t, s.Handler(), "POST", "/v1/predict", tc.body, &errBody); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		} else if errBody["error"] == "" {
			t.Errorf("%s: missing error body", tc.name)
		}
	}
	// Oversized batch and malformed JSON.
	big := make([][]float64, maxBatch+1)
	for i := range big {
		big[i] = p
	}
	if code := doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Configs: big}, nil); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d", code)
	}
	req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader([]byte("{nope")))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", w.Code)
	}
	// Method not allowed on a mux method pattern.
	req = httptest.NewRequest("GET", "/v1/predict", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d", w.Code)
	}
}

func TestModelsEndpoint(t *testing.T) {
	s, _, m, _ := newTestServer(t, DefaultOptions())
	var body struct {
		Models []ModelInfo `json:"models"`
	}
	if code := doJSON(t, s.Handler(), "GET", "/v1/models", nil, &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(body.Models) != 1 {
		t.Fatalf("%d models", len(body.Models))
	}
	info := body.Models[0]
	if info.Name != "default" || info.Version != 1 ||
		!reflect.DeepEqual(info.Params, m.ParamNames) ||
		!reflect.DeepEqual(info.LargeScales, m.Cfg.LargeScales) ||
		info.Clusters != m.Clusters() || info.TrainConfigs != m.TrainConfigs {
		t.Fatalf("model info %+v", info)
	}
}

func TestHealthz(t *testing.T) {
	s, _, _, _ := newTestServer(t, DefaultOptions())
	if code := doJSON(t, s.Handler(), "GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthy server: status %d", code)
	}
	empty := New(NewRegistry(), DefaultOptions())
	if code := doJSON(t, empty.Handler(), "GET", "/healthz", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("empty server: status %d", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _, _, params := newTestServer(t, DefaultOptions())
	for i := 0; i < 3; i++ {
		doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: params[0]}, nil)
	}
	doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: []float64{1}}, nil) // 400
	var snap Snapshot
	if code := doJSON(t, s.Handler(), "GET", "/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	pred := snap.Endpoints["predict"]
	if pred.Requests != 4 || pred.Errors != 1 {
		t.Fatalf("predict endpoint stats %+v", pred)
	}
	if snap.Cache.Hits != 2 || snap.Cache.Misses != 1 {
		t.Fatalf("cache stats %+v", snap.Cache)
	}
	if snap.PredictionsTotal != 3 || snap.Models != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	if pred.Latency.Count != 4 || pred.Latency.SumSeconds <= 0 {
		t.Fatalf("latency histogram %+v", pred.Latency)
	}
	last := pred.Latency.Buckets[len(pred.Latency.Buckets)-1]
	if last.Count != 4 {
		t.Fatalf("+Inf bucket %+v, want cumulative 4", last)
	}
}

func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := saveFixture(t, dir)
	reg := NewRegistry(Source{Name: "default", Path: path})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	s := New(reg, DefaultOptions())

	var body struct {
		Models []ModelInfo `json:"models"`
		Error  string      `json:"error"`
	}
	if code := doJSON(t, s.Handler(), "POST", "/v1/reload", nil, &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(body.Models) != 1 || body.Models[0].Version != 1 {
		t.Fatalf("reload body %+v", body)
	}
	// Corrupt the file: reload reports 500 but keeps serving v1.
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := doJSON(t, s.Handler(), "POST", "/v1/reload", nil, &body); code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload: status %d", code)
	}
	if body.Error == "" || len(body.Models) != 1 {
		t.Fatalf("corrupt reload body %+v", body)
	}
	if code := doJSON(t, s.Handler(), "GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatal("server unhealthy after failed reload")
	}
}

// TestConcurrentLoadAndHotReload is the acceptance scenario: request
// goroutines hammer /v1/predict (a mix of repeated and fresh
// configurations) while the model file is rewritten and hot-reloaded
// concurrently. Every response must be a valid 200 and the metrics must
// show real traffic and cache hits. Run under -race this also proves
// the registry swap and cache are data-race free.
func TestConcurrentLoadAndHotReload(t *testing.T) {
	dir := t.TempDir()
	path := saveFixture(t, dir)
	reg := NewRegistry(Source{Name: "default", Path: path})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Options{CacheSize: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, params := testModel(t)
	const clients = 8
	const perClient = 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rnd := rng.New(uint64(c))
			for i := 0; i < perClient; i++ {
				p := params[rnd.Intn(len(params))]
				raw, _ := json.Marshal(PredictRequest{Params: p})
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var pr PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d err %v", c, resp.StatusCode, err)
					return
				}
				if len(pr.Results) != 1 || len(pr.Results[0].Runtimes) == 0 {
					t.Errorf("client %d: empty result %+v", c, pr)
					return
				}
			}
		}(c)
	}

	// Concurrently force real hot-swaps: append whitespace so the bytes
	// change (new version) while the decoded model stays valid.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err == nil {
				f.WriteString(" ")
				f.Close()
			}
			if err := reg.Reload(); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	e, _ := reg.Get("")
	if e.Version < 2 {
		t.Fatalf("no hot-swap happened: version %d", e.Version)
	}
	snap := s.Metrics().Snapshot(s.Cache(), reg, nil, nil)
	if snap.RequestsTotal < clients*perClient {
		t.Fatalf("requests_total %d < %d", snap.RequestsTotal, clients*perClient)
	}
	if snap.Cache.Hits == 0 {
		t.Fatal("no cache hits under repeated traffic")
	}
	if snap.ErrorsTotal != 0 {
		t.Fatalf("errors_total %d", snap.ErrorsTotal)
	}
}

// TestGracefulShutdownDrains starts a real listener, parks a slow
// request in flight, shuts down, and asserts the in-flight request
// completes while new connections are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	s, _, _, params := newTestServer(t, DefaultOptions())
	mux := http.NewServeMux()
	release := make(chan struct{})
	started := make(chan struct{})
	mux.HandleFunc("POST /slow-predict", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release // simulate a long prediction while shutdown begins
		r2 := httptest.NewRequest("POST", "/v1/predict", r.Body)
		s.Handler().ServeHTTP(w, r2)
	})
	mux.Handle("/", s.Handler())

	g := NewGraceful("127.0.0.1:0", mux, 5*time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- g.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		raw, _ := json.Marshal(PredictRequest{Params: params[0]})
		resp, err := http.Post(base+"/slow-predict", "application/json", bytes.NewReader(raw))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{code: resp.StatusCode}
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- g.Shutdown() }()
	time.Sleep(50 * time.Millisecond) // let Shutdown close the listener
	close(release)

	r := <-inflight
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %+v", r)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("connection accepted after shutdown")
	}
}

// TestPanicRecovery asserts a handler panic becomes a 500 and is
// counted, not a crashed server.
func TestPanicRecovery(t *testing.T) {
	m, params := testModel(t)
	reg := NewRegistry()
	reg.Install("default", m)
	s := New(reg, Options{CacheSize: 0})
	// PredictFromCurve panics on arity mismatch; reach a panic through a
	// request the validators can't pre-check by corrupting the model copy.
	// Simpler: panic via the instrument wrapper directly.
	h := s.instrument("other", func(w http.ResponseWriter, r *http.Request, _ *obs.ReqTrace) {
		panic("kaboom")
	})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/boom", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", w.Code)
	}
	snap := s.Metrics().Snapshot(s.Cache(), reg, nil, nil)
	if snap.PanicsTotal != 1 || snap.Endpoints["other"].Errors != 1 {
		t.Fatalf("snapshot after panic %+v", snap)
	}
	// The server still serves normal traffic.
	var resp PredictResponse
	if code := doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: params[0]}, &resp); code != http.StatusOK {
		t.Fatalf("post-panic predict status %d", code)
	}
}
