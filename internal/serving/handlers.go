package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/loadctl"
	"repro/internal/obs"
	"repro/internal/uncertainty"
)

// maxBatch bounds one request's configuration count; larger batches get
// a 400 rather than an unbounded amount of work.
const maxBatch = 4096

// maxBodyBytes bounds the request body the server will parse.
const maxBodyBytes = 8 << 20

// Options configures a Server.
type Options struct {
	// CacheSize is the prediction-cache capacity in entries (one entry
	// per configuration × option set × model version); <= 0 disables
	// caching. DefaultCacheSize is used when the field is zero and the
	// options struct itself came from DefaultOptions.
	CacheSize int

	// BatchWorkers bounds the goroutines used to compute one large
	// /v1/predict batch; <= 0 means GOMAXPROCS. Results are always
	// index-ordered regardless of worker count. 1 forces serial batches.
	BatchWorkers int

	// Drift configures the per-model drift monitors fed by /v1/observe;
	// zero fields take uncertainty.DriftConfig's defaults.
	Drift uncertainty.DriftConfig

	// OnDrift, when set, is invoked once per coverage-breach episode per
	// model with the breach diagnosis and the request ID of the
	// /v1/observe call whose observation tipped the coverage — the hook
	// that kicks the retraining pipeline, with origin making the kick
	// traceable end-to-end through the pipeline journal. It runs on the
	// /v1/observe request goroutine.
	OnDrift func(model, reason, origin string)

	// Load configures the admission controller guarding /v1/predict
	// (bounded queue, AIMD concurrency limit, priority shedding,
	// degraded mode); zero fields take loadctl's defaults. Set
	// DisableLoadControl to run without admission control entirely.
	Load               loadctl.Config
	DisableLoadControl bool

	// DefaultDeadline is the per-request deadline budget assumed when a
	// client sends no X-Deadline-Ms header; 0 means unbounded. Requests
	// that cannot be served within their budget are shed with 503 +
	// Retry-After rather than left to time out.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-supplied budgets; 0 selects
	// DefaultMaxDeadline.
	MaxDeadline time.Duration

	// SyntheticDelay adds a fixed artificial service time to every
	// cache-miss computation. Load tests use it to create deterministic
	// saturation without depending on model compute cost; zero (the
	// default) disables it.
	SyntheticDelay time.Duration

	// Obs, when set, is the shared metrics registry the server registers
	// into (cmd/serve passes one so pipeline metrics share the same
	// Prometheus exposition); nil gets a private registry.
	Obs *obs.Registry

	// Tracer, when set, is a shared trace ring; nil (with tracing
	// enabled) gets a private ring of TraceCapacity entries. Tracing is
	// on by default — every request gets an X-Request-Id and a span tree
	// in GET /debug/traces; DisableTracing turns all of it off.
	Tracer         *obs.Tracer
	TraceCapacity  int
	DisableTracing bool
}

// DefaultCacheSize is the prediction-cache capacity used by DefaultOptions.
const DefaultCacheSize = 4096

// DefaultOptions returns the production defaults.
func DefaultOptions() Options { return Options{CacheSize: DefaultCacheSize} }

// Server serves predictions from a Registry over HTTP. Create with New,
// mount via Handler.
type Server struct {
	reg          *Registry
	cache        *Cache
	metrics      *Metrics
	mux          *http.ServeMux
	batchWorkers int
	drift        *uncertainty.MonitorSet

	// load guards /v1/predict (nil = load control disabled); draining
	// flips /healthz to 503 once graceful shutdown begins.
	load            *loadctl.Controller
	defaultDeadline time.Duration
	maxDeadline     time.Duration
	synthDelay      time.Duration
	draining        atomic.Bool

	// tracer records per-request span trees into a bounded ring (nil =
	// tracing disabled); ids mints X-Request-Id values for requests that
	// arrive without one.
	tracer *obs.Tracer
	ids    *obs.IDGen
}

// New builds a Server over a registry.
func New(reg *Registry, opts Options) *Server {
	s := &Server{
		reg:          reg,
		cache:        NewCache(opts.CacheSize),
		metrics:      NewMetrics(opts.Obs),
		mux:          http.NewServeMux(),
		batchWorkers: opts.BatchWorkers,

		defaultDeadline: opts.DefaultDeadline,
		maxDeadline:     opts.MaxDeadline,
		synthDelay:      opts.SyntheticDelay,
	}
	if s.maxDeadline <= 0 {
		s.maxDeadline = DefaultMaxDeadline
	}
	if !opts.DisableLoadControl {
		s.load = loadctl.New(opts.Load)
	}
	if !opts.DisableTracing {
		s.tracer = opts.Tracer
		if s.tracer == nil {
			s.tracer = obs.NewTracer(opts.TraceCapacity)
		}
		s.ids = obs.NewIDGen("")
	}
	s.metrics.registerCollaborators(s.cache, s.reg, s.load)
	s.drift = uncertainty.NewMonitorSet(opts.Drift, func(model, reason, origin string) {
		s.metrics.driftKicks.Inc()
		if opts.OnDrift != nil {
			opts.OnDrift(model, reason, origin)
		}
	})
	s.mux.Handle("POST /v1/predict", s.instrument("predict", s.handlePredict))
	s.mux.Handle("POST /v1/observe", s.instrument("observe", s.handleObserve))
	s.mux.Handle("GET /v1/models", s.instrument("models", s.handleModels))
	s.mux.Handle("GET /v1/loadstatus", s.instrument("loadstatus", s.handleLoadStatus))
	s.mux.Handle("POST /v1/reload", s.instrument("reload", s.handleReload))
	s.mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	if s.tracer != nil {
		s.mux.Handle("GET /debug/traces", s.tracer.Handler())
	}
	return s
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's metrics accumulator (for embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the prediction cache (for embedding and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Tracer exposes the request-trace ring (nil when tracing is
// disabled), so cmd/serve can mount /debug/traces on the ops listener
// and the pipeline can file its run traces into the same ring.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// ---- request/response types ----

// PredictRequest is the POST /v1/predict body. Provide a single
// configuration in Params or a batch in Configs (or both; Params is
// prepended). Every configuration must have exactly the model's
// parameter count.
type PredictRequest struct {
	// Model selects a registry entry; empty resolves like Registry.Get.
	Model string `json:"model,omitempty"`

	Params  []float64   `json:"params,omitempty"`
	Configs [][]float64 `json:"configs,omitempty"`

	// At predicts at one scale instead of every target scale; must be a
	// target scale in anchored mode (basis mode accepts any scale >= 1).
	At int `json:"at,omitempty"`

	// Interval, when in (0, 1), adds prediction intervals per target
	// scale: values in [0.5, 1) are a coverage level (0.9 → a 90% band,
	// conformal when the model carries calibration), values in (0, 0.5)
	// the legacy tail-quantile form (0.1 ≡ coverage 0.8); see
	// core.NormalizeCoverage. Incompatible with At. The handler rewrites
	// the field to the normalized coverage after validation.
	Interval float64 `json:"interval,omitempty"`

	// Small adds the interpolated small-scale curve to each result.
	Small bool `json:"small,omitempty"`
}

// ConfigResult is one configuration's prediction.
type ConfigResult struct {
	Params    []float64       `json:"params"`
	Cluster   int             `json:"cluster"`
	Scales    []int           `json:"scales"`
	Runtimes  []float64       `json:"runtimes"`
	Small     []float64       `json:"small,omitempty"`
	Intervals []core.Interval `json:"intervals,omitempty"`
	Cached    bool            `json:"cached"`
}

// PredictResponse is the POST /v1/predict reply.
type PredictResponse struct {
	Model   string         `json:"model"`
	Version int            `json:"version"`
	Results []ConfigResult `json:"results"`

	// Degraded marks a response served cache-only while the admission
	// queue was saturated (also signaled via the X-Degraded header).
	Degraded bool `json:"degraded,omitempty"`
}

// ModelInfo is one registry entry's public description.
type ModelInfo struct {
	Name         string    `json:"name"`
	Version      int       `json:"version"`
	Generation   int       `json:"generation,omitempty"`
	Path         string    `json:"path,omitempty"`
	SHA256       string    `json:"sha256,omitempty"`
	LoadedAt     time.Time `json:"loaded_at"`
	Mode         string    `json:"mode"`
	Params       []string  `json:"params"`
	SmallScales  []int     `json:"small_scales"`
	LargeScales  []int     `json:"large_scales"`
	Clusters     int       `json:"clusters"`
	TrainConfigs int       `json:"train_configs"`
	Anchors      int       `json:"anchors"`

	// Compiled reports whether the entry serves through the flattened
	// treec inference kernels (registry loads and installs compile
	// unconditionally, so this is false only for entries published
	// through paths that predate compilation).
	Compiled bool `json:"compiled"`

	// Calibrated reports whether the generation carries split-conformal
	// calibration (interval requests answer with a coverage guarantee);
	// CalibrationSamples is its total holdout residual count.
	Calibrated         bool `json:"calibrated"`
	CalibrationSamples int  `json:"calibration_samples,omitempty"`
}

func modelInfo(e *Entry) ModelInfo {
	m := e.Model
	_, calSamples := m.Meta.Calibration.Samples()
	return ModelInfo{
		Name:         e.Name,
		Version:      e.Version,
		Generation:   e.Generation,
		Path:         e.Path,
		SHA256:       e.SHA256,
		LoadedAt:     e.LoadedAt,
		Mode:         string(m.Mode()),
		Params:       m.ParamNames,
		SmallScales:  m.Cfg.SmallScales,
		LargeScales:  m.Cfg.LargeScales,
		Clusters:     m.Clusters(),
		TrainConfigs: m.TrainConfigs,
		Anchors:      m.Anchors,
		Compiled:     m.Compiled(),

		Calibrated:         m.Meta.Calibration != nil,
		CalibrationSamples: calSamples,
	}
}

// ---- handlers ----

// predictReqPool recycles request objects so steady-state decoding
// reuses the param/config slice capacity instead of regrowing it from
// nothing on every request. Decoded slices are only valid until the
// request returns; anything cached is copied (see computeResult).
var predictReqPool = sync.Pool{New: func() any { return new(PredictRequest) }}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, rt *obs.ReqTrace) {
	req := predictReqPool.Get().(*PredictRequest)
	defer func() {
		*req = PredictRequest{Params: req.Params[:0], Configs: req.Configs[:0]}
		predictReqPool.Put(req)
	}()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}

	entry, ok := s.reg.Get(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("model %q not loaded", orDefault(req.Model)))
		return
	}

	configs := req.Configs
	var one [1][]float64
	if len(req.Params) > 0 {
		if len(configs) == 0 {
			one[0] = req.Params // single-config fast path: no slice allocation
			configs = one[:]
		} else {
			configs = append([][]float64{req.Params}, configs...)
		}
	}
	switch {
	case len(configs) == 0:
		writeError(w, http.StatusBadRequest, "provide params or configs")
		return
	case len(configs) > maxBatch:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds limit %d", len(configs), maxBatch))
		return
	case req.At != 0 && req.At < 1:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("at=%d must be >= 1", req.At))
		return
	}
	if req.Interval != 0 {
		if req.At != 0 {
			writeError(w, http.StatusBadRequest, "interval is incompatible with at; request all target scales")
			return
		}
		cov, err := core.NormalizeCoverage(req.Interval)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Rewrite to the normalized coverage so the cache key and the
		// model call see one canonical form (0.1 and 0.8 hit one entry).
		req.Interval = cov
		s.metrics.intervalRequests.Add(1)
	}
	want := len(entry.Model.ParamNames)
	for i, cfg := range configs {
		if len(cfg) != want {
			writeError(w, http.StatusBadRequest, fmt.Sprintf(
				"configuration %d has %d values, model %q expects %d (%v)",
				i, len(cfg), entry.Name, want, entry.Model.ParamNames))
			return
		}
	}

	class := classify(req, len(configs))
	budget, ok := s.requestBudget(r)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid %s header", DeadlineHeader))
		return
	}

	// The budget bounds the whole request: queue wait plus compute. The
	// timeout context is only created when a budget exists, keeping the
	// no-deadline cache-hit fast path allocation-free.
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	if s.load != nil {
		if s.load.Degraded() {
			// Saturated: answer from cache alone or shed — never queue.
			if s.serveDegraded(w, entry, req, configs) {
				s.load.NoteDegraded(class, true)
				return
			}
			s.load.NoteDegraded(class, false)
			writeShed(w, &loadctl.ShedError{Reason: loadctl.ShedDegraded, Class: class, RetryAfter: s.load.RetryAfter()})
			return
		}
		wtr, shed := s.load.Acquire(class, budget)
		if shed != nil {
			writeShed(w, shed)
			return
		}
		if wtr != nil {
			qs := rt.StartSpan()
			err := wtr.Wait(ctx)
			rt.EndSpan("queue_wait", qs)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					writeShed(w, &loadctl.ShedError{Reason: loadctl.ShedTimeout, Class: class, RetryAfter: s.load.RetryAfter()})
				}
				// Canceled: the client went away; nothing useful to write.
				return
			}
		}
		// Observed service time (slot grant to completion) feeds the AIMD
		// limit; queue wait is deliberately excluded so a deep queue does
		// not read as slow service and collapse the limit.
		svcStart := time.Now()
		defer func() { s.load.Release(time.Since(svcStart)) }()
	}

	// Fine-grained cache/model/calibration spans only make sense for a
	// single-configuration request; a batch gets one compute span (a
	// 4096-config batch would otherwise flood the trace ring).
	spanRT := rt
	if len(configs) != 1 {
		spanRT = nil
	}
	cs := rt.StartSpan()
	resp := PredictResponse{Model: entry.Name, Version: entry.Version, Results: make([]ConfigResult, len(configs))}
	err := s.computeBatch(ctx, entry, req, configs, resp.Results, spanRT)
	rt.EndSpan("compute", cs)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			if s.load != nil {
				s.load.NoteTimeout(class)
			}
			writeShed(w, &loadctl.ShedError{Reason: loadctl.ShedTimeout, Class: class, RetryAfter: s.retryAfter()})
		case errors.Is(err, context.Canceled):
			// Client went away mid-compute; nothing useful to write.
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// retryAfter returns the controller's backoff hint, or a fixed 1s when
// load control is disabled.
func (s *Server) retryAfter() time.Duration {
	if s.load != nil {
		return s.load.RetryAfter()
	}
	return time.Second
}

// minParallelBatch is the batch size below which fan-out overhead beats
// any parallel win and batches run serially.
const minParallelBatch = 64

// computeBatch fills out[i] with configs[i]'s prediction, through the
// cache. Large batches fan out over bounded workers on contiguous index
// chunks; output order is index order either way, and on failure the
// lowest-index error is returned (each chunk stops at its first error,
// which is its lowest, so the minimum over chunks is the global one) —
// the response is identical to a serial run regardless of worker count.
func (s *Server) computeBatch(ctx context.Context, entry *Entry, req *PredictRequest, configs [][]float64, out []ConfigResult, rt *obs.ReqTrace) error {
	workers := s.batchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(configs) < minParallelBatch || workers == 1 {
		var kb [128]byte
		_, err := s.computeRange(ctx, entry, req, configs, out, 0, len(configs), kb[:0], rt)
		return err
	}
	chunk := (len(configs) + workers - 1) / workers
	var wg sync.WaitGroup
	var mu sync.Mutex
	errIdx := -1
	var firstErr error
	for lo := 0; lo < len(configs); lo += chunk {
		hi := lo + chunk
		if hi > len(configs) {
			hi = len(configs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if i, err := s.computeRange(ctx, entry, req, configs, out, lo, hi, make([]byte, 0, 128), nil); err != nil {
				mu.Lock()
				if errIdx < 0 || i < errIdx {
					errIdx, firstErr = i, err
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}

// computeRange computes configs[lo:hi] into out, reusing kb as the cache
// key buffer. It stops at the first error, returning its index. rt is
// non-nil only for single-configuration requests, which get
// cache_lookup / model_eval / calibration spans.
func (s *Server) computeRange(ctx context.Context, entry *Entry, req *PredictRequest, configs [][]float64, out []ConfigResult, lo, hi int, kb []byte, rt *obs.ReqTrace) (int, error) {
	for i := lo; i < hi; i++ {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		cfg := configs[i]
		kb = appendPredictKey(kb[:0], entry, req, cfg)
		ls := rt.StartSpan()
		v, hit, err := s.cache.DoBytes(ctx, kb, func() (any, error) {
			if s.synthDelay > 0 {
				time.Sleep(s.synthDelay)
			}
			return computeResult(entry.Model, req, cfg, rt)
		})
		rt.EndSpan("cache_lookup", ls)
		if err != nil {
			return i, err
		}
		res := *v.(*ConfigResult) // shallow copy; cached inner slices are never mutated
		res.Cached = hit
		out[i] = res
		s.metrics.predictions.Inc()
	}
	return -1, nil
}

// computeResult runs the actual model for one configuration. cfg is
// copied: the result outlives the request in the cache, while cfg's
// backing array belongs to the pooled request object.
func computeResult(m *core.TwoLevelModel, req *PredictRequest, cfg []float64, rt *obs.ReqTrace) (*ConfigResult, error) {
	es := rt.StartSpan()
	res := &ConfigResult{
		Params:  append([]float64(nil), cfg...),
		Cluster: m.AssignCluster(cfg),
	}
	if req.Small {
		res.Small = m.PredictSmall(cfg)
	}
	if req.At > 0 {
		v, err := m.PredictAt(cfg, req.At)
		if err != nil {
			return nil, err
		}
		res.Scales = []int{req.At}
		res.Runtimes = []float64{v}
		rt.EndSpan("model_eval", es)
		return res, nil
	}
	res.Scales = m.Cfg.LargeScales
	res.Runtimes = m.Predict(cfg)
	rt.EndSpan("model_eval", es)
	if req.Interval > 0 {
		// Interval is a normalized coverage by here (see handlePredict);
		// calibrated models answer conformally, others from tree spread.
		is := rt.StartSpan()
		res.Intervals = m.PredictIntervalCov(cfg, req.Interval)
		rt.EndSpan("calibration", is)
	}
	return res, nil
}

// appendPredictKey appends the cache key for one configuration to dst
// and returns it, so a reused buffer makes key construction
// allocation-free. The model version is part of the key, so a hot-swap
// invalidates by construction.
func appendPredictKey(dst []byte, e *Entry, req *PredictRequest, cfg []float64) []byte {
	dst = append(dst, e.Name...)
	dst = append(dst, '@')
	dst = strconv.AppendInt(dst, int64(e.Version), 10)
	dst = append(dst, "|at="...)
	dst = strconv.AppendInt(dst, int64(req.At), 10)
	dst = append(dst, "|q="...)
	dst = strconv.AppendFloat(dst, req.Interval, 'g', -1, 64)
	if req.Small {
		dst = append(dst, "|s"...)
	}
	dst = append(dst, '|')
	for i, v := range cfg {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	return dst
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request, _ *obs.ReqTrace) {
	entries := s.reg.List()
	infos := make([]ModelInfo, len(entries))
	for i, e := range entries {
		infos[i] = modelInfo(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": infos})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request, _ *obs.ReqTrace) {
	err := s.reg.Reload()
	entries := s.reg.List()
	infos := make([]ModelInfo, len(entries))
	for i, e := range entries {
		infos[i] = modelInfo(e)
	}
	body := map[string]any{"models": infos}
	status := http.StatusOK
	if err != nil {
		body["error"] = err.Error()
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request, _ *obs.ReqTrace) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.reg.Len() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no models loaded"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.reg.Len()})
}

// handleMetrics serves the metrics document with content negotiation:
// the historical JSON shape by default, the Prometheus text exposition
// (format 0.0.4) when the Accept header asks for text/plain or
// openmetrics — both rendered from the same registry state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, _ *obs.ReqTrace) {
	if wantsPromText(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A write error means the scraper went away mid-reply; the status
		// line is committed, so there is nothing left to do.
		_ = s.metrics.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.cache, s.reg, s.drift, s.load))
}

// wantsPromText decides the /metrics representation from an Accept
// header: the first recognized media type wins (q-values are ignored —
// scrapers list their preferred type first), and the default for an
// absent or wildcard-only header stays JSON for backward
// compatibility.
func wantsPromText(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch mt {
		case "application/json", "application/*":
			return false
		case "text/plain", "text/*", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// ---- plumbing ----

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrumented is a handler that also receives the request's trace
// (nil when tracing is disabled) — passed as an argument rather than
// through context.WithValue so the hot path does not pay two context
// allocations per request.
type instrumented func(http.ResponseWriter, *http.Request, *obs.ReqTrace)

// instrument wraps a handler with panic recovery, per-endpoint
// request/error/latency accounting, and request tracing: an inbound
// X-Request-Id is adopted (and echoed), otherwise one is minted, and
// the finished span tree lands in the trace ring keyed by that ID.
func (s *Server) instrument(name string, h instrumented) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var rt *obs.ReqTrace
		if s.tracer != nil {
			id := r.Header.Get(obs.RequestIDHeader)
			if id == "" {
				id = s.ids.Next()
			}
			w.Header().Set(obs.RequestIDHeader, id)
			rt = s.tracer.StartRequest("request", name, id)
		} else if id := r.Header.Get(obs.RequestIDHeader); id != "" {
			w.Header().Set(obs.RequestIDHeader, id)
		}
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Inc()
				sr.status = http.StatusInternalServerError
				writeError(sr, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
			s.metrics.record(name, sr.status, time.Since(start))
			rt.Finish(sr.status)
		}()
		h(sr, r, rt)
	})
}

// jsonWriter pairs a reusable encode buffer with an encoder bound to it,
// pooled so the steady-state response path allocates neither.
type jsonWriter struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonWriterPool = sync.Pool{New: func() any {
	jw := &jsonWriter{}
	jw.enc = json.NewEncoder(&jw.buf)
	return jw
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	jw := jsonWriterPool.Get().(*jsonWriter)
	jw.buf.Reset()
	if err := jw.enc.Encode(v); err != nil {
		// Only possible for unencodable values, which would be a bug in
		// the response types; nothing has been written yet, so say so.
		jsonWriterPool.Put(jw)
		http.Error(w, fmt.Sprintf(`{"error":"encoding response: %v"}`, err), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(jw.buf.Len()))
	w.WriteHeader(status)
	// A failed response write means the client went away mid-reply; the
	// status line is already committed, so there is nothing left to do.
	_, _ = w.Write(jw.buf.Bytes())
	jsonWriterPool.Put(jw)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func orDefault(name string) string {
	if name == "" {
		return "default"
	}
	return name
}
