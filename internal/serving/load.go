package serving

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/loadctl"
	"repro/internal/obs"
)

// DeadlineHeader is the request header carrying the client's total
// deadline budget in milliseconds. Requests whose estimated queue wait
// exceeds the remaining budget are rejected immediately with 503 +
// Retry-After instead of timing out downstream; the budget also bounds
// the queued wait itself and mid-batch compute.
const DeadlineHeader = "X-Deadline-Ms"

// DefaultMaxDeadline caps client-supplied deadline budgets.
const DefaultMaxDeadline = 30 * time.Second

// classify maps one validated predict request to its shedding class:
// batches shed first, interval-bearing requests second, single point
// predictions last. A batch that also asks for intervals is still bulk
// work, so batch wins.
func classify(req *PredictRequest, nConfigs int) loadctl.Class {
	switch {
	case nConfigs > 1:
		return loadctl.Batch
	case req.Interval != 0:
		return loadctl.Interval
	default:
		return loadctl.Point
	}
}

// requestBudget resolves one request's deadline budget: the
// X-Deadline-Ms header when present (clamped to MaxDeadline), the
// server default otherwise. 0 means unbounded. ok is false when the
// header is present but unparsable (the caller answers 400).
func (s *Server) requestBudget(r *http.Request) (time.Duration, bool) {
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return s.defaultDeadline, true
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.maxDeadline {
		d = s.maxDeadline
	}
	return d, true
}

// ShedResponse is the 503 body for a rejected request. The Retry-After
// header carries the same hint in whole seconds (minimum 1), so plain
// HTTP clients and load balancers can honor it without parsing JSON.
type ShedResponse struct {
	Error        string `json:"error"` // always "overloaded"
	Reason       string `json:"reason"`
	Class        string `json:"class"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// writeShed answers a rejected request: 503, Retry-After, and a JSON
// body naming the shed mechanism.
func writeShed(w http.ResponseWriter, shed *loadctl.ShedError) {
	secs := int(math.Ceil(shed.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, ShedResponse{
		Error:        "overloaded",
		Reason:       shed.Reason,
		Class:        shed.Class.String(),
		RetryAfterMS: shed.RetryAfter.Milliseconds(),
	})
}

// serveDegraded attempts the cache-hits-only answer used while the
// admission queue is saturated: every configuration in the request must
// already be cached (no slot is consumed, no model runs — the response
// costs microseconds). Returns false on any miss; the caller sheds.
func (s *Server) serveDegraded(w http.ResponseWriter, entry *Entry, req *PredictRequest, configs [][]float64) bool {
	resp := PredictResponse{
		Model:    entry.Name,
		Version:  entry.Version,
		Degraded: true,
		Results:  make([]ConfigResult, len(configs)),
	}
	var kb [128]byte
	key := kb[:0]
	for i, cfg := range configs {
		key = appendPredictKey(key[:0], entry, req, cfg)
		v, ok := s.cache.Get(string(key))
		if !ok {
			return false
		}
		res := *v.(*ConfigResult)
		res.Cached = true
		resp.Results[i] = res
	}
	w.Header().Set("X-Degraded", "1")
	writeJSON(w, http.StatusOK, resp)
	return true
}

// LoadStatus is the GET /v1/loadstatus document: the live admission-
// controller snapshot plus the drain flag load balancers watch.
type LoadStatus struct {
	Enabled  bool              `json:"enabled"`
	Draining bool              `json:"draining"`
	Load     *loadctl.Snapshot `json:"load,omitempty"`
}

func (s *Server) handleLoadStatus(w http.ResponseWriter, r *http.Request, _ *obs.ReqTrace) {
	st := LoadStatus{Enabled: s.load != nil, Draining: s.draining.Load()}
	if s.load != nil {
		snap := s.load.Snapshot()
		st.Load = &snap
	}
	writeJSON(w, http.StatusOK, st)
}

// BeginDrain marks the server draining: /healthz turns 503 so load
// balancers stop routing new traffic before the listener closes.
// In-flight and already-accepted requests still complete. Wire it as
// the GracefulServer's PreDrain hook (cmd/serve does).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// LoadController exposes the admission controller (nil when load
// control is disabled); used by tests and embedders.
func (s *Server) LoadController() *loadctl.Controller { return s.load }
