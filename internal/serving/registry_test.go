package serving

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func saveFixture(t *testing.T, dir string) string {
	t.Helper()
	m, _ := testModel(t)
	path := filepath.Join(dir, "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegistryLoadAndGet(t *testing.T) {
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "smg", Path: path})
	if reg.Len() != 0 {
		t.Fatalf("fresh registry has %d entries", reg.Len())
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e, ok := reg.Get("smg")
	if !ok || e.Version != 1 || e.Model == nil {
		t.Fatalf("Get(smg) = %+v, %v", e, ok)
	}
	// empty name resolves to the single loaded model
	if e2, ok := reg.Get(""); !ok || e2 != e {
		t.Fatalf("Get(\"\") did not resolve the single model")
	}
	if _, ok := reg.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
	if len(e.SHA256) != 64 {
		t.Fatalf("entry SHA256 = %q", e.SHA256)
	}
}

func TestRegistryUnchangedFileKeepsVersion(t *testing.T) {
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "default", Path: path})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e1, _ := reg.Get("")
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e2, _ := reg.Get("")
	if e2 != e1 {
		t.Fatalf("reload of unchanged file replaced the entry (v%d -> v%d)", e1.Version, e2.Version)
	}
	if reg.Reloads() != 2 {
		t.Fatalf("Reloads() = %d, want 2", reg.Reloads())
	}
}

func TestRegistryHotSwapBumpsVersion(t *testing.T) {
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "default", Path: path})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e1, _ := reg.Get("")
	// Trailing whitespace changes the bytes but not the decoded model.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(" "); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e2, _ := reg.Get("")
	if e2.Version != e1.Version+1 {
		t.Fatalf("version after content change: %d, want %d", e2.Version, e1.Version+1)
	}
	if e2.Model == e1.Model {
		t.Fatal("hot swap did not install a fresh model value")
	}
}

func TestRegistryReloadFailureKeepsServing(t *testing.T) {
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "default", Path: path})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e1, _ := reg.Get("")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := reg.Reload()
	if err == nil {
		t.Fatal("reload of corrupt file reported no error")
	}
	if !strings.Contains(err.Error(), "default") {
		t.Fatalf("error %q does not name the failing model", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not carry the failing path", err)
	}
	e2, ok := reg.Get("")
	if !ok || e2 != e1 {
		t.Fatal("corrupt reload evicted the serving entry")
	}
	// The failure is observable after the fact.
	lr := reg.LastReload()
	if lr == nil || lr.OK || !strings.Contains(lr.Error, path) {
		t.Fatalf("LastReload() = %+v, want failed status naming %s", lr, path)
	}
	if err := m2Save(t, path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if lr := reg.LastReload(); lr == nil || !lr.OK || lr.Error != "" {
		t.Fatalf("LastReload() after recovery = %+v, want OK", lr)
	}
}

// m2Save writes a fresh valid model fixture over path.
func m2Save(t *testing.T, path string) error {
	t.Helper()
	m, _ := testModel(t)
	return m.Save(path)
}

func TestRegistryPromotionObservability(t *testing.T) {
	m, _ := testModel(t)
	m.Meta.Generation = 7
	reg := NewRegistry()
	e := reg.Install("smg", m)
	if e.Generation != 7 {
		t.Fatalf("installed Generation = %d, want 7 from model metadata", e.Generation)
	}
	reg.NotePromotion(PromotionStatus{App: "smg", Generation: 7, Outcome: PromotionPromoted})
	reg.NotePromotion(PromotionStatus{App: "smg", Generation: 8, Outcome: PromotionRejected, Detail: "worse"})
	reg.NotePromotion(PromotionStatus{App: "smg", Generation: 7, Outcome: PromotionRollback})
	p, r, rb := reg.PromotionCounts()
	if p != 1 || r != 1 || rb != 1 {
		t.Fatalf("PromotionCounts() = %d, %d, %d", p, r, rb)
	}
	lp := reg.LastPromotion()
	if lp == nil || lp.Outcome != PromotionRollback || lp.Generation != 7 {
		t.Fatalf("LastPromotion() = %+v", lp)
	}

	// The whole story surfaces on the metrics snapshot.
	snap := NewMetrics(nil).Snapshot(nil, reg, nil, nil)
	if len(snap.ModelStatus) != 1 || snap.ModelStatus[0].Generation != 7 {
		t.Fatalf("ModelStatus = %+v, want generation 7", snap.ModelStatus)
	}
	if snap.Pipeline == nil || snap.Pipeline.Promotions != 1 || snap.Pipeline.Rejections != 1 ||
		snap.Pipeline.Rollbacks != 1 || snap.Pipeline.LastPromotion == nil {
		t.Fatalf("Pipeline snapshot = %+v", snap.Pipeline)
	}
}

func TestRegistryInstallSurvivesReload(t *testing.T) {
	m, _ := testModel(t)
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "disk", Path: path})
	reg.Install("mem", m)
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("mem"); !ok {
		t.Fatal("installed entry dropped by Reload")
	}
	if reg.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", reg.Len())
	}
	names := []string{}
	for _, e := range reg.List() {
		names = append(names, e.Name)
	}
	if names[0] != "disk" || names[1] != "mem" {
		t.Fatalf("List() order %v", names)
	}
	// Reinstall bumps the version.
	if e := reg.Install("mem", m); e.Version != 2 {
		t.Fatalf("reinstall version = %d, want 2", e.Version)
	}
}

func TestRegistryMissingFileFirstLoad(t *testing.T) {
	reg := NewRegistry(Source{Name: "default", Path: filepath.Join(t.TempDir(), "absent.json")})
	if err := reg.Reload(); err == nil {
		t.Fatal("reload of missing file reported no error")
	}
	if reg.Len() != 0 {
		t.Fatalf("Len() = %d after failed first load", reg.Len())
	}
}
