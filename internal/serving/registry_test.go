package serving

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func saveFixture(t *testing.T, dir string) string {
	t.Helper()
	m, _ := testModel(t)
	path := filepath.Join(dir, "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegistryLoadAndGet(t *testing.T) {
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "smg", Path: path})
	if reg.Len() != 0 {
		t.Fatalf("fresh registry has %d entries", reg.Len())
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e, ok := reg.Get("smg")
	if !ok || e.Version != 1 || e.Model == nil {
		t.Fatalf("Get(smg) = %+v, %v", e, ok)
	}
	// empty name resolves to the single loaded model
	if e2, ok := reg.Get(""); !ok || e2 != e {
		t.Fatalf("Get(\"\") did not resolve the single model")
	}
	if _, ok := reg.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
	if len(e.SHA256) != 64 {
		t.Fatalf("entry SHA256 = %q", e.SHA256)
	}
}

func TestRegistryUnchangedFileKeepsVersion(t *testing.T) {
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "default", Path: path})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e1, _ := reg.Get("")
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e2, _ := reg.Get("")
	if e2 != e1 {
		t.Fatalf("reload of unchanged file replaced the entry (v%d -> v%d)", e1.Version, e2.Version)
	}
	if reg.Reloads() != 2 {
		t.Fatalf("Reloads() = %d, want 2", reg.Reloads())
	}
}

func TestRegistryHotSwapBumpsVersion(t *testing.T) {
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "default", Path: path})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e1, _ := reg.Get("")
	// Trailing whitespace changes the bytes but not the decoded model.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(" "); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e2, _ := reg.Get("")
	if e2.Version != e1.Version+1 {
		t.Fatalf("version after content change: %d, want %d", e2.Version, e1.Version+1)
	}
	if e2.Model == e1.Model {
		t.Fatal("hot swap did not install a fresh model value")
	}
}

func TestRegistryReloadFailureKeepsServing(t *testing.T) {
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "default", Path: path})
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	e1, _ := reg.Get("")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := reg.Reload()
	if err == nil {
		t.Fatal("reload of corrupt file reported no error")
	}
	if !strings.Contains(err.Error(), "default") {
		t.Fatalf("error %q does not name the failing model", err)
	}
	e2, ok := reg.Get("")
	if !ok || e2 != e1 {
		t.Fatal("corrupt reload evicted the serving entry")
	}
}

func TestRegistryInstallSurvivesReload(t *testing.T) {
	m, _ := testModel(t)
	path := saveFixture(t, t.TempDir())
	reg := NewRegistry(Source{Name: "disk", Path: path})
	reg.Install("mem", m)
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("mem"); !ok {
		t.Fatal("installed entry dropped by Reload")
	}
	if reg.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", reg.Len())
	}
	names := []string{}
	for _, e := range reg.List() {
		names = append(names, e.Name)
	}
	if names[0] != "disk" || names[1] != "mem" {
		t.Fatalf("List() order %v", names)
	}
	// Reinstall bumps the version.
	if e := reg.Install("mem", m); e.Version != 2 {
		t.Fatalf("reinstall version = %d, want 2", e.Version)
	}
}

func TestRegistryMissingFileFirstLoad(t *testing.T) {
	reg := NewRegistry(Source{Name: "default", Path: filepath.Join(t.TempDir(), "absent.json")})
	if err := reg.Reload(); err == nil {
		t.Fatal("reload of missing file reported no error")
	}
	if reg.Len() != 0 {
		t.Fatalf("Len() = %d after failed first load", reg.Len())
	}
}
