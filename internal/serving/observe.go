package serving

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/obs"
	"repro/internal/uncertainty"
)

// Observation is one measured runtime for a configuration the model
// predicted at a target scale.
type Observation struct {
	Params  []float64 `json:"params"`
	Scale   int       `json:"scale"`
	Runtime float64   `json:"runtime"`
}

// ObserveRequest is the POST /v1/observe body. Provide a single
// observation inline (Params/Scale/Runtime) or a batch in Observations
// (or both; the inline one is prepended).
type ObserveRequest struct {
	// Model selects a registry entry; empty resolves like Registry.Get.
	Model string `json:"model,omitempty"`

	Params  []float64 `json:"params,omitempty"`
	Scale   int       `json:"scale,omitempty"`
	Runtime float64   `json:"runtime,omitempty"`

	Observations []Observation `json:"observations,omitempty"`
}

// ObserveResult scores one observation against the active model's
// interval at the drift monitor's nominal coverage.
type ObserveResult struct {
	Scale     int     `json:"scale"`
	Predicted float64 `json:"predicted"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	Covered   bool    `json:"covered"`
	APE       float64 `json:"ape"`
	// Drift marks the observation whose arrival tipped the model's
	// rolling coverage below the floor and kicked retraining.
	Drift  bool   `json:"drift,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// ObserveResponse is the POST /v1/observe reply.
type ObserveResponse struct {
	Model   string                      `json:"model"`
	Version int                         `json:"version"`
	Results []ObserveResult             `json:"results"`
	Monitor uncertainty.MonitorSnapshot `json:"monitor"`
}

// handleObserve ingests measured runtimes for past predictions: each is
// scored against the active generation's interval at the monitor's
// nominal coverage, feeding the per-scale coverage/MAPE windows that
// detect drift. The loop is feedback, not bookkeeping — a breach here
// kicks the retraining pipeline through the server's OnDrift hook.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request, rt *obs.ReqTrace) {
	var req ObserveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}

	entry, ok := s.reg.Get(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("model %q not loaded", orDefault(req.Model)))
		return
	}

	obs := req.Observations
	if len(req.Params) > 0 {
		obs = append([]Observation{{Params: req.Params, Scale: req.Scale, Runtime: req.Runtime}}, obs...)
	}
	switch {
	case len(obs) == 0:
		writeError(w, http.StatusBadRequest, "provide an observation or a batch of observations")
		return
	case len(obs) > maxBatch:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds limit %d", len(obs), maxBatch))
		return
	}

	m := entry.Model
	want := len(m.ParamNames)
	coverage := s.drift.Config().Coverage
	resp := ObserveResponse{Model: entry.Name, Version: entry.Version, Results: make([]ObserveResult, len(obs))}
	for i, o := range obs {
		if len(o.Params) != want {
			writeError(w, http.StatusBadRequest, fmt.Sprintf(
				"observation %d has %d values, model %q expects %d (%v)",
				i, len(o.Params), entry.Name, want, m.ParamNames))
			return
		}
		if o.Runtime <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("observation %d has non-positive runtime %v", i, o.Runtime))
			return
		}
		ivs := m.PredictIntervalCov(o.Params, coverage)
		var res ObserveResult
		found := false
		for _, iv := range ivs {
			if iv.Scale == o.Scale {
				res = ObserveResult{Scale: o.Scale, Predicted: iv.Mid, Lo: iv.Lo, Hi: iv.Hi}
				found = true
				break
			}
		}
		if !found {
			writeError(w, http.StatusBadRequest, fmt.Sprintf(
				"observation %d at scale %d: model %q serves scales %v",
				i, o.Scale, entry.Name, m.Cfg.LargeScales))
			return
		}
		// The request ID rides along as the observation's origin: if this
		// is the observation that tips coverage below the floor, the drift
		// kick (and the journal entry the retrain writes) carries it, so
		// the whole retraining episode is traceable back to this request.
		out := s.drift.Observe(entry.Name, o.Scale, res.Predicted, res.Lo, res.Hi, o.Runtime, rt.ID())
		res.Covered = out.Covered
		res.APE = out.APE
		res.Drift = out.BreachStarted
		res.Reason = out.Reason
		resp.Results[i] = res
		s.metrics.observations.Inc()
	}
	resp.Monitor = s.drift.Monitor(entry.Name).Snapshot()
	resp.Monitor.Model = entry.Name
	writeJSON(w, http.StatusOK, resp)
}
