package serving

import (
	"net/http"
	"sync"
	"testing"

	"repro/internal/uncertainty"
)

func TestObserveFeedsMonitorAndKicksOnDrift(t *testing.T) {
	var mu sync.Mutex
	var kicks []string
	opts := DefaultOptions()
	opts.Drift = uncertainty.DriftConfig{Window: 8, MinObservations: 4, Coverage: 0.8, Floor: 0.75}
	opts.OnDrift = func(model, reason, origin string) {
		mu.Lock()
		kicks = append(kicks, model+"|"+reason)
		mu.Unlock()
	}
	s, _, m, params := newTestServer(t, opts)
	p := params[0]
	scale := m.Cfg.LargeScales[0]
	inside := m.Predict(p)[0] // the point prediction is always in its own band

	// In-band observations: covered, no drift.
	var resp ObserveResponse
	code := doJSON(t, s.Handler(), "POST", "/v1/observe",
		ObserveRequest{Params: p, Scale: scale, Runtime: inside}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	res := resp.Results[0]
	if !res.Covered || res.Drift {
		t.Fatalf("in-band observation scored %+v", res)
	}
	if res.Lo >= res.Hi || res.Predicted < res.Lo || res.Predicted > res.Hi {
		t.Fatalf("degenerate band %+v", res)
	}
	if resp.Monitor.Observations != 1 || len(resp.Monitor.Windows) != 1 {
		t.Fatalf("monitor snapshot %+v", resp.Monitor)
	}

	// A batch of runtimes far outside the band: coverage collapses, the
	// breach fires exactly once, and the hook sees the diagnosis.
	shifted := make([]Observation, 6)
	for i := range shifted {
		shifted[i] = Observation{Params: p, Scale: scale, Runtime: inside * 50}
	}
	code = doJSON(t, s.Handler(), "POST", "/v1/observe", ObserveRequest{Observations: shifted}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	drifted := 0
	for _, r := range resp.Results {
		if r.Covered {
			t.Fatalf("50x-shifted runtime scored covered: %+v", r)
		}
		if r.Drift {
			drifted++
			if r.Reason == "" {
				t.Fatal("drift edge without a reason")
			}
		}
	}
	if drifted != 1 {
		t.Fatalf("%d drift edges in one breach episode, want 1", drifted)
	}
	if !resp.Monitor.Breached || resp.Monitor.Kicks != 1 {
		t.Fatalf("monitor after breach: %+v", resp.Monitor)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(kicks) != 1 || kicks[0][:8] != "default|" {
		t.Fatalf("OnDrift calls %v", kicks)
	}

	// /metrics exports the counters and the rolling windows.
	var snap Snapshot
	if code := doJSON(t, s.Handler(), "GET", "/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	u := snap.Uncertainty
	if u == nil {
		t.Fatal("metrics missing uncertainty section")
	}
	if u.Observations != 7 || u.DriftKicks != 1 || len(u.Monitors) != 1 {
		t.Fatalf("uncertainty snapshot %+v", u)
	}
	if w := u.Monitors[0].Windows[0]; w.Scale != scale || w.N != 7 {
		t.Fatalf("window %+v", w)
	}
	if _, ok := snap.Endpoints["observe"]; !ok {
		t.Fatal("observe endpoint not instrumented")
	}
}

func TestObserveValidation(t *testing.T) {
	s, _, m, params := newTestServer(t, DefaultOptions())
	p := params[0]
	scale := m.Cfg.LargeScales[0]
	cases := []struct {
		name string
		body any
		code int
	}{
		{"empty", ObserveRequest{}, http.StatusBadRequest},
		{"unknown model", ObserveRequest{Model: "nope", Params: p, Scale: scale, Runtime: 1}, http.StatusNotFound},
		{"wrong arity", ObserveRequest{Params: p[:1], Scale: scale, Runtime: 1}, http.StatusBadRequest},
		{"non-target scale", ObserveRequest{Params: p, Scale: 77, Runtime: 1}, http.StatusBadRequest},
		{"zero runtime", ObserveRequest{Params: p, Scale: scale, Runtime: 0}, http.StatusBadRequest},
		{"unknown field", map[string]any{"parms": p}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var errBody map[string]string
		if code := doJSON(t, s.Handler(), "POST", "/v1/observe", tc.body, &errBody); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		} else if errBody["error"] == "" {
			t.Errorf("%s: missing error body", tc.name)
		}
	}
}

func TestModelsReportCalibrationStatus(t *testing.T) {
	s, _, _, _ := newTestServer(t, DefaultOptions())
	var body struct {
		Models []ModelInfo `json:"models"`
	}
	if code := doJSON(t, s.Handler(), "GET", "/v1/models", nil, &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// The fixture model is fitted directly (no pipeline holdout), so it
	// must honestly report itself uncalibrated.
	if body.Models[0].Calibrated || body.Models[0].CalibrationSamples != 0 {
		t.Fatalf("uncalibrated fixture reports %+v", body.Models[0])
	}
}
