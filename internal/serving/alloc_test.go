package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
)

// TestCacheHitAllocBudget is the allocation-regression gate for the
// serving fast path: a warm cache hit through the full handler stack
// (decode → key build → LRU lookup → encode) must stay under 20
// allocations per request.
func TestCacheHitAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	s, _, _, params := newTestServer(t, Options{CacheSize: 1024})
	body, err := json.Marshal(PredictRequest{Params: params[0]})
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(nil)
	req := httptest.NewRequest("POST", "/v1/predict", io.NopCloser(rd))
	w := httptest.NewRecorder()
	serve := func() {
		rd.Reset(body)
		w.Body.Reset()
		w.Code = http.StatusOK
		s.Handler().ServeHTTP(w, req)
	}
	serve() // warm: this one is the miss that populates the cache
	if w.Code != http.StatusOK {
		t.Fatalf("warmup status %d: %s", w.Code, w.Body.String())
	}
	allocs := testing.AllocsPerRun(50, serve)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if allocs >= 20 {
		t.Fatalf("cache-hit request allocates %v times, budget is < 20", allocs)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || !resp.Results[0].Cached {
		t.Fatalf("expected one cached result, got %+v", resp.Results)
	}
}

// TestParallelBatchMatchesSerial pins the deterministic-output contract
// of the bounded-worker batch path: any worker count must produce the
// byte-identical response of a serial run, including which entries
// report Cached.
func TestParallelBatchMatchesSerial(t *testing.T) {
	m, params := testModel(t)
	mkBody := func() []byte {
		cfgs := make([][]float64, 2*minParallelBatch)
		for i := range cfgs {
			q := append([]float64(nil), params[i%len(params)]...)
			q[0] += float64(i) * 1e-3
			cfgs[i] = q
		}
		body, err := json.Marshal(PredictRequest{Configs: cfgs})
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	body := mkBody()
	responses := make(map[string]int)
	for _, workers := range []int{1, 2, 3, runtime.GOMAXPROCS(0) + 2} {
		reg := NewRegistry()
		reg.Install("default", m)
		s := New(reg, Options{CacheSize: 4096, BatchWorkers: workers})
		// Two passes: all-miss then all-hit, both must be order-stable.
		for pass := 0; pass < 2; pass++ {
			w := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
			s.Handler().ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("workers=%d pass=%d status %d: %s", workers, pass, w.Code, w.Body.String())
			}
			responses[string(w.Body.Bytes())+":"+string(rune('0'+pass))]++
		}
	}
	if len(responses) != 2 { // one distinct body per pass, shared by all worker counts
		t.Fatalf("batch responses differ across worker counts: %d distinct bodies, want 2", len(responses))
	}
}

// TestParallelBatchErrorPropagates checks that a compute error inside a
// parallel batch surfaces as a 400, exactly as on the serial path.
func TestParallelBatchErrorPropagates(t *testing.T) {
	m, params := testModel(t)
	if m.Mode() != "anchored" {
		t.Skip("error injection needs an anchored-mode fixture")
	}
	reg := NewRegistry()
	reg.Install("default", m)
	s := New(reg, Options{CacheSize: 4096, BatchWorkers: 4})
	cfgs := make([][]float64, 2*minParallelBatch)
	for i := range cfgs {
		q := append([]float64(nil), params[i%len(params)]...)
		q[0] += float64(i) * 1e-3
		cfgs[i] = q
	}
	// At-scale prediction fails in anchored mode for non-target scales.
	body, err := json.Marshal(PredictRequest{Configs: cfgs, At: 999})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}
