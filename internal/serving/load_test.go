package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/loadctl"
)

// loadTestConfig is a small, deterministic controller: fixed limit 1 so
// a single occupied slot saturates, queue of 8 (batch ceiling 4,
// interval 6, degraded latch at 7).
func loadTestConfig() loadctl.Config {
	return loadctl.Config{InitialLimit: 1, FixedLimit: true, QueueCapacity: 8}
}

// doJSONDeadline is doJSON with an X-Deadline-Ms header attached.
func doJSONDeadline(t *testing.T, h http.Handler, body any, deadline string, out any) (int, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(raw))
	if deadline != "" {
		req.Header.Set(DeadlineHeader, deadline)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", w.Body.String(), err)
		}
	}
	return w.Code, w.Result().Header
}

// drainWaiters removes queued waiters enqueued directly on the
// controller and releases the occupied slot.
func drainWaiters(t *testing.T, c *loadctl.Controller, ws []*loadctl.Waiter) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range ws {
		if err := w.Wait(ctx); err == nil {
			t.Fatal("canceled waiter was granted a slot")
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		req  PredictRequest
		n    int
		want loadctl.Class
	}{
		{PredictRequest{}, 1, loadctl.Point},
		{PredictRequest{Interval: 0.9}, 1, loadctl.Interval},
		{PredictRequest{}, 2, loadctl.Batch},
		{PredictRequest{Interval: 0.9}, 3, loadctl.Batch}, // batch wins
	}
	for i, c := range cases {
		if got := classify(&c.req, c.n); got != c.want {
			t.Errorf("case %d: classify = %v, want %v", i, got, c.want)
		}
	}
}

func TestDeadlineHeaderInvalid(t *testing.T) {
	opts := DefaultOptions()
	s, _, _, params := newTestServer(t, opts)
	for _, h := range []string{"abc", "-5", "1.5"} {
		code, _ := doJSONDeadline(t, s.Handler(), PredictRequest{Params: params[0]}, h, nil)
		if code != http.StatusBadRequest {
			t.Errorf("header %q: status %d, want 400", h, code)
		}
	}
}

func TestShedQueueFullAndBudget(t *testing.T) {
	opts := DefaultOptions()
	opts.Load = loadTestConfig()
	s, _, _, params := newTestServer(t, opts)
	c := s.LoadController()

	// Occupy the single slot, then four queued point waiters: total
	// occupancy reaches the batch ceiling (4) without latching degraded
	// mode (high water 7).
	if w, shed := c.Acquire(loadctl.Point, 0); w != nil || shed != nil {
		t.Fatalf("slot occupation: w=%v shed=%v", w, shed)
	}
	var ws []*loadctl.Waiter
	for i := 0; i < 4; i++ {
		w, shed := c.Acquire(loadctl.Point, 0)
		if shed != nil || w == nil {
			t.Fatalf("enqueue %d: w=%v shed=%v", i, w, shed)
		}
		ws = append(ws, w)
	}
	defer func() {
		drainWaiters(t, c, ws)
		c.Release(time.Millisecond)
	}()

	// A batch request sheds queue_full: occupancy 4 >= batch ceiling 4.
	var shed ShedResponse
	code, hdr := doJSONDeadline(t, s.Handler(), PredictRequest{Configs: params[:2]}, "", &shed)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("batch status %d, want 503", code)
	}
	if shed.Error != "overloaded" || shed.Reason != loadctl.ShedQueueFull || shed.Class != "batch" {
		t.Fatalf("shed body %+v", shed)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	if shed.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms %d, want > 0", shed.RetryAfterMS)
	}

	// A point request with a 1ms budget sheds on the wait estimate (EWMA
	// starts at the 100ms target; four waiters ahead of it).
	code, _ = doJSONDeadline(t, s.Handler(), PredictRequest{Params: params[0]}, "1", &shed)
	if code != http.StatusServiceUnavailable || shed.Reason != loadctl.ShedBudget {
		t.Fatalf("budget shed: status %d reason %q", code, shed.Reason)
	}

	snap := c.Snapshot()
	if snap.ShedQueueFull.Batch != 1 || snap.ShedBudget.Point != 1 {
		t.Fatalf("shed counters %+v", snap)
	}
	if snap.ShedTotal() != 2 {
		t.Fatalf("ShedTotal = %d, want 2 (every 503 accounted)", snap.ShedTotal())
	}
}

func TestDegradedServesCacheHitsOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.Load = loadTestConfig()
	s, _, _, params := newTestServer(t, opts)
	c := s.LoadController()

	// Prime the cache while healthy.
	var resp PredictResponse
	if code := doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: params[0]}, &resp); code != http.StatusOK {
		t.Fatalf("prime status %d", code)
	}
	if resp.Degraded {
		t.Fatal("healthy response marked degraded")
	}

	// Saturate: occupy the slot, queue to the high-water mark (7 of 8).
	if w, shed := c.Acquire(loadctl.Point, 0); w != nil || shed != nil {
		t.Fatalf("slot occupation: w=%v shed=%v", w, shed)
	}
	var ws []*loadctl.Waiter
	for i := 0; i < 7; i++ {
		w, shed := c.Acquire(loadctl.Point, 0)
		if shed != nil || w == nil {
			t.Fatalf("enqueue %d: w=%v shed=%v", i, w, shed)
		}
		ws = append(ws, w)
	}
	defer func() {
		drainWaiters(t, c, ws)
		c.Release(time.Millisecond)
	}()
	if !c.Degraded() {
		t.Fatal("controller not degraded at high water")
	}

	// The cached configuration is still answered — degraded, marked.
	code, hdr := doJSONDeadline(t, s.Handler(), PredictRequest{Params: params[0]}, "", &resp)
	if code != http.StatusOK {
		t.Fatalf("degraded hit status %d", code)
	}
	if !resp.Degraded || hdr.Get("X-Degraded") != "1" {
		t.Fatalf("degraded hit not marked: degraded=%v header=%q", resp.Degraded, hdr.Get("X-Degraded"))
	}
	if len(resp.Results) != 1 || !resp.Results[0].Cached {
		t.Fatalf("degraded results %+v", resp.Results)
	}

	// An uncached configuration is shed with reason degraded.
	var shed ShedResponse
	code, _ = doJSONDeadline(t, s.Handler(), PredictRequest{Params: params[1]}, "", &shed)
	if code != http.StatusServiceUnavailable || shed.Reason != loadctl.ShedDegraded {
		t.Fatalf("degraded miss: status %d reason %q", code, shed.Reason)
	}

	snap := c.Snapshot()
	if snap.DegradedServed != 1 || snap.ShedDegraded.Point != 1 || snap.DegradedEpisodes != 1 {
		t.Fatalf("degraded counters %+v", snap)
	}
}

func TestComputeTimeoutSheds(t *testing.T) {
	opts := DefaultOptions()
	opts.SyntheticDelay = 20 * time.Millisecond
	opts.MaxDeadline = 50 * time.Millisecond // also exercises clamping
	s, _, _, params := newTestServer(t, opts)

	// Five uncached configs at 20ms each against a 50ms budget (the
	// client asked for 10s; the server clamps): the deadline fires
	// mid-batch and the request is shed as a timeout, not left hanging.
	var shed ShedResponse
	code, hdr := doJSONDeadline(t, s.Handler(), PredictRequest{Configs: params[:5]}, "10000", &shed)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	if shed.Reason != loadctl.ShedTimeout || shed.Class != "batch" {
		t.Fatalf("shed body %+v", shed)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("timeout shed missing Retry-After")
	}
	if got := s.LoadController().Snapshot().Timeouts.Batch; got != 1 {
		t.Fatalf("timeout counter %d, want 1", got)
	}
}

func TestHealthzDraining(t *testing.T) {
	s, _, _, _ := newTestServer(t, DefaultOptions())
	var st map[string]any
	if code := doJSON(t, s.Handler(), "GET", "/healthz", nil, &st); code != http.StatusOK {
		t.Fatalf("healthy status %d", code)
	}
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	code := doJSON(t, s.Handler(), "GET", "/healthz", nil, &st)
	if code != http.StatusServiceUnavailable || st["status"] != "draining" {
		t.Fatalf("draining healthz: status %d body %v", code, st)
	}
}

func TestPreDrainHookFlipsHealthz(t *testing.T) {
	s, _, _, _ := newTestServer(t, DefaultOptions())
	g := NewGraceful("127.0.0.1:0", s.Handler(), time.Second)
	g.PreDrain = s.BeginDrain
	if err := g.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !s.Draining() {
		t.Fatal("PreDrain hook did not run during Shutdown")
	}
}

func TestLoadStatusEndpoint(t *testing.T) {
	s, _, _, params := newTestServer(t, DefaultOptions())
	if code := doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: params[0]}, nil); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	var st LoadStatus
	if code := doJSON(t, s.Handler(), "GET", "/v1/loadstatus", nil, &st); code != http.StatusOK {
		t.Fatalf("loadstatus status %d", code)
	}
	if !st.Enabled || st.Draining || st.Load == nil {
		t.Fatalf("loadstatus %+v", st)
	}
	if st.Load.Mode != "aimd" || st.Load.Admitted.Point != 1 || st.Load.Completed != 1 {
		t.Fatalf("load snapshot %+v", st.Load)
	}
}

func TestLoadControlDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableLoadControl = true
	s, _, _, params := newTestServer(t, opts)
	if s.LoadController() != nil {
		t.Fatal("controller present despite DisableLoadControl")
	}
	if code := doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: params[0]}, nil); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	var st LoadStatus
	doJSON(t, s.Handler(), "GET", "/v1/loadstatus", nil, &st)
	if st.Enabled || st.Load != nil {
		t.Fatalf("loadstatus %+v, want disabled", st)
	}
}

func TestMetricsIncludeLoad(t *testing.T) {
	opts := DefaultOptions()
	opts.Load = loadTestConfig()
	s, _, _, params := newTestServer(t, opts)
	doJSON(t, s.Handler(), "POST", "/v1/predict", PredictRequest{Params: params[0]}, nil)
	var snap Snapshot
	if code := doJSON(t, s.Handler(), "GET", "/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Load == nil {
		t.Fatal("metrics missing load section")
	}
	if snap.Load.Mode != "fixed" || snap.Load.Limit != 1 || snap.Load.Admitted.Point != 1 {
		t.Fatalf("load section %+v", snap.Load)
	}
}
