package serving

import (
	"sync"
	"testing"
)

// TestCompiledPredictDuringHotSwap hammers the compiled prediction
// surfaces (point, small-curve, conformal interval) from many goroutines
// while the registry hot-swaps the entry underneath them. Run under
// -race (make verify does) it proves the atomic compiled-form swap in
// core.TwoLevelModel.Compile and the registry's snapshot publication
// never race with in-flight compiled predicts, and that predictions
// stay bit-stable across swaps.
func TestCompiledPredictDuringHotSwap(t *testing.T) {
	m, params := testModel(t)
	reg := NewRegistry()
	reg.Install("default", m)
	e, ok := reg.Get("default")
	if !ok || !e.Model.Compiled() {
		t.Fatal("installed model is not compiled")
	}

	want := make([][]float64, len(params))
	for i, p := range params {
		want[i] = e.Model.Predict(p)
	}

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pi := w % len(params)
			p := params[pi]
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, ok := reg.Get("default")
				if !ok {
					t.Error("model vanished mid-swap")
					return
				}
				for i, v := range e.Model.Predict(p) {
					if v != want[pi][i] {
						t.Errorf("prediction drifted during hot-swap: scale %d got %v want %v", i, v, want[pi][i])
						return
					}
				}
				e.Model.PredictSmall(p)
				e.Model.PredictIntervalCov(p, 0.9)
			}
		}(w)
	}

	// Each Install publishes a fresh Entry and re-runs Compile on the
	// model, atomically replacing the compiled form readers are using.
	for i := 0; i < 25; i++ {
		reg.Install("default", m)
	}
	close(stop)
	wg.Wait()

	e, ok = reg.Get("default")
	if !ok || e.Version != 26 {
		t.Fatalf("expected version 26 after 26 installs, got %+v", e)
	}
}
