package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/rng"
	"repro/internal/uncertainty"
)

// serveOnce drives one request through the full handler stack, reusing
// the request, reader, and recorder so benchmark iterations measure the
// server, not the test harness.
type serveOnce struct {
	s   *Server
	rd  *bytes.Reader
	req *http.Request
	w   *httptest.ResponseRecorder
}

func newServeOnce(s *Server) *serveOnce {
	rd := bytes.NewReader(nil)
	req := httptest.NewRequest("POST", "/v1/predict", io.NopCloser(rd))
	return &serveOnce{s: s, rd: rd, req: req, w: httptest.NewRecorder()}
}

func (d *serveOnce) do(tb testing.TB, body []byte) {
	d.rd.Reset(body)
	d.w.Body.Reset()
	d.w.Code = http.StatusOK
	d.s.Handler().ServeHTTP(d.w, d.req)
	if d.w.Code != http.StatusOK {
		tb.Fatalf("status %d: %s", d.w.Code, d.w.Body.String())
	}
}

// BenchmarkServePredict measures the full handler path (JSON decode →
// cache → model → JSON encode) for the two regimes that bound serving
// latency: cache hits (steady-state repeated queries) and cache misses
// (every request a fresh configuration, full two-level prediction).
// Hit-regime caches are warmed before the timer starts, so even a single
// timed iteration measures a hit, not the first miss.
func BenchmarkServePredict(b *testing.B) {
	m, params := testModel(b)
	p := params[0]

	run := func(b *testing.B, s *Server, warm []byte, bodyFor func(i int) []byte) {
		d := newServeOnce(s)
		if warm != nil {
			d.do(b, warm)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.do(b, bodyFor(i))
		}
	}

	b.Run("hit", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		s := New(reg, Options{CacheSize: 1024})
		body, _ := json.Marshal(PredictRequest{Params: p})
		run(b, s, body, func(int) []byte { return body })
	})

	b.Run("miss", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		// A small cache over a much wider key cycle: every request is a
		// genuine miss (lookup, full two-level prediction, insert, evict).
		s := New(reg, Options{CacheSize: 16})
		bodies := make([][]byte, 0, 4096)
		for i := 0; i < 4096; i++ {
			q := append([]float64(nil), p...)
			q[0] += float64(i) * 1e-3
			raw, _ := json.Marshal(PredictRequest{Params: q})
			bodies = append(bodies, raw)
		}
		run(b, s, nil, func(i int) []byte { return bodies[i%len(bodies)] })
	})

	b.Run("batch32-hit", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		s := New(reg, Options{CacheSize: 1024})
		cfgs := make([][]float64, 32)
		for i := range cfgs {
			q := append([]float64(nil), p...)
			q[0] += float64(i)
			cfgs[i] = q
		}
		body, _ := json.Marshal(PredictRequest{Configs: cfgs})
		run(b, s, body, func(int) []byte { return body })
	})
}

// BenchmarkObsServePredict isolates the cost of the observability layer
// on the hottest serving path: the same cache-hit predict request with
// tracing off (no span tree, no X-Request-Id minting) and on (the
// production default). `make bench-obs` feeds the pair to benchjson's
// -overhead gate, which fails the build if traced exceeds untraced by
// more than 5% — the tracing clock boundary is designed to add two
// monotonic clock reads and one ring slot per request, nothing more.
func BenchmarkObsServePredict(b *testing.B) {
	m, params := testModel(b)
	p := params[0]
	body, _ := json.Marshal(PredictRequest{Params: p})

	run := func(b *testing.B, opts Options) {
		reg := NewRegistry()
		reg.Install("default", m)
		s := New(reg, opts)
		d := newServeOnce(s)
		d.do(b, body) // warm the cache: every timed iteration is a hit
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.do(b, body)
		}
	}

	b.Run("untraced", func(b *testing.B) {
		run(b, Options{CacheSize: 1024, DisableTracing: true})
	})
	b.Run("traced", func(b *testing.B) {
		run(b, Options{CacheSize: 1024})
	})
}

// BenchmarkServePredictInterval measures interval-carrying predictions
// through the full handler path, cache-miss regime (an interval request
// does the extra per-tree quantile or conformal-factor work on every
// miss; hits collapse to the same cached-encode path as point requests).
// The conformal variant serves a calibrated copy of the fixture model,
// the ensemble variant the uncalibrated original.
func BenchmarkServePredictInterval(b *testing.B) {
	m, params := testModel(b)
	p := params[0]

	bodies := func() [][]byte {
		out := make([][]byte, 0, 4096)
		for i := 0; i < 4096; i++ {
			q := append([]float64(nil), p...)
			q[0] += float64(i) * 1e-3
			raw, _ := json.Marshal(PredictRequest{Params: q, Interval: 0.9})
			out = append(out, raw)
		}
		return out
	}()

	run := func(b *testing.B, s *Server) {
		d := newServeOnce(s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.do(b, bodies[i%len(bodies)])
		}
	}

	b.Run("ensemble-miss", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		run(b, New(reg, Options{CacheSize: 16}))
	})

	b.Run("conformal-miss", func(b *testing.B) {
		cal := uncertainty.NewCalibrator(m.Cfg.LargeScales, m.Clusters())
		r := rng.New(7)
		for i := 0; i < 40*len(m.Cfg.LargeScales); i++ {
			pred := 50 + 10*r.Float64()
			cal.Add(i%m.Clusters(), i%len(m.Cfg.LargeScales), pred, pred*(1+0.2*(r.Float64()-0.5)))
		}
		cm := m.Clone()
		cm.Meta.Calibration = cal.Finish()
		if cm.Meta.Calibration == nil {
			b.Fatal("nil calibration")
		}
		reg := NewRegistry()
		reg.Install("default", cm)
		run(b, New(reg, Options{CacheSize: 16}))
	})
}
