package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// serveOnce drives one request through the full handler stack, reusing
// the request, reader, and recorder so benchmark iterations measure the
// server, not the test harness.
type serveOnce struct {
	s   *Server
	rd  *bytes.Reader
	req *http.Request
	w   *httptest.ResponseRecorder
}

func newServeOnce(s *Server) *serveOnce {
	rd := bytes.NewReader(nil)
	req := httptest.NewRequest("POST", "/v1/predict", io.NopCloser(rd))
	return &serveOnce{s: s, rd: rd, req: req, w: httptest.NewRecorder()}
}

func (d *serveOnce) do(tb testing.TB, body []byte) {
	d.rd.Reset(body)
	d.w.Body.Reset()
	d.w.Code = http.StatusOK
	d.s.Handler().ServeHTTP(d.w, d.req)
	if d.w.Code != http.StatusOK {
		tb.Fatalf("status %d: %s", d.w.Code, d.w.Body.String())
	}
}

// BenchmarkServePredict measures the full handler path (JSON decode →
// cache → model → JSON encode) for the two regimes that bound serving
// latency: cache hits (steady-state repeated queries) and cache misses
// (every request a fresh configuration, full two-level prediction).
// Hit-regime caches are warmed before the timer starts, so even a single
// timed iteration measures a hit, not the first miss.
func BenchmarkServePredict(b *testing.B) {
	m, params := testModel(b)
	p := params[0]

	run := func(b *testing.B, s *Server, warm []byte, bodyFor func(i int) []byte) {
		d := newServeOnce(s)
		if warm != nil {
			d.do(b, warm)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.do(b, bodyFor(i))
		}
	}

	b.Run("hit", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		s := New(reg, Options{CacheSize: 1024})
		body, _ := json.Marshal(PredictRequest{Params: p})
		run(b, s, body, func(int) []byte { return body })
	})

	b.Run("miss", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		// A small cache over a much wider key cycle: every request is a
		// genuine miss (lookup, full two-level prediction, insert, evict).
		s := New(reg, Options{CacheSize: 16})
		bodies := make([][]byte, 0, 4096)
		for i := 0; i < 4096; i++ {
			q := append([]float64(nil), p...)
			q[0] += float64(i) * 1e-3
			raw, _ := json.Marshal(PredictRequest{Params: q})
			bodies = append(bodies, raw)
		}
		run(b, s, nil, func(i int) []byte { return bodies[i%len(bodies)] })
	})

	b.Run("batch32-hit", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		s := New(reg, Options{CacheSize: 1024})
		cfgs := make([][]float64, 32)
		for i := range cfgs {
			q := append([]float64(nil), p...)
			q[0] += float64(i)
			cfgs[i] = q
		}
		body, _ := json.Marshal(PredictRequest{Configs: cfgs})
		run(b, s, body, func(int) []byte { return body })
	})
}
