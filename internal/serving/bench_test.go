package serving

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServePredict measures the full handler path (JSON decode →
// cache → model → JSON encode) for the two regimes that bound serving
// latency: cache hits (steady-state repeated queries) and cache misses
// (every request a fresh configuration, full two-level prediction).
func BenchmarkServePredict(b *testing.B) {
	m, params := testModel(b)
	p := params[0]

	run := func(b *testing.B, s *Server, bodyFor func(i int) []byte) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(bodyFor(i)))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}

	b.Run("hit", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		s := New(reg, Options{CacheSize: 1024})
		body, _ := json.Marshal(PredictRequest{Params: p})
		// Warm the single hot entry.
		run(b, s, func(int) []byte { return body })
	})

	b.Run("miss", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		// A small cache over a much wider key cycle: every request is a
		// genuine miss (lookup, full two-level prediction, insert, evict).
		s := New(reg, Options{CacheSize: 16})
		bodies := make([][]byte, 0, 4096)
		for i := 0; i < 4096; i++ {
			q := append([]float64(nil), p...)
			q[0] += float64(i) * 1e-3
			raw, _ := json.Marshal(PredictRequest{Params: q})
			bodies = append(bodies, raw)
		}
		run(b, s, func(i int) []byte { return bodies[i%len(bodies)] })
	})

	b.Run("batch32-hit", func(b *testing.B) {
		reg := NewRegistry()
		reg.Install("default", m)
		s := New(reg, Options{CacheSize: 1024})
		cfgs := make([][]float64, 32)
		for i := range cfgs {
			q := append([]float64(nil), p...)
			q[0] += float64(i)
			cfgs[i] = q
		}
		body, _ := json.Marshal(PredictRequest{Configs: cfgs})
		run(b, s, func(int) []byte { return body })
	})
}
