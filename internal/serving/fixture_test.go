package serving

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hpcsim"
	"repro/internal/rng"
)

// The tests share one fitted model (fitting dominates test wall-clock,
// predictions are cheap); it is immutable, which is exactly the
// contract the serving layer relies on.
var (
	fixtureOnce   sync.Once
	fixtureModel  *core.TwoLevelModel
	fixtureParams [][]float64
	fixtureErr    error
)

func fitFixture() (*core.TwoLevelModel, [][]float64, error) {
	cfg := core.DefaultConfig()
	cfg.SmallScales = []int{2, 4, 8, 16, 32, 64}
	cfg.LargeScales = []int{128, 256, 512}
	cfg.Forest.Trees = 15
	cfg.CVLambdas = 6

	app := hpcsim.NewSMG()
	eng := hpcsim.NewEngine(nil, 11)
	r := rng.New(12)
	sp := app.Space()

	trainCfgs := sp.SampleLatinHypercube(r, 36)
	queryCfgs := sp.SampleLatinHypercube(r, 8)

	train, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs, Scales: cfg.SmallScales, Reps: 1})
	if err != nil {
		return nil, nil, err
	}
	anchors, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: trainCfgs[:18], Scales: cfg.LargeScales, Reps: 1})
	if err != nil {
		return nil, nil, err
	}
	train.Merge(anchors)

	m, err := core.Fit(rng.New(13), train, cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, queryCfgs, nil
}

// testModel returns the shared fitted model and a set of in-space query
// configurations.
func testModel(tb testing.TB) (*core.TwoLevelModel, [][]float64) {
	tb.Helper()
	fixtureOnce.Do(func() {
		fixtureModel, fixtureParams, fixtureErr = fitFixture()
	})
	if fixtureErr != nil {
		tb.Fatalf("fitting fixture model: %v", fixtureErr)
	}
	return fixtureModel, fixtureParams
}

// newTestServer builds a Server over a registry with the fixture model
// installed as "default".
func newTestServer(tb testing.TB, opts Options) (*Server, *Registry, *core.TwoLevelModel, [][]float64) {
	tb.Helper()
	m, params := testModel(tb)
	reg := NewRegistry()
	reg.Install("default", m)
	return New(reg, opts), reg, m, params
}
