package serving

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is an LRU cache with single-flight deduplication: concurrent
// Do calls for the same missing key run the compute function once and
// share its result. Keys embed the model version (see predictKey), so a
// hot-swap naturally invalidates stale results without an explicit
// flush. A capacity <= 0 disables caching entirely (Do always computes).
type Cache struct {
	capacity int

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flightCall

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

type cacheItem struct {
	key string
	val any
}

// flightCall is one in-progress computation other callers wait on.
type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// NewCache creates a cache holding at most capacity entries.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flightCall),
	}
}

// Get returns the cached value for key, marking it most recently used.
// It does not touch the hit/miss counters; Do is the accounting path.
func (c *Cache) Get(key string) (any, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Do returns the cached value for key, or runs fn exactly once across
// all concurrent callers of the same key and caches its result. The
// second return reports whether the value came from the cache (a
// coalesced caller that waited on another goroutine's computation also
// reports true — it did not compute). Errors are returned to every
// waiter and never cached.
func (c *Cache) Do(key string, fn func() (any, error)) (any, bool, error) {
	return c.do(key, nil, fn)
}

// DoBytes is Do for a key built in a reusable byte buffer. The hit path
// looks the key up without converting it to a string, so a cache hit
// performs no key allocation; the key bytes are only copied (once) on
// the miss/coalesce path. The buffer may be reused immediately after
// return.
func (c *Cache) DoBytes(key []byte, fn func() (any, error)) (any, bool, error) {
	return c.do("", key, fn)
}

// do implements Do/DoBytes. Exactly one of skey/bkey is the key: bkey
// when non-nil, else skey.
func (c *Cache) do(skey string, bkey []byte, fn func() (any, error)) (any, bool, error) {
	if c.capacity <= 0 {
		c.misses.Add(1)
		v, err := fn()
		return v, false, err
	}
	c.mu.Lock()
	if bkey != nil {
		// string(bkey) in a map index does not allocate.
		if el, ok := c.items[string(bkey)]; ok {
			c.ll.MoveToFront(el)
			v := el.Value.(*cacheItem).val
			c.mu.Unlock()
			c.hits.Add(1)
			return v, true, nil
		}
		skey = string(bkey) // miss: materialize the key once
	} else if el, ok := c.items[skey]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheItem).val
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if fl, ok := c.inflight[skey]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		fl.wg.Wait()
		return fl.val, fl.err == nil, fl.err
	}
	fl := &flightCall{}
	fl.wg.Add(1)
	c.inflight[skey] = fl
	c.mu.Unlock()

	c.misses.Add(1)
	fl.val, fl.err = fn()

	c.mu.Lock()
	delete(c.inflight, skey)
	if fl.err == nil {
		c.add(skey, fl.val)
	}
	c.mu.Unlock()
	fl.wg.Done()
	return fl.val, false, fl.err
}

// add inserts under c.mu, evicting from the LRU tail past capacity.
func (c *Cache) add(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheItem).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every cached entry (in-flight computations are unaffected).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
		Capacity:  c.capacity,
	}
}
