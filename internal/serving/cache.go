package serving

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Cache is an LRU cache with single-flight deduplication: concurrent
// Do calls for the same missing key run the compute function once and
// share its result. Keys embed the model version (see predictKey), so a
// hot-swap naturally invalidates stale results without an explicit
// flush. A capacity <= 0 disables caching entirely (Do always computes).
type Cache struct {
	capacity int

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flightCall

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	abandoned atomic.Int64 // coalesced waits given up via context
	evictions atomic.Int64
}

type cacheItem struct {
	key string
	val any
}

// flightCall is one in-progress computation other callers wait on. done
// is closed (after val/err are set) when the computation finishes; a
// channel rather than a WaitGroup so waiters can select against their
// request context and abandon the wait without abandoning the compute.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache creates a cache holding at most capacity entries.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flightCall),
	}
}

// Get returns the cached value for key, marking it most recently used.
// It does not touch the hit/miss counters; Do is the accounting path.
func (c *Cache) Get(key string) (any, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Do returns the cached value for key, or runs fn exactly once across
// all concurrent callers of the same key and caches its result. The
// second return reports whether the value came from the cache (a
// coalesced caller that waited on another goroutine's computation also
// reports true — it did not compute). Errors are returned to every
// waiter and never cached.
//
// ctx bounds only the coalesced wait: a caller whose context ends while
// another goroutine computes the same key returns ctx.Err() immediately
// instead of blocking on the in-flight computation. The computing
// goroutine itself always runs fn to completion (the result is still
// valuable to the cache and to other waiters), so fn needs no
// cancellation plumbing of its own.
func (c *Cache) Do(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	return c.do(ctx, key, nil, fn)
}

// DoBytes is Do for a key built in a reusable byte buffer. The hit path
// looks the key up without converting it to a string, so a cache hit
// performs no key allocation; the key bytes are only copied (once) on
// the miss/coalesce path. The buffer may be reused immediately after
// return.
func (c *Cache) DoBytes(ctx context.Context, key []byte, fn func() (any, error)) (any, bool, error) {
	return c.do(ctx, "", key, fn)
}

// do implements Do/DoBytes. Exactly one of skey/bkey is the key: bkey
// when non-nil, else skey.
func (c *Cache) do(ctx context.Context, skey string, bkey []byte, fn func() (any, error)) (any, bool, error) {
	if c.capacity <= 0 {
		c.misses.Add(1)
		v, err := fn()
		return v, false, err
	}
	c.mu.Lock()
	if bkey != nil {
		// string(bkey) in a map index does not allocate.
		if el, ok := c.items[string(bkey)]; ok {
			c.ll.MoveToFront(el)
			v := el.Value.(*cacheItem).val
			c.mu.Unlock()
			c.hits.Add(1)
			return v, true, nil
		}
		skey = string(bkey) // miss: materialize the key once
	} else if el, ok := c.items[skey]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheItem).val
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if fl, ok := c.inflight[skey]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-fl.done:
			return fl.val, fl.err == nil, fl.err
		case <-ctx.Done():
			// Abandon the wait, not the computation: the owner still
			// finishes and caches for the callers that remain.
			c.abandoned.Add(1)
			return nil, false, ctx.Err()
		}
	}
	fl := &flightCall{done: make(chan struct{})}
	c.inflight[skey] = fl
	c.mu.Unlock()

	c.misses.Add(1)
	fl.val, fl.err = fn()

	c.mu.Lock()
	delete(c.inflight, skey)
	if fl.err == nil {
		c.add(skey, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, false, fl.err
}

// add inserts under c.mu, evicting from the LRU tail past capacity.
func (c *Cache) add(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheItem).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every cached entry (in-flight computations are unaffected).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Abandoned int64 `json:"abandoned,omitempty"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Abandoned: c.abandoned.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
		Capacity:  c.capacity,
	}
}
