package serving

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// GracefulServer wraps http.Server with drain-on-shutdown semantics:
// Shutdown stops accepting connections, waits up to the drain timeout
// for in-flight requests to finish, then force-closes stragglers.
type GracefulServer struct {
	HTTP  *http.Server
	drain time.Duration

	// PreDrain, when set, runs at the start of Shutdown before the
	// listener closes — the hook that flips /healthz to draining so load
	// balancers stop routing here (cmd/serve wires Server.BeginDrain).
	PreDrain func()
}

// DefaultDrainTimeout bounds how long Shutdown waits for in-flight
// requests before force-closing connections.
const DefaultDrainTimeout = 10 * time.Second

// NewGraceful builds a graceful server; drain <= 0 selects the default.
func NewGraceful(addr string, h http.Handler, drain time.Duration) *GracefulServer {
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	return &GracefulServer{
		HTTP: &http.Server{
			Addr:              addr,
			Handler:           h,
			ReadHeaderTimeout: 5 * time.Second,
		},
		drain: drain,
	}
}

// ListenAndServe serves until Shutdown; a shutdown-initiated close is
// not an error.
func (g *GracefulServer) ListenAndServe() error {
	err := g.HTTP.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Serve serves on an existing listener (useful for tests and for
// binding before dropping privileges).
func (g *GracefulServer) Serve(l net.Listener) error {
	err := g.HTTP.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests for up to the drain timeout, then
// force-closes whatever remains. It returns nil on a clean drain.
func (g *GracefulServer) Shutdown() error {
	if g.PreDrain != nil {
		g.PreDrain()
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.drain)
	defer cancel()
	if err := g.HTTP.Shutdown(ctx); err != nil {
		_ = g.HTTP.Close() // the drain timeout is the error worth surfacing
		return err
	}
	return nil
}
