package cliutil

import (
	"reflect"
	"testing"
)

func TestParseScales(t *testing.T) {
	got, err := ParseScales("2, 4,8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 4, 8}) {
		t.Fatalf("got %v", got)
	}
}

func TestParseScalesErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "2,,4", "2,0", "2,-1", "2.5"} {
		if _, err := ParseScales(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseVector(t *testing.T) {
	got, err := ParseVector("1.5, -2,3e2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{1.5, -2, 300}) {
		t.Fatalf("got %v", got)
	}
}

func TestParseVectorErrors(t *testing.T) {
	for _, bad := range []string{"", "x", "1,,2"} {
		if _, err := ParseVector(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
