// Package cliutil holds the small parsing helpers shared by the command-
// line tools in cmd/.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseScales parses a comma-separated list of process counts.
func ParseScales(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty scale in %q", s)
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", p, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("scale %d < 1", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseVector parses a comma-separated list of floats.
func ParseVector(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty value in %q", s)
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
