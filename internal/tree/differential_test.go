package tree

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// TestDifferentialSplitters is the byte-identity gate for the presorted
// split search: over many seeded random datasets — varied sizes, heavy
// duplicate values, constant columns, bootstrap repetition, feature
// subsampling — the optimized splitter must serialize to exactly the
// same trees as the retained naive reference splitter (reference.go).
// Identical serialized trees means identical splits, thresholds,
// tie-breaking, and node statistics, i.e. model files are byte-identical
// before and after the splitter rewrite.
func TestDifferentialSplitters(t *testing.T) {
	ft := NewFitter() // reused across cases: workspace state must not leak
	for seed := uint64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			gen := rng.New(1000 + seed)
			n := 5 + gen.Intn(296)
			p := 1 + gen.Intn(8)
			x := mat.NewDense(n, p)
			y := make([]float64, n)
			constCol := -1
			if p > 1 && gen.Bernoulli(0.4) {
				constCol = gen.Intn(p)
			}
			for j := 0; j < p; j++ {
				// A third of the columns are quantized to a handful of
				// levels so equal feature values (tie-breaking) are common.
				levels := 0
				if gen.Bernoulli(0.33) {
					levels = 2 + gen.Intn(6)
				}
				for i := 0; i < n; i++ {
					switch {
					case j == constCol:
						x.Set(i, j, 3.25)
					case levels > 0:
						x.Set(i, j, float64(gen.Intn(levels)))
					default:
						x.Set(i, j, gen.Norm())
					}
				}
			}
			for i := range y {
				y[i] = gen.Norm()
			}

			params := Defaults()
			params.MaxDepth = 1 + gen.Intn(25)
			params.MinLeafSamples = 1 + gen.Intn(4)
			if gen.Bernoulli(0.5) && p > 1 {
				params.MaxFeatures = 1 + gen.Intn(p)
			}

			var idx []int
			if gen.Bernoulli(0.5) {
				idx = gen.Bootstrap(nil, n) // duplicates rows, like forest bagging
			}

			fitSeed := gen.Uint64()
			var fast, ref *Tree
			if idx == nil {
				fast = ft.Fit(x, y, params, rng.New(fitSeed))
				ref = fitReference(x, y, nil, params, rng.New(fitSeed))
			} else {
				fast = ft.FitIndices(x, y, idx, params, rng.New(fitSeed))
				ref = fitReference(x, y, idx, params, rng.New(fitSeed))
			}

			a, err := json.Marshal(fast)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(ref)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("presorted and reference splitters disagree\n n=%d p=%d maxDepth=%d minLeaf=%d maxFeat=%d bootstrap=%v\npresorted: %s\nreference: %s",
					n, p, params.MaxDepth, params.MinLeafSamples, params.MaxFeatures, idx != nil, a, b)
			}
		})
	}
}

// TestFitterReuseMatchesOneShot ensures a warm workspace produces the
// same tree as the package-level one-shot entry points.
func TestFitterReuseMatchesOneShot(t *testing.T) {
	gen := rng.New(77)
	x := mat.NewDense(120, 4)
	y := make([]float64, 120)
	for i := 0; i < 120; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, gen.Float64())
		}
		y[i] = gen.Norm()
	}
	p := Defaults()
	p.MaxFeatures = 2

	ft := NewFitter()
	// Warm the workspace on an unrelated fit first.
	ft.Fit(x, y, Defaults(), nil)

	warm := ft.Fit(x, y, p, rng.New(9))
	cold := Fit(x, y, p, rng.New(9))
	a, _ := json.Marshal(warm)
	b, _ := json.Marshal(cold)
	if !bytes.Equal(a, b) {
		t.Fatal("warm-workspace fit differs from one-shot fit")
	}
}
