package tree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/stats"
)

// step data: y = 1 if x0 > 0.5 else 0 — a single split fits it exactly.
func stepData() (*mat.Dense, []float64) {
	x := mat.FromRows([][]float64{{0.1}, {0.2}, {0.3}, {0.4}, {0.6}, {0.7}, {0.8}, {0.9}})
	y := []float64{0, 0, 0, 0, 1, 1, 1, 1}
	return x, y
}

func TestFitStepFunction(t *testing.T) {
	x, y := stepData()
	tr := Fit(x, y, Defaults(), nil)
	for i := 0; i < x.Rows; i++ {
		if got := tr.Predict(x.Row(i)); got != y[i] {
			t.Fatalf("row %d: predict %v want %v", i, got, y[i])
		}
	}
	if tr.Predict([]float64{0.45}) != 0 || tr.Predict([]float64{0.55}) != 1 {
		t.Fatal("threshold placed wrongly")
	}
}

func TestSingleLeafWhenConstantTarget(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {2}, {3}})
	y := []float64{5, 5, 5}
	tr := Fit(x, y, Defaults(), nil)
	if tr.LeafCount() != 1 || tr.Depth() != 0 {
		t.Fatalf("constant target grew %d leaves depth %d", tr.LeafCount(), tr.Depth())
	}
	if tr.Predict([]float64{99}) != 5 {
		t.Fatal("wrong constant prediction")
	}
}

func TestSingleLeafWhenConstantFeatures(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {1}, {1}})
	y := []float64{1, 2, 3}
	tr := Fit(x, y, Defaults(), nil)
	if tr.LeafCount() != 1 {
		t.Fatal("cannot split identical features")
	}
	if tr.Predict([]float64{1}) != 2 {
		t.Fatalf("prediction %v want mean 2", tr.Predict([]float64{1}))
	}
}

func TestMaxDepthRespected(t *testing.T) {
	r := rng.New(1)
	n := 200
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.Float64())
		x.Set(i, 1, r.Float64())
		y[i] = math.Sin(5*x.At(i, 0)) + x.At(i, 1)
	}
	p := Defaults()
	p.MaxDepth = 3
	tr := Fit(x, y, p, nil)
	if d := tr.Depth(); d > 3 {
		t.Fatalf("depth %d > 3", d)
	}
}

func TestMinLeafSamplesRespected(t *testing.T) {
	r := rng.New(2)
	n := 100
	x := mat.NewDense(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.Float64())
		y[i] = x.At(i, 0)
	}
	p := Defaults()
	p.MinLeafSamples = 10
	tr := Fit(x, y, p, nil)
	for _, node := range tr.Nodes {
		if node.Feature < 0 && node.Samples < 10 {
			t.Fatalf("leaf with %d < 10 samples", node.Samples)
		}
	}
}

func TestDeepTreeInterpolatesTrainingData(t *testing.T) {
	// With MinLeaf=1 and unique x, a regression tree memorizes the data.
	r := rng.New(3)
	n := 64
	x := mat.NewDense(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i)) // unique
		y[i] = r.Norm()
	}
	tr := Fit(x, y, Defaults(), nil)
	for i := 0; i < n; i++ {
		if math.Abs(tr.Predict(x.Row(i))-y[i]) > 1e-12 {
			t.Fatalf("row %d not memorized", i)
		}
	}
}

func TestPredictBatch(t *testing.T) {
	x, y := stepData()
	tr := Fit(x, y, Defaults(), nil)
	got := tr.PredictBatch(x, nil)
	for i := range y {
		if got[i] != y[i] {
			t.Fatalf("batch mismatch at %d", i)
		}
	}
	buf := make([]float64, x.Rows)
	got2 := tr.PredictBatch(x, buf)
	if &got2[0] != &buf[0] {
		t.Fatal("PredictBatch did not reuse buffer")
	}
}

func TestFitIndicesBootstrap(t *testing.T) {
	x, y := stepData()
	idx := []int{0, 0, 1, 4, 5, 5, 6, 7}
	tr := FitIndices(x, y, idx, Defaults(), nil)
	if tr.Predict([]float64{0.1}) != 0 || tr.Predict([]float64{0.9}) != 1 {
		t.Fatal("bootstrap tree wrong on trivially separable data")
	}
}

func TestFitIndicesDoesNotMutateInput(t *testing.T) {
	x, y := stepData()
	idx := []int{3, 1, 2, 0, 7, 5, 6, 4}
	orig := append([]int(nil), idx...)
	FitIndices(x, y, idx, Defaults(), nil)
	for i := range idx {
		if idx[i] != orig[i] {
			t.Fatal("FitIndices mutated caller's index slice")
		}
	}
}

func TestFeatureSubsamplingNeedsRNG(t *testing.T) {
	x, y := stepData()
	p := Defaults()
	p.MaxFeatures = 1
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fit(x, y, p, nil)
}

func TestFeatureSubsampling(t *testing.T) {
	// y depends only on feature 1; with MaxFeatures=1 and enough depth the
	// tree must still find it in expectation (some nodes sample feature 1).
	r := rng.New(5)
	n := 300
	x := mat.NewDense(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = 10 * x.At(i, 1)
	}
	p := Defaults()
	p.MaxFeatures = 1
	tr := Fit(x, y, p, r)
	pred := tr.PredictBatch(x, nil)
	if stats.R2(y, pred) < 0.9 {
		t.Fatalf("R2 = %v with feature subsampling", stats.R2(y, pred))
	}
}

func TestGainImprovesFit(t *testing.T) {
	// 2D checkerboard-ish function: deeper trees must fit better.
	r := rng.New(7)
	n := 400
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.Float64())
		x.Set(i, 1, r.Float64())
		y[i] = math.Sin(6*x.At(i, 0)) * math.Cos(6*x.At(i, 1))
	}
	var prev float64 = math.Inf(1)
	for _, depth := range []int{1, 3, 6, 12} {
		p := Defaults()
		p.MaxDepth = depth
		tr := Fit(x, y, p, nil)
		rmse := stats.RMSE(y, tr.PredictBatch(x, nil))
		if rmse > prev+1e-12 {
			t.Fatalf("training RMSE rose from %v to %v at depth %d", prev, rmse, depth)
		}
		prev = rmse
	}
}

func TestMinImpurityDecrease(t *testing.T) {
	x, y := stepData()
	p := Defaults()
	p.MinImpurityDecrease = 1e9 // nothing can clear this bar
	tr := Fit(x, y, p, nil)
	if tr.LeafCount() != 1 {
		t.Fatal("split accepted despite impurity threshold")
	}
}

func TestPredictDimensionPanics(t *testing.T) {
	x, y := stepData()
	tr := Fit(x, y, Defaults(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.Predict([]float64{1, 2})
}

func TestFitShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fit(mat.NewDense(3, 1), []float64{1, 2}, Defaults(), nil)
}

func TestFitEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fit(mat.NewDense(0, 1), nil, Defaults(), nil)
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	r := rng.New(11)
	n := 300
	x := mat.NewDense(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = 5*x.At(i, 2) + 0.01*r.Norm()
	}
	tr := Fit(x, y, Defaults(), nil)
	imp := tr.FeatureImportance(x, y)
	if imp[2] < 0.8 {
		t.Fatalf("importance of true feature = %v (all: %v)", imp[2], imp)
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
}

func TestFeatureImportanceSingleLeaf(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {1}})
	tr := Fit(x, []float64{2, 2}, Defaults(), nil)
	imp := tr.FeatureImportance(x, []float64{2, 2})
	if imp[0] != 0 {
		t.Fatal("single leaf should have zero importances")
	}
}

func TestPredictionIsPiecewiseConstantProperty(t *testing.T) {
	// property: prediction of any point equals prediction of the leaf mean
	// of training points routed to the same leaf.
	x, y := stepData()
	tr := Fit(x, y, Defaults(), nil)
	f := func(raw uint16) bool {
		v := float64(raw) / 65535.0
		p := tr.Predict([]float64{v})
		return p == 0 || p == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdBetweenAdjacentValues(t *testing.T) {
	// Split thresholds must route training points to their own side even
	// when adjacent feature values are extremely close.
	x := mat.FromRows([][]float64{{1.0}, {math.Nextafter(1.0, 2.0)}})
	y := []float64{0, 1}
	tr := Fit(x, y, Defaults(), nil)
	if tr.Predict(x.Row(0)) != 0 || tr.Predict(x.Row(1)) != 1 {
		t.Fatal("adjacent float values not separated correctly")
	}
}

func BenchmarkFit1000x8(b *testing.B) {
	r := rng.New(1)
	n := 1000
	x := mat.NewDense(n, 8)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = x.At(i, 0) * math.Sin(x.At(i, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(x, y, Defaults(), nil)
	}
}

func BenchmarkPredict(b *testing.B) {
	r := rng.New(1)
	n := 1000
	x := mat.NewDense(n, 8)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = x.At(i, 0)
	}
	tr := Fit(x, y, Defaults(), nil)
	v := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Predict(v)
	}
}

func TestPredictZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	r := rng.New(5)
	n := 300
	x := mat.NewDense(n, 5)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = r.Norm()
	}
	tr := Fit(x, y, Defaults(), nil)
	v := x.Row(7)
	if a := testing.AllocsPerRun(50, func() { tr.Predict(v) }); a != 0 {
		t.Fatalf("Tree.Predict allocates %v times per call, want 0", a)
	}
	dst := make([]float64, n)
	if a := testing.AllocsPerRun(20, func() { tr.PredictBatch(x, dst) }); a != 0 {
		t.Fatalf("Tree.PredictBatch with reused dst allocates %v times per call, want 0", a)
	}
}

// TestFitterAllocsAmortized checks the workspace arena does its job: after
// warmup, repeated same-shape fits allocate only the tree being built.
func TestFitterAllocsAmortized(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	r := rng.New(6)
	n := 200
	x := mat.NewDense(n, 4)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = r.Norm()
	}
	idx := r.Bootstrap(nil, n)
	ft := NewFitter()
	ft.FitIndices(x, y, idx, Defaults(), rng.New(1))
	a := testing.AllocsPerRun(10, func() { ft.FitIndices(x, y, idx, Defaults(), rng.New(1)) })
	// The tree itself (node slice growth + header) is all that remains.
	if a > 12 {
		t.Fatalf("warm Fitter allocates %v times per fit, want the tree only (<= 12)", a)
	}
}

func BenchmarkTreeFit(b *testing.B) {
	r := rng.New(1)
	n := 1000
	x := mat.NewDense(n, 8)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = x.At(i, 0) * math.Sin(x.At(i, 1))
	}
	idx := r.Bootstrap(nil, n)
	ft := NewFitter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.FitIndices(x, y, idx, Defaults(), rng.New(uint64(i)))
	}
}
