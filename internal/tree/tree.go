// Package tree implements CART regression trees: binary trees grown by
// greedy variance-reduction splitting on axis-aligned thresholds. Trees are
// the base learner of the random forest at the paper's interpolation level
// and of the gradient-boosting baseline.
//
// The implementation uses a presorted split search (see fitter.go): each
// feature's row order is sorted once per tree, and per-node orderings are
// maintained down the recursion by stable partition of the presorted index
// arrays, so a node's split search is a single linear scan per candidate
// feature — no per-node sorting. All scratch lives in a per-Fitter
// workspace that is reused across fits, so growing a tree allocates only
// the tree itself. A naive per-node-sorting reference splitter is retained
// in reference.go and differentially tested to produce byte-identical
// trees (see differential_test.go).
package tree

import (
	"fmt"

	"repro/internal/mat"
)

// Params controls tree growth. The zero value is not valid; use Defaults.
type Params struct {
	MaxDepth       int // maximum depth; root is depth 0
	MinLeafSamples int // a split is rejected if either side would be smaller
	MinSplit       int // nodes with fewer samples become leaves
	// MaxFeatures is the number of features sampled (without replacement)
	// as split candidates at every node; <= 0 means all features.
	// Random forests set this to ~p/3.
	MaxFeatures int
	// MinImpurityDecrease rejects splits whose weighted variance reduction
	// is below this absolute threshold.
	MinImpurityDecrease float64
}

// Defaults returns reasonable regression-tree parameters: deep trees,
// small leaves — the standard choice for forest base learners.
func Defaults() Params {
	return Params{
		MaxDepth:       25,
		MinLeafSamples: 1,
		MinSplit:       2,
		MaxFeatures:    0,
	}
}

// withDefaults applies the documented growth-parameter defaults shared by
// Fit and FitIndices (and the reference splitter), and enforces that
// feature subsampling has a randomness source.
func (p Params) withDefaults(hasRNG bool) Params {
	if p.MaxDepth <= 0 {
		p.MaxDepth = Defaults().MaxDepth
	}
	if p.MinLeafSamples <= 0 {
		p.MinLeafSamples = 1
	}
	if p.MinSplit < 2 {
		p.MinSplit = 2
	}
	if p.MaxFeatures > 0 && !hasRNG {
		panic("tree: MaxFeatures > 0 requires a random source")
	}
	return p
}

// Node is one tree node. Leaves have Feature == -1.
type Node struct {
	Feature   int     `json:"f"`           // split feature, -1 for leaf
	Threshold float64 `json:"t,omitempty"` // go left when x[Feature] <= Threshold
	Left      int32   `json:"l,omitempty"` // child index into Tree.Nodes; 0 unused for leaves
	Right     int32   `json:"r,omitempty"` // child index into Tree.Nodes; 0 unused for leaves
	Value     float64 `json:"v"`           // mean target at this node (prediction for leaves)
	Samples   int32   `json:"n"`           // training rows that reached this node
}

// Tree is a fitted regression tree stored as a flat node array (index 0 is
// the root), which keeps serialization trivial and prediction cache-friendly.
type Tree struct {
	Nodes    []Node `json:"nodes"`
	Features int    `json:"features"` // input dimensionality, for validation
}

// Predict returns the tree's prediction for feature vector v.
func (t *Tree) Predict(v []float64) float64 {
	if len(v) != t.Features {
		panic(fmt.Sprintf("tree: predict with %d features, tree has %d", len(v), t.Features))
	}
	nodes := t.Nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if v[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// PredictBatch fills dst with predictions for every row of x; a nil dst is
// allocated. With a non-nil dst the call performs no allocations.
func (t *Tree) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	if x.Cols != t.Features {
		panic(fmt.Sprintf("tree: predict with %d features, tree has %d", x.Cols, t.Features))
	}
	if dst == nil {
		dst = make([]float64, x.Rows)
	}
	if len(dst) != x.Rows {
		panic("tree: PredictBatch dst length mismatch")
	}
	nodes := t.Nodes
	cols := x.Cols
	data := x.Data
	for i := 0; i < x.Rows; i++ {
		row := data[i*cols : i*cols+cols]
		j := int32(0)
		for {
			n := &nodes[j]
			if n.Feature < 0 {
				dst[i] = n.Value
				break
			}
			if row[n.Feature] <= n.Threshold {
				j = n.Left
			} else {
				j = n.Right
			}
		}
	}
	return dst
}

// Depth returns the maximum depth of the tree (0 for a single leaf).
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return 0
		}
		l := walk(n.Left)
		r := walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int {
	c := 0
	for i := range t.Nodes {
		if t.Nodes[i].Feature < 0 {
			c++
		}
	}
	return c
}

// FeatureImportance accumulates, per feature, the total impurity decrease
// weighted by node size, normalized to sum to 1 (all-zero if the tree is a
// single leaf). Importances are a byproduct of training and are stored
// implicitly in the structure; this recomputes them from node statistics.
func (t *Tree) FeatureImportance(x *mat.Dense, y []float64) []float64 {
	imp := make([]float64, t.Features)
	// Recompute impurity decrease per internal node by replaying the
	// partition. We walk with explicit row sets.
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	var walk func(node int32, rows []int)
	walk = func(node int32, rows []int) {
		n := &t.Nodes[node]
		if n.Feature < 0 || len(rows) == 0 {
			return
		}
		var sum, sq float64
		for _, i := range rows {
			v := y[i]
			sum += v
			sq += v * v
		}
		parent := sq - sum*sum/float64(len(rows))
		lo, hi := 0, len(rows)
		for lo < hi {
			if x.At(rows[lo], n.Feature) <= n.Threshold {
				lo++
			} else {
				hi--
				rows[lo], rows[hi] = rows[hi], rows[lo]
			}
		}
		var lsum, lsq float64
		for _, i := range rows[:lo] {
			v := y[i]
			lsum += v
			lsq += v * v
		}
		rsum, rsq := sum-lsum, sq-lsq
		var child float64
		if lo > 0 {
			child += lsq - lsum*lsum/float64(lo)
		}
		if len(rows)-lo > 0 {
			child += rsq - rsum*rsum/float64(len(rows)-lo)
		}
		if d := parent - child; d > 0 {
			imp[n.Feature] += d
		}
		walk(n.Left, rows[:lo])
		walk(n.Right, rows[lo:])
	}
	walk(0, idx)
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
