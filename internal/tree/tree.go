// Package tree implements CART regression trees: binary trees grown by
// greedy variance-reduction splitting on axis-aligned thresholds. Trees are
// the base learner of the random forest at the paper's interpolation level
// and of the gradient-boosting baseline.
//
// The implementation uses the standard sort-once-per-feature scan: at each
// node, candidate thresholds for a feature are evaluated in a single pass
// over the node's rows sorted by that feature, accumulating left/right
// sufficient statistics, which makes a split search O(k·n log n) for k
// candidate features.
package tree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Params controls tree growth. The zero value is not valid; use Defaults.
type Params struct {
	MaxDepth       int // maximum depth; root is depth 0
	MinLeafSamples int // a split is rejected if either side would be smaller
	MinSplit       int // nodes with fewer samples become leaves
	// MaxFeatures is the number of features sampled (without replacement)
	// as split candidates at every node; <= 0 means all features.
	// Random forests set this to ~p/3.
	MaxFeatures int
	// MinImpurityDecrease rejects splits whose weighted variance reduction
	// is below this absolute threshold.
	MinImpurityDecrease float64
}

// Defaults returns reasonable regression-tree parameters: deep trees,
// small leaves — the standard choice for forest base learners.
func Defaults() Params {
	return Params{
		MaxDepth:       25,
		MinLeafSamples: 1,
		MinSplit:       2,
		MaxFeatures:    0,
	}
}

// Node is one tree node. Leaves have Feature == -1.
type Node struct {
	Feature   int     `json:"f"`           // split feature, -1 for leaf
	Threshold float64 `json:"t,omitempty"` // go left when x[Feature] <= Threshold
	Left      int32   `json:"l,omitempty"` // child index into Tree.Nodes; 0 unused for leaves
	Right     int32   `json:"r,omitempty"` // child index into Tree.Nodes; 0 unused for leaves
	Value     float64 `json:"v"`           // mean target at this node (prediction for leaves)
	Samples   int32   `json:"n"`           // training rows that reached this node
}

// Tree is a fitted regression tree stored as a flat node array (index 0 is
// the root), which keeps serialization trivial and prediction cache-friendly.
type Tree struct {
	Nodes    []Node `json:"nodes"`
	Features int    `json:"features"` // input dimensionality, for validation
}

// workspace bundles the per-fit scratch buffers.
type workspace struct {
	x    *mat.Dense
	y    []float64
	p    Params
	rng  *rng.Source
	feat []int // feature index scratch for subsampling
}

// Fit grows a tree on x, y. A nil r is allowed when p.MaxFeatures <= 0
// (no randomness is needed). Rows of x are samples.
func Fit(x *mat.Dense, y []float64, p Params, r *rng.Source) *Tree {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("tree: %d rows vs %d targets", x.Rows, len(y)))
	}
	if x.Rows == 0 {
		panic("tree: Fit on empty dataset")
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = Defaults().MaxDepth
	}
	if p.MinLeafSamples <= 0 {
		p.MinLeafSamples = 1
	}
	if p.MinSplit < 2 {
		p.MinSplit = 2
	}
	if p.MaxFeatures > 0 && r == nil {
		panic("tree: MaxFeatures > 0 requires a random source")
	}
	ws := &workspace{x: x, y: y, p: p, rng: r}
	ws.feat = make([]int, x.Cols)
	for i := range ws.feat {
		ws.feat[i] = i
	}
	t := &Tree{Features: x.Cols}
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	t.grow(ws, idx, 0)
	return t
}

// FitIndices grows a tree on the subset of rows given by idx (with
// repetitions allowed, as produced by bootstrap sampling).
func FitIndices(x *mat.Dense, y []float64, idx []int, p Params, r *rng.Source) *Tree {
	if len(idx) == 0 {
		panic("tree: FitIndices with no rows")
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = Defaults().MaxDepth
	}
	if p.MinLeafSamples <= 0 {
		p.MinLeafSamples = 1
	}
	if p.MinSplit < 2 {
		p.MinSplit = 2
	}
	if p.MaxFeatures > 0 && r == nil {
		panic("tree: MaxFeatures > 0 requires a random source")
	}
	ws := &workspace{x: x, y: y, p: p, rng: r}
	ws.feat = make([]int, x.Cols)
	for i := range ws.feat {
		ws.feat[i] = i
	}
	t := &Tree{Features: x.Cols}
	own := append([]int(nil), idx...)
	t.grow(ws, own, 0)
	return t
}

// grow appends the subtree over rows idx and returns its node index.
func (t *Tree) grow(ws *workspace, idx []int, depth int) int32 {
	self := int32(len(t.Nodes))
	mean := meanAt(ws.y, idx)
	t.Nodes = append(t.Nodes, Node{Feature: -1, Value: mean, Samples: int32(len(idx))})

	if depth >= ws.p.MaxDepth || len(idx) < ws.p.MinSplit {
		return self
	}
	feature, threshold, gain := bestSplit(ws, idx)
	if feature < 0 || gain <= ws.p.MinImpurityDecrease {
		return self
	}
	// partition idx in place
	lo, hi := 0, len(idx)
	for lo < hi {
		if ws.x.At(idx[lo], feature) <= threshold {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo < ws.p.MinLeafSamples || len(idx)-lo < ws.p.MinLeafSamples {
		return self
	}
	left := t.grow(ws, idx[:lo], depth+1)
	right := t.grow(ws, idx[lo:], depth+1)
	n := &t.Nodes[self]
	n.Feature = feature
	n.Threshold = threshold
	n.Left, n.Right = left, right
	return self
}

func meanAt(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// bestSplit scans candidate features and returns the split with the largest
// variance reduction (weighted by node fraction of the caller's rows).
// Returns feature -1 when no valid split exists.
func bestSplit(ws *workspace, idx []int) (feature int, threshold, gain float64) {
	n := len(idx)
	var totalSum, totalSq float64
	for _, i := range idx {
		v := ws.y[i]
		totalSum += v
		totalSq += v * v
	}
	parentImp := totalSq - totalSum*totalSum/float64(n) // n * variance

	candidates := ws.feat
	if ws.p.MaxFeatures > 0 && ws.p.MaxFeatures < len(ws.feat) {
		// Partial Fisher-Yates over the shared scratch: the first
		// MaxFeatures entries become the sample.
		for i := 0; i < ws.p.MaxFeatures; i++ {
			j := i + ws.rng.Intn(len(ws.feat)-i)
			ws.feat[i], ws.feat[j] = ws.feat[j], ws.feat[i]
		}
		candidates = ws.feat[:ws.p.MaxFeatures]
	}

	feature = -1
	order := make([]int, n)
	minLeaf := ws.p.MinLeafSamples
	for _, f := range candidates {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			return ws.x.At(order[a], f) < ws.x.At(order[b], f)
		})
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			yv := ws.y[order[k]]
			leftSum += yv
			leftSq += yv * yv
			xv := ws.x.At(order[k], f)
			xNext := ws.x.At(order[k+1], f)
			//lint:allow floateq -- exact guard: no split exists between bitwise-equal feature values
			if xv == xNext {
				continue // can't split between equal values
			}
			nl := k + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childImp := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(nr))
			g := parentImp - childImp
			if g > gain {
				gain = g
				feature = f
				threshold = xv + (xNext-xv)/2
				//lint:allow floateq -- exact rounding check: the midpoint of adjacent floats can round up to the endpoint
				if threshold == xNext { // midpoint rounded up between adjacent floats
					threshold = xv
				}
			}
		}
	}
	if math.IsNaN(gain) {
		return -1, 0, 0
	}
	return feature, threshold, gain
}

// Predict returns the tree's prediction for feature vector v.
func (t *Tree) Predict(v []float64) float64 {
	if len(v) != t.Features {
		panic(fmt.Sprintf("tree: predict with %d features, tree has %d", len(v), t.Features))
	}
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if v[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// PredictBatch fills dst with predictions for every row of x; a nil dst is
// allocated.
func (t *Tree) PredictBatch(x *mat.Dense, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, x.Rows)
	}
	if len(dst) != x.Rows {
		panic("tree: PredictBatch dst length mismatch")
	}
	for i := 0; i < x.Rows; i++ {
		dst[i] = t.Predict(x.Row(i))
	}
	return dst
}

// Depth returns the maximum depth of the tree (0 for a single leaf).
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return 0
		}
		l := walk(n.Left)
		r := walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int {
	c := 0
	for i := range t.Nodes {
		if t.Nodes[i].Feature < 0 {
			c++
		}
	}
	return c
}

// FeatureImportance accumulates, per feature, the total impurity decrease
// weighted by node size, normalized to sum to 1 (all-zero if the tree is a
// single leaf). Importances are a byproduct of training and are stored
// implicitly in the structure; this recomputes them from node statistics.
func (t *Tree) FeatureImportance(x *mat.Dense, y []float64) []float64 {
	imp := make([]float64, t.Features)
	// Recompute impurity decrease per internal node by replaying the
	// partition. We walk with explicit row sets.
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	var walk func(node int32, rows []int)
	walk = func(node int32, rows []int) {
		n := &t.Nodes[node]
		if n.Feature < 0 || len(rows) == 0 {
			return
		}
		var sum, sq float64
		for _, i := range rows {
			v := y[i]
			sum += v
			sq += v * v
		}
		parent := sq - sum*sum/float64(len(rows))
		lo, hi := 0, len(rows)
		for lo < hi {
			if x.At(rows[lo], n.Feature) <= n.Threshold {
				lo++
			} else {
				hi--
				rows[lo], rows[hi] = rows[hi], rows[lo]
			}
		}
		var lsum, lsq float64
		for _, i := range rows[:lo] {
			v := y[i]
			lsum += v
			lsq += v * v
		}
		rsum, rsq := sum-lsum, sq-lsq
		var child float64
		if lo > 0 {
			child += lsq - lsum*lsum/float64(lo)
		}
		if len(rows)-lo > 0 {
			child += rsq - rsum*rsum/float64(len(rows)-lo)
		}
		if d := parent - child; d > 0 {
			imp[n.Feature] += d
		}
		walk(n.Left, rows[:lo])
		walk(n.Right, rows[lo:])
	}
	walk(0, idx)
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
