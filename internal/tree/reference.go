package tree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/rng"
)

// This file retains the naive, pre-optimization splitter: at every node it
// copies the node's rows and sorts them by each candidate feature from
// scratch, exactly as tree.Fit did before the presorted rewrite. It is
// kept as the ground truth for the differential test
// (differential_test.go), which asserts that the presorted splitter in
// fitter.go serializes to byte-identical trees.
//
// Determinism contract shared with fitter.go: a node's rows are kept in
// bootstrap-position order (stable partition), node statistics are summed
// in that order, and each per-feature sort orders rows by (value, dataset
// row index). Entries that tie on both are duplicate bootstrap draws of
// the same row and are indistinguishable to the scan, so the sorted
// sequence is unique. Because the scan bodies are
// operation-for-operation identical, every floating-point intermediate
// matches the presorted path bit for bit.

// refWorkspace carries the naive splitter's per-fit state.
type refWorkspace struct {
	x    *mat.Dense
	y    []float64
	p    Params
	rng  *rng.Source
	feat []int

	rows []int32 // per-node sort scratch, aligned with vals
	vals []float64
	tmp  []int32 // stable-partition spill buffer
}

// fitReference grows a tree with the naive per-node-sorting splitter.
// idx == nil means all rows. The caller's idx slice is not mutated.
func fitReference(x *mat.Dense, y []float64, idx []int, p Params, r *rng.Source) *Tree {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("tree: %d rows vs %d targets", x.Rows, len(y)))
	}
	if x.Rows == 0 && idx == nil {
		panic("tree: Fit on empty dataset")
	}
	if idx != nil && len(idx) == 0 {
		panic("tree: FitIndices with no rows")
	}
	p = p.withDefaults(r != nil)
	n := x.Rows
	if idx != nil {
		n = len(idx)
	}
	ws := &refWorkspace{
		x: x, y: y, p: p, rng: r,
		feat: make([]int, x.Cols),
		rows: make([]int32, n),
		vals: make([]float64, n),
		tmp:  make([]int32, n),
	}
	for i := range ws.feat {
		ws.feat[i] = i
	}
	own := make([]int32, n)
	for k := range own {
		if idx != nil {
			own[k] = int32(idx[k])
		} else {
			own[k] = int32(k)
		}
	}
	t := &Tree{Features: x.Cols}
	ws.grow(t, own, 0)
	return t
}

// grow appends the subtree over rows held in bootstrap-position order.
func (ws *refWorkspace) grow(t *Tree, node []int32, depth int) int32 {
	self := int32(len(t.Nodes))
	n := len(node)
	var sum float64
	for _, row := range node {
		sum += ws.y[row]
	}
	t.Nodes = append(t.Nodes, Node{Feature: -1, Value: sum / float64(n), Samples: int32(n)})

	if depth >= ws.p.MaxDepth || n < ws.p.MinSplit {
		return self
	}
	feature, threshold, gain, nl := ws.bestSplit(node)
	if feature < 0 || gain <= ws.p.MinImpurityDecrease {
		return self
	}
	if nl < ws.p.MinLeafSamples || n-nl < ws.p.MinLeafSamples {
		return self
	}
	// Stable partition: both sides keep bootstrap-position order.
	w, spill := 0, 0
	for _, row := range node {
		if ws.x.At(int(row), feature) <= threshold {
			node[w] = row
			w++
		} else {
			ws.tmp[spill] = row
			spill++
		}
	}
	copy(node[w:], ws.tmp[:spill])
	left := ws.grow(t, node[:nl], depth+1)
	right := ws.grow(t, node[nl:], depth+1)
	nd := &t.Nodes[self]
	nd.Feature = feature
	nd.Threshold = threshold
	nd.Left, nd.Right = left, right
	return self
}

// bestSplit is the naive split search: sort the node's rows per candidate
// feature, then scan. The scan body must stay operation-for-operation
// identical to Fitter.bestSplit.
func (ws *refWorkspace) bestSplit(node []int32) (feature int, threshold, gain float64, nl int) {
	n := len(node)
	var totalSum, totalSq float64
	for _, row := range node {
		v := ws.y[row]
		totalSum += v
		totalSq += v * v
	}
	parentImp := totalSq - totalSum*totalSum/float64(n)

	candidates := ws.feat
	if ws.p.MaxFeatures > 0 && ws.p.MaxFeatures < len(ws.feat) {
		for i := 0; i < ws.p.MaxFeatures; i++ {
			j := i + ws.rng.Intn(len(ws.feat)-i)
			ws.feat[i], ws.feat[j] = ws.feat[j], ws.feat[i]
		}
		candidates = ws.feat[:ws.p.MaxFeatures]
	}

	feature = -1
	y := ws.y
	minLeaf := ws.p.MinLeafSamples
	for _, f := range candidates {
		rows := ws.rows[:n]
		vals := ws.vals[:n]
		for k, row := range node {
			rows[k] = row
			vals[k] = ws.x.At(int(row), f)
		}
		sort.Sort(&sortByValRow{vals: vals, rows: rows})
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			yv := y[rows[k]]
			leftSum += yv
			leftSq += yv * yv
			xv, xNext := vals[k], vals[k+1]
			if !(xv < xNext) {
				continue // can't split between equal values (segment is sorted)
			}
			l := k + 1
			r := n - l
			if l < minLeaf || r < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childImp := (leftSq - leftSum*leftSum/float64(l)) +
				(rightSq - rightSum*rightSum/float64(r))
			if g := parentImp - childImp; g > gain {
				gain = g
				feature = f
				nl = l
				thr := xv + (xNext-xv)/2
				if !(thr < xNext) { // midpoint rounded up between adjacent floats
					thr = xv
				}
				threshold = thr
			}
		}
	}
	if math.IsNaN(gain) {
		return -1, 0, 0, 0
	}
	return feature, threshold, gain, nl
}
