//go:build !race

package tree

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because instrumentation allocates.
const raceEnabled = false
