package tree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Fitter grows trees while reusing every scratch buffer across fits. One
// Fitter serves one goroutine (it is not safe for concurrent use); a
// forest worker holds one Fitter for all the trees it grows, so a
// 100-tree fit allocates O(trees), not O(nodes·features).
//
// The split search is presorted: the dataset's per-feature row orders are
// sorted once per dataset (cached across fits over the same matrix, so a
// bagged ensemble pays for sorting once, not once per tree), each fit's
// row sample is derived from the cached order by multiplicity counting in
// linear time, and per-node orderings are maintained down the recursion
// by stable partition of the presorted arrays — no per-node sorting.
//
// Determinism contract (shared with reference.go): a node's per-feature
// ordering is its rows sorted by (feature value, dataset row index), with
// duplicate bootstrap draws of a row adjacent; node statistics are summed
// in bootstrap-position order. These orderings fully determine every
// floating-point operation of the split search. Stable partition
// preserves both (a subsequence of a sorted sequence is sorted), which is
// why the presorted splitter is byte-identical to the naive
// per-node-sorting reference splitter (see differential_test.go).
type Fitter struct {
	ws workspace
}

// NewFitter returns an empty Fitter; buffers are sized lazily on first use.
func NewFitter() *Fitter { return &Fitter{} }

// workspace bundles the per-fit scratch buffers, reused across fits.
type workspace struct {
	x   *mat.Dense
	y   []float64
	p   Params
	rng *rng.Source

	feat []int // feature-candidate scratch for subsampling

	// Per-dataset presort cache: for baseX, baseRows[f]/baseVals[f] hold
	// all dataset rows and their feature-f values sorted by (value, row).
	// The fitted matrix must not be mutated while its Fitter is in use.
	baseX    *mat.Dense
	baseRows [][]int32
	baseVals [][]float64
	count    []int32 // per-row bootstrap multiplicities

	// Per-fit presorted state. A node owns segment [start, end) of every
	// array. rows[f]/vals[f] hold the node's row entries and their
	// feature-f values in (value, row) order; pos holds the node's rows
	// in bootstrap-position order — the canonical summation order for
	// node statistics.
	rows [][]int32
	vals [][]float64
	pos  []int32

	sorter  sortByValRow // base presort state (avoids sort.Sort boxing)
	tmpRows []int32      // stable-partition spill buffer
	tmpVals []float64
	goLeft  []bool // per-row side flags for the current partition
}

// ensure (re)sizes every buffer for a fit over n node rows and x's shape.
func (ws *workspace) ensure(x *mat.Dense, n int) {
	p := x.Cols
	if cap(ws.feat) < p {
		ws.feat = make([]int, p)
	}
	ws.feat = ws.feat[:p]
	for i := range ws.feat {
		ws.feat[i] = i
	}
	if len(ws.rows) < p {
		ws.rows = append(ws.rows, make([][]int32, p-len(ws.rows))...)
		ws.vals = append(ws.vals, make([][]float64, p-len(ws.vals))...)
	}
	for f := 0; f < p; f++ {
		if cap(ws.rows[f]) < n {
			ws.rows[f] = make([]int32, n)
			ws.vals[f] = make([]float64, n)
		}
		ws.rows[f] = ws.rows[f][:n]
		ws.vals[f] = ws.vals[f][:n]
	}
	if cap(ws.pos) < n {
		ws.pos = make([]int32, n)
		ws.tmpRows = make([]int32, n)
		ws.tmpVals = make([]float64, n)
	}
	ws.pos = ws.pos[:n]
	ws.tmpRows = ws.tmpRows[:n]
	ws.tmpVals = ws.tmpVals[:n]
	if cap(ws.goLeft) < x.Rows {
		ws.goLeft = make([]bool, x.Rows)
		ws.count = make([]int32, x.Rows)
	}
	ws.goLeft = ws.goLeft[:x.Rows]
	ws.count = ws.count[:x.Rows]
}

// presort (re)builds the per-dataset sorted orders unless the cache
// already covers x.
func (ws *workspace) presort(x *mat.Dense) {
	if ws.baseX == x {
		return
	}
	r := x.Rows
	if len(ws.baseRows) < x.Cols {
		ws.baseRows = append(ws.baseRows, make([][]int32, x.Cols-len(ws.baseRows))...)
		ws.baseVals = append(ws.baseVals, make([][]float64, x.Cols-len(ws.baseVals))...)
	}
	for f := 0; f < x.Cols; f++ {
		if cap(ws.baseRows[f]) < r {
			ws.baseRows[f] = make([]int32, r)
			ws.baseVals[f] = make([]float64, r)
		}
		rows := ws.baseRows[f][:r]
		vals := ws.baseVals[f][:r]
		ws.baseRows[f], ws.baseVals[f] = rows, vals
		for i := 0; i < r; i++ {
			rows[i] = int32(i)
			vals[i] = x.At(i, f)
		}
		ws.sorter.vals, ws.sorter.rows = vals, rows
		sort.Sort(&ws.sorter)
	}
	ws.baseX = x
}

// Fit grows a tree on x, y. A nil r is allowed when p.MaxFeatures <= 0
// (no randomness is needed). Rows of x are samples.
func (ft *Fitter) Fit(x *mat.Dense, y []float64, p Params, r *rng.Source) *Tree {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("tree: %d rows vs %d targets", x.Rows, len(y)))
	}
	if x.Rows == 0 {
		panic("tree: Fit on empty dataset")
	}
	return ft.fit(x, y, nil, p, r)
}

// FitIndices grows a tree on the subset of rows given by idx (with
// repetitions allowed, as produced by bootstrap sampling). The caller's
// idx slice is not mutated.
func (ft *Fitter) FitIndices(x *mat.Dense, y []float64, idx []int, p Params, r *rng.Source) *Tree {
	if len(idx) == 0 {
		panic("tree: FitIndices with no rows")
	}
	return ft.fit(x, y, idx, p, r)
}

// fit derives the fit's presorted arrays from the dataset cache and grows
// the tree. idx == nil means all rows.
func (ft *Fitter) fit(x *mat.Dense, y []float64, idx []int, p Params, r *rng.Source) *Tree {
	p = p.withDefaults(r != nil)
	ws := &ft.ws
	n := x.Rows
	if idx != nil {
		n = len(idx)
	}
	ws.ensure(x, n)
	ws.presort(x)
	ws.x, ws.y, ws.p, ws.rng = x, y, p, r

	if idx == nil {
		for k := range ws.pos {
			ws.pos[k] = int32(k)
		}
		for f := 0; f < x.Cols; f++ {
			copy(ws.rows[f], ws.baseRows[f])
			copy(ws.vals[f], ws.baseVals[f])
		}
	} else {
		for k, row := range idx {
			ws.pos[k] = int32(row)
			ws.count[row]++
		}
		// Emit each dataset row with its sample multiplicity, walking the
		// cached (value, row) order: linear time, no per-fit sorting.
		for f := 0; f < x.Cols; f++ {
			rows, vals := ws.rows[f], ws.vals[f]
			k := 0
			for i, row := range ws.baseRows[f] {
				c := ws.count[row]
				v := ws.baseVals[f][i]
				for ; c > 0; c-- {
					rows[k] = row
					vals[k] = v
					k++
				}
			}
		}
		for _, row := range idx {
			ws.count[row] = 0
		}
	}

	t := &Tree{Features: x.Cols}
	ft.grow(t, 0, n, 0)
	ws.y, ws.rng = nil, nil // drop references; buffers and dataset cache stay
	return t
}

// sortByValRow orders (value, row) pairs by feature value with ties
// broken by dataset row index — a concrete type instead of a closure
// comparator. Distinct entries never compare equal, so the standard
// unstable sort produces the unique sorted sequence deterministically.
type sortByValRow struct {
	vals []float64
	rows []int32
}

func (s *sortByValRow) Len() int { return len(s.rows) }

func (s *sortByValRow) Less(i, j int) bool {
	if s.vals[i] < s.vals[j] {
		return true
	}
	if s.vals[j] < s.vals[i] {
		return false
	}
	return s.rows[i] < s.rows[j]
}

func (s *sortByValRow) Swap(i, j int) {
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// grow appends the subtree over workspace segment [start, end) and
// returns its node index.
func (ft *Fitter) grow(t *Tree, start, end, depth int) int32 {
	ws := &ft.ws
	self := int32(len(t.Nodes))
	n := end - start
	var sum float64
	for _, row := range ws.pos[start:end] {
		sum += ws.y[row]
	}
	t.Nodes = append(t.Nodes, Node{Feature: -1, Value: sum / float64(n), Samples: int32(n)})

	if depth >= ws.p.MaxDepth || n < ws.p.MinSplit {
		return self
	}
	feature, threshold, gain, nl := ft.bestSplit(start, end)
	if feature < 0 || gain <= ws.p.MinImpurityDecrease {
		return self
	}
	if nl < ws.p.MinLeafSamples || n-nl < ws.p.MinLeafSamples {
		return self
	}
	ft.partition(start, end, feature, nl)
	mid := start + nl
	left := ft.grow(t, start, mid, depth+1)
	right := ft.grow(t, mid, end, depth+1)
	nd := &t.Nodes[self]
	nd.Feature = feature
	nd.Threshold = threshold
	nd.Left, nd.Right = left, right
	return self
}

// bestSplit scans candidate features over the presorted segment and
// returns the split with the largest variance reduction, with nl the
// number of rows routed left. Returns feature -1 when no valid split
// exists. The scan body must stay operation-for-operation identical to
// the reference splitter's (reference.go) so both produce bit-equal
// gains and thresholds.
func (ft *Fitter) bestSplit(start, end int) (feature int, threshold, gain float64, nl int) {
	ws := &ft.ws
	n := end - start
	var totalSum, totalSq float64
	for _, row := range ws.pos[start:end] {
		v := ws.y[row]
		totalSum += v
		totalSq += v * v
	}
	parentImp := totalSq - totalSum*totalSum/float64(n) // n * variance

	candidates := ws.feat
	if ws.p.MaxFeatures > 0 && ws.p.MaxFeatures < len(ws.feat) {
		// Partial Fisher-Yates over the shared scratch: the first
		// MaxFeatures entries become the sample.
		for i := 0; i < ws.p.MaxFeatures; i++ {
			j := i + ws.rng.Intn(len(ws.feat)-i)
			ws.feat[i], ws.feat[j] = ws.feat[j], ws.feat[i]
		}
		candidates = ws.feat[:ws.p.MaxFeatures]
	}

	feature = -1
	y := ws.y
	minLeaf := ws.p.MinLeafSamples
	for _, f := range candidates {
		rows := ws.rows[f][start:end]
		vals := ws.vals[f][start:end]
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			yv := y[rows[k]]
			leftSum += yv
			leftSq += yv * yv
			xv, xNext := vals[k], vals[k+1]
			if !(xv < xNext) {
				continue // can't split between equal values (segment is sorted)
			}
			l := k + 1
			r := n - l
			if l < minLeaf || r < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childImp := (leftSq - leftSum*leftSum/float64(l)) +
				(rightSq - rightSum*rightSum/float64(r))
			if g := parentImp - childImp; g > gain {
				gain = g
				feature = f
				nl = l
				thr := xv + (xNext-xv)/2
				if !(thr < xNext) { // midpoint rounded up between adjacent floats
					thr = xv
				}
				threshold = thr
			}
		}
	}
	if math.IsNaN(gain) {
		return -1, 0, 0, 0
	}
	return feature, threshold, gain, nl
}

// partition splits segment [start, end) of every presorted array so the
// nl left-routed rows occupy [start, start+nl) and the rest
// [start+nl, end), preserving relative (value, row) order on both sides.
// Which rows go left is read off the split feature's own sorted segment:
// its first nl entries are exactly the left rows, and duplicate bootstrap
// draws of a row share a feature value, so a per-row flag is well
// defined.
func (ft *Fitter) partition(start, end, feature, nl int) {
	ws := &ft.ws
	split := ws.rows[feature][start:end]
	for _, row := range split[:nl] {
		ws.goLeft[row] = true
	}
	for _, row := range split[nl:] {
		ws.goLeft[row] = false
	}
	for f := 0; f < ws.x.Cols; f++ {
		if f == feature {
			continue // already partitioned: its first nl entries are the left rows
		}
		rows := ws.rows[f][start:end]
		vals := ws.vals[f][start:end]
		w, spill := 0, 0
		for k, row := range rows {
			if ws.goLeft[row] {
				rows[w] = row
				vals[w] = vals[k]
				w++
			} else {
				ws.tmpRows[spill] = row
				ws.tmpVals[spill] = vals[k]
				spill++
			}
		}
		copy(rows[w:], ws.tmpRows[:spill])
		copy(vals[w:], ws.tmpVals[:spill])
	}
	pos := ws.pos[start:end]
	w, spill := 0, 0
	for _, row := range pos {
		if ws.goLeft[row] {
			pos[w] = row
			w++
		} else {
			ws.tmpRows[spill] = row
			spill++
		}
	}
	copy(pos[w:], ws.tmpRows[:spill])
}

// Fit grows a tree on x, y with a one-shot workspace. A nil r is allowed
// when p.MaxFeatures <= 0 (no randomness is needed). Rows of x are
// samples. Loops that fit many trees should reuse a Fitter instead.
func Fit(x *mat.Dense, y []float64, p Params, r *rng.Source) *Tree {
	return NewFitter().Fit(x, y, p, r)
}

// FitIndices grows a tree on the subset of rows given by idx (with
// repetitions allowed, as produced by bootstrap sampling) using a
// one-shot workspace. Loops that fit many trees should reuse a Fitter.
func FitIndices(x *mat.Dense, y []float64, idx []int, p Params, r *rng.Source) *Tree {
	return NewFitter().FitIndices(x, y, idx, p, r)
}
