package hpcsim

import "testing"

func TestPresetsValid(t *testing.T) {
	for name, m := range Machines() {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.MaxProcs() < 1024 {
			t.Fatalf("%s can host only %d processes; experiments need 1024", name, m.MaxProcs())
		}
	}
}

func TestPresetsHostAllApps(t *testing.T) {
	for mname, m := range Machines() {
		for aname, app := range Apps() {
			cfg := midConfig(app)
			for _, p := range []int{2, 64, 1024} {
				b, err := app.Model(cfg, p, m)
				if err != nil {
					t.Fatalf("%s on %s at p=%d: %v", aname, mname, p, err)
				}
				if b.Total() <= 0 {
					t.Fatalf("%s on %s at p=%d: non-positive time", aname, mname, p)
				}
			}
		}
	}
}

func TestSlowNetworkIsCommHeavier(t *testing.T) {
	app := NewLulesh()
	cfg := midConfig(app)
	fast, err := app.Model(cfg, 512, DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := app.Model(cfg, 512, SlowNetworkMachine())
	if err != nil {
		t.Fatal(err)
	}
	if slow.CommFraction() <= fast.CommFraction() {
		t.Fatalf("slownet comm fraction %v not above default %v", slow.CommFraction(), fast.CommFraction())
	}
}

func TestFatNodeContendsMore(t *testing.T) {
	// At 32 processes the fat node packs everything into one node; the
	// per-flop rate must be worse than on the default machine at its own
	// full-node packing relative to single-core rates.
	fat := FatNodeMachine()
	alone := fat.ComputeTime(1e9, 1)
	packed := fat.ComputeTime(1e9, fat.CoresPerNode)
	if packed/alone < 1.2 {
		t.Fatalf("fat node derate only %vx", packed/alone)
	}
}

func TestPresetNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Machines() {
		if seen[m.Name] {
			t.Fatalf("duplicate machine name %q", m.Name)
		}
		seen[m.Name] = true
	}
}
