package hpcsim

import (
	"repro/internal/dataset"
)

// KripkeApp is a Kripke-like deterministic transport (Sn sweep) proxy. Its
// signature cost is the wavefront sweep: work flows diagonally across the
// process grid, so every sweep pays a pipeline-fill latency proportional
// to px+py+pz — a term that *grows* with scale no matter how small the
// local work gets, giving this app the earliest strong-scaling turnaround
// of the three skeletons. Included as the extension app beyond the paper's
// two.
//
// Parameters:
//
//	zones      — global zones per dimension (mesh is zones³)
//	directions — discrete ordinates (angles)
//	groups     — energy groups
//	iters      — source iterations (sweeps over all octants)
type KripkeApp struct {
	// FlopsPerUnknown is the per-(zone,direction,group) flop cost of one
	// sweep visit.
	FlopsPerUnknown float64
}

// NewKripke returns the skeleton with reference cost constants.
func NewKripke() *KripkeApp {
	return &KripkeApp{FlopsPerUnknown: 36}
}

// Name implements App.
func (a *KripkeApp) Name() string { return "kripke" }

// Space implements App.
func (a *KripkeApp) Space() dataset.Space {
	var zones []float64
	for v := 32; v <= 96; v += 8 {
		zones = append(zones, float64(v))
	}
	return dataset.Space{Params: []dataset.ParamDef{
		{Name: "zones", Values: zones},
		{Name: "directions", Values: []float64{8, 16, 24, 32, 48, 64, 96}},
		{Name: "groups", Values: []float64{8, 16, 32, 48, 64}},
		{Name: "iters", Values: []float64{4, 6, 8, 10, 12, 16}},
	}}
}

// Model implements App.
func (a *KripkeApp) Model(params []float64, p int, m *Machine) (Breakdown, error) {
	if err := checkParams(params, a.Space()); err != nil {
		return Breakdown{}, err
	}
	if err := checkScale(p, m); err != nil {
		return Breakdown{}, err
	}
	zones := int(params[0])
	dirs := params[1]
	groups := params[2]
	iters := params[3]

	d := NewDecomp3D(zones, zones, zones, p)
	unknownsLocal := d.LocalVolume() * dirs * groups

	// One sweep (all 8 octants pipelined, simplified to one pass):
	sweepCompute := m.ComputeTime(unknownsLocal*a.FlopsPerUnknown, p)

	// Pipeline fill: the wavefront crosses px+py+pz-2 stages; each stage
	// hands an angular flux face downstream.
	stages := float64(d.Px + d.Py + d.Pz - 2)
	faceBytes := d.MaxFaceArea() * dirs * groups * 8 / 8 // one face per stage, an octant's share
	var sweepPipeline float64
	if p > 1 {
		sweepPipeline = stages * (m.effLatency(p) + faceBytes/m.effBandwidth(p))
	}
	// Convergence check per iteration: allreduce over groups.
	iterCollective := m.AllreduceTime(groups*8, p)

	setup := sweepCompute + m.BroadcastTime(16384, p)

	return Breakdown{
		Setup:      setup,
		Compute:    iters * sweepCompute,
		Halo:       iters * sweepPipeline,
		Collective: iters * iterCollective,
	}, nil
}
