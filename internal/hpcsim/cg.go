package hpcsim

import (
	"repro/internal/dataset"
)

// CGApp is an HPCG-like preconditioned conjugate-gradient proxy: sparse
// matrix-vector products over a 3D 27-point stencil plus the method's
// signature cost — two global dot products (allreduces) every iteration.
// Per-iteration compute shrinks with p while the latency-bound allreduces
// do not, so CG has the earliest and sharpest communication wall of the
// suite; it stresses the extrapolation level with curves that flatten
// hard right beyond the observed scales.
//
// Parameters:
//
//	n     — global grid points per dimension (matrix order n³)
//	iters — CG iterations
//	nnzr  — average stencil nonzeros per row (sparsity knob)
type CGApp struct {
	// FlopsPerNonzero is the SpMV flop cost per stored nonzero.
	FlopsPerNonzero float64
	// VectorFlopsPerRow covers the AXPYs and dot products per row per
	// iteration.
	VectorFlopsPerRow float64
}

// NewCG returns the skeleton with reference cost constants.
func NewCG() *CGApp {
	return &CGApp{FlopsPerNonzero: 2, VectorFlopsPerRow: 10}
}

// Name implements App.
func (a *CGApp) Name() string { return "cg" }

// Space implements App.
func (a *CGApp) Space() dataset.Space {
	var grid []float64
	for v := 64; v <= 256; v += 16 {
		grid = append(grid, float64(v))
	}
	var iters []float64
	for v := 50; v <= 500; v += 25 {
		iters = append(iters, float64(v))
	}
	return dataset.Space{Params: []dataset.ParamDef{
		{Name: "n", Values: grid},
		{Name: "iters", Values: iters},
		{Name: "nnzr", Values: []float64{7, 15, 27}},
	}}
}

// Model implements App.
func (a *CGApp) Model(params []float64, p int, m *Machine) (Breakdown, error) {
	if err := checkParams(params, a.Space()); err != nil {
		return Breakdown{}, err
	}
	if err := checkScale(p, m); err != nil {
		return Breakdown{}, err
	}
	n := int(params[0])
	iters := params[1]
	nnzr := params[2]

	d := NewDecomp3D(n, n, n, p)
	rowsLocal := d.LocalVolume()

	iterCompute := m.ComputeTime(rowsLocal*(nnzr*a.FlopsPerNonzero+a.VectorFlopsPerRow), p)

	// SpMV halo: one exchange per iteration, face size grows with the
	// stencil radius (wider stencils ship thicker halos).
	var iterHalo float64
	if faces := d.NeighbourFaces(); faces > 0 {
		depth := 1.0
		if nnzr > 7 {
			depth = 2
		}
		faceBytes := d.MaxFaceArea() * depth * 8
		iterHalo = m.HaloExchangeTime(faces, faceBytes, p)
	}
	// two dot products (8 bytes each) per iteration — the latency wall
	iterCollective := 2 * m.AllreduceTime(8, p)

	// setup: matrix assembly ~ 5 SpMVs plus an initial residual reduce
	setup := 5*iterCompute + m.AllreduceTime(8, p)

	return Breakdown{
		Setup:      setup,
		Compute:    iters * iterCompute,
		Halo:       iters * iterHalo,
		Collective: iters * iterCollective,
	}, nil
}

// commWallScale returns (for documentation/tests) the approximate scale
// where collective time overtakes compute for the given parameters.
func (a *CGApp) commWallScale(params []float64, m *Machine) int {
	for p := 2; p <= m.MaxProcs(); p *= 2 {
		b, err := a.Model(params, p, m)
		if err != nil {
			return m.MaxProcs()
		}
		if b.Collective > b.Compute {
			return p
		}
	}
	return m.MaxProcs()
}
