package hpcsim

import (
	"fmt"
	"io"
)

// Profile is a scale sweep of one configuration's cost breakdown — the
// simulator-side ground truth a performance engineer would get from a
// profiler, used by diagnostics tooling and for validating that the
// skeletons produce the published cost signatures of their namesakes.
type Profile struct {
	App    string
	Params []float64
	Rows   []ProfileRow
}

// ProfileRow is the breakdown at one scale.
type ProfileRow struct {
	Scale     int
	Breakdown Breakdown
	// Speedup is relative to the first row's total.
	Speedup float64
	// Efficiency is Speedup divided by the scale ratio to the first row.
	Efficiency float64
}

// ProfileApp sweeps the application's noise-free cost model over scales.
func ProfileApp(app App, params []float64, scales []int, m *Machine) (*Profile, error) {
	if len(scales) == 0 {
		return nil, fmt.Errorf("hpcsim: empty scale list")
	}
	if m == nil {
		m = DefaultMachine()
	}
	p := &Profile{App: app.Name(), Params: append([]float64(nil), params...)}
	var baseTotal float64
	var baseScale int
	for i, s := range scales {
		b, err := app.Model(params, s, m)
		if err != nil {
			return nil, err
		}
		row := ProfileRow{Scale: s, Breakdown: b}
		if i == 0 {
			baseTotal = b.Total()
			baseScale = s
			row.Speedup = 1
			row.Efficiency = 1
		} else {
			row.Speedup = baseTotal / b.Total()
			row.Efficiency = row.Speedup * float64(baseScale) / float64(s)
		}
		p.Rows = append(p.Rows, row)
	}
	return p, nil
}

// TurnaroundScale returns the scale with the minimal total time — where
// strong scaling stops paying — or the largest profiled scale if the
// total is still decreasing.
func (p *Profile) TurnaroundScale() int {
	best := p.Rows[0].Scale
	bestT := p.Rows[0].Breakdown.Total()
	for _, r := range p.Rows[1:] {
		if t := r.Breakdown.Total(); t < bestT {
			bestT = t
			best = r.Scale
		}
	}
	return best
}

// Fprint renders the profile as an aligned table.
func (p *Profile) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s %v\n", p.App, p.Params); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %12s %10s %10s %10s %10s %9s %6s\n",
		"procs", "total", "setup", "compute", "halo", "collective", "speedup", "eff"); err != nil {
		return err
	}
	for _, r := range p.Rows {
		b := r.Breakdown
		if _, err := fmt.Fprintf(w, "%8d %11.4fs %9.4fs %9.4fs %9.4fs %9.4fs %8.1fx %5.0f%%\n",
			r.Scale, b.Total(), b.Setup, b.Compute, b.Halo, b.Collective,
			r.Speedup, 100*r.Efficiency); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "strong-scaling turnaround at p=%d\n", p.TurnaroundScale())
	return err
}
