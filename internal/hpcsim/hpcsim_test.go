package hpcsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFactor3Product(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw)%4096 + 1
		a, b, c := Factor3(p)
		return a*b*c == p && a >= b && b >= c && c >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFactor3Cubic(t *testing.T) {
	cases := map[int][3]int{
		1:    {1, 1, 1},
		2:    {2, 1, 1},
		8:    {2, 2, 2},
		64:   {4, 4, 4},
		12:   {3, 2, 2},
		1024: {16, 8, 8},
	}
	for p, want := range cases {
		a, b, c := Factor3(p)
		if [3]int{a, b, c} != want {
			t.Fatalf("Factor3(%d) = %d,%d,%d want %v", p, a, b, c, want)
		}
	}
}

func TestFactor3Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Factor3(0)
}

func TestDecompLocalDims(t *testing.T) {
	d := NewDecomp3D(128, 128, 128, 8)
	lx, ly, lz := d.LocalDims()
	if lx != 64 || ly != 64 || lz != 64 {
		t.Fatalf("local dims %v %v %v", lx, ly, lz)
	}
	if d.LocalVolume() != 64*64*64 {
		t.Fatalf("volume %v", d.LocalVolume())
	}
	if d.NeighbourFaces() != 6 {
		t.Fatalf("faces %d", d.NeighbourFaces())
	}
	if d.SurfaceArea() != 6*64*64 {
		t.Fatalf("surface %v", d.SurfaceArea())
	}
}

func TestDecompSingleProcessNoComm(t *testing.T) {
	d := NewDecomp3D(100, 100, 100, 1)
	if d.NeighbourFaces() != 0 || d.SurfaceArea() != 0 || d.MaxFaceArea() != 0 {
		t.Fatal("p=1 decomposition should have no communication")
	}
}

func TestDecompAssignsLargestFactorToLargestDim(t *testing.T) {
	d := NewDecomp3D(512, 64, 64, 8)
	if d.Px < d.Py || d.Px < d.Pz {
		t.Fatalf("largest dim did not get largest factor: %d %d %d", d.Px, d.Py, d.Pz)
	}
}

func TestDecompVolumeConservedApproximately(t *testing.T) {
	// busiest-block volume * p >= global volume (ceiling effect)
	d := NewDecomp3D(100, 90, 70, 12)
	global := float64(100 * 90 * 70)
	if d.LocalVolume()*12 < global {
		t.Fatal("local volume too small to cover global grid")
	}
}

func TestMachineValidate(t *testing.T) {
	m := DefaultMachine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *m
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero nodes")
	}
	bad2 := *m
	bad2.LatencyInter = 0
	if bad2.Validate() == nil {
		t.Fatal("accepted zero latency")
	}
}

func TestComputeTimeScalesWithFlops(t *testing.T) {
	m := DefaultMachine()
	t1 := m.ComputeTime(1e9, 1)
	t2 := m.ComputeTime(2e9, 1)
	if math.Abs(t2-2*t1) > 1e-12 {
		t.Fatalf("compute not linear in flops: %v vs %v", t1, t2)
	}
	if m.ComputeTime(0, 1) != 0 {
		t.Fatal("zero flops should cost zero")
	}
}

func TestComputeTimeContentionDerating(t *testing.T) {
	m := DefaultMachine()
	// fully packed node must be slower per-flop than a single active core
	alone := m.ComputeTime(1e9, 1)
	packed := m.ComputeTime(1e9, m.CoresPerNode)
	if packed <= alone {
		t.Fatalf("no memory contention derating: alone=%v packed=%v", alone, packed)
	}
}

func TestSendTimeComponents(t *testing.T) {
	m := DefaultMachine()
	small := m.SendTime(8, 2)
	big := m.SendTime(1e6, 2)
	if big <= small {
		t.Fatal("bigger message not slower")
	}
	if small < m.LatencyIntra {
		t.Fatal("send cheaper than latency")
	}
}

func TestSendTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultMachine().SendTime(-1, 2)
}

func TestCollectivesGrowLogarithmically(t *testing.T) {
	m := DefaultMachine()
	if m.AllreduceTime(8, 1) != 0 || m.BarrierTime(1) != 0 {
		t.Fatal("p=1 collectives should be free")
	}
	t4 := m.AllreduceTime(8, 4)
	t16 := m.AllreduceTime(8, 16)
	t256 := m.AllreduceTime(8, 256)
	if !(t4 < t16 && t16 < t256) {
		t.Fatalf("allreduce not increasing: %v %v %v", t4, t16, t256)
	}
	// Log growth within the multi-node regime: 256 -> 4096 procs is 16x
	// the processes but only 12/8 the rounds (plus a small latency-blend
	// increase), so the cost ratio must stay well below linear.
	t4096 := m.AllreduceTime(8, 4096)
	if t4096 > 3*t256 {
		t.Fatalf("allreduce not logarithmic in the multi-node regime: %v -> %v", t256, t4096)
	}
}

func TestOffNodePlacementRaisesLatency(t *testing.T) {
	m := DefaultMachine()
	intra := m.effLatency(8)                  // fits one node
	inter := m.effLatency(8 * m.CoresPerNode) // spans 8 nodes
	if inter <= intra {
		t.Fatalf("multi-node latency %v not above single-node %v", inter, intra)
	}
}

func TestHaloExchangeZeroCases(t *testing.T) {
	m := DefaultMachine()
	if m.HaloExchangeTime(0, 100, 4) != 0 {
		t.Fatal("0 faces should be free")
	}
	if m.HaloExchangeTime(6, 100, 1) != 0 {
		t.Fatal("p=1 should be free")
	}
}

// ---- application models ----

func appsUnderTest() []App {
	return []App{NewSMG(), NewLulesh(), NewKripke(), NewCG()}
}

func midConfig(a App) []float64 {
	sp := a.Space()
	cfg := make([]float64, len(sp.Params))
	for i, p := range sp.Params {
		if len(p.Values) > 0 {
			cfg[i] = p.Values[len(p.Values)/2]
		} else {
			cfg[i] = (p.Lo + p.Hi) / 2
		}
	}
	return cfg
}

func TestAppsPositiveBreakdown(t *testing.T) {
	m := DefaultMachine()
	for _, a := range appsUnderTest() {
		cfg := midConfig(a)
		for _, p := range []int{1, 2, 16, 64, 256, 1024} {
			b, err := a.Model(cfg, p, m)
			if err != nil {
				t.Fatalf("%s at p=%d: %v", a.Name(), p, err)
			}
			if b.Total() <= 0 || b.Compute <= 0 {
				t.Fatalf("%s at p=%d: non-positive breakdown %+v", a.Name(), p, b)
			}
			if p == 1 && (b.Halo != 0) {
				t.Fatalf("%s at p=1 has halo time %v", a.Name(), b.Halo)
			}
		}
	}
}

func TestAppsComputeShrinksWithScale(t *testing.T) {
	m := DefaultMachine()
	for _, a := range appsUnderTest() {
		cfg := midConfig(a)
		b64, err := a.Model(cfg, 64, m)
		if err != nil {
			t.Fatal(err)
		}
		b1024, err := a.Model(cfg, 1024, m)
		if err != nil {
			t.Fatal(err)
		}
		if b1024.Compute >= b64.Compute {
			t.Fatalf("%s: compute did not shrink 64->1024: %v -> %v", a.Name(), b64.Compute, b1024.Compute)
		}
	}
}

func TestAppsCommFractionGrowsWithScale(t *testing.T) {
	m := DefaultMachine()
	for _, a := range appsUnderTest() {
		cfg := midConfig(a)
		b16, err := a.Model(cfg, 16, m)
		if err != nil {
			t.Fatal(err)
		}
		b1024, err := a.Model(cfg, 1024, m)
		if err != nil {
			t.Fatal(err)
		}
		if b1024.CommFraction() <= b16.CommFraction() {
			t.Fatalf("%s: comm fraction did not grow with scale: %v -> %v",
				a.Name(), b16.CommFraction(), b1024.CommFraction())
		}
	}
}

func TestAppsStrongScalingSpeedsUpInitially(t *testing.T) {
	m := DefaultMachine()
	for _, a := range appsUnderTest() {
		cfg := midConfig(a)
		b2, err := a.Model(cfg, 2, m)
		if err != nil {
			t.Fatal(err)
		}
		b32, err := a.Model(cfg, 32, m)
		if err != nil {
			t.Fatal(err)
		}
		if b32.Total() >= b2.Total() {
			t.Fatalf("%s: no speedup from 2 to 32 procs: %v -> %v", a.Name(), b2.Total(), b32.Total())
		}
	}
}

func TestAppsRejectBadInputs(t *testing.T) {
	m := DefaultMachine()
	for _, a := range appsUnderTest() {
		if _, err := a.Model([]float64{1}, 4, m); err == nil {
			t.Fatalf("%s accepted short param vector", a.Name())
		}
		cfg := midConfig(a)
		if _, err := a.Model(cfg, 0, m); err == nil {
			t.Fatalf("%s accepted scale 0", a.Name())
		}
		if _, err := a.Model(cfg, m.MaxProcs()+1, m); err == nil {
			t.Fatalf("%s accepted over-capacity scale", a.Name())
		}
	}
}

func TestAppsBiggerProblemsRunLonger(t *testing.T) {
	m := DefaultMachine()
	// first parameter of each app is a size knob
	for _, a := range appsUnderTest() {
		sp := a.Space()
		small := midConfig(a)
		big := midConfig(a)
		small[0] = sp.Params[0].Values[0]
		big[0] = sp.Params[0].Values[len(sp.Params[0].Values)-1]
		bs, err := a.Model(small, 16, m)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := a.Model(big, 16, m)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Total() <= bs.Total() {
			t.Fatalf("%s: bigger problem not slower: %v vs %v", a.Name(), bb.Total(), bs.Total())
		}
	}
}

// ---- engine ----

func TestEngineDeterminism(t *testing.T) {
	e := NewEngine(nil, 99)
	a := NewSMG()
	cfg := midConfig(a)
	t1, err := e.Run(a, cfg, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Run(a, cfg, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("same run not reproducible")
	}
	t3, err := e.Run(a, cfg, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1 == t3 {
		t.Fatal("different reps produced identical measurements")
	}
}

func TestEngineSeedChangesMeasurements(t *testing.T) {
	a := NewLulesh()
	cfg := midConfig(a)
	e1 := NewEngine(nil, 1)
	e2 := NewEngine(nil, 2)
	v1, _ := e1.Run(a, cfg, 32, 0)
	v2, _ := e2.Run(a, cfg, 32, 0)
	if v1 == v2 {
		t.Fatal("different base seeds gave identical measurement")
	}
}

func TestEngineNoiseMagnitude(t *testing.T) {
	e := NewEngine(nil, 5)
	e.InterferenceProb = 0 // isolate log-normal noise
	a := NewSMG()
	cfg := midConfig(a)
	truth, err := e.Breakdown(a, cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const reps = 200
	for rep := 0; rep < reps; rep++ {
		v, err := e.Run(a, cfg, 64, rep)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(v-truth.Total()) / truth.Total()
		sum += rel
		if rel > 0.25 {
			t.Fatalf("rep %d deviates %v from truth without interference", rep, rel)
		}
	}
	if mean := sum / reps; mean > 0.06 {
		t.Fatalf("mean relative noise %v too large for sigma=0.03", mean)
	}
}

func TestEngineInterferenceOnlyStretches(t *testing.T) {
	e := NewEngine(nil, 7)
	e.NoiseSigma = 0
	e.InterferenceProb = 1 // always interfere
	a := NewSMG()
	cfg := midConfig(a)
	truth, _ := e.Breakdown(a, cfg, 64)
	v, err := e.Run(a, cfg, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v <= truth.Total() {
		t.Fatal("interference did not stretch the run")
	}
}

func TestGenerateHistoryShape(t *testing.T) {
	e := NewEngine(nil, 11)
	a := NewKripke()
	configs := [][]float64{midConfig(a), midConfig(a)}
	configs[1][0] = a.Space().Params[0].Values[0]
	tbl, err := e.GenerateHistory(a, HistorySpec{
		Configs: configs,
		Scales:  []int{2, 4, 8},
		Reps:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2*3*3 {
		t.Fatalf("history has %d runs, want 18", tbl.Len())
	}
	if tbl.App != "kripke" {
		t.Fatalf("app name %q", tbl.App)
	}
	scales := tbl.Scales()
	if len(scales) != 3 || scales[0] != 2 || scales[2] != 8 {
		t.Fatalf("scales %v", scales)
	}
}

func TestGenerateHistoryEmptySpec(t *testing.T) {
	e := NewEngine(nil, 1)
	if _, err := e.GenerateHistory(NewSMG(), HistorySpec{}); err == nil {
		t.Fatal("accepted empty spec")
	}
}

func TestGenerateHistoryBadScale(t *testing.T) {
	e := NewEngine(nil, 1)
	a := NewSMG()
	_, err := e.GenerateHistory(a, HistorySpec{
		Configs: [][]float64{midConfig(a)},
		Scales:  []int{1 << 20},
	})
	if err == nil {
		t.Fatal("accepted impossible scale")
	}
}

func TestAppsRegistry(t *testing.T) {
	apps := Apps()
	for _, name := range []string{"smg2000", "lulesh", "kripke", "cg"} {
		a, ok := apps[name]
		if !ok {
			t.Fatalf("app %q missing from registry", name)
		}
		if a.Name() != name {
			t.Fatalf("registry key %q maps to app named %q", name, a.Name())
		}
	}
}

func BenchmarkSMGModel(b *testing.B) {
	m := DefaultMachine()
	a := NewSMG()
	cfg := midConfig(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Model(cfg, 256, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateHistory(b *testing.B) {
	e := NewEngine(nil, 1)
	a := NewLulesh()
	configs := [][]float64{midConfig(a)}
	spec := HistorySpec{Configs: configs, Scales: []int{2, 4, 8, 16, 32, 64}, Reps: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.GenerateHistory(a, spec); err != nil {
			b.Fatal(err)
		}
	}
}
