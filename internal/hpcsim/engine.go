package hpcsim

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// Engine executes applications on a machine, turning the deterministic
// analytic breakdowns into noisy "measurements". Noise is multiplicative
// log-normal (runtimes of repeated HPC runs are right-skewed), plus rare
// system-interference events that stretch a run — the contamination that
// makes single measurements untrustworthy on shared clusters.
//
// Every run's randomness is derived from (base seed, app, params, scale,
// rep), so regenerating a history with the same seed reproduces it exactly
// — run order and parallelism do not matter.
type Engine struct {
	Machine *Machine
	// NoiseSigma is the sigma of the log-normal multiplicative noise;
	// 0.03 (≈3% run-to-run variation) matches quiet production clusters.
	NoiseSigma float64
	// InterferenceProb is the per-run probability of an interference event.
	InterferenceProb float64
	// InterferenceScale is the mean relative slowdown of such an event.
	InterferenceScale float64
	// StragglerSigma, when > 0, models OS jitter under bulk-synchronous
	// execution: every step waits for the slowest of p processes, so the
	// expected slowdown grows with scale roughly as
	// exp(sigma·sqrt(2·ln p)) for log-normally jittered processes. This
	// makes noise heteroscedastic in scale — larger runs are noisier —
	// which is how real machines behave. Off (0) by default so the
	// reference experiments stay comparable to the plain noise model.
	StragglerSigma float64
	// Seed is the base seed all per-run streams derive from.
	Seed uint64
}

// NewEngine returns an engine with the reference noise model on machine m
// (nil selects DefaultMachine).
func NewEngine(m *Machine, seed uint64) *Engine {
	if m == nil {
		m = DefaultMachine()
	}
	return &Engine{
		Machine:           m,
		NoiseSigma:        0.03,
		InterferenceProb:  0.02,
		InterferenceScale: 0.15,
		Seed:              seed,
	}
}

// runSeed derives the per-run stream deterministically from run identity.
func (e *Engine) runSeed(app string, params []float64, scale, rep int) uint64 {
	// FNV-1a over the identifying bytes
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(e.Seed)
	for _, c := range []byte(app) {
		h ^= uint64(c)
		h *= prime
	}
	for _, pv := range params {
		mix(math.Float64bits(pv))
	}
	mix(uint64(scale))
	mix(uint64(rep))
	return h
}

// Run simulates one execution and returns the measured wall time.
// rep distinguishes repeated measurements of the same point.
func (e *Engine) Run(app App, params []float64, scale, rep int) (float64, error) {
	b, err := app.Model(params, scale, e.Machine)
	if err != nil {
		return 0, err
	}
	t := b.Total()
	if t <= 0 {
		return 0, fmt.Errorf("hpcsim: model produced non-positive time %v", t)
	}
	r := rng.New(e.runSeed(app.Name(), params, scale, rep))
	if e.NoiseSigma > 0 {
		t *= r.LogNormal(0, e.NoiseSigma)
	}
	if e.StragglerSigma > 0 && scale > 1 {
		// expected max of `scale` log-normal(0, sigma) step times, jittered
		mean := math.Exp(e.StragglerSigma * math.Sqrt(2*math.Log(float64(scale))))
		t *= mean * r.LogNormal(0, e.StragglerSigma/4)
	}
	if e.InterferenceProb > 0 && r.Bernoulli(e.InterferenceProb) {
		t *= 1 + r.Exp(1/e.InterferenceScale)
	}
	return t, nil
}

// Breakdown returns the noise-free analytic breakdown — the simulator's
// ground truth, used by diagnostics and the noise-sensitivity experiment.
func (e *Engine) Breakdown(app App, params []float64, scale int) (Breakdown, error) {
	return app.Model(params, scale, e.Machine)
}

// HistorySpec describes a history-generation job.
type HistorySpec struct {
	Configs [][]float64 // input-parameter vectors
	Scales  []int       // scales to run every configuration at
	Reps    int         // repeated measurements per (config, scale); >= 1
}

// GenerateHistory runs every configuration at every scale Reps times and
// returns the execution-history table.
func (e *Engine) GenerateHistory(app App, spec HistorySpec) (*dataset.Table, error) {
	if spec.Reps < 1 {
		spec.Reps = 1
	}
	if len(spec.Configs) == 0 || len(spec.Scales) == 0 {
		return nil, fmt.Errorf("hpcsim: empty history spec")
	}
	t := dataset.NewTable(app.Name(), app.Space().Names())
	for _, cfg := range spec.Configs {
		for _, s := range spec.Scales {
			for rep := 0; rep < spec.Reps; rep++ {
				rt, err := e.Run(app, cfg, s, rep)
				if err != nil {
					return nil, fmt.Errorf("hpcsim: config %v scale %d: %w", cfg, s, err)
				}
				t.Add(dataset.Run{Params: cfg, Scale: s, Runtime: rt})
			}
		}
	}
	return t, nil
}

// Apps returns the registry of built-in application skeletons.
func Apps() map[string]App {
	return map[string]App{
		"smg2000": NewSMG(),
		"lulesh":  NewLulesh(),
		"kripke":  NewKripke(),
		"cg":      NewCG(),
	}
}
