package hpcsim

import (
	"fmt"
	"math"
)

// Decomp3D is a 3D block decomposition of a global grid over a process grid.
type Decomp3D struct {
	Px, Py, Pz int // process grid
	Nx, Ny, Nz int // global grid points
}

// Factor3 factors p into the most cubic process grid px >= py >= pz with
// px*py*pz == p (the usual MPI_Dims_create behaviour). It panics for p < 1.
func Factor3(p int) (px, py, pz int) {
	if p < 1 {
		panic(fmt.Sprintf("hpcsim: Factor3(%d)", p))
	}
	best := [3]int{p, 1, 1}
	bestScore := math.Inf(1)
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b
			// score: surface-to-volume proxy — prefer balanced factors
			score := float64(a*b + b*c + a*c)
			if score < bestScore {
				bestScore = score
				best = [3]int{c, b, a} // c >= b >= a
			}
		}
	}
	return best[0], best[1], best[2]
}

// NewDecomp3D builds the near-cubic decomposition of an nx×ny×nz grid over
// p processes, assigning the largest process-grid factor to the largest
// grid dimension.
func NewDecomp3D(nx, ny, nz, p int) Decomp3D {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("hpcsim: bad grid %dx%dx%d", nx, ny, nz))
	}
	px, py, pz := Factor3(p)
	// sort grid dims descending with their identities
	type dim struct{ n, id int }
	dims := []dim{{nx, 0}, {ny, 1}, {nz, 2}}
	// insertion sort by n descending
	for i := 1; i < 3; i++ {
		for j := i; j > 0 && dims[j].n > dims[j-1].n; j-- {
			dims[j], dims[j-1] = dims[j-1], dims[j]
		}
	}
	procs := []int{px, py, pz} // descending already
	var asg [3]int
	for i, d := range dims {
		asg[d.id] = procs[i]
	}
	return Decomp3D{Px: asg[0], Py: asg[1], Pz: asg[2], Nx: nx, Ny: ny, Nz: nz}
}

// LocalDims returns the (ceiling) local block dimensions of the busiest
// process — the one that bounds the step time under bulk-synchronous
// execution.
func (d Decomp3D) LocalDims() (lx, ly, lz float64) {
	return math.Ceil(float64(d.Nx) / float64(d.Px)),
		math.Ceil(float64(d.Ny) / float64(d.Py)),
		math.Ceil(float64(d.Nz) / float64(d.Pz))
}

// LocalVolume returns the cell count of the busiest local block.
func (d Decomp3D) LocalVolume() float64 {
	lx, ly, lz := d.LocalDims()
	return lx * ly * lz
}

// SurfaceArea returns the total halo surface (in cells) of the busiest
// local block, counting only faces that have a neighbouring process.
func (d Decomp3D) SurfaceArea() float64 {
	lx, ly, lz := d.LocalDims()
	var s float64
	if d.Px > 1 {
		s += 2 * ly * lz
	}
	if d.Py > 1 {
		s += 2 * lx * lz
	}
	if d.Pz > 1 {
		s += 2 * lx * ly
	}
	return s
}

// NeighbourFaces returns the number of communicating faces (0, 2, 4 or 6).
func (d Decomp3D) NeighbourFaces() int {
	f := 0
	if d.Px > 1 {
		f += 2
	}
	if d.Py > 1 {
		f += 2
	}
	if d.Pz > 1 {
		f += 2
	}
	return f
}

// MaxFaceArea returns the largest single face area (cells) of the local
// block among communicating directions; 0 when there is no communication.
func (d Decomp3D) MaxFaceArea() float64 {
	lx, ly, lz := d.LocalDims()
	var m float64
	if d.Px > 1 && ly*lz > m {
		m = ly * lz
	}
	if d.Py > 1 && lx*lz > m {
		m = lx * lz
	}
	if d.Pz > 1 && lx*ly > m {
		m = lx * ly
	}
	return m
}
