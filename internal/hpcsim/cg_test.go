package hpcsim

import "testing"

func TestCGCommWallExists(t *testing.T) {
	// The smallest CG problem must hit its communication wall (collective
	// > compute) within the machine, and well before the largest problem.
	a := NewCG()
	m := DefaultMachine()
	small := []float64{64, 100, 7}
	big := []float64{256, 100, 27}
	wallSmall := a.commWallScale(small, m)
	wallBig := a.commWallScale(big, m)
	if wallSmall >= m.MaxProcs() {
		t.Fatalf("small CG problem never hits its comm wall (wall at %d)", wallSmall)
	}
	if wallSmall >= wallBig {
		t.Fatalf("comm wall not size-ordered: small %d vs big %d", wallSmall, wallBig)
	}
}

func TestCGCollectivesDominateAtScale(t *testing.T) {
	a := NewCG()
	m := DefaultMachine()
	cfg := []float64{64, 200, 7}
	b, err := a.Model(cfg, 1024, m)
	if err != nil {
		t.Fatal(err)
	}
	if b.Collective <= b.Compute {
		t.Fatalf("CG at p=1024 should be collective-bound: coll=%v comp=%v", b.Collective, b.Compute)
	}
}

func TestCGStencilWidthCosts(t *testing.T) {
	a := NewCG()
	m := DefaultMachine()
	narrow := []float64{128, 100, 7}
	wide := []float64{128, 100, 27}
	bn, err := a.Model(narrow, 64, m)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := a.Model(wide, 64, m)
	if err != nil {
		t.Fatal(err)
	}
	if bw.Compute <= bn.Compute {
		t.Fatal("wider stencil not more expensive to compute")
	}
	if bw.Halo <= bn.Halo {
		t.Fatal("wider stencil not more expensive to exchange")
	}
}

func TestCGIterationLinearity(t *testing.T) {
	a := NewCG()
	m := DefaultMachine()
	c100 := []float64{128, 100, 15}
	c200 := []float64{128, 200, 15}
	b100, err := a.Model(c100, 32, m)
	if err != nil {
		t.Fatal(err)
	}
	b200, err := a.Model(c200, 32, m)
	if err != nil {
		t.Fatal(err)
	}
	// iteration-proportional parts double; setup does not
	ratio := (b200.Compute + b200.Halo + b200.Collective) / (b100.Compute + b100.Halo + b100.Collective)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("iteration cost ratio = %v, want ~2", ratio)
	}
	if b200.Setup != b100.Setup {
		t.Fatal("setup should not depend on iteration count")
	}
}
