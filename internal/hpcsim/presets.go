package hpcsim

// Machine presets beyond DefaultMachine, used by the machine-sensitivity
// experiment (R-Fig8) and available to library users. The presets bracket
// the default along the two axes that shape scaling curves: node fatness
// (memory contention) and network quality (communication cost).

// FatNodeMachine is a cluster of fewer, fatter nodes: 64 nodes × 32 cores
// with proportionally higher memory bandwidth. More of any process count
// fits inside a node, intra-node memory contention is stronger, and NIC
// sharing is heavier — the regime of modern multi-core clusters.
func FatNodeMachine() *Machine {
	return &Machine{
		Name:              "sim-fatnode-64x32",
		Nodes:             64,
		CoresPerNode:      32,
		CoreFlops:         4.0e9,
		LatencyIntra:      0.5e-6,
		LatencyInter:      2.0e-6,
		BandwidthIntra:    10.0e9,
		BandwidthInter:    12.0e9,
		MemoryBW:          150.0e9,
		MemTrafficPerFlop: 0.8,
	}
}

// SlowNetworkMachine is the default cluster with a gigabit-class
// interconnect: high latency, low bandwidth. Communication dominates much
// earlier, pushing every application's strong-scaling turnaround toward
// smaller process counts — the hardest regime for extrapolation because
// the up-turn happens beyond the observed scales for fewer configurations.
func SlowNetworkMachine() *Machine {
	return &Machine{
		Name:              "sim-slownet-256x8",
		Nodes:             256,
		CoresPerNode:      8,
		CoreFlops:         4.0e9,
		LatencyIntra:      0.6e-6,
		LatencyInter:      25.0e-6,
		BandwidthIntra:    6.0e9,
		BandwidthInter:    0.8e9,
		MemoryBW:          60.0e9,
		MemTrafficPerFlop: 0.5,
	}
}

// Machines returns the named machine presets.
func Machines() map[string]*Machine {
	return map[string]*Machine{
		"default": DefaultMachine(),
		"fatnode": FatNodeMachine(),
		"slownet": SlowNetworkMachine(),
	}
}
