package hpcsim

import (
	"fmt"

	"repro/internal/dataset"
)

// Breakdown decomposes one simulated execution's time by cost category.
type Breakdown struct {
	Setup      float64 // one-time setup / initialization
	Compute    float64 // local floating-point work
	Halo       float64 // nearest-neighbour communication
	Collective float64 // allreduce / broadcast / barrier
}

// Total returns the end-to-end wall time of the breakdown.
func (b Breakdown) Total() float64 {
	return b.Setup + b.Compute + b.Halo + b.Collective
}

// CommFraction returns the fraction of total time spent communicating;
// 0 for an empty breakdown.
func (b Breakdown) CommFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.Halo + b.Collective) / t
}

// App is a simulated HPC application: a parameter space plus an analytic
// performance model that prices one execution at a given scale on a
// machine. Implementations must be deterministic; stochastic effects are
// the engine's job.
type App interface {
	// Name identifies the application in datasets and reports.
	Name() string
	// Space is the input-parameter space users sample configurations from.
	Space() dataset.Space
	// Model prices an execution. It returns an error for parameter vectors
	// outside the space or scales the machine cannot host.
	Model(params []float64, p int, m *Machine) (Breakdown, error)
}

// checkScale validates the process count against the machine.
func checkScale(p int, m *Machine) error {
	if p < 1 {
		return fmt.Errorf("hpcsim: scale %d < 1", p)
	}
	if p > m.MaxProcs() {
		return fmt.Errorf("hpcsim: scale %d exceeds machine capacity %d", p, m.MaxProcs())
	}
	return nil
}

// checkParams validates the vector width against the space.
func checkParams(params []float64, sp dataset.Space) error {
	if len(params) != len(sp.Params) {
		return fmt.Errorf("hpcsim: %d params, app expects %d", len(params), len(sp.Params))
	}
	return nil
}
