package hpcsim

import (
	"math"

	"repro/internal/dataset"
)

// SMGApp is an SMG2000-like semicoarsening multigrid solver: a setup phase
// builds the grid hierarchy, then V-cycles iterate to convergence. The
// grid semicoarsens in z only, so coarse levels keep their full x-y extent
// — which is exactly what makes its communication stop shrinking with the
// grid and eventually dominate at scale (the benchmark's famously poor
// strong-scaling tail).
//
// Parameters:
//
//	nx, ny, nz — global grid points per dimension
//	iters      — number of V-cycles (driven by the solve tolerance)
type SMGApp struct {
	// FlopsPerCell is the relaxation+residual flop cost per grid cell per
	// V-cycle level visit. 52 matches the 19-point stencil's two sweeps.
	FlopsPerCell float64
	// SetupFactor scales the one-time setup cost relative to one V-cycle
	// of compute; SMG2000 setup builds coarse operators and is expensive.
	SetupFactor float64
}

// NewSMG returns the skeleton with reference cost constants.
func NewSMG() *SMGApp {
	return &SMGApp{FlopsPerCell: 52, SetupFactor: 6}
}

// Name implements App.
func (a *SMGApp) Name() string { return "smg2000" }

// Space implements App. Grid dimensions are discrete multiples of 16 so
// grids decompose cleanly; iteration count spans loose to tight tolerances.
func (a *SMGApp) Space() dataset.Space {
	gridVals := func(lo, hi, step int) []float64 {
		var vs []float64
		for v := lo; v <= hi; v += step {
			vs = append(vs, float64(v))
		}
		return vs
	}
	return dataset.Space{Params: []dataset.ParamDef{
		{Name: "nx", Values: gridVals(64, 320, 16)},
		{Name: "ny", Values: gridVals(64, 320, 16)},
		{Name: "nz", Values: gridVals(64, 320, 16)},
		{Name: "iters", Values: gridVals(6, 30, 2)},
	}}
}

// Model implements App.
func (a *SMGApp) Model(params []float64, p int, m *Machine) (Breakdown, error) {
	if err := checkParams(params, a.Space()); err != nil {
		return Breakdown{}, err
	}
	if err := checkScale(p, m); err != nil {
		return Breakdown{}, err
	}
	nx := int(params[0])
	ny := int(params[1])
	nz := int(params[2])
	iters := params[3]

	const bytesPerCell = 8.0
	levels := int(math.Floor(math.Log2(float64(nz)))) - 1 // coarsen z down to ~2 planes
	if levels < 1 {
		levels = 1
	}

	var cycleCompute, cycleHalo float64
	for l := 0; l < levels; l++ {
		lnz := nz >> l
		if lnz < 2 {
			lnz = 2
		}
		d := NewDecomp3D(nx, ny, lnz, p)
		cycleCompute += m.ComputeTime(d.LocalVolume()*a.FlopsPerCell, p)
		// Halo: semicoarsening keeps x-y faces full size at every level,
		// and each level visit exchanges four times (pre-smooth,
		// post-smooth, residual, restrict/interpolate).
		const phasesPerLevel = 4
		faces := d.NeighbourFaces()
		if faces > 0 {
			faceBytes := d.MaxFaceArea() * bytesPerCell
			cycleHalo += phasesPerLevel * m.HaloExchangeTime(faces, faceBytes, p)
		}
	}
	// convergence check per cycle
	cycleCollective := m.AllreduceTime(8, p)

	// Setup: coarse-operator assembly — compute like SetupFactor cycles,
	// plus one collective per level (communicator/operator setup).
	setup := a.SetupFactor*cycleCompute + float64(levels)*(m.AllreduceTime(8, p)+m.BarrierTime(p))

	return Breakdown{
		Setup:      setup,
		Compute:    iters * cycleCompute,
		Halo:       iters * cycleHalo,
		Collective: iters * cycleCollective,
	}, nil
}
