package hpcsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileAppBasics(t *testing.T) {
	app := NewSMG()
	cfg := midConfig(app)
	p, err := ProfileApp(app, cfg, []int{2, 8, 32, 128, 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 5 {
		t.Fatalf("%d rows", len(p.Rows))
	}
	if p.Rows[0].Speedup != 1 || p.Rows[0].Efficiency != 1 {
		t.Fatalf("base row %+v", p.Rows[0])
	}
	// speedup must exceed 1 somewhere (the app scales initially)
	if p.Rows[2].Speedup <= 1 {
		t.Fatalf("no speedup by p=32: %+v", p.Rows[2])
	}
	// efficiency never exceeds 1 by more than rounding (no superlinearity
	// in the analytic models)
	for _, r := range p.Rows {
		if r.Efficiency > 1.01 {
			t.Fatalf("superlinear efficiency %v at p=%d", r.Efficiency, r.Scale)
		}
	}
}

func TestProfileTurnaround(t *testing.T) {
	// A tiny CG problem must turn around within the sweep; a huge one
	// should still be improving at the end.
	app := NewCG()
	small := []float64{64, 100, 7}
	big := []float64{256, 500, 27}
	sweep := []int{2, 8, 32, 128, 512, 2048}
	ps, err := ProfileApp(app, small, sweep, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ProfileApp(app, big, sweep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.TurnaroundScale() >= pb.TurnaroundScale() {
		t.Fatalf("turnarounds not size-ordered: small %d, big %d",
			ps.TurnaroundScale(), pb.TurnaroundScale())
	}
}

func TestProfileErrors(t *testing.T) {
	app := NewSMG()
	if _, err := ProfileApp(app, midConfig(app), nil, nil); err == nil {
		t.Fatal("accepted empty sweep")
	}
	if _, err := ProfileApp(app, []float64{1}, []int{2}, nil); err == nil {
		t.Fatal("accepted bad params")
	}
}

func TestProfileRender(t *testing.T) {
	app := NewLulesh()
	p, err := ProfileApp(app, midConfig(app), []int{2, 16, 128}, DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lulesh", "compute", "collective", "turnaround"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
