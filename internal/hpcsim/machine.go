// Package hpcsim is the execution substrate substituting for the paper's
// real HPC platform. It models a commodity cluster (nodes × cores,
// LogGP-style interconnect), decomposes applications over a 3D process
// grid, and prices computation and communication analytically; an
// execution engine adds realistic multiplicative noise and interference
// so generated "execution history" behaves like measurements.
//
// The simulator's purpose is not cycle accuracy — it is to produce runtime
// surfaces with the properties that make scale extrapolation hard and that
// the two-level model exploits: nonlinear parameter dependence,
// scale-dependent compute/communication crossover, heteroscedastic noise,
// and a small number of scaling-curve families across configurations.
package hpcsim

import (
	"fmt"
	"math"
)

// Machine models a cluster: homogeneous nodes on a fat-tree-like network
// described by LogGP-style parameters.
type Machine struct {
	Name string

	Nodes        int // node count
	CoresPerNode int // cores per node

	// Compute: effective per-core floating-point rate in FLOP/s once
	// memory-bandwidth derating is applied (applications here are
	// bandwidth-bound stencils, so this is deliberately far below peak).
	CoreFlops float64

	// Network (LogGP-like):
	LatencyIntra   float64 // one-way latency within a node (s)
	LatencyInter   float64 // one-way latency between nodes (s)
	BandwidthIntra float64 // point-to-point bandwidth within a node (B/s)
	BandwidthInter float64 // point-to-point bandwidth between nodes (B/s)

	// MemoryBW is the per-node memory bandwidth (B/s), used to derate
	// compute when many cores of one node are active simultaneously.
	MemoryBW float64

	// MemTrafficPerFlop is the bytes of memory traffic charged per flop;
	// stencil codes move a few bytes per flop, which is what makes packed
	// nodes memory-bound.
	MemTrafficPerFlop float64
}

// DefaultMachine returns the reference cluster used across experiments:
// a 256-node, 8-core/node commodity cluster — the node size typical of
// the mid-2010s university clusters this class of study ran on, where
// most sampled scales span several nodes and the interconnect, not
// intra-node memory contention, shapes the scaling tail.
func DefaultMachine() *Machine {
	return &Machine{
		Name:              "sim-cluster-256x8",
		Nodes:             256,
		CoresPerNode:      8,
		CoreFlops:         4.0e9,
		LatencyIntra:      0.5e-6,
		LatencyInter:      5.0e-6,
		BandwidthIntra:    8.0e9,
		BandwidthInter:    3.0e9,
		MemoryBW:          60.0e9,
		MemTrafficPerFlop: 0.5,
	}
}

// Validate reports configuration errors.
func (m *Machine) Validate() error {
	switch {
	case m.Nodes <= 0 || m.CoresPerNode <= 0:
		return fmt.Errorf("hpcsim: machine %q has non-positive size", m.Name)
	case m.CoreFlops <= 0 || m.MemoryBW <= 0:
		return fmt.Errorf("hpcsim: machine %q has non-positive compute rates", m.Name)
	case m.LatencyIntra <= 0 || m.LatencyInter <= 0:
		return fmt.Errorf("hpcsim: machine %q has non-positive latencies", m.Name)
	case m.BandwidthIntra <= 0 || m.BandwidthInter <= 0:
		return fmt.Errorf("hpcsim: machine %q has non-positive bandwidths", m.Name)
	}
	return nil
}

// MaxProcs returns the total core count.
func (m *Machine) MaxProcs() int { return m.Nodes * m.CoresPerNode }

// placement returns the fraction of a process's neighbours expected to be
// off-node when p processes are packed cores-first, plus the node count in
// use. With p <= CoresPerNode everything is intra-node.
func (m *Machine) placement(p int) (offNodeFrac float64, nodesUsed int) {
	if p <= m.CoresPerNode {
		return 0, 1
	}
	nodesUsed = (p + m.CoresPerNode - 1) / m.CoresPerNode
	// For a 3D-decomposed stencil packed cores-first, roughly the fraction
	// of neighbour surface crossing node boundaries grows with the number
	// of nodes; a standard surface-to-volume argument gives
	// 1 - (1/nodesUsed)^(1/3) scaled into (0, 1).
	offNodeFrac = 1 - math.Pow(1/float64(nodesUsed), 1.0/3.0)
	if offNodeFrac < 0 {
		offNodeFrac = 0
	}
	if offNodeFrac > 1 {
		offNodeFrac = 1
	}
	return offNodeFrac, nodesUsed
}

// effLatency and effBandwidth blend intra/inter-node network parameters by
// the expected off-node fraction of traffic at scale p.
func (m *Machine) effLatency(p int) float64 {
	f, _ := m.placement(p)
	return (1-f)*m.LatencyIntra + f*m.LatencyInter
}

func (m *Machine) effBandwidth(p int) float64 {
	f, _ := m.placement(p)
	// harmonic blend: serialized transfers through the slower path dominate
	if f == 0 {
		return m.BandwidthIntra
	}
	// NIC sharing: a node's injection bandwidth is shared by every process
	// on the node that is communicating off-node in the same phase. Packed
	// allocations therefore see a small per-process share — the effect that
	// makes halo exchanges expensive at scale even on fast fabrics.
	sharing := p
	if sharing > m.CoresPerNode {
		sharing = m.CoresPerNode
	}
	perProcInter := m.BandwidthInter / float64(sharing)
	return 1 / ((1-f)/m.BandwidthIntra + f/perProcInter)
}

// ComputeTime prices flops executed by one process at scale p, derating
// for memory-bandwidth contention when a node is fully packed.
func (m *Machine) ComputeTime(flops float64, p int) float64 {
	if flops <= 0 {
		return 0
	}
	active := p
	if active > m.CoresPerNode {
		active = m.CoresPerNode
	}
	// Additive roofline: issuing the flops and streaming their memory
	// traffic overlap imperfectly, so we charge both — the core-rate term
	// plus the process's share of node memory bandwidth. This derates
	// packed nodes smoothly (no artificial hard plateau) while keeping
	// the bandwidth wall: a fully packed node runs memory-bound.
	traffic := m.MemTrafficPerFlop
	if traffic <= 0 {
		traffic = 3
	}
	perCoreBW := m.MemoryBW / float64(active)
	return flops/m.CoreFlops + flops*traffic/perCoreBW
}

// SendTime prices a point-to-point message of size bytes at scale p.
func (m *Machine) SendTime(bytes float64, p int) float64 {
	if bytes < 0 {
		panic("hpcsim: negative message size")
	}
	return m.effLatency(p) + bytes/m.effBandwidth(p)
}

// AllreduceTime prices an allreduce of size bytes over p processes using a
// recursive-doubling model: ceil(log2 p) rounds of latency + transfer.
func (m *Machine) AllreduceTime(bytes float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	return rounds * (m.effLatency(p) + bytes/m.effBandwidth(p))
}

// BroadcastTime prices a binomial-tree broadcast.
func (m *Machine) BroadcastTime(bytes float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	return rounds * (m.effLatency(p) + bytes/m.effBandwidth(p))
}

// BarrierTime prices a dissemination barrier.
func (m *Machine) BarrierTime(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p))) * m.effLatency(p)
}

// HaloExchangeTime prices a nearest-neighbour halo exchange where each
// process sends faces messages of faceBytes each. Sends to the six (or
// however many) neighbours overlap imperfectly; we charge two serialized
// phases (send + receive) as in a typical non-overlapped exchange.
func (m *Machine) HaloExchangeTime(faces int, faceBytes float64, p int) float64 {
	if faces <= 0 || p <= 1 {
		return 0
	}
	per := m.effLatency(p) + faceBytes/m.effBandwidth(p)
	return 2 * float64(faces) * per
}
