package hpcsim

import "testing"

func TestStragglerGrowsWithScale(t *testing.T) {
	e := NewEngine(nil, 3)
	e.NoiseSigma = 0
	e.InterferenceProb = 0
	e.StragglerSigma = 0.05
	a := NewSMG()
	cfg := midConfig(a)

	slowdown := func(p int) float64 {
		truth, err := e.Breakdown(a, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const reps = 50
		for rep := 0; rep < reps; rep++ {
			v, err := e.Run(a, cfg, p, rep)
			if err != nil {
				t.Fatal(err)
			}
			sum += v / truth.Total()
		}
		return sum / reps
	}

	s8 := slowdown(8)
	s1024 := slowdown(1024)
	if s8 < 1 || s1024 < 1 {
		t.Fatalf("straggler should only slow runs down: %v, %v", s8, s1024)
	}
	if s1024 <= s8 {
		t.Fatalf("straggler slowdown not growing with scale: p=8 %.3f vs p=1024 %.3f", s8, s1024)
	}
}

func TestStragglerOffByDefault(t *testing.T) {
	e := NewEngine(nil, 4)
	if e.StragglerSigma != 0 {
		t.Fatalf("StragglerSigma default = %v, want 0", e.StragglerSigma)
	}
}

func TestStragglerNoEffectAtScaleOne(t *testing.T) {
	e := NewEngine(nil, 5)
	e.NoiseSigma = 0
	e.InterferenceProb = 0
	e.StragglerSigma = 0.2
	a := NewCG()
	cfg := midConfig(a)
	truth, err := e.Breakdown(a, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Run(a, cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != truth.Total() {
		t.Fatalf("p=1 run %v != analytic %v with straggler on", v, truth.Total())
	}
}
