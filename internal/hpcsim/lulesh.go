package hpcsim

import (
	"math"

	"repro/internal/dataset"
)

// LuleshApp is a LULESH-like explicit shock-hydrodynamics proxy: a
// Lagrangian mesh of s³ global elements advanced for a fixed number of
// time steps. Every step does heavy per-element compute, exchanges nodal
// and element fields with face neighbours, and ends in a global 8-byte
// allreduce for the stable time increment — the collective whose log(p)
// latency term dominates small problems at large scale.
//
// Parameters:
//
//	s       — global edge length in elements (mesh is s³)
//	steps   — number of simulated time steps
//	regions — material-region count; more regions mean more divergent
//	          per-element work (the real code's region loop overhead)
type LuleshApp struct {
	// FlopsPerElem is the per-element per-step flop cost at regions = 1.
	FlopsPerElem float64
	// RegionPenalty adds cost per doubling of the region count.
	RegionPenalty float64
	// ExchangesPerStep is the number of halo exchanges per step (LULESH
	// does three: force, position/velocity, and gradient fields).
	ExchangesPerStep int
}

// NewLulesh returns the skeleton with reference cost constants.
func NewLulesh() *LuleshApp {
	return &LuleshApp{FlopsPerElem: 350, RegionPenalty: 0.06, ExchangesPerStep: 3}
}

// Name implements App.
func (a *LuleshApp) Name() string { return "lulesh" }

// Space implements App.
func (a *LuleshApp) Space() dataset.Space {
	var edges []float64
	for v := 48; v <= 192; v += 8 {
		edges = append(edges, float64(v))
	}
	var steps []float64
	for v := 100; v <= 1000; v += 50 {
		steps = append(steps, float64(v))
	}
	return dataset.Space{Params: []dataset.ParamDef{
		{Name: "s", Values: edges},
		{Name: "steps", Values: steps},
		{Name: "regions", Values: []float64{1, 2, 4, 8, 16, 32, 64}},
	}}
}

// Model implements App.
func (a *LuleshApp) Model(params []float64, p int, m *Machine) (Breakdown, error) {
	if err := checkParams(params, a.Space()); err != nil {
		return Breakdown{}, err
	}
	if err := checkScale(p, m); err != nil {
		return Breakdown{}, err
	}
	s := int(params[0])
	steps := params[1]
	regions := params[2]

	const bytesPerNodeField = 8.0 * 3 // 3 components per nodal vector field
	d := NewDecomp3D(s, s, s, p)

	flopsPerElem := a.FlopsPerElem * (1 + a.RegionPenalty*math.Log2(regions+1))
	stepCompute := m.ComputeTime(d.LocalVolume()*flopsPerElem, p)

	var stepHalo float64
	if faces := d.NeighbourFaces(); faces > 0 {
		faceBytes := d.MaxFaceArea() * bytesPerNodeField
		stepHalo = float64(a.ExchangesPerStep) * m.HaloExchangeTime(faces, faceBytes, p)
	}
	// dt reduction (8 bytes) + periodic energy check every 10 steps
	stepCollective := m.AllreduceTime(8, p) + 0.1*m.AllreduceTime(8, p)

	// Setup: mesh construction + region assignment, about 10 steps of
	// compute plus a broadcast of the run configuration.
	setup := 10*stepCompute + m.BroadcastTime(4096, p)

	return Breakdown{
		Setup:      setup,
		Compute:    steps * stepCompute,
		Halo:       steps * stepHalo,
		Collective: steps * stepCollective,
	}, nil
}
