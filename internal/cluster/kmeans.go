// Package cluster implements k-means clustering with k-means++ seeding and
// multi-restart selection, plus the scaling-curve normalization the
// two-level model uses before clustering configurations by the *shape* of
// their small-scale performance curves (rather than their magnitude).
package cluster

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Result is a fitted k-means clustering.
type Result struct {
	Centroids *mat.Dense // k × d
	Labels    []int      // len n, cluster index per input row
	Inertia   float64    // sum of squared distances to assigned centroids
	Iters     int        // iterations of the best restart
}

// K returns the number of clusters.
func (r *Result) K() int { return r.Centroids.Rows }

// Assign returns the index of the nearest centroid to v.
func (r *Result) Assign(v []float64) int {
	if len(v) != r.Centroids.Cols {
		panic(fmt.Sprintf("cluster: assign with %d dims, centroids have %d", len(v), r.Centroids.Cols))
	}
	best, bestD := 0, math.Inf(1)
	for c := 0; c < r.Centroids.Rows; c++ {
		d := sqDist(v, r.Centroids.Row(c))
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Sizes returns the number of points per cluster.
func (r *Result) Sizes() []int {
	out := make([]int, r.K())
	for _, l := range r.Labels {
		out[l]++
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Options configures KMeans. Zero values pick the defaults noted per field.
type Options struct {
	MaxIter  int // Lloyd iterations per restart (default 100)
	Restarts int // independent k-means++ restarts, best inertia wins (default 8)
	Tol      float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 8
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// KMeans clusters the rows of x into k clusters. It panics if k < 1 or
// k > n. k == 1 is permitted (it degenerates to the global mean) because
// the two-level model's "no clustering" ablation uses it.
func KMeans(r *rng.Source, x *mat.Dense, k int, opt Options) *Result {
	n := x.Rows
	if k < 1 || k > n {
		panic(fmt.Sprintf("cluster: k=%d with n=%d points", k, n))
	}
	opt = opt.withDefaults()
	var best *Result
	for restart := 0; restart < opt.Restarts; restart++ {
		res := lloyd(r, x, k, opt)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best
}

// lloyd runs one k-means++ seeding followed by Lloyd iterations.
func lloyd(r *rng.Source, x *mat.Dense, k int, opt Options) *Result {
	n, d := x.Rows, x.Cols
	cent := seedPlusPlus(r, x, k)
	labels := make([]int, n)
	counts := make([]int, k)
	prevInertia := math.Inf(1)
	iters := 0
	for it := 0; it < opt.MaxIter; it++ {
		iters = it + 1
		// assignment step
		var inertia float64
		for i := 0; i < n; i++ {
			row := x.Row(i)
			bi, bd := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				dist := sqDist(row, cent.Row(c))
				if dist < bd {
					bi, bd = c, dist
				}
			}
			labels[i] = bi
			inertia += bd
		}
		// update step
		newCent := mat.NewDense(k, d)
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			mat.Axpy(1, x.Row(i), newCent.Row(c))
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// re-seed an empty cluster at the point farthest from its centroid
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					dist := sqDist(x.Row(i), cent.Row(labels[i]))
					if dist > farD {
						far, farD = i, dist
					}
				}
				copy(newCent.Row(c), x.Row(far))
				continue
			}
			mat.Scale(1/float64(counts[c]), newCent.Row(c))
		}
		cent = newCent
		if prevInertia-inertia < opt.Tol {
			prevInertia = inertia
			break
		}
		prevInertia = inertia
	}
	// final assignment with the final centroids
	var inertia float64
	for i := 0; i < n; i++ {
		row := x.Row(i)
		bi, bd := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			dist := sqDist(row, cent.Row(c))
			if dist < bd {
				bi, bd = c, dist
			}
		}
		labels[i] = bi
		inertia += bd
	}
	return &Result{Centroids: cent, Labels: labels, Inertia: inertia, Iters: iters}
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(r *rng.Source, x *mat.Dense, k int) *mat.Dense {
	n, d := x.Rows, x.Cols
	cent := mat.NewDense(k, d)
	first := r.Intn(n)
	copy(cent.Row(0), x.Row(first))
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		dists[i] = sqDist(x.Row(i), cent.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dists {
			total += v
		}
		var pick int
		if total == 0 {
			pick = r.Intn(n) // all points identical to chosen centroids
		} else {
			target := r.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, v := range dists {
				acc += v
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(cent.Row(c), x.Row(pick))
		for i := 0; i < n; i++ {
			if nd := sqDist(x.Row(i), cent.Row(c)); nd < dists[i] {
				dists[i] = nd
			}
		}
	}
	return cent
}

// Silhouette returns the mean silhouette coefficient of a clustering,
// in [-1, 1]; higher is better-separated. Clusters of size 1 contribute 0.
// It is O(n²) and intended for model selection on modest n.
func Silhouette(x *mat.Dense, labels []int, k int) float64 {
	n := x.Rows
	if n != len(labels) {
		panic("cluster: Silhouette label length mismatch")
	}
	if k < 2 {
		return 0
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	var total float64
	counted := 0
	dsum := make([]float64, k)
	for i := 0; i < n; i++ {
		li := labels[i]
		if sizes[li] <= 1 {
			counted++
			continue
		}
		for c := range dsum {
			dsum[c] = 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dsum[labels[j]] += math.Sqrt(sqDist(x.Row(i), x.Row(j)))
		}
		a := dsum[li] / float64(sizes[li]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == li || sizes[c] == 0 {
				continue
			}
			if m := dsum[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			counted++
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(n)
}

// NormalizeCurves maps each row (a per-configuration scaling curve) to a
// shape vector: the row is divided by its first element, then log2 is
// applied. Two configurations with proportional runtimes — the same
// scaling behaviour at different magnitudes — map to the same shape.
// Rows must be strictly positive.
func NormalizeCurves(curves *mat.Dense) *mat.Dense {
	out := mat.NewDense(curves.Rows, curves.Cols)
	for i := 0; i < curves.Rows; i++ {
		src := curves.Row(i)
		if src[0] <= 0 {
			panic(fmt.Sprintf("cluster: non-positive runtime %v in curve %d", src[0], i))
		}
		dst := out.Row(i)
		for j, v := range src {
			if v <= 0 {
				panic(fmt.Sprintf("cluster: non-positive runtime %v in curve %d", v, i))
			}
			dst[j] = math.Log2(v / src[0])
		}
	}
	return out
}

// NormalizeCurve applies the NormalizeCurves transform to one curve.
func NormalizeCurve(curve []float64) []float64 {
	return NormalizeCurveInto(curve, make([]float64, len(curve)))
}

// NormalizeCurveInto applies the NormalizeCurves transform to one curve,
// writing the shape into dst (same length) and returning it. dst may
// alias curve. The call performs no allocations.
func NormalizeCurveInto(curve, dst []float64) []float64 {
	if len(dst) != len(curve) {
		panic(fmt.Sprintf("cluster: normalize %d-point curve into %d-point dst", len(curve), len(dst)))
	}
	base := curve[0]
	if base <= 0 {
		panic(fmt.Sprintf("cluster: non-positive runtime %v in curve 0", base))
	}
	for j, v := range curve {
		if v <= 0 {
			panic(fmt.Sprintf("cluster: non-positive runtime %v in curve 0", v))
		}
		dst[j] = math.Log2(v / base)
	}
	return dst
}
