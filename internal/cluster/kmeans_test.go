package cluster

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// blobs generates k well-separated Gaussian clusters.
func blobs(r *rng.Source, perCluster int, centers [][]float64, sigma float64) (*mat.Dense, []int) {
	k := len(centers)
	d := len(centers[0])
	x := mat.NewDense(perCluster*k, d)
	truth := make([]int, perCluster*k)
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			row := x.Row(c*perCluster + i)
			for j := 0; j < d; j++ {
				row[j] = centers[c][j] + sigma*r.Norm()
			}
			truth[c*perCluster+i] = c
		}
	}
	return x, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	r := rng.New(1)
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	x, truth := blobs(r, 50, centers, 0.5)
	res := KMeans(r, x, 3, Options{})
	// clusters must be pure: build the label mapping by majority
	mapping := map[int]int{}
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		for i, l := range res.Labels {
			if truth[i] == c {
				counts[l]++
			}
		}
		best, bestN := -1, -1
		for l, n := range counts {
			if n > bestN {
				best, bestN = l, n
			}
		}
		mapping[c] = best
	}
	errors := 0
	for i, l := range res.Labels {
		if mapping[truth[i]] != l {
			errors++
		}
	}
	if errors > 2 {
		t.Fatalf("%d/150 misassigned points", errors)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	r := rng.New(2)
	centers := [][]float64{{0, 0}, {8, 8}, {0, 8}, {8, 0}}
	x, _ := blobs(r, 30, centers, 1.0)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res := KMeans(rng.New(3), x, k, Options{})
		if res.Inertia > prev+1e-9 {
			t.Fatalf("inertia rose from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestKMeansK1IsGlobalMean(t *testing.T) {
	r := rng.New(3)
	x := mat.FromRows([][]float64{{1, 1}, {3, 3}, {5, 5}})
	res := KMeans(r, x, 1, Options{})
	c := res.Centroids.Row(0)
	if math.Abs(c[0]-3) > 1e-12 || math.Abs(c[1]-3) > 1e-12 {
		t.Fatalf("k=1 centroid = %v", c)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("k=1 label != 0")
		}
	}
}

func TestKMeansPanicsOnBadK(t *testing.T) {
	x := mat.NewDense(3, 2)
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for k=%d", k)
				}
			}()
			KMeans(rng.New(1), x, k, Options{})
		}()
	}
}

func TestKMeansAllLabelsValid(t *testing.T) {
	r := rng.New(4)
	centers := [][]float64{{0}, {5}}
	x, _ := blobs(r, 20, centers, 0.3)
	res := KMeans(r, x, 2, Options{})
	if len(res.Labels) != x.Rows {
		t.Fatal("label count mismatch")
	}
	for _, l := range res.Labels {
		if l < 0 || l >= 2 {
			t.Fatalf("label %d out of range", l)
		}
	}
	sizes := res.Sizes()
	if sizes[0]+sizes[1] != x.Rows {
		t.Fatal("Sizes do not sum to n")
	}
}

func TestAssignMatchesLabels(t *testing.T) {
	r := rng.New(5)
	centers := [][]float64{{0, 0}, {6, 6}}
	x, _ := blobs(r, 25, centers, 0.4)
	res := KMeans(r, x, 2, Options{})
	for i := 0; i < x.Rows; i++ {
		if res.Assign(x.Row(i)) != res.Labels[i] {
			t.Fatalf("Assign disagrees with Labels at row %d", i)
		}
	}
}

func TestAssignDimPanics(t *testing.T) {
	res := &Result{Centroids: mat.NewDense(1, 2)}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	res.Assign([]float64{1})
}

func TestKMeansHandlesDuplicatePoints(t *testing.T) {
	// more clusters than distinct points: must not loop or crash
	x := mat.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}})
	res := KMeans(rng.New(6), x, 3, Options{})
	if res.Inertia < 0 {
		t.Fatal("negative inertia")
	}
}

func TestSilhouetteSeparatedVsOverlapping(t *testing.T) {
	r := rng.New(7)
	farX, _ := blobs(r, 30, [][]float64{{0, 0}, {20, 20}}, 0.5)
	farRes := KMeans(r, farX, 2, Options{})
	farSil := Silhouette(farX, farRes.Labels, 2)

	nearX, _ := blobs(r, 30, [][]float64{{0, 0}, {1, 1}}, 1.0)
	nearRes := KMeans(r, nearX, 2, Options{})
	nearSil := Silhouette(nearX, nearRes.Labels, 2)

	if farSil < 0.8 {
		t.Fatalf("separated blobs silhouette = %v", farSil)
	}
	if nearSil >= farSil {
		t.Fatalf("overlapping (%v) >= separated (%v)", nearSil, farSil)
	}
}

func TestSilhouetteK1Zero(t *testing.T) {
	x := mat.NewDense(5, 1)
	if Silhouette(x, []int{0, 0, 0, 0, 0}, 1) != 0 {
		t.Fatal("k=1 silhouette should be 0")
	}
}

func TestNormalizeCurvesShapeInvariance(t *testing.T) {
	// proportional curves must normalize identically
	curves := mat.FromRows([][]float64{
		{100, 60, 40, 30},
		{10, 6, 4, 3}, // same shape, 10x smaller
	})
	n := NormalizeCurves(curves)
	for j := 0; j < n.Cols; j++ {
		if math.Abs(n.At(0, j)-n.At(1, j)) > 1e-12 {
			t.Fatalf("proportional curves normalize differently at %d", j)
		}
	}
	if n.At(0, 0) != 0 {
		t.Fatal("first element should normalize to 0")
	}
}

func TestNormalizeCurvesDistinguishesShapes(t *testing.T) {
	curves := mat.FromRows([][]float64{
		{100, 50, 25, 12.5}, // perfect scaling
		{100, 90, 85, 83},   // poor scaling
	})
	n := NormalizeCurves(curves)
	var dist float64
	for j := 0; j < n.Cols; j++ {
		d := n.At(0, j) - n.At(1, j)
		dist += d * d
	}
	if dist < 1 {
		t.Fatalf("different shapes too close after normalization: %v", dist)
	}
}

func TestNormalizeCurvePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NormalizeCurve([]float64{1, 0, 2})
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	r1 := rng.New(11)
	x, _ := blobs(r1, 20, [][]float64{{0}, {9}}, 0.5)
	resA := KMeans(rng.New(5), x, 2, Options{})
	resB := KMeans(rng.New(5), x, 2, Options{})
	for i := range resA.Labels {
		if resA.Labels[i] != resB.Labels[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	r := rng.New(1)
	x, _ := blobs(r, 100, [][]float64{{0, 0}, {5, 5}, {0, 5}, {5, 0}}, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(rng.New(uint64(i)), x, 4, Options{})
	}
}
