package loadctl

import (
	"testing"
	"time"
)

// BenchmarkAcquireRelease measures the uncontended admit/release cycle —
// the cost added to every cache-hit prediction. The fast path must not
// allocate (the serving layer's alloc budget depends on it).
func BenchmarkAcquireRelease(b *testing.B) {
	c := New(Config{InitialLimit: 64, FixedLimit: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, shed := c.Acquire(Point, 0)
		if w != nil || shed != nil {
			b.Fatalf("fast path not taken: w=%v shed=%v", w, shed)
		}
		c.Release(time.Millisecond)
	}
}

// BenchmarkAcquireReleaseParallel exercises mutex contention at the
// admission gate across GOMAXPROCS goroutines.
func BenchmarkAcquireReleaseParallel(b *testing.B) {
	c := New(Config{InitialLimit: 1 << 20, FixedLimit: true})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w, shed := c.Acquire(Point, 0)
			if w != nil || shed != nil {
				b.Fatalf("fast path not taken: w=%v shed=%v", w, shed)
			}
			c.Release(time.Millisecond)
		}
	})
}
