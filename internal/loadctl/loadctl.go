// Package loadctl is the load-management layer between the network and
// every model: a bounded admission queue with deadline-budget shedding,
// an adaptive (AIMD) concurrency limiter, priority-aware rejection, and
// a degraded-mode latch for cache-only serving under saturation.
//
// The package is deliberately clock-free: it never reads the wall clock
// (repolint's nowallclock analyzer enforces this — internal/loadctl is
// not on the allowed list). Every time value it handles is a
// time.Duration measured and passed in by the caller at the serving
// boundary, so the controller's decisions are a pure function of its
// inputs and unit tests drive it with synthetic durations,
// deterministically.
//
// Admission flow (see Controller.Acquire):
//
//  1. If a concurrency slot is free and nobody is queued, admit
//     immediately. This path takes one mutex and allocates nothing.
//  2. Otherwise estimate the queue wait from the EWMA of observed
//     latencies. If the estimate exceeds the request's remaining
//     deadline budget, reject now (503 + Retry-After at the HTTP layer)
//     instead of letting the request time out downstream.
//  3. Each priority class has its own share of the bounded queue —
//     batch requests shed first, interval-bearing second, single point
//     predictions last. A class whose share is full is rejected.
//  4. Queued waiters are granted slots in priority order (FIFO within a
//     class) as completions free capacity; a waiter whose context
//     expires leaves the queue immediately.
//
// When the queue passes its high-water mark the controller latches
// degraded mode: the serving layer answers cache hits only (microsecond
// responses that need no slot) and sheds misses, until the queue drains
// below the low-water mark.
package loadctl

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Class is a request priority class. Lower values are shed later:
// single point predictions are the bounded-latency answers downstream
// schedulers depend on, while batches are bulk work that can retry.
type Class uint8

const (
	// Point is a single point prediction — shed last.
	Point Class = iota
	// Interval is an interval-bearing prediction — shed second.
	Interval
	// Batch is a multi-configuration request — shed first.
	Batch

	numClasses
)

// String returns the class's wire name.
func (c Class) String() string {
	switch c {
	case Point:
		return "point"
	case Interval:
		return "interval"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Config tunes a Controller. The zero value selects the defaults noted
// per field (see withDefaults).
type Config struct {
	// InitialLimit is the starting concurrency limit (default 64).
	InitialLimit int
	// MinLimit / MaxLimit bound the adaptive limit (defaults 1, 1024).
	MinLimit int
	MaxLimit int

	// AIMDWindow is how many completions are averaged per limit
	// adjustment. 0 disables adaptation entirely — fixed-limit fallback
	// mode at InitialLimit. Default 32.
	AIMDWindow int
	// FixedLimit forces fallback mode even with a window configured.
	FixedLimit bool
	// TargetLatency is the AIMD setpoint: when a window's mean observed
	// latency exceeds it the limit backs off multiplicatively, otherwise
	// it grows by one. Default 100ms.
	TargetLatency time.Duration
	// Backoff is the multiplicative-decrease factor in (0, 1); default 0.75.
	Backoff float64

	// QueueCapacity bounds the total number of queued waiters (default
	// 128). Class shares are occupancy ceilings: a batch request is only
	// admitted while total queue occupancy is below BatchQueueFrac of
	// capacity, an interval request below IntervalQueueFrac, and only
	// point requests may fill the queue completely — so as the queue
	// grows, batch is shed first, then interval, then point.
	QueueCapacity     int
	BatchQueueFrac    float64 // default 0.5
	IntervalQueueFrac float64 // default 0.75

	// DegradeHighFrac / DegradeLowFrac are the queue-occupancy fractions
	// at which degraded (cache-only) mode latches and clears (defaults
	// 0.9 and 0.25). The hysteresis gap keeps the mode from flapping.
	DegradeHighFrac float64
	DegradeLowFrac  float64

	// EWMAAlpha weights new observations in the latency estimate used
	// for queue-wait prediction (default 0.2).
	EWMAAlpha float64
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.InitialLimit <= 0 {
		c.InitialLimit = 64
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 1024
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.AIMDWindow < 0 {
		c.AIMDWindow = 0
	} else if c.AIMDWindow == 0 && !c.FixedLimit {
		c.AIMDWindow = 32
	}
	if c.FixedLimit {
		c.AIMDWindow = 0
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = 100 * time.Millisecond
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.75
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 128
	}
	if c.BatchQueueFrac <= 0 || c.BatchQueueFrac > 1 {
		c.BatchQueueFrac = 0.5
	}
	if c.IntervalQueueFrac <= 0 || c.IntervalQueueFrac > 1 {
		c.IntervalQueueFrac = 0.75
	}
	if c.IntervalQueueFrac < c.BatchQueueFrac {
		c.IntervalQueueFrac = c.BatchQueueFrac
	}
	if c.DegradeHighFrac <= 0 || c.DegradeHighFrac > 1 {
		c.DegradeHighFrac = 0.9
	}
	if c.DegradeLowFrac <= 0 {
		c.DegradeLowFrac = 0.25
	}
	if c.DegradeLowFrac >= c.DegradeHighFrac {
		c.DegradeLowFrac = c.DegradeHighFrac / 2
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	return c
}

// Shed reasons carried by ShedError and reported in metrics.
const (
	ShedQueueFull = "queue_full" // the class's queue share is exhausted
	ShedBudget    = "budget"     // estimated wait exceeds the deadline budget
	ShedDegraded  = "degraded"   // cache-only mode and the answer was not cached
	ShedTimeout   = "timeout"    // the budget expired while queued
)

// ShedError reports a rejected request and how long the client should
// back off before retrying.
type ShedError struct {
	Reason     string
	Class      Class
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overloaded: %s request shed (%s); retry after %s", e.Class, e.Reason, e.RetryAfter)
}

// Waiter is one queued request, returned by Acquire when the request
// must wait for a slot. Create only through Acquire.
type Waiter struct {
	c        *Controller
	class    Class
	ready    chan struct{}
	granted  bool
	canceled bool
}

// Controller is the admission controller. All methods are safe for
// concurrent use. The zero value is not usable; construct with New.
type Controller struct {
	cfg Config

	// class queue ceilings and degraded watermarks, precomputed.
	classCap  [numClasses]int
	highWater int
	lowWater  int

	mu       sync.Mutex
	limit    float64 // current concurrency limit (AIMD-adjusted)
	inflight int
	queues   [numClasses][]*Waiter // FIFO per class; canceled entries skipped lazily
	queuedN  int                   // total live (non-canceled) waiters
	ewma     float64               // EWMA of observed latency, nanoseconds
	winCount int
	winSum   float64 // nanoseconds
	degraded bool

	counters counters
}

// New builds a Controller; zero Config fields take the defaults.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:   cfg,
		limit: float64(cfg.InitialLimit),
		ewma:  float64(cfg.TargetLatency),
	}
	c.classCap[Point] = cfg.QueueCapacity
	c.classCap[Interval] = int(float64(cfg.QueueCapacity) * cfg.IntervalQueueFrac)
	c.classCap[Batch] = int(float64(cfg.QueueCapacity) * cfg.BatchQueueFrac)
	for cl := Class(0); cl < numClasses; cl++ {
		if c.classCap[cl] < 1 {
			c.classCap[cl] = 1
		}
	}
	c.highWater = int(float64(cfg.QueueCapacity) * cfg.DegradeHighFrac)
	if c.highWater < 1 {
		c.highWater = 1
	}
	c.lowWater = int(float64(cfg.QueueCapacity) * cfg.DegradeLowFrac)
	return c
}

// Config returns the controller's effective (default-filled) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Acquire requests a concurrency slot for one request of the given
// class with the given remaining deadline budget (0 means unbounded).
//
// Returns (nil, nil) when the request is admitted immediately — the
// caller owes exactly one Release. Returns (nil, *ShedError) when the
// request is rejected. Returns (w, nil) when the request is queued: the
// caller must call w.Wait with a context bounding the wait; a nil Wait
// error means admitted (one Release owed), a non-nil one means the
// waiter left the queue and no slot is held.
//
// The fast path (slot free, queue empty) performs no allocation.
func (c *Controller) Acquire(class Class, budget time.Duration) (*Waiter, *ShedError) {
	c.mu.Lock()
	if c.inflight < c.limitNow() && c.queuedN == 0 && !c.degraded {
		c.inflight++
		c.counters.admitted[class]++
		c.mu.Unlock()
		return nil, nil
	}
	if c.degraded {
		// The serving layer normally checks Degraded() first and serves
		// cache-only; anything that still lands here is shed outright.
		c.counters.shedDegraded[class]++
		retry := c.retryAfterLocked()
		c.mu.Unlock()
		return nil, &ShedError{Reason: ShedDegraded, Class: class, RetryAfter: retry}
	}
	if est := c.estWaitLocked(); budget > 0 && est > budget {
		c.counters.shedBudget[class]++
		c.mu.Unlock()
		return nil, &ShedError{Reason: ShedBudget, Class: class, RetryAfter: est}
	}
	if c.queuedN >= c.classCap[class] {
		c.counters.shedQueueFull[class]++
		retry := c.retryAfterLocked()
		c.mu.Unlock()
		return nil, &ShedError{Reason: ShedQueueFull, Class: class, RetryAfter: retry}
	}
	w := &Waiter{c: c, class: class, ready: make(chan struct{})}
	c.queues[class] = append(c.queues[class], w)
	c.queuedN++
	c.counters.enqueued[class]++
	if c.queuedN > c.counters.maxQueueDepth {
		c.counters.maxQueueDepth = c.queuedN
	}
	if !c.degraded && c.queuedN >= c.highWater {
		c.degraded = true
		c.counters.degradedEpisodes++
	}
	c.mu.Unlock()
	return w, nil
}

// Wait blocks until the waiter is granted a slot or ctx ends. A nil
// return means the slot is held and the caller owes one Release; a
// non-nil return (ctx.Err()) means the waiter was removed and holds
// nothing. A grant that races with cancellation is released internally.
func (w *Waiter) Wait(ctx context.Context) error {
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	c := w.c
	c.mu.Lock()
	if w.granted {
		// Granted between ctx firing and taking the lock: hand the slot
		// to the next waiter instead of using it.
		c.inflight--
		c.counters.admitted[w.class]--
		c.grantLocked()
	} else {
		w.canceled = true
		c.queuedN--
		c.maybeClearDegradedLocked()
	}
	if ctx.Err() == context.DeadlineExceeded {
		c.counters.timeouts[w.class]++
	} else {
		c.counters.canceled[w.class]++
	}
	c.mu.Unlock()
	return ctx.Err()
}

// Class returns the waiter's priority class.
func (w *Waiter) Class() Class { return w.class }

// Release returns a slot after a request finishes, feeding the observed
// service latency (slot grant to completion — callers exclude queue
// wait so a deep queue does not read as slow service) into the AIMD
// controller and the wait estimator, then grants freed capacity to
// queued waiters in priority order.
func (c *Controller) Release(observed time.Duration) {
	c.mu.Lock()
	c.inflight--
	c.counters.completed++
	c.ewma += c.cfg.EWMAAlpha * (float64(observed) - c.ewma)
	if c.cfg.AIMDWindow > 0 {
		c.winCount++
		c.winSum += float64(observed)
		if c.winCount >= c.cfg.AIMDWindow {
			mean := c.winSum / float64(c.winCount)
			if mean > float64(c.cfg.TargetLatency) {
				c.limit *= c.cfg.Backoff
				if c.limit < float64(c.cfg.MinLimit) {
					c.limit = float64(c.cfg.MinLimit)
				}
				c.counters.limitDecreases++
			} else {
				c.limit++
				if c.limit > float64(c.cfg.MaxLimit) {
					c.limit = float64(c.cfg.MaxLimit)
				}
				c.counters.limitIncreases++
			}
			c.winCount, c.winSum = 0, 0
		}
	}
	c.grantLocked()
	c.maybeClearDegradedLocked()
	c.mu.Unlock()
}

// Degraded reports whether the controller is in cache-only mode.
func (c *Controller) Degraded() bool {
	c.mu.Lock()
	d := c.degraded
	c.mu.Unlock()
	return d
}

// NoteDegraded records the outcome of a degraded-mode request: served
// from cache (hit) or shed (miss). The caller sheds misses itself with
// reason ShedDegraded; this only accounts for them.
func (c *Controller) NoteDegraded(class Class, hit bool) {
	c.mu.Lock()
	if hit {
		c.counters.degradedServed++
	} else {
		c.counters.shedDegraded[class]++
	}
	c.mu.Unlock()
}

// NoteTimeout records a budget expiry after admission (the deadline
// fired mid-compute). The serving layer sheds the request with reason
// ShedTimeout; this accounts for it so the shed counters cover every
// 503 emitted.
func (c *Controller) NoteTimeout(class Class) {
	c.mu.Lock()
	c.counters.timeouts[class]++
	c.mu.Unlock()
}

// RetryAfter returns the current backoff hint for an out-of-band shed
// decision (e.g. degraded-mode misses handled by the serving layer).
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	d := c.retryAfterLocked()
	c.mu.Unlock()
	return d
}

// limitNow is the integer concurrency limit (at least MinLimit).
func (c *Controller) limitNow() int {
	n := int(c.limit)
	if n < c.cfg.MinLimit {
		n = c.cfg.MinLimit
	}
	return n
}

// estWaitLocked estimates how long a newly queued request would wait:
// the work ahead of it (queued waiters plus the in-flight excess over
// the limit, plus itself) divided by the drain rate limit/ewma.
func (c *Controller) estWaitLocked() time.Duration {
	limit := c.limitNow()
	ahead := c.queuedN + 1
	if over := c.inflight - limit; over > 0 {
		ahead += over
	}
	return time.Duration(c.ewma * float64(ahead) / float64(limit))
}

// retryAfterLocked is the backoff hint attached to sheds: the estimated
// time for the current backlog to drain, floored at the AIMD target so
// clients never hammer a saturated server with sub-target retries.
func (c *Controller) retryAfterLocked() time.Duration {
	d := c.estWaitLocked()
	if d < c.cfg.TargetLatency {
		d = c.cfg.TargetLatency
	}
	return d
}

// grantLocked moves waiters into free slots, highest priority first,
// FIFO within a class. Canceled waiters are discarded as encountered.
func (c *Controller) grantLocked() {
	for c.inflight < c.limitNow() {
		w := c.popLocked()
		if w == nil {
			return
		}
		w.granted = true
		c.inflight++
		c.counters.admitted[w.class]++
		close(w.ready)
	}
}

// popLocked removes and returns the next live waiter in priority order.
func (c *Controller) popLocked() *Waiter {
	for class := Class(0); class < numClasses; class++ {
		q := c.queues[class]
		for len(q) > 0 {
			w := q[0]
			q[0] = nil
			q = q[1:]
			if w.canceled {
				continue
			}
			c.queues[class] = q
			c.queuedN--
			return w
		}
		c.queues[class] = q
	}
	return nil
}

// maybeClearDegradedLocked clears the degraded latch once the queue has
// drained below the low-water mark.
func (c *Controller) maybeClearDegradedLocked() {
	if c.degraded && c.queuedN <= c.lowWater {
		c.degraded = false
	}
}
