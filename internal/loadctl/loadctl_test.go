package loadctl

import (
	"context"
	"sync"
	"testing"
	"time"
)

// cfg returns a small deterministic config: fixed or adaptive per test.
func cfg() Config {
	return Config{
		InitialLimit:  1,
		MaxLimit:      8,
		FixedLimit:    true,
		TargetLatency: 100 * time.Millisecond,
		QueueCapacity: 8,
	}
}

// acquireNow admits or fails the test; returns nothing (slot held).
func acquireNow(t *testing.T, c *Controller, class Class) {
	t.Helper()
	w, shed := c.Acquire(class, 0)
	if shed != nil {
		t.Fatalf("%s: unexpected shed %v", class, shed)
	}
	if w != nil {
		t.Fatalf("%s: unexpectedly queued", class)
	}
}

// enqueue queues a waiter or fails the test.
func enqueue(t *testing.T, c *Controller, class Class) *Waiter {
	t.Helper()
	w, shed := c.Acquire(class, 0)
	if shed != nil {
		t.Fatalf("%s: unexpected shed %v", class, shed)
	}
	if w == nil {
		t.Fatalf("%s: admitted immediately, expected to queue", class)
	}
	return w
}

// granted reports whether w's slot arrives within the timeout.
func granted(w *Waiter) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return w.Wait(ctx) == nil
}

func TestFastPathAdmitsUnderLimit(t *testing.T) {
	c := New(Config{InitialLimit: 2, FixedLimit: true})
	acquireNow(t, c, Point)
	acquireNow(t, c, Batch)
	s := c.Snapshot()
	if s.InFlight != 2 || s.Admitted.Total() != 2 || s.Admitted.Point != 1 || s.Admitted.Batch != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	c.Release(time.Millisecond)
	c.Release(time.Millisecond)
	s = c.Snapshot()
	if s.InFlight != 0 || s.Completed != 2 {
		t.Fatalf("after release: %+v", s)
	}
}

func TestPriorityGrantOrder(t *testing.T) {
	c := New(cfg()) // limit 1
	acquireNow(t, c, Point)
	wb := enqueue(t, c, Batch)
	wi := enqueue(t, c, Interval)
	wp := enqueue(t, c, Point)

	// Each release grants exactly one slot, highest priority first even
	// though batch queued before interval before point.
	order := []*Waiter{wp, wi, wb}
	for i, w := range order {
		c.Release(time.Millisecond)
		if !granted(w) {
			t.Fatalf("waiter %d (%s) not granted after release", i, w.Class())
		}
		for _, later := range order[i+1:] {
			select {
			case <-later.ready:
				t.Fatalf("%s granted before its turn", later.Class())
			default:
			}
		}
	}
	s := c.Snapshot()
	if s.Enqueued.Total() != 3 || s.Admitted.Total() != 4 || s.Queued != 0 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestClassQueueShares(t *testing.T) {
	// Queue 8: batch admitted while occupancy < 4, interval < 6, point < 8
	// (degraded latch at 7 fires first for point).
	c := New(cfg())
	acquireNow(t, c, Point)
	for i := 0; i < 4; i++ {
		enqueue(t, c, Batch)
	}
	if _, shed := c.Acquire(Batch, 0); shed == nil || shed.Reason != ShedQueueFull {
		t.Fatalf("5th batch: %v, want queue_full", shed)
	}
	// Interval and point still have room above batch's ceiling.
	enqueue(t, c, Interval)
	enqueue(t, c, Interval)
	if _, shed := c.Acquire(Interval, 0); shed == nil || shed.Reason != ShedQueueFull {
		t.Fatalf("interval past occupancy 6: %v, want queue_full", shed)
	}
	enqueue(t, c, Point) // occupancy 7 = high water: degraded latches
	if !c.Degraded() {
		t.Fatal("not degraded at high water")
	}
	if _, shed := c.Acquire(Point, 0); shed == nil || shed.Reason != ShedDegraded {
		t.Fatalf("point while degraded: %v, want degraded shed", shed)
	}
	s := c.Snapshot()
	if s.ShedQueueFull.Batch != 1 || s.ShedQueueFull.Interval != 1 || s.ShedDegraded.Point != 1 {
		t.Fatalf("shed counters %+v", s)
	}
	if s.MaxQueueDepth != 7 {
		t.Fatalf("max queue depth %d, want 7", s.MaxQueueDepth)
	}
}

// Interval's share is shared with batch: with the queue already holding
// 4 batch waiters, interval admissions stop at 6 total. The test above
// pins that; this one pins that interval alone can reach its own cap.
func TestIntervalShareAlone(t *testing.T) {
	c := New(cfg())
	acquireNow(t, c, Point)
	for i := 0; i < 6; i++ {
		enqueue(t, c, Interval)
	}
	if _, shed := c.Acquire(Interval, 0); shed == nil || shed.Reason != ShedQueueFull {
		t.Fatalf("7th interval: %v, want queue_full", shed)
	}
}

func TestBudgetShed(t *testing.T) {
	c := New(cfg()) // ewma seeded at the 100ms target
	acquireNow(t, c, Point)
	// est wait for a new request ≈ ewma × 1 / 1 = 100ms > 50ms budget.
	w, shed := c.Acquire(Point, 50*time.Millisecond)
	if w != nil || shed == nil || shed.Reason != ShedBudget {
		t.Fatalf("got (%v, %v), want budget shed", w, shed)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("budget shed carries no Retry-After: %+v", shed)
	}
	// A budget comfortably above the estimate queues instead.
	if w := enqueue(t, c, Point); w == nil {
		t.Fatal("roomy budget did not queue")
	}
	s := c.Snapshot()
	if s.ShedBudget.Point != 1 {
		t.Fatalf("shed counters %+v", s)
	}
}

func TestAIMDAdjustsLimit(t *testing.T) {
	c := New(Config{
		InitialLimit:  4,
		MinLimit:      1,
		MaxLimit:      6,
		AIMDWindow:    4,
		TargetLatency: 100 * time.Millisecond,
		Backoff:       0.5,
	})
	slow := func() {
		for i := 0; i < 4; i++ {
			acquireNow(t, c, Point)
			c.Release(300 * time.Millisecond)
		}
	}
	fast := func() {
		for i := 0; i < 4; i++ {
			acquireNow(t, c, Point)
			c.Release(time.Millisecond)
		}
	}
	slow() // mean 300ms > 100ms target → 4 × 0.5 = 2
	if s := c.Snapshot(); s.Limit != 2 || s.LimitDecreases != 1 {
		t.Fatalf("after slow window: %+v", s)
	}
	slow() // 2 × 0.5 = 1
	slow() // floor at MinLimit
	if s := c.Snapshot(); s.Limit != 1 || s.LimitDecreases != 3 {
		t.Fatalf("at floor: %+v", s)
	}
	for i := 0; i < 6; i++ {
		fast() // +1 per window
	}
	if s := c.Snapshot(); s.Limit != 6 || s.LimitIncreases != 6 {
		t.Fatalf("after recovery: %+v", s)
	}
	fast() // ceiling at MaxLimit
	if s := c.Snapshot(); s.Limit != 6 {
		t.Fatalf("above ceiling: %+v", s)
	}
}

func TestFixedModeNeverAdapts(t *testing.T) {
	c := New(cfg())
	for i := 0; i < 100; i++ {
		acquireNow(t, c, Point)
		c.Release(time.Second) // way over target
	}
	s := c.Snapshot()
	if s.Limit != 1 || s.Mode != "fixed" || s.LimitDecreases != 0 {
		t.Fatalf("fixed mode moved: %+v", s)
	}
}

func TestDegradedLatchAndClear(t *testing.T) {
	conf := cfg() // queue 8 → high water 7, low water 2
	c := New(conf)
	acquireNow(t, c, Point)
	var ws []*Waiter
	for i := 0; i < 6; i++ {
		ws = append(ws, enqueue(t, c, Point))
	}
	if c.Degraded() {
		t.Fatal("degraded below high water")
	}
	ws = append(ws, enqueue(t, c, Point)) // 7 queued = high water
	if !c.Degraded() {
		t.Fatal("not degraded at high water")
	}
	// While degraded, new work is shed outright even though the point
	// share technically has room.
	if _, shed := c.Acquire(Point, 0); shed == nil || shed.Reason != ShedDegraded {
		t.Fatalf("degraded acquire: %v", shed)
	}
	// Draining to the low-water mark clears the latch.
	for i := 0; i < 5; i++ {
		c.Release(time.Millisecond)
		if !granted(ws[i]) {
			t.Fatalf("waiter %d not granted", i)
		}
	}
	if c.Degraded() {
		t.Fatalf("still degraded with %d queued", c.Snapshot().Queued)
	}
	s := c.Snapshot()
	if s.DegradedEpisodes != 1 || s.ShedDegraded.Point != 1 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestNoteDegraded(t *testing.T) {
	c := New(cfg())
	c.NoteDegraded(Point, true)
	c.NoteDegraded(Batch, false)
	s := c.Snapshot()
	if s.DegradedServed != 1 || s.ShedDegraded.Batch != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if c.RetryAfter() <= 0 {
		t.Fatal("no retry hint")
	}
}

func TestWaitCancellation(t *testing.T) {
	c := New(cfg())
	acquireNow(t, c, Point)

	// Client-gone cancellation.
	w := enqueue(t, c, Point)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait: %v", err)
	}
	// Deadline expiry while queued.
	w = enqueue(t, c, Point)
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer dcancel()
	if err := w.Wait(dctx); err != context.DeadlineExceeded {
		t.Fatalf("Wait: %v", err)
	}
	s := c.Snapshot()
	if s.Canceled.Point != 1 || s.Timeouts.Point != 1 || s.Queued != 0 {
		t.Fatalf("snapshot %+v", s)
	}
	// The canceled waiters must not receive the next freed slot.
	w = enqueue(t, c, Point)
	c.Release(time.Millisecond)
	if !granted(w) {
		t.Fatal("live waiter starved by canceled predecessors")
	}
	if s := c.Snapshot(); s.InFlight != 1 {
		t.Fatalf("in-flight %d, want 1", s.InFlight)
	}
}

// TestGrantCancelRace hammers the grant-vs-cancel window: a waiter whose
// context fires just as Release grants it must hand the slot on, never
// leak it. Run with -race this also exercises the locking.
func TestGrantCancelRace(t *testing.T) {
	c := New(cfg())
	for round := 0; round < 200; round++ {
		acquireNow(t, c, Point)
		w := enqueue(t, c, Point)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); c.Release(time.Millisecond) }()
		go func() { defer wg.Done(); cancel() }()
		if err := w.Wait(ctx); err == nil {
			c.Release(time.Millisecond)
		}
		wg.Wait()
		if s := c.Snapshot(); s.InFlight != 0 || s.Queued != 0 {
			t.Fatalf("round %d leaked: %+v", round, s)
		}
	}
}

// TestConcurrentChurn drives many goroutines through acquire/wait/release
// under -race; every admitted request releases exactly once and the
// controller ends idle.
func TestConcurrentChurn(t *testing.T) {
	c := New(Config{InitialLimit: 4, FixedLimit: true, QueueCapacity: 64})
	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := Class(g % int(numClasses))
			for i := 0; i < perWorker; i++ {
				w, shed := c.Acquire(class, 0)
				if shed != nil {
					continue
				}
				if w != nil {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := w.Wait(ctx)
					cancel()
					if err != nil {
						continue
					}
				}
				c.Release(time.Duration(i%7) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("controller not idle after churn: %+v", s)
	}
	if s.Admitted.Total() != s.Completed {
		t.Fatalf("admitted %d != completed %d", s.Admitted.Total(), s.Completed)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.InitialLimit != 64 || c.MinLimit != 1 || c.MaxLimit != 1024 ||
		c.AIMDWindow != 32 || c.TargetLatency != 100*time.Millisecond ||
		c.Backoff != 0.75 || c.QueueCapacity != 128 {
		t.Fatalf("defaults %+v", c)
	}
	f := Config{FixedLimit: true, AIMDWindow: 99}.withDefaults()
	if f.AIMDWindow != 0 {
		t.Fatalf("FixedLimit did not zero the window: %+v", f)
	}
}

func TestShedErrorString(t *testing.T) {
	e := &ShedError{Reason: ShedQueueFull, Class: Batch, RetryAfter: time.Second}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}
