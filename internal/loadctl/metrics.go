package loadctl

import "time"

// counters are the controller's lifetime counters, updated under the
// controller mutex (every code path that touches them already holds it,
// so atomics would buy nothing).
type counters struct {
	admitted      [numClasses]int64
	enqueued      [numClasses]int64
	shedQueueFull [numClasses]int64
	shedBudget    [numClasses]int64
	shedDegraded  [numClasses]int64
	timeouts      [numClasses]int64
	canceled      [numClasses]int64

	completed      int64
	degradedServed int64

	limitIncreases   int64
	limitDecreases   int64
	degradedEpisodes int64
	maxQueueDepth    int
}

// ClassCounts splits a counter by priority class.
type ClassCounts struct {
	Point    int64 `json:"point"`
	Interval int64 `json:"interval"`
	Batch    int64 `json:"batch"`
}

// Total sums the three classes.
func (c ClassCounts) Total() int64 { return c.Point + c.Interval + c.Batch }

func classCounts(a [numClasses]int64) ClassCounts {
	return ClassCounts{Point: a[Point], Interval: a[Interval], Batch: a[Batch]}
}

// Snapshot is a point-in-time view of the controller, served on
// /v1/loadstatus and embedded in /metrics.
type Snapshot struct {
	// Limit is the current concurrency limit; Mode says how it moves.
	Limit float64 `json:"limit"`
	Mode  string  `json:"mode"` // "aimd" or "fixed"

	InFlight      int  `json:"in_flight"`
	Queued        int  `json:"queued"`
	QueueCapacity int  `json:"queue_capacity"`
	MaxQueueDepth int  `json:"max_queue_depth"`
	Degraded      bool `json:"degraded"`

	// Admitted counts slots granted (immediate or after queueing);
	// Enqueued counts requests that had to wait first.
	Admitted  ClassCounts `json:"admitted"`
	Enqueued  ClassCounts `json:"enqueued"`
	Completed int64       `json:"completed"`

	// Shed counters, by mechanism then class. Every 503 the serving
	// layer emits is accounted in exactly one of these.
	ShedQueueFull ClassCounts `json:"shed_queue_full"`
	ShedBudget    ClassCounts `json:"shed_budget"`
	ShedDegraded  ClassCounts `json:"shed_degraded"`
	Timeouts      ClassCounts `json:"timeouts"`
	Canceled      ClassCounts `json:"canceled"`

	// DegradedServed counts cache hits answered while degraded;
	// DegradedEpisodes counts latch transitions into degraded mode.
	DegradedServed   int64 `json:"degraded_served"`
	DegradedEpisodes int64 `json:"degraded_episodes"`

	LimitIncreases int64 `json:"limit_increases"`
	LimitDecreases int64 `json:"limit_decreases"`

	// EWMALatencyMS is the latency estimate behind wait predictions;
	// TargetLatencyMS is the AIMD setpoint.
	EWMALatencyMS   float64 `json:"ewma_latency_ms"`
	TargetLatencyMS float64 `json:"target_latency_ms"`
}

// ShedTotal is every rejection the controller has issued (excluding
// client cancellations, which the client caused).
func (s Snapshot) ShedTotal() int64 {
	return s.ShedQueueFull.Total() + s.ShedBudget.Total() + s.ShedDegraded.Total() + s.Timeouts.Total()
}

// Snapshot captures the controller state and counters.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	mode := "aimd"
	if c.cfg.AIMDWindow == 0 {
		mode = "fixed"
	}
	return Snapshot{
		Limit:         c.limit,
		Mode:          mode,
		InFlight:      c.inflight,
		Queued:        c.queuedN,
		QueueCapacity: c.cfg.QueueCapacity,
		MaxQueueDepth: c.counters.maxQueueDepth,
		Degraded:      c.degraded,

		Admitted:  classCounts(c.counters.admitted),
		Enqueued:  classCounts(c.counters.enqueued),
		Completed: c.counters.completed,

		ShedQueueFull: classCounts(c.counters.shedQueueFull),
		ShedBudget:    classCounts(c.counters.shedBudget),
		ShedDegraded:  classCounts(c.counters.shedDegraded),
		Timeouts:      classCounts(c.counters.timeouts),
		Canceled:      classCounts(c.counters.canceled),

		DegradedServed:   c.counters.degradedServed,
		DegradedEpisodes: c.counters.degradedEpisodes,

		LimitIncreases: c.counters.limitIncreases,
		LimitDecreases: c.counters.limitDecreases,

		EWMALatencyMS:   c.ewma / float64(time.Millisecond),
		TargetLatencyMS: float64(c.cfg.TargetLatency) / float64(time.Millisecond),
	}
}
