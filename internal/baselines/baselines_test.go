package baselines

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hpcsim"
	"repro/internal/rng"
	"repro/internal/stats"
)

// history builds a LULESH history over both small and large scales so the
// baselines can be validated in their favourable (interpolation) regime
// and their unfavourable (extrapolation) regime.
func history(t *testing.T, n int, scales []int) (*dataset.Table, [][]float64) {
	t.Helper()
	app := hpcsim.NewLulesh()
	eng := hpcsim.NewEngine(nil, 42)
	r := rng.New(7)
	cfgs := app.Space().SampleLatinHypercube(r, n)
	tbl, err := eng.GenerateHistory(app, hpcsim.HistorySpec{Configs: cfgs, Scales: scales, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, cfgs
}

var smallScales = []int{2, 4, 8, 16, 32, 64}

func TestAllBaselinesInterpolateWell(t *testing.T) {
	train, _ := history(t, 150, smallScales)
	test, _ := history(t, 40, smallScales)
	for _, b := range All() {
		p, err := b.Train(rng.New(1), train)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		var yt, yp []float64
		for _, c := range test.GroupByConfig() {
			for s, rt := range c.Runtimes {
				yt = append(yt, rt)
				yp = append(yp, p.PredictAt(c.Params, s))
			}
		}
		mape := stats.MAPE(yt, yp)
		if mape > 0.45 {
			t.Fatalf("%s interpolation MAPE = %.3f", b.Name, mape)
		}
	}
}

func TestDirectBaselinesDegradeAtExtrapolation(t *testing.T) {
	// Train ONLY on small scales; test at 512. Tree/neighbour methods
	// cannot exceed their training range, so they must be badly wrong
	// (the motivation for the paper). We assert degradation, not success.
	train, _ := history(t, 150, smallScales)
	test, _ := history(t, 30, []int{512})
	for _, b := range []struct {
		Name  string
		Train Trainer
	}{
		{"direct-rf", TrainDirectForest},
		{"direct-knn", TrainDirectKNN},
	} {
		p, err := b.Train(rng.New(2), train)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		var yt, yp []float64
		for _, c := range test.GroupByConfig() {
			yt = append(yt, c.Runtimes[512])
			yp = append(yp, p.PredictAt(c.Params, 512))
		}
		mape := stats.MAPE(yt, yp)
		// Runtime at 512 is ~8-20x below the small-scale range for most
		// configs, so bounded predictors overshoot enormously.
		if mape < 1.0 {
			t.Fatalf("%s extrapolation MAPE = %.3f — suspiciously good for a bounded predictor", b.Name, mape)
		}
	}
}

func TestDirectLassoExtrapolatesPowerLaws(t *testing.T) {
	// The log-log lasso CAN extrapolate along scale (it fits a power law),
	// so it should do far better than the bounded predictors out of range.
	train, _ := history(t, 200, smallScales)
	test, _ := history(t, 30, []int{512})
	p, err := TrainDirectLasso(rng.New(3), train)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := TrainDirectForest(rng.New(3), train)
	if err != nil {
		t.Fatal(err)
	}
	var yt, ypLasso, ypRF []float64
	for _, c := range test.GroupByConfig() {
		yt = append(yt, c.Runtimes[512])
		ypLasso = append(ypLasso, p.PredictAt(c.Params, 512))
		ypRF = append(ypRF, rf.PredictAt(c.Params, 512))
	}
	mLasso := stats.MAPE(yt, ypLasso)
	mRF := stats.MAPE(yt, ypRF)
	// The power law is an imperfect fit (the memory-contention plateau at
	// p=4..32 biases its slope), but unlike the bounded forest it at least
	// follows the trend out of range.
	if mLasso > 2.0 {
		t.Fatalf("direct-lasso extrapolation MAPE = %.3f", mLasso)
	}
	if mLasso >= mRF {
		t.Fatalf("direct-lasso (%.3f) should beat the bounded forest (%.3f) out of range", mLasso, mRF)
	}
}

func TestCurveFitBaseline(t *testing.T) {
	test, _ := history(t, 20, append(append([]int{}, smallScales...), 256))
	cf := &CurveFit{Scales: smallScales}
	if cf.Name() != "curve-fit" {
		t.Fatal("name")
	}
	var yt, yp []float64
	for _, c := range test.GroupByConfig() {
		curve, ok := c.Curve(smallScales)
		if !ok {
			t.Fatal("missing curve")
		}
		pred, err := cf.PredictFromCurve(curve, 256)
		if err != nil {
			t.Fatal(err)
		}
		yt = append(yt, c.Runtimes[256])
		yp = append(yp, pred)
	}
	// Single-term curve fitting is badly fooled by the contention plateau
	// at small scales (this is the baseline the learned method must beat);
	// we only require it to run and stay finite/ordered.
	if mape := stats.MAPE(yt, yp); mape > 5.0 || math.IsNaN(mape) {
		t.Fatalf("curve-fit MAPE = %.3f", mape)
	}
	for _, v := range yp {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("curve-fit produced non-finite prediction")
		}
	}
}

func TestCurveFitTooFewPoints(t *testing.T) {
	cf := &CurveFit{Scales: []int{2, 4}}
	if _, err := cf.PredictFromCurve([]float64{1, 2}, 128); err == nil {
		t.Fatal("accepted 2-point curve")
	}
}

func TestTrainersRejectEmptyTable(t *testing.T) {
	empty := dataset.NewTable("x", []string{"a"})
	for _, b := range All() {
		if _, err := b.Train(rng.New(1), empty); err == nil {
			t.Fatalf("%s accepted empty table", b.Name)
		}
	}
}

func TestPredictorNames(t *testing.T) {
	train, _ := history(t, 30, []int{2, 4, 8})
	for _, b := range All() {
		p, err := b.Train(rng.New(1), train)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != b.Name {
			t.Fatalf("predictor name %q != registry name %q", p.Name(), b.Name)
		}
	}
}
